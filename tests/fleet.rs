//! End-to-end gates for the fleet simulation: VM/capacity conservation
//! under `Strict` verification, bit-for-bit agreement of the exact engines
//! on a small fleet, byte-identity across shard-pool worker counts, and
//! the sampled replay engine's host-stride contract.

use greendimm_suite::bench::telemetry::render_shards;
use greendimm_suite::dram::{EngineMode, EpochReplayCfg};
use greendimm_suite::fleet::{run_fleet, schedule_fleet, FleetOutcome};
use greendimm_suite::types::fleet::{FleetConfig, FleetPlacement};
use greendimm_suite::verify::Mode;

fn small(placement: FleetPlacement, ksm: bool) -> FleetConfig {
    FleetConfig {
        placement,
        ksm,
        ..FleetConfig::small_test()
    }
}

/// Every placement policy keeps the scheduler's books conserved at every
/// tick (the Strict checker runs per tick inside `schedule_fleet`) and the
/// end-to-end fleet run completes with the same identities intact.
#[test]
fn strict_conservation_holds_for_every_placement() {
    for (placement, ksm) in [
        (FleetPlacement::FirstFit, false),
        (FleetPlacement::BestFit, false),
        (FleetPlacement::KsmAware, true),
    ] {
        let cfg = small(placement, ksm);
        let out = run_fleet(&cfg, EngineMode::EventDriven, 2, Some(Mode::Strict), false)
            .unwrap_or_else(|e| panic!("{} fleet failed Strict: {e}", placement.name()));
        assert!(out.stats.conserved(), "{}", placement.name());
        assert!(out.stats.arrivals > 0 && out.stats.placed > 0);
        assert_eq!(out.hosts.len(), cfg.hosts);
        assert_eq!(out.utilization.len() as u64, cfg.ticks() + 1);
    }
}

/// The Strict fleet checker also holds under the sampled replay engine —
/// scheduling (where the invariants live) is engine-independent.
#[test]
fn strict_conservation_holds_under_sampled_replay() {
    let cfg = FleetConfig {
        replay_stride: 4,
        ..small(FleetPlacement::BestFit, false)
    };
    let out = run_fleet(
        &cfg,
        EngineMode::EpochReplay(EpochReplayCfg::default()),
        2,
        Some(Mode::Strict),
        false,
    )
    .unwrap();
    assert!(out.stats.conserved());
    // Hosts 0 and 4 are the exact anchors at stride 4 over 8 hosts.
    assert_eq!(out.exact_hosts, 2);
    let exact: Vec<usize> = out
        .hosts
        .iter()
        .filter(|h| h.exact)
        .map(|h| h.host)
        .collect();
    assert_eq!(exact, vec![0, 4]);
    assert!(
        out.hosts.iter().all(|h| h.exact || h.replayed_ticks > 0),
        "surrogate hosts must account their replayed ticks"
    );
}

fn assert_outcomes_equal(a: &FleetOutcome, b: &FleetOutcome, what: &str) {
    assert_eq!(a.stats, b.stats, "stats diverged: {what}");
    assert_eq!(a.utilization, b.utilization, "utilization diverged: {what}");
    assert_eq!(a.hosts, b.hosts, "host summaries diverged: {what}");
    assert_eq!(a.exact_hosts, b.exact_hosts, "exact count diverged: {what}");
}

/// The two exact engines co-simulate every host bit-for-bit identically:
/// the fleet outcome (scheduler books, per-host roll-ups, utilization
/// series) must not depend on the time-advance strategy.
#[test]
fn exact_engines_agree_on_a_small_fleet() {
    let cfg = small(FleetPlacement::BestFit, false);
    let stepped = run_fleet(&cfg, EngineMode::Stepped, 2, None, false).unwrap();
    let event = run_fleet(&cfg, EngineMode::EventDriven, 2, None, false).unwrap();
    assert_outcomes_equal(&stepped, &event, "stepped vs event-driven");
    assert!(event.mean_deep_pd_fraction() > 0.0);
}

/// `--jobs 1` and `--jobs 4` produce identical outcomes and byte-identical
/// merged telemetry: hosts merge in index order, never completion order.
#[test]
fn fleet_outcome_is_identical_across_job_counts() {
    let cfg = small(FleetPlacement::KsmAware, true);
    let run = |jobs: usize| run_fleet(&cfg, EngineMode::EventDriven, jobs, None, true).unwrap();
    let serial = run(1);
    let parallel = run(4);
    assert_outcomes_equal(&serial, &parallel, "--jobs 1 vs --jobs 4");
    let bytes = |out: &FleetOutcome| {
        let shards: Vec<_> = out
            .telemetry
            .clone()
            .unwrap()
            .into_iter()
            .map(|(label, tele)| (label, Some(tele)))
            .collect();
        render_shards(&shards)
    };
    let a = bytes(&serial);
    assert!(!a.is_empty());
    assert_eq!(a, bytes(&parallel), "merged telemetry bytes diverged");
}

/// The schedule itself is a pure function of the config: same config, same
/// per-host event streams; and KSM-aware placement only re-routes VMs — it
/// never changes how many are placed versus abandoned in aggregate ticks.
#[test]
fn schedule_is_deterministic() {
    let cfg = small(FleetPlacement::KsmAware, true);
    let a = schedule_fleet(&cfg, None).unwrap();
    let b = schedule_fleet(&cfg, Some(Mode::Record)).unwrap();
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.host_events, b.host_events);
    assert_eq!(a.utilization, b.utilization);
}
