//! Scheduler correctness: every command the FR-FCFS controller issues must
//! satisfy the JEDEC timing constraints, as judged by the *independent*
//! replay checker in `gd_dram::validate`.

use greendimm_suite::dram::{LowPowerPolicy, MemorySystem, TimingChecker};
use greendimm_suite::types::config::{DramConfig, InterleaveMode};
use greendimm_suite::workloads::{by_name, AppProfile, TraceGenerator};

fn validate_run(mode: InterleaveMode, profile: &AppProfile, requests: usize, seed: u64) {
    let cfg = DramConfig::small_test().with_interleave(mode);
    let mut sys = MemorySystem::new(cfg, LowPowerPolicy::srf_default()).expect("config");
    sys.enable_command_log();
    let mut gen = TraceGenerator::new(profile.clone(), seed);
    let cap = cfg.total_capacity_bytes();
    let trace: Vec<_> = gen
        .take(requests)
        .into_iter()
        .map(|mut r| {
            r.addr %= cap;
            r
        })
        .collect();
    sys.run_trace(trace).expect("trace");
    let log = sys.take_command_log();
    assert!(!log.is_empty(), "log must record commands");
    let checker = TimingChecker::new(
        cfg.timing,
        cfg.org.bank_groups,
        cfg.org.banks_per_group,
    );
    let violations = checker.check(&log);
    assert!(
        violations.is_empty(),
        "{} timing violations under {mode:?} for {} (first: {})",
        violations.len(),
        profile.name,
        violations[0]
    );
}

#[test]
fn scheduler_respects_timing_interleaved() {
    let p = by_name("mcf").expect("profile");
    validate_run(InterleaveMode::Interleaved, &p, 5_000, 1);
}

#[test]
fn scheduler_respects_timing_linear() {
    // Linear mapping serializes onto one channel: the densest, most
    // conflict-prone schedule.
    let p = by_name("mcf").expect("profile");
    validate_run(InterleaveMode::Linear, &p, 5_000, 2);
}

#[test]
fn scheduler_respects_timing_xor_hashed() {
    let p = by_name("soplex").expect("profile");
    validate_run(InterleaveMode::InterleavedXor, &p, 5_000, 3);
}

#[test]
fn scheduler_respects_timing_streaming_workload() {
    // High row locality: long sequential bursts stress tCCD/tFAW paths.
    let p = by_name("libquantum").expect("profile");
    validate_run(InterleaveMode::Interleaved, &p, 5_000, 4);
}

#[test]
fn scheduler_respects_timing_write_heavy() {
    let mut p = by_name("lbm").expect("profile");
    p.read_fraction = 0.3; // stress tWR / tWTR turnarounds
    validate_run(InterleaveMode::Interleaved, &p, 5_000, 5);
}
