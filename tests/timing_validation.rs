//! Scheduler correctness: every command the FR-FCFS controller issues must
//! satisfy the JEDEC timing constraints, the rank power-state protocol, and
//! GreenDIMM's sub-array-group safety rules, as judged by the *independent*
//! replay checker in `gd_dram::validate`.

use greendimm_suite::dram::{DramCommand, LowPowerPolicy, MemRequest, MemorySystem, TimingChecker};
use greendimm_suite::types::config::{DramConfig, InterleaveMode};
use greendimm_suite::types::ids::SubArrayGroup;
use greendimm_suite::workloads::{by_name, AppProfile, TraceGenerator};

const MODES: [InterleaveMode; 3] = [
    InterleaveMode::Interleaved,
    InterleaveMode::InterleavedXor,
    InterleaveMode::Linear,
];

fn run_and_validate(
    mode: InterleaveMode,
    policy: LowPowerPolicy,
    profile: &AppProfile,
    requests: usize,
    seed: u64,
) -> Vec<greendimm_suite::dram::CommandRecord> {
    let cfg = DramConfig::small_test().with_interleave(mode);
    let mut sys = MemorySystem::new(cfg, policy).expect("config");
    sys.enable_command_log();
    let mut gen = TraceGenerator::new(profile.clone(), seed);
    let cap = cfg.total_capacity_bytes();
    let trace: Vec<_> = gen
        .take(requests)
        .into_iter()
        .map(|mut r| {
            r.addr %= cap;
            r
        })
        .collect();
    sys.run_trace(trace).expect("trace");
    let log = sys.take_command_log();
    assert!(!log.is_empty(), "log must record commands");
    let checker = TimingChecker::for_config(&cfg);
    let violations = checker.check(&log);
    assert!(
        violations.is_empty(),
        "{} violations under {mode:?} for {} (first: {})",
        violations.len(),
        profile.name,
        violations[0]
    );
    log
}

fn validate_run(mode: InterleaveMode, profile: &AppProfile, requests: usize, seed: u64) {
    run_and_validate(mode, LowPowerPolicy::srf_default(), profile, requests, seed);
}

#[test]
fn scheduler_respects_timing_interleaved() {
    let p = by_name("mcf").expect("profile");
    validate_run(InterleaveMode::Interleaved, &p, 5_000, 1);
}

#[test]
fn scheduler_respects_timing_linear() {
    // Linear mapping serializes onto one channel: the densest, most
    // conflict-prone schedule.
    let p = by_name("mcf").expect("profile");
    validate_run(InterleaveMode::Linear, &p, 5_000, 2);
}

#[test]
fn scheduler_respects_timing_xor_hashed() {
    let p = by_name("soplex").expect("profile");
    validate_run(InterleaveMode::InterleavedXor, &p, 5_000, 3);
}

#[test]
fn scheduler_respects_timing_streaming_workload() {
    // High row locality: long sequential bursts stress tCCD/tFAW paths.
    let p = by_name("libquantum").expect("profile");
    validate_run(InterleaveMode::Interleaved, &p, 5_000, 4);
}

#[test]
fn scheduler_respects_timing_write_heavy() {
    let mut p = by_name("lbm").expect("profile");
    p.read_fraction = 0.3; // stress tWR / tWTR turnarounds
    validate_run(InterleaveMode::Interleaved, &p, 5_000, 5);
}

/// Property-style sweep: every interleave mode × several workload
/// personalities produces a clean protocol log, including the rank
/// power-state transitions the governor emits under self-refresh timeouts.
#[test]
fn scheduler_clean_across_interleave_and_workloads() {
    for (wi, name) in ["mcf", "soplex", "libquantum", "gems"].iter().enumerate() {
        let Some(profile) = by_name(name) else {
            continue; // profile set may shrink; the sweep adapts
        };
        for (mi, mode) in MODES.into_iter().enumerate() {
            run_and_validate(
                mode,
                LowPowerPolicy::srf_default(),
                &profile,
                2_000,
                100 + (wi * MODES.len() + mi) as u64,
            );
        }
    }
}

/// A sparse trace with aggressive power-down/self-refresh timeouts makes the
/// governor cycle ranks through PDE/PDX and SRE/SRX; the state machine in the
/// validator must accept the schedule, and the log must actually contain the
/// power commands (the test is vacuous otherwise).
#[test]
fn power_state_transitions_validate_clean() {
    let policy = LowPowerPolicy {
        pd_timeout: Some(64),
        sr_timeout: Some(4_000),
    };
    let p = by_name("mcf").expect("profile");
    let mut sparse = p.clone();
    // Stretch arrivals so ranks go idle between bursts.
    sparse.mpki = 1.0;
    let log = run_and_validate(InterleaveMode::Linear, policy, &sparse, 1_500, 11);
    let pde = log
        .iter()
        .filter(|r| r.command == DramCommand::PowerDownEnter)
        .count();
    let pdx = log
        .iter()
        .filter(|r| r.command == DramCommand::PowerDownExit)
        .count();
    assert!(pde > 0, "governor never entered power-down");
    assert!(pdx > 0, "power-down rank was never woken");
}

/// Deep power-down MRS writes land in the log, and traffic steered away from
/// the powered-down group validates clean — including the neighbor-pair rule.
#[test]
fn deep_pd_register_traffic_validates_clean() {
    let cfg = DramConfig::small_test();
    let mut sys = MemorySystem::new(cfg, LowPowerPolicy::srf_default()).expect("config");
    sys.enable_command_log();
    // Power down the top group and its sense-amp buddy, then run traffic
    // confined to the bottom half of the address space.
    let groups = sys.mapper().subarray_groups();
    let top = SubArrayGroup::new(groups - 1);
    let buddy = SubArrayGroup::new((groups - 1) ^ 1);
    sys.set_group_deep_pd(top, true).unwrap();
    sys.set_group_deep_pd(buddy, true).unwrap();
    let cap = sys.mapper().capacity_bytes();
    let reqs: Vec<_> = (0..1_000u64)
        .map(|i| MemRequest::read((i * 64 * 7) % (cap / 4), i * 20))
        .collect();
    sys.run_trace(reqs).unwrap();
    // Wake the groups again (still no traffic touches them beforehand).
    sys.set_group_deep_pd(top, false).unwrap();
    sys.set_group_deep_pd(buddy, false).unwrap();
    let log = sys.take_command_log();
    let mrs = log
        .iter()
        .filter(|r| r.command == DramCommand::ModeRegisterSet)
        .count();
    assert_eq!(mrs, 4, "each register write must be logged");
    let violations = TimingChecker::for_config(&cfg)
        .with_neighbor_pairs(true)
        .check(&log);
    assert!(violations.is_empty(), "first: {}", violations[0]);
}
