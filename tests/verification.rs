//! End-to-end runtime verification: the full co-simulation (daemon +
//! memory manager + KSM + footprint churn, including the demand-driven
//! on-lining stall path) must run under the Strict invariant harness with
//! zero violations, and the harness must actually be exercising checks.

use greendimm_suite::core::{
    Daemon, EpochSim, FootprintDriver, GreenDimmConfig, GreenDimmSystem, GroupMap, SystemConfig,
};
use greendimm_suite::ksm::{Ksm, KsmConfig};
use greendimm_suite::mmsim::{MemoryManager, MmConfig, PageKind};
use greendimm_suite::types::SimTime;
use greendimm_suite::verify::Mode;

fn strict_sim(ksm: bool) -> EpochSim {
    let mut mm = MemoryManager::new(MmConfig::small_test()).unwrap();
    let kernel = mm.meminfo().installed_pages / 50;
    mm.allocate(kernel, PageKind::KernelUnmovable).unwrap();
    let map = GroupMap::new(256 << 20, 16, 16 << 20).unwrap();
    let daemon = Daemon::new(GreenDimmConfig::paper_default(), map);
    let ksm = ksm.then(|| Ksm::new(KsmConfig::default()));
    let mut sim = EpochSim::new(mm, daemon, ksm);
    sim.enable_verification(Mode::Strict);
    sim
}

/// The flagship check: settle, churn a footprint up and down (hitting both
/// off-lining and the allocation-stall on-lining path), with KSM merging
/// behind the scenes — every tick's invariants must hold in Strict mode.
#[test]
fn full_cosim_is_invariant_clean_under_strict_mode() {
    let mut sim = strict_sim(true);
    sim.settle(60).expect("settle must be violation-free");
    assert!(sim.offline_fraction() > 0.5, "settle must off-line memory");

    let mut fp = FootprintDriver::new();
    if let Some(ksm) = &mut sim.ksm {
        fp.set_target(&mut sim.mm, 2_000).unwrap();
        let owner = fp.allocation_id().expect("allocated");
        // Half the region shares 4 contents; the rest is unique.
        ksm.register_region(owner, vec![(1, 250), (2, 250), (3, 250), (4, 250)], 1_000);
    }

    let installed = sim.mm.meminfo().installed_pages;
    // A triangle wave between 5% and 75% of installed capacity: growth
    // crosses the on-line reserve (stall path) and shrink re-arms
    // off-lining, so both daemon directions run many times.
    for t in 0..120u64 {
        let phase = (t % 40) as f64 / 40.0;
        let frac = 0.05
            + 0.70
                * if phase < 0.5 {
                    2.0 * phase
                } else {
                    2.0 * (1.0 - phase)
                };
        let target = (installed as f64 * frac) as u64;
        sim.set_footprint(&mut fp, target)
            .expect("footprint churn must stay invariant-clean");
        sim.step(SimTime::from_secs(1))
            .expect("tick must stay invariant-clean");
    }

    let harness = sim.verify.as_ref().expect("verification enabled");
    assert!(
        harness.checks_run() > 500,
        "harness must actually run checks, ran {}",
        harness.checks_run()
    );
    assert_eq!(harness.violations(), 0);
}

/// Without KSM the same churn must also pass (the KSM conservation checker
/// simply never runs).
#[test]
fn cosim_without_ksm_is_invariant_clean() {
    let mut sim = strict_sim(false);
    sim.settle(60).unwrap();
    let mut fp = FootprintDriver::new();
    let installed = sim.mm.meminfo().installed_pages;
    for t in 0..40u64 {
        let target = if t % 2 == 0 {
            installed / 2
        } else {
            installed / 10
        };
        sim.set_footprint(&mut fp, target).unwrap();
        sim.step(SimTime::from_secs(1)).unwrap();
    }
    assert_eq!(sim.verify.as_ref().unwrap().violations(), 0);
}

/// The one-call API accepts the verify mode and completes a benchmark run
/// with the Strict harness active.
#[test]
fn system_api_runs_strict_verified() {
    let cfg = SystemConfig::small_test().with_verify(Mode::Strict);
    let mut sys = GreenDimmSystem::new(cfg);
    let report = sys.run_app("soplex", 9);
    assert!(report.dram_energy_joules > 0.0);
    assert!(report.overhead_fraction < 0.05);
}
