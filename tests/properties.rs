//! Property-based tests on the core data structures and invariants,
//! spanning crates.

use greendimm_suite::core::GroupMap;
use greendimm_suite::dram::AddressMapper;
use greendimm_suite::mmsim::{BuddyAllocator, MemoryManager, MmConfig, PageKind, MAX_ORDER};
use greendimm_suite::types::config::{DramConfig, InterleaveMode};
use greendimm_suite::types::ids::SubArrayGroup;
use proptest::prelude::*;

fn arb_mode() -> impl Strategy<Value = InterleaveMode> {
    prop_oneof![
        Just(InterleaveMode::Interleaved),
        Just(InterleaveMode::InterleavedXor),
        Just(InterleaveMode::Linear),
    ]
}

proptest! {
    /// Address decode/encode is a bijection for every interleave mode.
    #[test]
    fn addrmap_roundtrip(mode in arb_mode(), raw in any::<u64>()) {
        let cfg = DramConfig::small_test().with_interleave(mode);
        let mapper = AddressMapper::new(&cfg).unwrap();
        let addr = (raw % mapper.capacity_bytes()) & !63;
        let coord = mapper.decode(addr).unwrap();
        prop_assert_eq!(mapper.encode(&coord).unwrap(), addr);
    }

    /// Under interleaving, the sub-array group of an address is exactly its
    /// position in the top-level split of the address space.
    #[test]
    fn subarray_group_is_address_prefix(raw in any::<u64>()) {
        let cfg = DramConfig::small_test();
        let mapper = AddressMapper::new(&cfg).unwrap();
        let addr = raw % mapper.capacity_bytes();
        let group_bytes = mapper.capacity_bytes() / mapper.subarray_groups() as u64;
        prop_assert_eq!(
            mapper.subarray_group_of(addr).unwrap().0 as u64,
            addr / group_bytes
        );
    }

    /// The buddy allocator conserves pages and never double-allocates
    /// across arbitrary alloc/free sequences.
    #[test]
    fn buddy_invariants(ops in proptest::collection::vec(0u8..=MAX_ORDER, 1..60)) {
        let total = 1u32 << 14;
        let mut buddy = BuddyAllocator::new(total);
        let mut live: Vec<(u32, u8)> = Vec::new();
        for (i, order) in ops.iter().enumerate() {
            if i % 3 == 2 && !live.is_empty() {
                let (off, o) = live.swap_remove(i % live.len());
                buddy.free(off, o);
            } else if let Some(off) = buddy.alloc(*order) {
                // No overlap with any live chunk.
                let len = 1u32 << order;
                for (o2, ord2) in &live {
                    let len2 = 1u32 << ord2;
                    prop_assert!(off + len <= *o2 || o2 + len2 <= off,
                        "overlap: ({off},{len}) vs ({o2},{len2})");
                }
                live.push((off, *order));
            }
            let live_pages: u32 = live.iter().map(|(_, o)| 1u32 << o).sum();
            prop_assert_eq!(buddy.free_pages() + live_pages, total);
        }
        for (off, o) in live.drain(..) {
            buddy.free(off, o);
        }
        prop_assert!(buddy.is_empty());
    }

    /// The memory manager's meminfo always balances: used + free == online,
    /// online + offline == installed, across arbitrary alloc/free/hotplug
    /// sequences.
    #[test]
    fn meminfo_always_balances(ops in proptest::collection::vec((0u8..4, 1u64..3000), 1..40)) {
        let mut mm = MemoryManager::new(MmConfig::small_test()).unwrap();
        let mut allocs = Vec::new();
        for (kind, arg) in ops {
            match kind {
                0 => {
                    if let Ok(id) = mm.allocate(arg, PageKind::UserMovable) {
                        allocs.push(id);
                    }
                }
                1 => {
                    if !allocs.is_empty() {
                        let id = allocs.swap_remove(arg as usize % allocs.len());
                        mm.free(id).unwrap();
                    }
                }
                2 => {
                    let b = arg as usize % mm.block_count();
                    let _ = mm.offline_block(b);
                }
                _ => {
                    let b = arg as usize % mm.block_count();
                    let _ = mm.online_block(b);
                }
            }
            let info = mm.meminfo();
            prop_assert_eq!(info.used_pages + info.free_pages, info.total_pages);
            prop_assert_eq!(info.total_pages + info.offline_pages, info.installed_pages);
        }
    }

    /// Every block belongs to at least one group and the group->blocks /
    /// block->groups relations are mutually consistent.
    #[test]
    fn groupmap_relations_consistent(block_mib in prop_oneof![Just(64u64), Just(128), Just(256), Just(512)]) {
        let managed = 8u64 << 30;
        let map = GroupMap::new(managed, 64, block_mib << 20).unwrap();
        for b in 0..map.blocks() {
            for g in map.groups_of_block(b).unwrap() {
                prop_assert!(map.blocks_of_group(g).unwrap().contains(&b));
            }
        }
        for g in 0..map.groups() {
            let group = SubArrayGroup::new(g);
            for b in map.blocks_of_group(group).unwrap() {
                prop_assert!(map.groups_of_block(b).unwrap().contains(&group));
            }
        }
    }

    /// A fully-off-lined flag vector puts every group in deep power-down;
    /// an all-on-line vector puts none.
    #[test]
    fn groupmap_offline_extremes(block_mib in prop_oneof![Just(128u64), Just(256), Just(512)]) {
        let map = GroupMap::new(8 << 30, 64, block_mib << 20).unwrap();
        let all_off = vec![true; map.blocks()];
        prop_assert!(map.fully_offline_groups(&all_off).iter().all(|x| *x));
        let all_on = vec![false; map.blocks()];
        prop_assert!(map.fully_offline_groups(&all_on).iter().all(|x| !*x));
    }
}
