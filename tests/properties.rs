//! Property-style tests on the core data structures and invariants,
//! spanning crates. Inputs are driven by the workspace's seeded RNG
//! (deterministic across runs) instead of an external property-testing
//! framework: each test sweeps a few hundred generated cases.

use greendimm_suite::core::GroupMap;
use greendimm_suite::dram::AddressMapper;
use greendimm_suite::mmsim::{BuddyAllocator, MemoryManager, MmConfig, PageKind, MAX_ORDER};
use greendimm_suite::types::config::{DramConfig, InterleaveMode};
use greendimm_suite::types::ids::SubArrayGroup;
use greendimm_suite::types::rng::component_rng;

const MODES: [InterleaveMode; 3] = [
    InterleaveMode::Interleaved,
    InterleaveMode::InterleavedXor,
    InterleaveMode::Linear,
];

/// Address decode/encode is a bijection for every interleave mode.
#[test]
fn addrmap_roundtrip() {
    let mut rng = component_rng(1, "prop-addrmap");
    for mode in MODES {
        let cfg = DramConfig::small_test().with_interleave(mode);
        let mapper = AddressMapper::new(&cfg).unwrap();
        for _ in 0..500 {
            let addr = (rng.next_u64() % mapper.capacity_bytes()) & !63;
            let coord = mapper.decode(addr).unwrap();
            assert_eq!(mapper.encode(&coord).unwrap(), addr, "{mode:?} {addr:#x}");
        }
    }
}

/// Under interleaving, the sub-array group of an address is exactly its
/// position in the top-level split of the address space.
#[test]
fn subarray_group_is_address_prefix() {
    let mut rng = component_rng(2, "prop-subarray");
    let cfg = DramConfig::small_test();
    let mapper = AddressMapper::new(&cfg).unwrap();
    let group_bytes = mapper.capacity_bytes() / mapper.subarray_groups() as u64;
    for _ in 0..1000 {
        let addr = rng.next_u64() % mapper.capacity_bytes();
        assert_eq!(
            mapper.subarray_group_of(addr).unwrap().0 as u64,
            addr / group_bytes,
            "{addr:#x}"
        );
    }
}

/// The buddy allocator conserves pages and never double-allocates across
/// arbitrary alloc/free sequences.
#[test]
fn buddy_invariants() {
    let mut rng = component_rng(3, "prop-buddy");
    for case in 0..50 {
        let total = 1u32 << 14;
        let mut buddy = BuddyAllocator::new(total);
        let mut live: Vec<(u32, u8)> = Vec::new();
        let ops = rng.gen_range(1usize..60);
        for i in 0..ops {
            let order = rng.gen_range(0u32..u32::from(MAX_ORDER) + 1) as u8;
            if i % 3 == 2 && !live.is_empty() {
                let (off, o) = live.swap_remove(i % live.len());
                buddy.free(off, o);
            } else if let Some(off) = buddy.alloc(order) {
                // No overlap with any live chunk.
                let len = 1u32 << order;
                for (o2, ord2) in &live {
                    let len2 = 1u32 << ord2;
                    assert!(
                        off + len <= *o2 || o2 + len2 <= off,
                        "case {case}: overlap ({off},{len}) vs ({o2},{len2})"
                    );
                }
                live.push((off, order));
            }
            let live_pages: u32 = live.iter().map(|(_, o)| 1u32 << o).sum();
            assert_eq!(buddy.free_pages() + live_pages, total, "case {case}");
            buddy.audit().unwrap();
        }
        for (off, o) in live.drain(..) {
            buddy.free(off, o);
        }
        assert!(buddy.is_empty(), "case {case}");
    }
}

/// The memory manager's meminfo always balances: used + free == total,
/// total + offline == installed, across arbitrary alloc/free/hotplug
/// sequences.
#[test]
fn meminfo_always_balances() {
    let mut rng = component_rng(4, "prop-meminfo");
    for case in 0..30 {
        let mut mm = MemoryManager::new(MmConfig::small_test()).unwrap();
        let mut allocs = Vec::new();
        let ops = rng.gen_range(1usize..40);
        for _ in 0..ops {
            let kind = rng.gen_range(0u32..4);
            let arg = rng.gen_range(1u64..3000);
            match kind {
                0 => {
                    if let Ok(id) = mm.allocate(arg, PageKind::UserMovable) {
                        allocs.push(id);
                    }
                }
                1 => {
                    if !allocs.is_empty() {
                        let id = allocs.swap_remove(arg as usize % allocs.len());
                        mm.free(id).unwrap();
                    }
                }
                2 => {
                    let b = arg as usize % mm.block_count();
                    let _ = mm.offline_block(b);
                }
                _ => {
                    let b = arg as usize % mm.block_count();
                    let _ = mm.online_block(b);
                }
            }
            let info = mm.meminfo();
            assert_eq!(
                info.used_pages + info.free_pages,
                info.total_pages,
                "case {case}"
            );
            assert_eq!(
                info.total_pages + info.offline_pages,
                info.installed_pages,
                "case {case}"
            );
            mm.audit().unwrap();
        }
    }
}

/// Every block belongs to at least one group and the group->blocks /
/// block->groups relations are mutually consistent.
#[test]
fn groupmap_relations_consistent() {
    for block_mib in [64u64, 128, 256, 512] {
        let managed = 8u64 << 30;
        let map = GroupMap::new(managed, 64, block_mib << 20).unwrap();
        for b in 0..map.blocks() {
            for g in map.groups_of_block(b).unwrap() {
                assert!(
                    map.blocks_of_group(g).unwrap().contains(&b),
                    "{block_mib} MiB"
                );
            }
        }
        for g in 0..map.groups() {
            let group = SubArrayGroup::new(g);
            for b in map.blocks_of_group(group).unwrap() {
                assert!(
                    map.groups_of_block(b).unwrap().contains(&group),
                    "{block_mib} MiB"
                );
            }
        }
    }
}

/// A fully-off-lined flag vector puts every group in deep power-down; an
/// all-on-line vector puts none.
#[test]
fn groupmap_offline_extremes() {
    for block_mib in [128u64, 256, 512] {
        let map = GroupMap::new(8 << 30, 64, block_mib << 20).unwrap();
        let all_off = vec![true; map.blocks()];
        assert!(map.fully_offline_groups(&all_off).iter().all(|x| *x));
        let all_on = vec![false; map.blocks()];
        assert!(map.fully_offline_groups(&all_on).iter().all(|x| !*x));
    }
}
