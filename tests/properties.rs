//! Property-style tests on the core data structures and invariants,
//! spanning crates. Inputs are driven by the workspace's seeded RNG
//! (deterministic across runs) instead of an external property-testing
//! framework: each test sweeps a few hundred generated cases.

use greendimm_suite::core::GroupMap;
use greendimm_suite::dram::AddressMapper;
use greendimm_suite::faults::{FaultPlan, FaultSite, FaultTrigger};
use greendimm_suite::mmsim::{BuddyAllocator, MemoryManager, MmConfig, PageKind, MAX_ORDER};
use greendimm_suite::types::config::{DramConfig, InterleaveMode};
use greendimm_suite::types::ids::SubArrayGroup;
use greendimm_suite::types::rng::{component_rng, derive_seed};
use greendimm_suite::workloads::azure::{synthesize, AzureConfig};

const MODES: [InterleaveMode; 3] = [
    InterleaveMode::Interleaved,
    InterleaveMode::InterleavedXor,
    InterleaveMode::Linear,
];

/// Address decode/encode is a bijection for every interleave mode.
#[test]
fn addrmap_roundtrip() {
    let mut rng = component_rng(1, "prop-addrmap");
    for mode in MODES {
        let cfg = DramConfig::small_test().with_interleave(mode);
        let mapper = AddressMapper::new(&cfg).unwrap();
        for _ in 0..500 {
            let addr = (rng.next_u64() % mapper.capacity_bytes()) & !63;
            let coord = mapper.decode(addr).unwrap();
            assert_eq!(mapper.encode(&coord).unwrap(), addr, "{mode:?} {addr:#x}");
        }
    }
}

/// Under interleaving, the sub-array group of an address is exactly its
/// position in the top-level split of the address space.
#[test]
fn subarray_group_is_address_prefix() {
    let mut rng = component_rng(2, "prop-subarray");
    let cfg = DramConfig::small_test();
    let mapper = AddressMapper::new(&cfg).unwrap();
    let group_bytes = mapper.capacity_bytes() / mapper.subarray_groups() as u64;
    for _ in 0..1000 {
        let addr = rng.next_u64() % mapper.capacity_bytes();
        assert_eq!(
            mapper.subarray_group_of(addr).unwrap().0 as u64,
            addr / group_bytes,
            "{addr:#x}"
        );
    }
}

/// The buddy allocator conserves pages and never double-allocates across
/// arbitrary alloc/free sequences.
#[test]
fn buddy_invariants() {
    let mut rng = component_rng(3, "prop-buddy");
    for case in 0..50 {
        let total = 1u32 << 14;
        let mut buddy = BuddyAllocator::new(total);
        let mut live: Vec<(u32, u8)> = Vec::new();
        let ops = rng.gen_range(1usize..60);
        for i in 0..ops {
            let order = rng.gen_range(0u32..u32::from(MAX_ORDER) + 1) as u8;
            if i % 3 == 2 && !live.is_empty() {
                let (off, o) = live.swap_remove(i % live.len());
                buddy.free(off, o);
            } else if let Some(off) = buddy.alloc(order) {
                // No overlap with any live chunk.
                let len = 1u32 << order;
                for (o2, ord2) in &live {
                    let len2 = 1u32 << ord2;
                    assert!(
                        off + len <= *o2 || o2 + len2 <= off,
                        "case {case}: overlap ({off},{len}) vs ({o2},{len2})"
                    );
                }
                live.push((off, order));
            }
            let live_pages: u32 = live.iter().map(|(_, o)| 1u32 << o).sum();
            assert_eq!(buddy.free_pages() + live_pages, total, "case {case}");
            buddy.audit().unwrap();
        }
        for (off, o) in live.drain(..) {
            buddy.free(off, o);
        }
        assert!(buddy.is_empty(), "case {case}");
    }
}

/// The memory manager's meminfo always balances: used + free == total,
/// total + offline == installed, across arbitrary alloc/free/hotplug
/// sequences.
#[test]
fn meminfo_always_balances() {
    let mut rng = component_rng(4, "prop-meminfo");
    for case in 0..30 {
        let mut mm = MemoryManager::new(MmConfig::small_test()).unwrap();
        let mut allocs = Vec::new();
        let ops = rng.gen_range(1usize..40);
        for _ in 0..ops {
            let kind = rng.gen_range(0u32..4);
            let arg = rng.gen_range(1u64..3000);
            match kind {
                0 => {
                    if let Ok(id) = mm.allocate(arg, PageKind::UserMovable) {
                        allocs.push(id);
                    }
                }
                1 => {
                    if !allocs.is_empty() {
                        let id = allocs.swap_remove(arg as usize % allocs.len());
                        mm.free(id).unwrap();
                    }
                }
                2 => {
                    let b = arg as usize % mm.block_count();
                    let _ = mm.offline_block(b);
                }
                _ => {
                    let b = arg as usize % mm.block_count();
                    let _ = mm.online_block(b);
                }
            }
            let info = mm.meminfo();
            assert_eq!(
                info.used_pages + info.free_pages,
                info.total_pages,
                "case {case}"
            );
            assert_eq!(
                info.total_pages + info.offline_pages,
                info.installed_pages,
                "case {case}"
            );
            mm.audit().unwrap();
        }
    }
}

/// Frame accounting is conserved across arbitrary alloc/free/hotplug
/// sequences *while faults fire*: injected pin rejections, mid-migration
/// aborts (with transactional rollback), and slow migrations never leak or
/// duplicate a page.
#[test]
fn fault_interleavings_conserve_frame_accounting() {
    let mut rng = component_rng(5, "prop-faults");
    for case in 0..20 {
        let seed = derive_seed(0xFA17, &format!("case-{case}"));
        let mut mm = MemoryManager::new(MmConfig::small_test()).unwrap();
        mm.set_fault_injector(
            FaultPlan::none()
                .with(FaultSite::OfflinePinned, FaultTrigger::Prob(0.3))
                .with(FaultSite::MigrationAbort, FaultTrigger::Prob(0.4))
                .with(FaultSite::MigrationSlow, FaultTrigger::Prob(0.5))
                .build(seed),
        );
        let mut allocs = Vec::new();
        let ops = rng.gen_range(20usize..60);
        for _ in 0..ops {
            let kind = rng.gen_range(0u32..4);
            let arg = rng.gen_range(1u64..3000);
            match kind {
                0 => {
                    if let Ok(id) = mm.allocate(arg, PageKind::UserMovable) {
                        allocs.push(id);
                    }
                }
                1 => {
                    if !allocs.is_empty() {
                        let id = allocs.swap_remove(arg as usize % allocs.len());
                        mm.free(id).unwrap();
                    }
                }
                2 => {
                    let b = arg as usize % mm.block_count();
                    let _ = mm.offline_block(b);
                }
                _ => {
                    let b = arg as usize % mm.block_count();
                    let _ = mm.online_block(b);
                }
            }
            let info = mm.meminfo();
            assert_eq!(
                info.used_pages + info.free_pages,
                info.total_pages,
                "case {case}"
            );
            assert_eq!(
                info.total_pages + info.offline_pages,
                info.installed_pages,
                "case {case}"
            );
            mm.audit().unwrap();
        }
    }
    // The property is vacuous if the plan never bites — force a dense case
    // and check the injector actually fired.
    let mut mm = MemoryManager::new(MmConfig::small_test()).unwrap();
    mm.set_fault_injector(FaultPlan::uniform(0.5).build(7));
    for b in 0..mm.block_count() {
        let _ = mm.offline_block(b);
    }
    assert!(mm.fault_injector().unwrap().total_fired() > 0);
}

/// Negative test: a deliberately broken rollback (one destination frame
/// half-committed) is caught by the Strict mm invariant checker.
#[test]
fn strict_verification_catches_broken_rollback() {
    use greendimm_suite::verify::{mm::standard_checker, Mode};
    let mut mm = MemoryManager::new(MmConfig::small_test()).unwrap();
    mm.set_fault_injector(
        FaultPlan::none()
            .with(FaultSite::MigrationAbort, FaultTrigger::EveryNth(1))
            .build(3),
    );
    mm.debug_break_rollback();
    // Put movable pages everywhere so off-lining must migrate (and the
    // forced abort exercises the broken rollback).
    let total = mm.meminfo().total_pages;
    mm.allocate(total / 2, PageKind::UserMovable).unwrap();
    let mut broke = false;
    for b in 0..mm.block_count() {
        let _ = mm.offline_block(b);
        if mm.audit().is_err() {
            broke = true;
            break;
        }
    }
    assert!(broke, "the broken rollback must corrupt the books");
    let mut checker = standard_checker(Mode::Strict);
    let err = checker.run(&mm).unwrap_err();
    assert!(
        err.to_string().contains("invariant violated"),
        "unexpected error: {err}"
    );
    // A healthy manager under the same fault plan (rollback intact) passes.
    let mut healthy = MemoryManager::new(MmConfig::small_test()).unwrap();
    healthy.set_fault_injector(
        FaultPlan::none()
            .with(FaultSite::MigrationAbort, FaultTrigger::EveryNth(1))
            .build(3),
    );
    let total = healthy.meminfo().total_pages;
    healthy.allocate(total / 2, PageKind::UserMovable).unwrap();
    for b in 0..healthy.block_count() {
        let _ = healthy.offline_block(b);
    }
    healthy.audit().unwrap();
    let mut strict = standard_checker(Mode::Strict);
    strict.run(&healthy).unwrap();
}

/// The Azure synthesizer across many seeds: every utilization sample stays
/// inside the paper's documented envelope (Fig. 1: 7–92 % of installed
/// capacity, so [0, 0.95] with slack), the diurnal mean lands near the
/// reported 48 % average, and each seed reproduces its schedule exactly.
#[test]
fn azure_utilization_stays_in_the_documented_envelope() {
    for seed in 1u64..=10 {
        let cfg = AzureConfig {
            seed,
            ..AzureConfig::paper_24h()
        };
        let trace = synthesize(&cfg);
        for &(t, u) in &trace.utilization {
            assert!(
                (0.0..=0.95).contains(&u),
                "seed {seed}: utilization {u:.3} at t={t} left the envelope"
            );
        }
        let mean = trace.mean_utilization();
        assert!(
            (0.25..=0.70).contains(&mean),
            "seed {seed}: mean utilization {mean:.2}"
        );
        let (lo, hi) = trace.utilization_range();
        assert!(lo < 0.30, "seed {seed}: diurnal trough {lo:.2} too high");
        assert!(hi > 0.55, "seed {seed}: diurnal peak {hi:.2} too low");
        // Same seed, same schedule — bit for bit.
        assert_eq!(trace, synthesize(&cfg), "seed {seed} not reproducible");
    }
}

/// Every block belongs to at least one group and the group->blocks /
/// block->groups relations are mutually consistent.
#[test]
fn groupmap_relations_consistent() {
    for block_mib in [64u64, 128, 256, 512] {
        let managed = 8u64 << 30;
        let map = GroupMap::new(managed, 64, block_mib << 20).unwrap();
        for b in 0..map.blocks() {
            for g in map.groups_of_block(b).unwrap() {
                assert!(
                    map.blocks_of_group(g).unwrap().contains(&b),
                    "{block_mib} MiB"
                );
            }
        }
        for g in 0..map.groups() {
            let group = SubArrayGroup::new(g);
            for b in map.blocks_of_group(group).unwrap() {
                assert!(
                    map.groups_of_block(b).unwrap().contains(&group),
                    "{block_mib} MiB"
                );
            }
        }
    }
}

/// A fully-off-lined flag vector puts every group in deep power-down; an
/// all-on-line vector puts none.
#[test]
fn groupmap_offline_extremes() {
    for block_mib in [128u64, 256, 512] {
        let map = GroupMap::new(8 << 30, 64, block_mib << 20).unwrap();
        let all_off = vec![true; map.blocks()];
        assert!(map.fully_offline_groups(&all_off).iter().all(|x| *x));
        let all_on = vec![false; map.blocks()];
        assert!(map.fully_offline_groups(&all_on).iter().all(|x| !*x));
    }
}
