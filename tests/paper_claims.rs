//! End-to-end checks of the paper's qualitative claims, spanning every
//! crate in the workspace.

use greendimm_suite::baselines::{
    GovernorContext, GreenDimmGovernor, Pasr, PowerGovernor, RamZzz, SrfOnly,
};
use greendimm_suite::bench::{evaluate_app, find_row, run_vm_trace, VmTraceConfig};
use greendimm_suite::core::{GreenDimmSystem, SystemConfig};
use greendimm_suite::dram::{LowPowerPolicy, MemorySystem};
use greendimm_suite::power::{ActivityProfile, DramPowerModel, PowerGating};
use greendimm_suite::types::config::{DramConfig, InterleaveMode};
use greendimm_suite::workloads::{by_name, AppProfile, TraceGenerator};

fn small_profile() -> AppProfile {
    AppProfile {
        footprint_mib: 4,
        ..by_name("libquantum").expect("profile")
    }
}

/// §3.3: interleaving eliminates the self-refresh opportunity even for a
/// tiny footprint, while disabling it frees most ranks to sleep.
#[test]
fn interleaving_defeats_rank_granularity_power_management() {
    let cfg = DramConfig::small_test();
    let p = small_profile();
    let run = |mode| {
        let mut sys = MemorySystem::new(cfg.with_interleave(mode), LowPowerPolicy::srf_default())
            .expect("config");
        let mut gen = TraceGenerator::new(p.clone(), 3);
        sys.run_trace(gen.take(6_000)).expect("trace")
    };
    let with = run(InterleaveMode::Interleaved);
    let without = run(InterleaveMode::Linear);
    assert!(with.mean_self_refresh_fraction() < 0.15);
    assert!(without.mean_self_refresh_fraction() > 0.35);
}

/// §6.2: with interleaving on, only GreenDIMM reduces DRAM energy; the
/// rank/bank-granularity baselines are stuck at (or above) srf_only.
#[test]
fn only_greendimm_saves_energy_under_interleaving() {
    let rows = evaluate_app(&small_profile(), DramConfig::small_test(), 6_000, 1).expect("energy");
    let srf = find_row(&rows, "srf_only", true).expect("cell").dram_norm;
    let rz = find_row(&rows, "RAMZzz", true).expect("cell").dram_norm;
    let pasr = find_row(&rows, "PASR", true).expect("cell").dram_norm;
    let gd = find_row(&rows, "GreenDIMM", true).expect("cell").dram_norm;
    assert!(gd < srf * 0.85, "GreenDIMM {gd} vs srf {srf}");
    assert!(
        rz >= srf * 0.98,
        "RAMZzz cannot beat srf_only w/ interleaving"
    );
    assert!(
        pasr >= srf * 0.98,
        "PASR cannot beat srf_only w/ interleaving"
    );
    assert!(gd < rz && gd < pasr);
}

/// Governors agree with the paper's ordering when interleaving is off:
/// everything with idle ranks saves energy, and deep power-down (gating
/// static power too) saves the most at equal residency.
#[test]
fn governor_ordering_without_interleaving() {
    let ctx = GovernorContext {
        interleaved: false,
        footprint_bytes: 1 << 30,
        capacity_bytes: 64 << 30,
        ranks: 16,
        banks_per_rank: 16,
        measured_sr_fraction: 0.5,
        runtime_s: 100.0,
        offline_fraction: 0.85,
        offline_failures: Default::default(),
    };
    let model = DramPowerModel::new(DramConfig::ddr4_2133_64gb());
    let power = |g: &dyn PowerGovernor| {
        let out = g.evaluate(&ctx);
        let awake = 1.0 - out.sr_fraction;
        let act = ActivityProfile {
            bandwidth_util: 0.1,
            read_fraction: 0.7,
            act_per_access: 0.5,
            active_standby: awake * 0.5,
            precharge_standby: awake * 0.5,
            power_down: 0.0,
            self_refresh: out.sr_fraction,
        };
        model.analytic_power_w(&act, &out.gating)
    };
    let srf = power(&SrfOnly);
    let rz = power(&RamZzz::default());
    let pasr = power(&Pasr);
    let gd = power(&GreenDimmGovernor::default());
    assert!(rz < srf, "RAMZzz consolidates more ranks into SR");
    assert!(pasr < srf, "PASR stops refresh of empty banks");
    assert!(gd < srf, "GreenDIMM gates background power");
}

/// §6.2: GreenDIMM's performance overhead stays small (paper: ~1-3 %).
#[test]
fn overhead_stays_within_a_few_percent() {
    let mut sys = GreenDimmSystem::new(SystemConfig::small_test());
    for (name, seed) in [("libquantum", 1u64), ("povray", 2)] {
        let r = sys.run_app(name, seed);
        assert!(
            r.overhead_fraction < 0.05,
            "{name} overhead {}",
            r.overhead_fraction
        );
    }
}

/// §6.3: KSM lets GreenDIMM off-line more blocks (Fig. 12) and never
/// breaks the co-simulation's accounting.
#[test]
fn ksm_increases_offlined_blocks_in_vm_trace() {
    let cfg = VmTraceConfig {
        duration_s: 2 * 3600,
        ..VmTraceConfig::paper_256gb()
    };
    let base = run_vm_trace(&cfg).expect("co-sim");
    let ksm = run_vm_trace(&VmTraceConfig { ksm: true, ..cfg }).expect("co-sim");
    assert!(ksm.mean_offline_blocks() >= base.mean_offline_blocks());
    assert!(ksm.ksm_released_pages > 0);
}

/// §4.3: the deep power-down state eliminates most background power for
/// off-lined capacity — the end-to-end power chain agrees.
#[test]
fn deep_power_down_gates_background_power_end_to_end() {
    let model = DramPowerModel::new(DramConfig::ddr4_2133_256gb());
    let idle = ActivityProfile::idle_standby();
    let full = model.analytic_power_w(&idle, &PowerGating::none());
    // 45% of capacity off-lined, as the paper's Fig. 12 average.
    let gated = model.analytic_power_w(&idle, &PowerGating::deep_pd(0.45));
    let saved = 1.0 - gated / full;
    assert!(
        (0.25..0.50).contains(&saved),
        "saved {saved:.2}, paper reports 32% DRAM power at 256 GB"
    );
}
