//! Equivalence gates for the performance engines.
//!
//! Two independent fast paths must never change results, only wall-clock:
//!
//! * `EngineMode::EventDriven` — the idle fast-forward inside `gd-dram`.
//!   Every test here runs the same workload through the per-cycle
//!   [`EngineMode::Stepped`] reference and asserts the full [`RunStats`]
//!   (requests, latency sums, energy integrals, per-rank residency) are
//!   **bit-for-bit identical**.
//! * the `gd-bench` sweep pool — `--jobs N` fans figure points across
//!   worker threads; results must match the serial `--jobs 1` path exactly
//!   and arrive in point-index order regardless of thread schedule.

use greendimm_suite::bench::sweep;
use greendimm_suite::bench::telemetry::render_shards;
use greendimm_suite::dram::{
    AddressMapper, EngineMode, EpochReplayCfg, LowPowerPolicy, MemRequest, MemorySystem, RunStats,
};
use greendimm_suite::obs::Telemetry;
use greendimm_suite::types::config::{DramConfig, InterleaveMode, MemSpecKind};
use greendimm_suite::types::ids::SubArrayGroup;
use greendimm_suite::verify;
use greendimm_suite::workloads::{by_name, TraceGenerator};

const MODES: [InterleaveMode; 2] = [InterleaveMode::Interleaved, InterleaveMode::Linear];

/// Folds a profile-scale trace into the small test config's address space
/// (profiles model multi-GiB footprints; `small_test` is 16 MiB).
fn fold_into(cfg: &DramConfig, trace: Vec<MemRequest>) -> Vec<MemRequest> {
    let cap = AddressMapper::new(cfg).unwrap().capacity_bytes();
    trace
        .into_iter()
        .map(|mut r| {
            r.addr = (r.addr % cap) & !63;
            r
        })
        .collect()
}

const POLICIES: [fn() -> LowPowerPolicy; 3] = [
    LowPowerPolicy::disabled,
    LowPowerPolicy::srf_default,
    LowPowerPolicy::aggressive,
];

/// Runs `trace` through both engines and asserts identical statistics.
fn assert_trace_equivalent(
    cfg: &DramConfig,
    policy: LowPowerPolicy,
    trace: &[MemRequest],
    what: &str,
) -> RunStats {
    let mut stepped = MemorySystem::new(*cfg, policy)
        .unwrap()
        .with_engine_mode(EngineMode::Stepped);
    let mut event = MemorySystem::new(*cfg, policy)
        .unwrap()
        .with_engine_mode(EngineMode::EventDriven);
    let a = stepped.run_trace(trace.to_vec()).unwrap();
    let b = event.run_trace(trace.to_vec()).unwrap();
    assert_eq!(a, b, "stepped vs event-driven diverged: {what}");
    a
}

/// A dense streaming workload: back-to-back sequential reads keep every
/// channel busy, so the fast-forward path should almost never engage — the
/// equivalence must hold trivially, and this guards against the event
/// engine *skipping* work under load.
#[test]
fn streaming_reads_equivalent() {
    for mode in MODES {
        let cfg = DramConfig::small_test().with_interleave(mode);
        for policy in POLICIES {
            let trace: Vec<_> = (0..3000u64).map(|i| MemRequest::read(i * 64, i)).collect();
            let stats =
                assert_trace_equivalent(&cfg, policy(), &trace, &format!("streaming {mode:?}"));
            assert_eq!(stats.reads, 3000);
        }
    }
}

/// A sparse periodic workload with long gaps between bursts: the governor
/// cycles ranks through power-down and self-refresh between arrivals, so
/// the fast-forward path carries most of the simulated time.
#[test]
fn sparse_bursts_equivalent() {
    for mode in MODES {
        let cfg = DramConfig::small_test().with_interleave(mode);
        for policy in POLICIES {
            // 40 bursts of 8 requests, 20 000 idle cycles apart: long
            // enough for srf_default to reach self-refresh every gap.
            let trace: Vec<_> = (0..320u64)
                .map(|i| {
                    let burst = i / 8;
                    MemRequest::read((i % 8) * 64 + burst * 4096, burst * 20_000 + (i % 8))
                })
                .collect();
            let stats =
                assert_trace_equivalent(&cfg, policy(), &trace, &format!("bursts {mode:?}"));
            assert_eq!(stats.reads, 320);
        }
    }
}

/// Profile-driven traces (row locality, exponential arrivals, read/write
/// mix) for an intense and a sparse benchmark.
#[test]
fn profile_traces_equivalent() {
    for mode in MODES {
        let cfg = DramConfig::small_test().with_interleave(mode);
        for (name, n) in [("mcf", 2000), ("povray", 300)] {
            let mut generator = TraceGenerator::new(by_name(name).unwrap(), 11);
            let trace = fold_into(&cfg, generator.take(n));
            for policy in POLICIES {
                assert_trace_equivalent(&cfg, policy(), &trace, &format!("{name} {mode:?}"));
            }
        }
    }
}

/// Pure idle horizons: refresh and the governor are the only activity.
/// This is the path the fast-forward exists for — a long horizon collapses
/// to a handful of loop iterations — and also the easiest place to lose a
/// refresh or a residency cycle.
#[test]
fn idle_horizons_equivalent() {
    let cfg = DramConfig::small_test();
    for policy in POLICIES {
        for cycles in [1_000u64, 17_321, 200_000] {
            let mut stepped = MemorySystem::new(cfg, policy())
                .unwrap()
                .with_engine_mode(EngineMode::Stepped);
            let mut event = MemorySystem::new(cfg, policy())
                .unwrap()
                .with_engine_mode(EngineMode::EventDriven);
            let a = stepped.run_idle(cycles);
            let b = event.run_idle(cycles);
            assert_eq!(a, b, "idle {cycles} cycles, {:?}", policy());
        }
    }
}

/// Idle with sub-array groups in deep power-down, then traffic after
/// on-lining: mirrors the GreenDIMM daemon's life cycle across both
/// engines.
#[test]
fn deep_pd_lifecycle_equivalent() {
    let cfg = DramConfig::small_test();
    let run = |engine_mode: EngineMode| {
        let mut sys = MemorySystem::new(cfg, LowPowerPolicy::srf_default())
            .unwrap()
            .with_engine_mode(engine_mode);
        for g in [1u32, 2, 5] {
            sys.set_group_deep_pd(SubArrayGroup::new(g), true).unwrap();
        }
        sys.run_idle(60_000);
        for g in [1u32, 2, 5] {
            sys.set_group_deep_pd(SubArrayGroup::new(g), false).unwrap();
        }
        let trace: Vec<_> = (0..500u64)
            .map(|i| MemRequest::read(i * 64, i * 3))
            .collect();
        sys.run_trace(trace).unwrap()
    };
    assert_eq!(run(EngineMode::Stepped), run(EngineMode::EventDriven));
}

/// The sweep pool returns results identical to the serial path and ordered
/// by point index, whatever the worker count or thread schedule.
#[test]
fn sweep_jobs_equivalent_and_ordered() {
    let cfg = DramConfig::small_test();
    let points: Vec<u64> = (0..12).collect();
    let run_point = |ctx: sweep::PointCtx, &gap: &u64| -> (usize, RunStats) {
        let seed = ctx.seed(9);
        let mut generator = TraceGenerator::new(by_name("mcf").unwrap(), seed);
        let trace: Vec<_> = fold_into(&cfg, generator.take(400))
            .into_iter()
            .map(|mut r| {
                r.arrival += gap * 1000;
                r
            })
            .collect();
        let mut sys = MemorySystem::new(cfg, LowPowerPolicy::srf_default()).unwrap();
        (ctx.index, sys.run_trace(trace).unwrap())
    };
    let serial = sweep::sweep(&points, 1, run_point);
    let parallel = sweep::sweep(&points, 4, run_point);
    assert_eq!(serial, parallel, "--jobs 1 vs --jobs 4 diverged");
    for (expect, (index, _)) in parallel.iter().enumerate() {
        assert_eq!(*index, expect, "results not in point-index order");
    }
}

/// Runs a profile trace through one engine and exports its telemetry.
fn telemetry_of(cfg: &DramConfig, engine: EngineMode, trace: &[MemRequest]) -> (RunStats, String) {
    let mut sys = MemorySystem::new(*cfg, LowPowerPolicy::srf_default())
        .unwrap()
        .with_engine_mode(engine);
    let stats = sys.run_trace(trace.to_vec()).unwrap();
    let mut tele = Telemetry::new();
    sys.export_telemetry(&mut tele, "eq");
    (stats, tele.render_jsonl("p0"))
}

/// The telemetry export — counters, residency histograms, gauges — must
/// render byte-identical JSONL whichever engine produced it, and the
/// residency histograms must account for every elapsed cycle per rank.
#[test]
fn telemetry_identical_across_engines() {
    for mode in MODES {
        let cfg = DramConfig::small_test().with_interleave(mode);
        let mut generator = TraceGenerator::new(by_name("mcf").unwrap(), 23);
        let trace = fold_into(&cfg, generator.take(1500));
        let (a_stats, a) = telemetry_of(&cfg, EngineMode::Stepped, &trace);
        let (b_stats, b) = telemetry_of(&cfg, EngineMode::EventDriven, &trace);
        assert_eq!(a_stats, b_stats, "run stats diverged under {mode:?}");
        assert_eq!(a, b, "telemetry bytes diverged under {mode:?}");
        assert!(!a.is_empty());

        // Residency completeness: each rank's histogram sums to the clock.
        let mut sys = MemorySystem::new(cfg, LowPowerPolicy::srf_default())
            .unwrap()
            .with_engine_mode(EngineMode::EventDriven);
        let stats = sys.run_trace(trace.clone()).unwrap();
        let mut tele = Telemetry::new();
        sys.export_telemetry(&mut tele, "eq");
        let violations = verify::telemetry::check_residencies(
            &tele.registry,
            "eq.dram.",
            stats.cycles,
            verify::Mode::Strict,
        )
        .unwrap();
        assert_eq!(violations, 0);
    }
}

/// The per-backend engine matrix: every memory-generation backend — DDR4
/// (all-bank refresh), DDR5 (rotating same-bank REFsb sets), LPDDR4-PASR
/// (PASR-capable organization) — must agree bit for bit between the
/// stepped reference and the event-driven engine, on both RunStats and the
/// rendered telemetry bytes, under both interleave modes. This is the gate
/// that keeps the scheme-aware refresh paths inside the event engine's
/// "skipping an action cycle breaks equivalence" contract.
#[test]
fn backend_matrix_equivalent_across_engines() {
    for kind in MemSpecKind::all() {
        for mode in MODES {
            let cfg = DramConfig::small_test_for(kind).with_interleave(mode);
            let mut generator = TraceGenerator::new(by_name("mcf").unwrap(), 29);
            let trace = fold_into(&cfg, generator.take(1200));
            let (a_stats, a_tele) = telemetry_of(&cfg, EngineMode::Stepped, &trace);
            let (b_stats, b_tele) = telemetry_of(&cfg, EngineMode::EventDriven, &trace);
            assert_eq!(a_stats, b_stats, "{kind:?} {mode:?}: run stats diverged");
            assert_eq!(
                a_tele, b_tele,
                "{kind:?} {mode:?}: telemetry bytes diverged"
            );
            assert!(!a_tele.is_empty());
        }
    }
}

/// Pure idle horizons per backend: refresh is the only activity, so this
/// pins the scheme-specific interval bookkeeping (tREFI vs tREFI/sets) in
/// the fast-forward path. Every backend must refresh, and DDR5's same-bank
/// scheme must issue `sets`× the all-bank command count over the same
/// horizon (one REFsb per rotating set position).
#[test]
fn backend_idle_refresh_equivalent() {
    for kind in MemSpecKind::all() {
        let cfg = DramConfig::small_test_for(kind);
        for policy in POLICIES {
            let mut stepped = MemorySystem::new(cfg, policy())
                .unwrap()
                .with_engine_mode(EngineMode::Stepped);
            let mut event = MemorySystem::new(cfg, policy())
                .unwrap()
                .with_engine_mode(EngineMode::EventDriven);
            let a = stepped.run_idle(150_000);
            let b = event.run_idle(150_000);
            assert_eq!(a, b, "{kind:?} idle horizon diverged, {:?}", policy());
            // Refresh responsibility never lapses: either the controller
            // issued auto-refresh (awake ranks) or the device carried it
            // internally (self-refresh residency under the parking policies).
            assert!(
                a.refreshes > 0 || a.rank_residency.iter().any(|r| r.self_refresh > 0),
                "{kind:?} neither auto-refreshed nor self-refreshed while idle"
            );
        }
    }
}

/// PASR masked-segment lifecycle across engines: mask two segments, idle
/// long enough for self-refresh entries, unmask, then serve traffic. The
/// MR17 mask writes and the masked-segment dwell accounting must leave the
/// engines bit-identical.
#[test]
fn pasr_mask_lifecycle_equivalent() {
    let cfg = DramConfig::small_test_for(MemSpecKind::Lpddr4Pasr);
    let run = |engine: EngineMode| {
        let mut sys = MemorySystem::new(cfg, LowPowerPolicy::srf_default())
            .unwrap()
            .with_engine_mode(engine);
        for seg in [6u32, 7] {
            sys.set_pasr_segment(seg, true).unwrap();
        }
        sys.run_idle(60_000);
        for seg in [6u32, 7] {
            sys.set_pasr_segment(seg, false).unwrap();
        }
        let base = sys.clock();
        let trace: Vec<_> = (0..400u64)
            .map(|i| MemRequest::read(i * 64, base + i * 5))
            .collect();
        sys.run_trace(trace).unwrap()
    };
    assert_eq!(
        run(EngineMode::Stepped),
        run(EngineMode::EventDriven),
        "PASR mask lifecycle diverged between engines"
    );
}

/// A faulted co-simulation (mm + daemon + dram injectors at a biting rate)
/// must produce identical rows and byte-identical telemetry whichever
/// time-advance engine drives the DRAM probe — fault injection must not
/// open a determinism hole between the engines.
#[test]
fn faulted_runs_equivalent_across_engines() {
    use greendimm_suite::bench::robustness::robustness_experiment;
    let profile = by_name("mcf").unwrap();
    let run =
        |engine: EngineMode| robustness_experiment(&profile, 0.25, engine, 17, None, true).unwrap();
    let (a_row, a_tele) = run(EngineMode::Stepped);
    let (b_row, b_tele) = run(EngineMode::EventDriven);
    assert!(a_row.faults_injected > 0, "the fault plan must bite");
    assert_eq!(a_row, b_row, "faulted rows diverged between engines");
    assert_eq!(
        a_tele.unwrap().render_jsonl("p"),
        b_tele.unwrap().render_jsonl("p"),
        "faulted telemetry diverged between engines"
    );
}

/// A rate-0 faulted run equals a run with no injectors at all — installing
/// the fault machinery must be free when every trigger is disarmed.
#[test]
fn rate_zero_equals_no_injector_run() {
    use greendimm_suite::bench::robustness::robustness_experiment_with_plan;
    use greendimm_suite::faults::FaultPlan;
    let profile = by_name("mcf").unwrap();
    let inactive = FaultPlan::uniform(0.0);
    let (a_row, a_tele) = robustness_experiment_with_plan(
        &profile,
        Some(&inactive),
        0.0,
        EngineMode::EventDriven,
        5,
        None,
        true,
    )
    .unwrap();
    let (b_row, b_tele) = robustness_experiment_with_plan(
        &profile,
        None,
        0.0,
        EngineMode::EventDriven,
        5,
        None,
        true,
    )
    .unwrap();
    assert_eq!(a_row, b_row, "inactive injectors changed the row");
    assert_eq!(
        a_tele.unwrap().render_jsonl("p"),
        b_tele.unwrap().render_jsonl("p"),
        "inactive injectors changed the telemetry bytes"
    );
}

/// Deep power-down group transitions *between traffic phases*, on a system
/// whose wake latencies are stretched 4× (the WakeStretch worst case): the
/// batched arbitration must stay bit-identical to the stepped reference
/// while ranks cycle through stretched PDX/SRX wakes and the group register
/// flips mid-run.
#[test]
fn deep_pd_transitions_mid_traffic_equivalent() {
    let cfg = DramConfig::small_test();
    let run = |engine: EngineMode| {
        let mut sys = MemorySystem::with_wake_stretch(cfg, LowPowerPolicy::aggressive(), 4)
            .unwrap()
            .with_engine_mode(engine);
        // Phase 1: sparse traffic over a 32 KiB footprint (groups stay low).
        let t1: Vec<_> = (0..300u64)
            .map(|i| MemRequest::read((i * 64 * 7) % 32_768, i * 900))
            .collect();
        sys.run_trace(t1).unwrap();
        // Off-line two high groups mid-run, keep serving low addresses.
        for g in [5u32, 6] {
            sys.set_group_deep_pd(SubArrayGroup::new(g), true).unwrap();
        }
        let base = sys.clock();
        let t2: Vec<_> = (0..300u64)
            .map(|i| MemRequest::write((i * 64 * 3) % 32_768, base + i * 1100))
            .collect();
        sys.run_trace(t2).unwrap();
        // Back on-line, then one more burst.
        for g in [5u32, 6] {
            sys.set_group_deep_pd(SubArrayGroup::new(g), false).unwrap();
        }
        let base = sys.clock();
        let t3: Vec<_> = (0..200u64)
            .map(|i| MemRequest::read((i * 64 * 11) % 32_768, base + i * 40))
            .collect();
        sys.run_trace(t3).unwrap()
    };
    let a = run(EngineMode::Stepped);
    let b = run(EngineMode::EventDriven);
    assert!(
        a.pd_entries + a.sr_entries > 0,
        "low-power states must cycle"
    );
    assert_eq!(a, b, "deep-PD mid-traffic run diverged between engines");
}

/// An *armed, deterministic* fault plan (WakeStretch on the DRAM probe plus
/// periodic MrsAckDelay on the daemon's MRS writes) across both engines:
/// rows and telemetry must stay byte-identical — deterministic triggers
/// leave no room for the engines' different poll schedules to observe
/// different fault streams.
#[test]
fn armed_fault_plan_equivalent_across_engines() {
    use greendimm_suite::bench::robustness::robustness_experiment_with_plan;
    use greendimm_suite::faults::{FaultPlan, FaultSite, FaultTrigger};
    let profile = by_name("mcf").unwrap();
    let plan = FaultPlan::none()
        .with(FaultSite::WakeStretch, FaultTrigger::EveryNth(1))
        .with(FaultSite::MrsAckDelay, FaultTrigger::EveryNth(3));
    let run = |engine: EngineMode| {
        robustness_experiment_with_plan(&profile, Some(&plan), 0.0, engine, 31, None, true).unwrap()
    };
    let (a_row, a_tele) = run(EngineMode::Stepped);
    let (b_row, b_tele) = run(EngineMode::EventDriven);
    assert!(a_row.faults_injected > 0, "the armed plan must bite");
    assert_eq!(a_row, b_row, "armed-plan rows diverged between engines");
    assert_eq!(
        a_tele.unwrap().render_jsonl("p"),
        b_tele.unwrap().render_jsonl("p"),
        "armed-plan telemetry diverged between engines"
    );
}

/// The sampled epoch-replay engine on steady periodic traffic: replay must
/// actually engage (epochs skipped), keep every rank's residency summing to
/// the clock (no cycles invented or lost), and land within the configured
/// tolerance of the exact event-driven run on every major counter.
#[test]
fn epoch_replay_engages_and_error_is_bounded() {
    let cfg = DramConfig::small_test();
    // Steady state: one read every 10 cycles round-robining over 8 rows.
    let trace: Vec<_> = (0..20_000u64)
        .map(|i| MemRequest::read((i % 8) * 8192, i * 10))
        .collect();
    let mut exact_sys = MemorySystem::new(cfg, LowPowerPolicy::srf_default())
        .unwrap()
        .with_engine_mode(EngineMode::EventDriven);
    let exact = exact_sys.run_trace(trace.clone()).unwrap();
    // One tREFI per epoch: refresh-aligned (like the 4x-tREFI auto epoch)
    // but short enough that the 200k-cycle trace spans ~24 epochs.
    let epoch = cfg.timing.t_refi;
    let rcfg = EpochReplayCfg {
        epoch_cycles: epoch,
        stable_epochs: 3,
        tolerance_millis: 50,
    };
    let mut replay_sys = MemorySystem::new(cfg, LowPowerPolicy::srf_default())
        .unwrap()
        .with_engine_mode(EngineMode::EpochReplay(rcfg));
    let sampled = replay_sys.run_trace(trace).unwrap();

    assert!(
        sampled.replayed_epochs > 0,
        "steady traffic must trigger replay"
    );
    assert_eq!(sampled.replayed_cycles, sampled.replayed_epochs * epoch);
    assert_eq!(exact.replayed_cycles, 0, "exact engines never sample");
    for (ri, r) in sampled.rank_residency.iter().enumerate() {
        assert_eq!(
            r.total(),
            sampled.cycles,
            "rank {ri} residency must sum to the clock after fast-forward"
        );
    }
    // Bounded error: every major counter within 10 % of the exact run
    // (2× the 5 % signature tolerance, covering boundary effects).
    let within = |a: u64, b: u64, what: &str| {
        let hi = a.max(b) as f64;
        assert!(
            a.abs_diff(b) as f64 <= hi * 0.10 + 2.0,
            "{what} drifted past the bound: sampled {a} vs exact {b}"
        );
    };
    within(sampled.reads, exact.reads, "reads");
    within(sampled.cycles, exact.cycles, "cycles");
    within(sampled.activates, exact.activates, "activates");
    within(sampled.refreshes, exact.refreshes, "refreshes");
    within(sampled.row_hits, exact.row_hits, "row_hits");
}

/// Merged telemetry shards from the sweep pool must be byte-identical for
/// `--jobs 1` and `--jobs 4`: shards merge in point-index order, never
/// completion order, so the worker count cannot leak into the output.
#[test]
fn telemetry_shards_identical_across_job_counts() {
    let cfg = DramConfig::small_test();
    let points: Vec<u64> = (0..8).collect();
    let run_point = |ctx: sweep::PointCtx, &gap: &u64| -> (String, Option<Telemetry>) {
        let seed = ctx.seed(7);
        let mut generator = TraceGenerator::new(by_name("mcf").unwrap(), seed);
        let trace: Vec<_> = fold_into(&cfg, generator.take(300))
            .into_iter()
            .map(|mut r| {
                r.arrival += gap * 500;
                r
            })
            .collect();
        let mut sys = MemorySystem::new(cfg, LowPowerPolicy::srf_default()).unwrap();
        sys.run_trace(trace).unwrap();
        let mut tele = Telemetry::new();
        sys.export_telemetry(&mut tele, "eq");
        (format!("pt{gap}"), Some(tele))
    };
    let serial = render_shards(&sweep::sweep(&points, 1, run_point));
    let parallel = render_shards(&sweep::sweep(&points, 4, run_point));
    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "merged telemetry diverged between --jobs 1 and --jobs 4"
    );
}
