//! Umbrella crate for the GreenDIMM reproduction workspace.
//!
//! This crate re-exports every sub-crate under a single roof so that
//! examples, integration tests, and downstream experiments can depend on one
//! package. See the individual crates for the real implementations:
//!
//! * [`types`] — shared newtypes, configuration, and errors.
//! * [`dram`] — the DDR4 timing simulator and memory controller.
//! * [`power`] — IDD-based DRAM power model and system power model.
//! * [`mmsim`] — the OS physical-memory simulator (buddy allocator,
//!   memory blocks, hot-plug on/off-lining).
//! * [`ksm`] — the kernel samepage merging simulator.
//! * [`workloads`] — benchmark profiles, trace generators, and the Azure VM
//!   trace synthesizer.
//! * [`obs`] — deterministic telemetry: metrics registry and JSONL trace.
//! * [`faults`] — deterministic fault injection plans and the shared
//!   retry/backoff policy.
//! * [`baselines`] — self-refresh-only, RAMZzz, and PASR governors.
//! * [`verify`] — the cross-crate invariant checker and determinism gate.
//! * [`core`] — the GreenDIMM daemon and full-system co-simulation.
//! * [`fleet`] — the datacenter-scale fleet simulation: placement
//!   scheduler, sharded per-host co-simulation, sampled replay.
//!
//! # Quickstart
//!
//! ```
//! use greendimm_suite::core::{GreenDimmSystem, SystemConfig};
//!
//! let mut sys = GreenDimmSystem::new(SystemConfig::small_test());
//! let report = sys.run_app("libquantum", 42);
//! assert!(report.dram_energy_joules > 0.0);
//! ```

pub use gd_baselines as baselines;
pub use gd_bench as bench;
pub use gd_dram as dram;
pub use gd_faults as faults;
pub use gd_fleet as fleet;
pub use gd_ksm as ksm;
pub use gd_mmsim as mmsim;
pub use gd_obs as obs;
pub use gd_power as power;
pub use gd_types as types;
pub use gd_verify as verify;
pub use gd_workloads as workloads;
pub use greendimm as core;
