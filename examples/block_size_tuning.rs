//! Tuning the memory-block size (paper §5.1): smaller blocks off-line more
//! capacity but cause more hotplug events; larger blocks are cheaper but
//! coarser. Sweep the three sizes the paper evaluates for a churning app.
//!
//! ```text
//! cargo run --release --example block_size_tuning
//! ```

use greendimm_suite::bench::block_size_experiment;
use greendimm_suite::core::GreenDimmConfig;
use greendimm_suite::workloads::by_name;

fn main() {
    let app = by_name("gcc").expect("built-in profile");
    println!(
        "workload: {} (peak footprint {} MB, churning)\n",
        app.name, app.footprint_mib
    );
    println!("block   offlined   overhead   on/off events");
    for block_mib in [128u64, 256, 512] {
        let r = block_size_experiment(&app, block_mib, GreenDimmConfig::paper_default(), |c| c, 1)
            .expect("co-simulation");
        println!(
            "{:>4}MB  {:6.2}GiB  {:7.2}%   {:>6}",
            block_mib,
            r.offlined_gib_avg,
            r.overhead_fraction * 100.0,
            r.hotplug_events
        );
    }
    println!("\nthe paper picks the block size that maps to one sub-array group");
    println!("(most off-lined capacity) since the overhead difference is small.");
}
