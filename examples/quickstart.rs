//! Quickstart: run one benchmark under GreenDIMM and print its report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use greendimm_suite::core::{GreenDimmSystem, SystemConfig};
use greendimm_suite::power::{ActivityProfile, DramPowerModel, PowerGating};

fn main() {
    // The paper's 64 GB SPEC platform, managed in 1 GB blocks (one
    // sub-array group each).
    let cfg = SystemConfig::spec_64gb();
    let mut sys = GreenDimmSystem::new(cfg);

    println!("running libquantum (64 MB footprint, high MPKI) under GreenDIMM...\n");
    let report = sys.run_app("libquantum", 42);

    println!("benchmark            : {}", report.name);
    println!("baseline runtime     : {:.1} s", report.baseline_runtime_s);
    println!(
        "runtime w/ GreenDIMM : {:.1} s  (+{:.2}%)",
        report.runtime_s,
        report.overhead_fraction * 100.0
    );
    println!(
        "avg read latency     : {:.0} memory cycles",
        report.avg_read_latency_cycles
    );
    println!(
        "off-lined capacity   : {:.0}% of managed memory (time-averaged)",
        report.avg_offline_fraction * 100.0
    );
    println!("DRAM power           : {:.1} W", report.dram_power_w);
    println!("DRAM energy          : {:.0} J", report.dram_energy_joules);
    println!(
        "system energy        : {:.0} J",
        report.system_energy_joules
    );
    println!(
        "hotplug events       : {} off-line, {} on-line, {} failures",
        report.daemon.offline_events,
        report.daemon.online_events,
        report.daemon.failures()
    );

    // What the same platform would burn without GreenDIMM: a tiny footprint
    // still keeps every sub-array powered and refreshing.
    let model = DramPowerModel::new(sys.config().dram);
    let conventional = model.analytic_power_w(&ActivityProfile::busy(0.2), &PowerGating::none());
    println!(
        "\nconventional DRAM power for the same run: {:.1} W -> GreenDIMM saves {:.0}%",
        conventional,
        (1.0 - report.dram_power_w / conventional) * 100.0
    );
}
