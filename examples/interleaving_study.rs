//! Why rank-granularity power management fails on modern servers: replay a
//! small-footprint, memory-intensive workload with and without channel/rank
//! interleaving and watch the self-refresh opportunity vanish (paper §3.3,
//! Fig. 3).
//!
//! ```text
//! cargo run --release --example interleaving_study
//! ```

use greendimm_suite::bench::measure_app;
use greendimm_suite::types::config::{DramConfig, InterleaveMode};
use greendimm_suite::workloads::by_name;

fn main() {
    let profile = by_name("libquantum").expect("built-in profile");
    println!(
        "workload: {} ({} MB footprint, MPKI {:.0})\n",
        profile.name, profile.footprint_mib, profile.mpki
    );

    let cfg = DramConfig::ddr4_2133_64gb();
    let mut runtimes = Vec::new();
    for (label, mode) in [
        ("with interleaving   ", InterleaveMode::Interleaved),
        ("without interleaving", InterleaveMode::Linear),
    ] {
        let m = measure_app(&profile, cfg, mode, 20_000, 1).expect("cycle sim");
        println!("{label}:");
        println!(
            "  runtime {:.0} s (bus utilization {:.0}%)",
            m.runtime_s,
            m.bandwidth_util * 100.0
        );
        println!(
            "  rank self-refresh residency {:.1}% of cycles\n",
            m.sr_fraction * 100.0
        );
        runtimes.push(m.runtime_s);
    }
    println!(
        "interleaving speeds this workload up {:.2}x but starves self-refresh —",
        runtimes[1] / runtimes[0]
    );
    println!("exactly the gap GreenDIMM's interleaving-agnostic power-down closes.");
}
