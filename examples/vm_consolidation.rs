//! Data-center scenario: a consolidated VM server (the paper's §6.3
//! motivation). Synthesizes an Azure-style VM schedule, runs the GreenDIMM
//! daemon against it with KSM on, and prints the hour-by-hour picture.
//!
//! ```text
//! cargo run --release --example vm_consolidation
//! ```

use greendimm_suite::bench::{run_vm_trace, VmTraceConfig};
use greendimm_suite::dram::EngineMode;
use greendimm_suite::power::{ActivityProfile, DramPowerModel, PowerGating};
use greendimm_suite::types::config::DramConfig;

fn main() {
    let cfg = VmTraceConfig {
        capacity_gb: 256,
        block_gb: 1,
        ksm: true,
        greendimm: true,
        duration_s: 8 * 3600, // an 8-hour shift for a quick demo
        seed: 7,
        engine: EngineMode::EventDriven,
    };
    println!("simulating an 8 h VM consolidation trace on a 256 GB host (KSM on)...\n");
    let out = run_vm_trace(&cfg).expect("co-simulation");

    println!("hour  used%  offline-blocks  deep-PD%");
    for h in 0..8u64 {
        let window: Vec<_> = out
            .samples
            .iter()
            .filter(|s| s.time_s >= h * 3600 && s.time_s < (h + 1) * 3600)
            .collect();
        let n = window.len().max(1) as f64;
        let used: f64 = window.iter().map(|s| s.used_fraction).sum::<f64>() / n;
        let off: f64 = window.iter().map(|s| s.offline_blocks as f64).sum::<f64>() / n;
        let pd: f64 = window.iter().map(|s| s.deep_pd_fraction).sum::<f64>() / n;
        println!(
            "  {h:02}   {:4.0}   {:9.0}       {:5.1}",
            used * 100.0,
            off,
            pd * 100.0
        );
    }

    let model = DramPowerModel::new(DramConfig::ddr4_2133_256gb());
    let light = ActivityProfile::busy(0.15);
    let before = model.analytic_power_w(&light, &PowerGating::none());
    let after = model.analytic_power_w(&light, &PowerGating::deep_pd(out.mean_deep_pd_fraction()));
    println!(
        "\nmean off-line blocks : {:.0} / 256",
        out.mean_offline_blocks()
    );
    println!("KSM frames released  : {}", out.ksm_released_pages);
    println!(
        "DRAM power           : {before:.1} W -> {after:.1} W ({:.0}% saved)",
        (1.0 - after / before) * 100.0
    );
    println!(
        "hotplug              : {} offline / {} online events, {} failures",
        out.daemon.offline_events,
        out.daemon.online_events,
        out.daemon.failures()
    );
}
