#!/usr/bin/env bash
# Full verification gate for the GreenDIMM reproduction workspace.
# Every step must pass; the first failure aborts with a nonzero exit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "==> cargo build --release"
cargo build --release --quiet

echo "==> cargo test --workspace"
cargo test --quiet --workspace

echo "==> detlint (determinism scan)"
cargo run --quiet -p gd-verify --bin detlint

echo "==> engine equivalence (stepped vs event-driven, serial vs parallel sweep)"
cargo test --quiet --release --test engine_equivalence

echo "==> sweep smoke (fig03, --jobs 2, trimmed request count)"
cargo run --quiet --release -p gd-bench --bin fig03_interleaving -- --jobs 2 --requests 6000 \
  > /dev/null

echo "==> all checks passed"
