#!/usr/bin/env bash
# Full verification gate for the GreenDIMM reproduction workspace.
# Every step must pass; the first failure aborts with a nonzero exit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "==> cargo build --release"
cargo build --release --quiet

echo "==> cargo test --workspace"
cargo test --quiet --workspace

echo "==> detlint (determinism pre-gate, line scan)"
cargo run --quiet -p gd-verify --bin detlint

echo "==> gd-lint (AST-level workspace analysis: unit-safety, panic-path, float-order, sim-purity)"
cargo run --quiet -p gd-lint

echo "==> gd-lint JSON smoke (bad fixture must fail with the expected rule id)"
if cargo run --quiet -p gd-lint -- --json \
    crates/lint/tests/fixtures/sim_purity/bad_wallclock.rs > /tmp/gd_lint.ci.json 2>&1; then
  echo "ERROR: gd-lint exited 0 on a known-bad fixture" >&2
  exit 1
fi
grep -q '"rule":"sim-purity"' /tmp/gd_lint.ci.json || {
  echo "ERROR: gd-lint --json did not report the expected sim-purity finding" >&2
  cat /tmp/gd_lint.ci.json >&2
  exit 1
}
rm -f /tmp/gd_lint.ci.json

echo "==> engine equivalence (stepped vs event-driven, serial vs parallel sweep)"
cargo test --quiet --release --test engine_equivalence

echo "==> telemetry determinism (byte-identical across engines and job counts)"
cargo test --quiet --release --test engine_equivalence telemetry

echo "==> snapshot staleness (fig05 regenerated at HEAD must match the committed snapshot)"
cargo run --quiet --release -p gd-bench --bin fig05_addrmap > /tmp/fig05_addrmap.ci.txt
diff -u results/fig05_addrmap.txt /tmp/fig05_addrmap.ci.txt || {
  echo "ERROR: results/fig05_addrmap.txt is stale — regenerate results/*.txt and commit" >&2
  exit 1
}
rm -f /tmp/fig05_addrmap.ci.txt

# Smoke runs below redirect the timing sidecar (GD_BENCH_DIR) so trimmed
# configs never overwrite the committed full-run budgets in results/.
export GD_BENCH_DIR=/tmp/gd_bench.ci
rm -rf "$GD_BENCH_DIR"

echo "==> sweep smoke (fig03, --jobs 2, trimmed request count)"
cargo run --quiet --release -p gd-bench --bin fig03_interleaving -- --jobs 2 --requests 6000 \
  > /dev/null

echo "==> telemetry smoke (fig03 JSONL dump is non-empty and parseable shape)"
cargo run --quiet --release -p gd-bench --bin fig03_interleaving -- --jobs 2 --requests 6000 \
  --telemetry /tmp/fig03_telemetry.ci.jsonl > /dev/null
test -s /tmp/fig03_telemetry.ci.jsonl || {
  echo "ERROR: --telemetry produced an empty file" >&2
  exit 1
}
head -1 /tmp/fig03_telemetry.ci.jsonl | grep -q '^{"type":' || {
  echo "ERROR: telemetry JSONL has unexpected shape" >&2
  exit 1
}
rm -f /tmp/fig03_telemetry.ci.jsonl

echo "==> fault smoke (fig_faults single rate, trimmed seed count)"
cargo run --quiet --release -p gd-bench --bin fig_faults -- --fault-rate 0.1 --requests 1 \
  > /dev/null

echo "==> fault equivalence (byte-identical across --jobs 1 vs 4 and stepped vs event engines)"
cargo run --quiet --release -p gd-bench --bin fig_faults -- --jobs 1 --requests 1 \
  > /tmp/fig_faults.j1.ci.txt
cargo run --quiet --release -p gd-bench --bin fig_faults -- --jobs 4 --requests 1 \
  > /tmp/fig_faults.j4.ci.txt
# The provenance header records the pinned jobs value; everything below it
# must be byte-identical.
diff -u <(tail -n +2 /tmp/fig_faults.j1.ci.txt) <(tail -n +2 /tmp/fig_faults.j4.ci.txt) || {
  echo "ERROR: fig_faults output differs between --jobs 1 and --jobs 4" >&2
  exit 1
}
cargo run --quiet --release -p gd-bench --bin fig_faults -- --engine stepped --requests 1 \
  > /tmp/fig_faults.st.ci.txt
cargo run --quiet --release -p gd-bench --bin fig_faults -- --engine event --requests 1 \
  > /tmp/fig_faults.ev.ci.txt
# The provenance header records the engine name; the rows must match.
diff -u <(tail -n +2 /tmp/fig_faults.st.ci.txt) <(tail -n +2 /tmp/fig_faults.ev.ci.txt) || {
  echo "ERROR: fig_faults output differs between stepped and event-driven engines" >&2
  exit 1
}
rm -f /tmp/fig_faults.{j1,j4,st,ev}.ci.txt

echo "==> fleet smoke (fig14, 12 hosts, --jobs 2 vs --jobs 1, telemetry byte-identity)"
cargo run --quiet --release -p gd-bench --bin fig14_fleet_energy -- \
  --hosts 12 --requests 8 --jobs 1 --strict-validate \
  --telemetry /tmp/fig14.j1.ci.jsonl > /tmp/fig14.j1.ci.txt
cargo run --quiet --release -p gd-bench --bin fig14_fleet_energy -- \
  --hosts 12 --requests 8 --jobs 2 --strict-validate \
  --telemetry /tmp/fig14.j2.ci.jsonl > /tmp/fig14.j2.ci.txt
# The provenance header records the pinned jobs value and the telemetry
# announcement echoes the per-run dump path; everything else must be
# byte-identical, and so must the merged per-host telemetry shards.
diff -u <(grep -v -e '^# provenance:' -e '^\[telemetry ->' /tmp/fig14.j1.ci.txt) \
        <(grep -v -e '^# provenance:' -e '^\[telemetry ->' /tmp/fig14.j2.ci.txt) || {
  echo "ERROR: fig14 output differs between --jobs 1 and --jobs 2" >&2
  exit 1
}
cmp /tmp/fig14.j1.ci.jsonl /tmp/fig14.j2.ci.jsonl || {
  echo "ERROR: fig14 telemetry differs between --jobs 1 and --jobs 2" >&2
  exit 1
}
rm -f /tmp/fig14.{j1,j2}.ci.txt /tmp/fig14.{j1,j2}.ci.jsonl

echo "==> memspec smoke (fig09 on the DDR5 backend, trimmed request count)"
cargo run --quiet --release -p gd-bench --bin fig09_dram_energy -- \
  --memspec ddr5 --jobs 2 --requests 6000 > /dev/null

echo "==> memspec DDR4 identity (default fig02 regenerated at HEAD must match the committed snapshot)"
# fig02 is analytic (no --requests trim), so a default run is cheap and the
# whole snapshot must be reproducible; only the sidecar announcement line
# differs because GD_BENCH_DIR is redirected here.
cargo run --quiet --release -p gd-bench --bin fig02_idle_busy_power > /tmp/fig02.ci.txt
diff -u <(grep -v '^\[timing ->' results/fig02_idle_busy_power.txt) \
        <(grep -v '^\[timing ->' /tmp/fig02.ci.txt) || {
  echo "ERROR: default-backend fig02 no longer matches the committed DDR4 snapshot" >&2
  exit 1
}
rm -f /tmp/fig02.ci.txt

echo "==> epoch-replay refusal (sampled engine must be rejected off the DDR4 backend)"
if cargo run --quiet --release -p gd-bench --bin fig09_dram_energy -- \
    --memspec ddr5 --engine epoch-replay --requests 6000 > /dev/null 2>&1; then
  echo "ERROR: fig09 --memspec ddr5 accepted the sampled epoch-replay engine" >&2
  exit 1
fi

echo "==> fig15 smoke (cross-generation sweep, --jobs 2 vs --jobs 1 and stepped vs event)"
cargo run --quiet --release -p gd-bench --bin fig15_cross_generation -- \
  --jobs 1 --requests 6000 > /tmp/fig15.j1.ci.txt
cargo run --quiet --release -p gd-bench --bin fig15_cross_generation -- \
  --jobs 2 --requests 6000 > /tmp/fig15.j2.ci.txt
# The provenance header records the pinned jobs value; everything below it
# must be byte-identical.
diff -u <(tail -n +2 /tmp/fig15.j1.ci.txt) <(tail -n +2 /tmp/fig15.j2.ci.txt) || {
  echo "ERROR: fig15 output differs between --jobs 1 and --jobs 2" >&2
  exit 1
}
cargo run --quiet --release -p gd-bench --bin fig15_cross_generation -- \
  --engine stepped --requests 6000 > /tmp/fig15.st.ci.txt
cargo run --quiet --release -p gd-bench --bin fig15_cross_generation -- \
  --engine event --requests 6000 > /tmp/fig15.ev.ci.txt
# The provenance header records the engine name; the rows must match.
diff -u <(tail -n +2 /tmp/fig15.st.ci.txt) <(tail -n +2 /tmp/fig15.ev.ci.txt) || {
  echo "ERROR: fig15 output differs between stepped and event-driven engines" >&2
  exit 1
}
rm -f /tmp/fig15.{j1,j2,st,ev}.ci.txt

echo "==> perf budget (fig03 + fig09 full serial regeneration vs committed sidecars; soft gate)"
# Re-runs the exact pinned config of the committed results/BENCH_*.json
# (serial, default request count) with the sidecar redirected, then compares
# wall clocks. A regression past 2x the committed budget WARNS but does not
# fail: wall time is machine-dependent, and the committed values are the
# performance trajectory, not a hard SLA.
for fig in fig03_interleaving fig09_dram_energy; do
  cargo run --quiet --release -p gd-bench --bin "$fig" -- --jobs 1 > /dev/null
  budget=$(grep -o '"total_s": [0-9.]*' "results/BENCH_$fig.json" | awk '{print $2}')
  actual=$(grep -o '"total_s": [0-9.]*' "$GD_BENCH_DIR/BENCH_$fig.json" | awk '{print $2}')
  awk -v a="$actual" -v b="$budget" -v f="$fig" 'BEGIN {
    if (b <= 0) { printf "WARNING: committed %s budget sidecar is missing or zero\n", f; exit }
    if (a > 2 * b) {
      printf "WARNING: %s serial regeneration took %.2fs, over 2x the committed budget of %.2fs\n", f, a, b
    } else {
      printf "%s serial regeneration: %.2fs (committed budget %.2fs, soft limit 2x)\n", f, a, b
    }
  }'
done
rm -rf "$GD_BENCH_DIR"
unset GD_BENCH_DIR

echo "==> all checks passed"
