//! The structured event trace: sim-time-stamped events with span scopes.
//!
//! Events are appended in simulation order and rendered verbatim in that
//! order, so the trace is deterministic as long as the simulation is.
//! Spans are a pair of `span_open`/`span_close` events under the same
//! name — there is no runtime stack, which keeps the disabled-mode cost
//! at a single `Option` branch and lets shards merge trivially.

use crate::escape_json;
use gd_types::SimTime;

/// A field value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rendered with shortest-roundtrip `Display`).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    fn render(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => out.push_str(&v.to_string()),
            Value::Str(s) => {
                out.push('"');
                escape_json(s, out);
                out.push('"');
            }
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

/// What kind of trace line an event renders as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Span start.
    SpanOpen,
    /// Span end (fields describe the span's outcome).
    SpanClose,
    /// Instantaneous event.
    Instant,
}

impl TraceKind {
    fn name(self) -> &'static str {
        match self {
            TraceKind::SpanOpen => "span_open",
            TraceKind::SpanClose => "span_close",
            TraceKind::Instant => "event",
        }
    }
}

/// One trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated timestamp.
    pub t: SimTime,
    /// Line kind.
    pub kind: TraceKind,
    /// Event name, dotted-scope style ("daemon.tick", "mm.offline").
    pub name: String,
    /// Attached fields, in producer order.
    pub fields: Vec<(String, Value)>,
}

/// The event trace. One per [`crate::Telemetry`] shard.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Opens a span at `now`.
    pub fn span_open(&mut self, now: SimTime, name: &str) {
        self.push(now, TraceKind::SpanOpen, name, &[]);
    }

    /// Closes a span at `now` with outcome fields.
    pub fn span_close(&mut self, now: SimTime, name: &str, fields: &[(&str, Value)]) {
        self.push(now, TraceKind::SpanClose, name, fields);
    }

    /// Records an instantaneous event.
    pub fn event(&mut self, now: SimTime, name: &str, fields: &[(&str, Value)]) {
        self.push(now, TraceKind::Instant, name, fields);
    }

    fn push(&mut self, now: SimTime, kind: TraceKind, name: &str, fields: &[(&str, Value)]) {
        self.events.push(TraceEvent {
            t: now,
            kind,
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        });
    }

    /// Events in append (= simulation) order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// True when no events were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders all events as JSONL in append order.
    pub fn render_jsonl(&self, point: &str, out: &mut String) {
        for ev in &self.events {
            out.push_str("{\"type\":\"");
            out.push_str(ev.kind.name());
            out.push_str("\",\"point\":\"");
            escape_json(point, out);
            out.push_str("\",\"t_ns\":");
            out.push_str(&ev.t.as_nanos().to_string());
            out.push_str(",\"name\":\"");
            escape_json(&ev.name, out);
            out.push('"');
            if !ev.fields.is_empty() {
                out.push_str(",\"fields\":{");
                let mut first = true;
                for (k, v) in &ev.fields {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push('"');
                    escape_json(k, out);
                    out.push_str("\":");
                    v.render(out);
                }
                out.push('}');
            }
            out.push_str("}\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_pair_renders_in_order() {
        let mut tr = Trace::default();
        tr.span_open(SimTime::from_nanos(100), "daemon.tick");
        tr.span_close(
            SimTime::from_nanos(250),
            "daemon.tick",
            &[("offlined", Value::U64(3)), ("ok", Value::Bool(true))],
        );
        let mut s = String::new();
        tr.render_jsonl("p", &mut s);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"type\":\"span_open\",\"point\":\"p\",\"t_ns\":100,\"name\":\"daemon.tick\"}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"span_close\",\"point\":\"p\",\"t_ns\":250,\"name\":\"daemon.tick\",\
             \"fields\":{\"offlined\":3,\"ok\":true}}"
        );
    }

    #[test]
    fn instant_event_with_all_value_kinds() {
        let mut tr = Trace::default();
        tr.event(
            SimTime::ZERO,
            "x",
            &[
                ("u", Value::U64(1)),
                ("i", Value::I64(-2)),
                ("f", Value::F64(1.5)),
                ("s", Value::Str("a\"b".into())),
            ],
        );
        let mut s = String::new();
        tr.render_jsonl("p", &mut s);
        assert!(s.contains("\"u\":1,\"i\":-2,\"f\":1.5,\"s\":\"a\\\"b\""));
    }

    #[test]
    fn events_keep_append_order() {
        let mut tr = Trace::default();
        // Deliberately non-monotonic timestamps: the trace must not sort.
        tr.event(SimTime::from_nanos(5), "b", &[]);
        tr.event(SimTime::from_nanos(1), "a", &[]);
        let names: Vec<&str> = tr.events().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["b", "a"]);
    }
}
