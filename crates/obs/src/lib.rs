//! gd-obs: deterministic telemetry for the GreenDIMM reproduction.
//!
//! Two sinks, one owner:
//!
//! * a metrics [`Registry`] — monotonic counters, point-in-time gauges, and
//!   sim-time-weighted residency histograms (per-rank power-state residency,
//!   per-group deep power-down dwell, errno tallies, …),
//! * a structured [`Trace`] — sim-time-stamped events with span-style
//!   open/close scopes around daemon ticks, hotplug operations, and sweep
//!   points, rendered as JSONL.
//!
//! Both live inside a [`Telemetry`] handle that simulation code carries as
//! an `Option<&mut Telemetry>`: when telemetry is off the option is `None`
//! and the hot path pays a single branch, no allocation. Figures shard one
//! `Telemetry` per sweep point and merge the shards in point-index order,
//! so the rendered output is identical for any `--jobs N`.
//!
//! # Determinism rules (detlint-enforced)
//!
//! * No wall clock: every timestamp is a [`SimTime`] from the simulation.
//! * No hash-order: all keyed state is `BTreeMap`; rendering iterates in
//!   key order or append order only.
//! * Float rendering uses Rust's shortest-roundtrip `Display`, which is
//!   platform-independent.
//!
//! # Example
//!
//! ```
//! use gd_obs::{Telemetry, Value};
//! use gd_types::SimTime;
//!
//! let mut tele = Telemetry::new();
//! tele.trace.span_open(SimTime::from_secs(1), "daemon.tick");
//! tele.registry.counter_add("daemon.offline_events", 2);
//! tele.registry
//!     .residency_add("dram.ch0.rank0", "SelfRefresh", 800);
//! tele.trace.span_close(
//!     SimTime::from_secs(1),
//!     "daemon.tick",
//!     &[("offlined", Value::U64(2))],
//! );
//! let out = tele.render_jsonl("point0");
//! assert!(out.lines().count() >= 4);
//! ```

pub mod registry;
pub mod trace;

pub use registry::{Registry, ResidencyHist};
pub use trace::{Trace, TraceEvent, TraceKind, Value};

use gd_types::SimTime;

/// One telemetry sink: a metrics registry plus an event trace.
///
/// Simulation code takes `Option<&mut Telemetry>`; bench harnesses create
/// one shard per sweep point and merge with [`Telemetry::render_jsonl`]
/// in point-index order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    /// Counters, gauges, and residency histograms.
    pub registry: Registry,
    /// Sim-time-stamped structured events.
    pub trace: Trace,
}

impl Telemetry {
    /// Creates an empty telemetry sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a span and returns a guard-free marker: callers close with
    /// [`Trace::span_close`] under the same name. Convenience forwarder.
    pub fn span_open(&mut self, now: SimTime, name: &str) {
        self.trace.span_open(now, name);
    }

    /// Closes a span with attached fields. Convenience forwarder.
    pub fn span_close(&mut self, now: SimTime, name: &str, fields: &[(&str, Value)]) {
        self.trace.span_close(now, name, fields);
    }

    /// Renders the whole sink as JSONL: trace events in append order
    /// (which is sim order, since producers append as simulation
    /// advances), then metrics in sorted key order. Every line carries
    /// `point` so merged shards stay attributable.
    #[must_use]
    pub fn render_jsonl(&self, point: &str) -> String {
        let mut out = String::new();
        self.trace.render_jsonl(point, &mut out);
        self.registry.render_jsonl(point, &mut out);
        out
    }
}

/// Escapes a string for inclusion inside a JSON string literal.
pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_deterministic_and_ordered() {
        let build = || {
            let mut t = Telemetry::new();
            t.registry.counter_add("z.last", 1);
            t.registry.counter_add("a.first", 2);
            t.registry.gauge_set("mid.gauge", 0.5);
            t.trace.span_open(SimTime::from_nanos(10), "tick");
            t.trace
                .span_close(SimTime::from_nanos(20), "tick", &[("n", Value::U64(3))]);
            t
        };
        let a = build().render_jsonl("p");
        let b = build().render_jsonl("p");
        assert_eq!(a, b);
        // Trace lines precede metric lines; counters render sorted.
        let lines: Vec<&str> = a.lines().collect();
        assert!(lines[0].contains("\"span_open\""));
        assert!(lines[1].contains("\"span_close\""));
        let a_pos = a.find("a.first").unwrap();
        let z_pos = a.find("z.last").unwrap();
        assert!(a_pos < z_pos, "counters must render in key order");
    }

    #[test]
    fn escape_json_handles_controls() {
        let mut s = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn empty_sink_renders_empty() {
        assert_eq!(Telemetry::new().render_jsonl("p"), "");
    }
}
