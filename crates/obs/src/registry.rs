//! The metrics registry: counters, gauges, and residency histograms.
//!
//! All keyed state is `BTreeMap` so iteration (and therefore rendering)
//! is in key order — never hash order. Values are written by the
//! simulation's export hooks at well-defined points (end of run, end of
//! tick), not on the per-request hot path.

use crate::escape_json;
use std::collections::BTreeMap;

/// A sim-time-weighted residency histogram: how long some entity spent in
/// each of a small set of named states. Units are whatever the producer
/// uses consistently (DRAM ranks use memory-clock cycles; group dwell uses
/// nanoseconds) and are recorded in the `unit` field.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResidencyHist {
    /// Unit of the bin values ("cycles" or "ns").
    pub unit: &'static str,
    bins: BTreeMap<String, u64>,
}

impl ResidencyHist {
    /// Adds `amount` to the named state's bin.
    pub fn add(&mut self, state: &str, amount: u64) {
        *self.bins.entry(state.to_string()).or_insert(0) += amount;
    }

    /// Total across all bins — for a rank residency this must equal the
    /// elapsed sim time (the gd-verify invariant).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bins.values().sum()
    }

    /// Bins in state-name order.
    pub fn bins(&self) -> impl Iterator<Item = (&str, u64)> {
        self.bins.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

/// The metrics registry. One per [`crate::Telemetry`] shard.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    residency: BTreeMap<String, ResidencyHist>,
}

impl Registry {
    /// Adds to a monotonic counter, creating it at zero.
    pub fn counter_add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Sets a point-in-time gauge.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Adds residency to `key`'s histogram under `state`, tagging the
    /// histogram's unit (first writer wins; units must agree per key).
    pub fn residency_add_unit(&mut self, key: &str, state: &str, amount: u64, unit: &'static str) {
        let h = self.residency.entry(key.to_string()).or_default();
        if h.unit.is_empty() {
            h.unit = unit;
        }
        h.add(state, amount);
    }

    /// [`Self::residency_add_unit`] with the default "cycles" unit.
    pub fn residency_add(&mut self, key: &str, state: &str, amount: u64) {
        self.residency_add_unit(key, state, amount, "cycles");
    }

    /// Counter value, zero when absent.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Residency histograms in key order (for invariant checks).
    pub fn residencies(&self) -> impl Iterator<Item = (&str, &ResidencyHist)> {
        self.residency.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.residency.is_empty()
    }

    /// Renders all metrics as JSONL in kind-then-key order.
    pub fn render_jsonl(&self, point: &str, out: &mut String) {
        for (name, v) in &self.counters {
            out.push_str("{\"type\":\"counter\",\"point\":\"");
            escape_json(point, out);
            out.push_str("\",\"name\":\"");
            escape_json(name, out);
            out.push_str("\",\"value\":");
            out.push_str(&v.to_string());
            out.push_str("}\n");
        }
        for (name, v) in &self.gauges {
            out.push_str("{\"type\":\"gauge\",\"point\":\"");
            escape_json(point, out);
            out.push_str("\",\"name\":\"");
            escape_json(name, out);
            out.push_str("\",\"value\":");
            out.push_str(&v.to_string());
            out.push_str("}\n");
        }
        for (key, h) in &self.residency {
            out.push_str("{\"type\":\"residency\",\"point\":\"");
            escape_json(point, out);
            out.push_str("\",\"key\":\"");
            escape_json(key, out);
            out.push_str("\",\"unit\":\"");
            out.push_str(h.unit);
            out.push_str("\",\"bins\":{");
            let mut first = true;
            for (state, v) in h.bins() {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push('"');
                escape_json(state, out);
                out.push_str("\":");
                out.push_str(&v.to_string());
            }
            out.push_str("},\"total\":");
            out.push_str(&h.total().to_string());
            out.push_str("}\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = Registry::default();
        r.counter_add("x", 2);
        r.counter_add("x", 3);
        assert_eq!(r.counter("x"), 5);
        assert_eq!(r.counter("absent"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = Registry::default();
        r.gauge_set("g", 1.0);
        r.gauge_set("g", 2.5);
        assert_eq!(r.gauge("g"), Some(2.5));
        assert_eq!(r.gauge("absent"), None);
    }

    #[test]
    fn residency_totals_and_order() {
        let mut r = Registry::default();
        r.residency_add("rank0", "Active", 10);
        r.residency_add("rank0", "SelfRefresh", 30);
        r.residency_add("rank0", "Active", 5);
        let (key, h) = r.residencies().next().unwrap();
        assert_eq!(key, "rank0");
        assert_eq!(h.total(), 45);
        let states: Vec<&str> = h.bins().map(|(s, _)| s).collect();
        assert_eq!(states, ["Active", "SelfRefresh"]);
    }

    #[test]
    fn render_emits_valid_shape() {
        let mut r = Registry::default();
        r.counter_add("c", 1);
        r.gauge_set("g", 0.25);
        r.residency_add_unit("k", "S", 7, "ns");
        let mut s = String::new();
        r.render_jsonl("p0", &mut s);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"type\":\"counter\",\"point\":\"p0\",\"name\":\"c\",\"value\":1}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"gauge\",\"point\":\"p0\",\"name\":\"g\",\"value\":0.25}"
        );
        assert_eq!(
            lines[2],
            "{\"type\":\"residency\",\"point\":\"p0\",\"key\":\"k\",\"unit\":\"ns\",\
             \"bins\":{\"S\":7},\"total\":7}"
        );
    }
}
