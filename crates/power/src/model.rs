//! The DRAM power/energy model.
//!
//! Two entry points:
//!
//! * [`DramPowerModel::energy_from_stats`] integrates energy over a
//!   cycle-level [`RunStats`] from `gd-dram` (used for Figs. 3, 9, 10).
//! * [`DramPowerModel::analytic_power_w`] computes average power from an
//!   [`ActivityProfile`] of state-residency fractions and bus utilization
//!   (used by the epoch-level co-simulation behind Figs. 1–2, 12–13 and
//!   Tables 1–3, where cycle simulation of 24 hours would be intractable).

use crate::device::IddParams;
use crate::gating::PowerGating;
use gd_dram::{RankPowerState, RunStats};
use gd_types::config::DramConfig;
use gd_types::Cycles;

/// Energy breakdown of one run, in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DramEnergyBreakdown {
    /// Standby (background) energy across all states.
    pub background_j: f64,
    /// Auto/self refresh energy.
    pub refresh_j: f64,
    /// Row activate/precharge energy.
    pub activate_j: f64,
    /// Read burst core energy.
    pub read_j: f64,
    /// Write burst core energy.
    pub write_j: f64,
    /// I/O and termination energy.
    pub io_j: f64,
}

impl DramEnergyBreakdown {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.background_j
            + self.refresh_j
            + self.activate_j
            + self.read_j
            + self.write_j
            + self.io_j
    }

    /// Background (standby + refresh) fraction of the total — the quantity
    /// the paper reports growing from 44 % (64 GB) to 78 % (1 TB).
    pub fn background_fraction(&self) -> f64 {
        let t = self.total_j();
        if t == 0.0 {
            0.0
        } else {
            (self.background_j + self.refresh_j) / t
        }
    }

    /// Average power over a duration in seconds.
    pub fn average_power_w(&self, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            0.0
        } else {
            self.total_j() / seconds
        }
    }
}

/// Average state-residency fractions and bus utilization for the analytic
/// power path. Fractions must sum to ≤ 1 across the four states.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityProfile {
    /// Fraction of peak data-bus utilization in `[0, 1]`.
    pub bandwidth_util: f64,
    /// Fraction of reads among data transfers in `[0, 1]`.
    pub read_fraction: f64,
    /// ACT commands per column command (1 − row-hit rate).
    pub act_per_access: f64,
    /// Fraction of time ranks sit with a row open.
    pub active_standby: f64,
    /// Fraction of time ranks sit precharged with CKE high.
    pub precharge_standby: f64,
    /// Fraction of time ranks spend in power-down.
    pub power_down: f64,
    /// Fraction of time ranks spend in self-refresh.
    pub self_refresh: f64,
}

impl ActivityProfile {
    /// A fully idle system parked in precharge standby (Table 1 / Fig. 2
    /// "idle" operating point: no low-power state is reachable under
    /// interleaved traffic, so idle ranks still burn standby power).
    pub fn idle_standby() -> Self {
        ActivityProfile {
            bandwidth_util: 0.0,
            read_fraction: 0.67,
            act_per_access: 0.5,
            active_standby: 0.0,
            precharge_standby: 1.0,
            power_down: 0.0,
            self_refresh: 0.0,
        }
    }

    /// A memory-intensive operating point (16 copies of `mcf`-like load):
    /// high bus utilization, rows mostly open.
    pub fn busy(bandwidth_util: f64) -> Self {
        ActivityProfile {
            bandwidth_util: bandwidth_util.clamp(0.0, 1.0),
            read_fraction: 0.67,
            act_per_access: 0.5,
            active_standby: 0.8,
            precharge_standby: 0.2,
            power_down: 0.0,
            self_refresh: 0.0,
        }
    }
}

/// IDD-based DRAM power model for a whole memory system.
#[derive(Debug, Clone)]
pub struct DramPowerModel {
    cfg: DramConfig,
    idd: IddParams,
}

impl DramPowerModel {
    /// Builds a model, choosing device parameters by the configured width.
    pub fn new(cfg: DramConfig) -> Self {
        let idd = if cfg.org.device_width == 4 {
            IddParams::ddr4_2133_8gb_x4()
        } else {
            IddParams::ddr4_2133_4gb_x8()
        };
        DramPowerModel { cfg, idd }
    }

    /// Builds a model with explicit device parameters.
    ///
    /// The caller is responsible for parameter sanity: construction through
    /// [`memspec_for`](crate::memspec::memspec_for) /
    /// [`memspec_with_idd`](crate::memspec::memspec_with_idd) runs
    /// [`IddParams::validate`] and is the checked entry point.
    pub fn with_idd(cfg: DramConfig, idd: IddParams) -> Self {
        debug_assert!(idd.validate().is_ok(), "unvalidated IDD parameters");
        DramPowerModel { cfg, idd }
    }

    /// The device parameters in use.
    pub fn idd(&self) -> &IddParams {
        &self.idd
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    fn devices_total(&self) -> f64 {
        (self.cfg.org.total_ranks() * self.cfg.org.devices_per_rank) as f64
    }

    fn t_ck_s(&self) -> f64 {
        self.cfg.timing.t_ck_ns() * 1e-9
    }

    /// Core (array-dependent, gateable) background power of one device in a
    /// given state, W.
    fn device_core_background_w(&self, state: RankPowerState) -> f64 {
        let i = &self.idd;
        let ma = match state {
            RankPowerState::ActiveStandby => i.idd3n,
            RankPowerState::PrechargeStandby => i.idd2n,
            RankPowerState::PowerDown => i.idd2p,
            RankPowerState::SelfRefresh => i.idd6,
        };
        i.vdd * ma * 1e-3
    }

    /// Ungated static power of one device (DIMM support circuitry), W.
    fn device_static_w(&self) -> f64 {
        self.idd.dimm_static_mw * 1e-3
    }

    /// Background power of the whole system with every rank in `state`, W.
    pub fn background_power_w(&self, state: RankPowerState, gating: &PowerGating) -> f64 {
        self.devices_total()
            * (self.device_core_background_w(state) * gating.background_multiplier()
                + self.device_static_w())
    }

    /// Energy of one ACT/PRE pair across a rank, J (Micron methodology:
    /// IDD0 minus the standby currents over tRC).
    pub fn act_pre_energy_j(&self) -> f64 {
        let i = &self.idd;
        let t = &self.cfg.timing;
        let t_rc_s = t.t_rc as f64 * self.t_ck_s();
        let t_ras_s = t.t_ras as f64 * self.t_ck_s();
        let background = i.idd3n * t_ras_s + i.idd2n * (t_rc_s - t_ras_s);
        // No clamp: `IddParams::validate` rejects idd0 < idd3n at MemSpec
        // construction, so the delta is non-negative by contract.
        let e_dev = i.vdd * (i.idd0 * t_rc_s - background) * 1e-3;
        e_dev * self.cfg.org.devices_per_rank as f64
    }

    /// Core energy of one read burst across a rank, J.
    pub fn read_energy_j(&self) -> f64 {
        let i = &self.idd;
        let burst_s = self.cfg.timing.burst().as_f64() * self.t_ck_s();
        i.vdd * (i.idd4r - i.idd3n) * 1e-3 * burst_s * self.cfg.org.devices_per_rank as f64
    }

    /// Core energy of one write burst across a rank, J.
    pub fn write_energy_j(&self) -> f64 {
        let i = &self.idd;
        let burst_s = self.cfg.timing.burst().as_f64() * self.t_ck_s();
        i.vdd * (i.idd4w - i.idd3n) * 1e-3 * burst_s * self.cfg.org.devices_per_rank as f64
    }

    /// I/O + termination energy of one 64-byte transfer, J.
    pub fn io_energy_j(&self) -> f64 {
        let burst_s = self.cfg.timing.burst().as_f64() * self.t_ck_s();
        // 64 data pins per rank regardless of device width.
        self.idd.io_mw_per_dq * 1e-3 * 64.0 * burst_s
    }

    /// Energy of one REF command on one rank, J.
    pub fn refresh_energy_j(&self) -> f64 {
        let i = &self.idd;
        let t_rfc_s = self.cfg.timing.t_rfc as f64 * self.t_ck_s();
        i.vdd * (i.idd5b - i.idd2n) * 1e-3 * t_rfc_s * self.cfg.org.devices_per_rank as f64
    }

    /// Average refresh power of the whole system when awake, W.
    pub fn refresh_avg_power_w(&self, gating: &PowerGating) -> f64 {
        let per_rank = self.refresh_energy_j() / (self.cfg.timing.t_refi as f64 * self.t_ck_s());
        per_rank * self.cfg.org.total_ranks() as f64 * gating.refresh_multiplier()
    }

    /// Integrates energy over a cycle-level run.
    ///
    /// Deep power-down gating is taken from the run's own
    /// `group_deep_pd_cycles` tracking; `extra_gating` layers policy-level
    /// gating on top (e.g. a PASR baseline's refresh masks).
    pub fn energy_from_stats(
        &self,
        stats: &RunStats,
        extra_gating: &PowerGating,
    ) -> DramEnergyBreakdown {
        let t_ck = self.t_ck_s();
        let dev_per_rank = self.cfg.org.devices_per_rank as f64;
        let deep_pd = PowerGating::deep_pd(stats.mean_deep_pd_fraction());
        let bg_mult = deep_pd.background_multiplier() * extra_gating.background_multiplier();
        let ref_mult = deep_pd.refresh_multiplier() * extra_gating.refresh_multiplier();

        let mut background_j = 0.0;
        for res in &stats.rank_residency {
            let pairs = [
                (RankPowerState::ActiveStandby, res.active_standby),
                (RankPowerState::PrechargeStandby, res.precharge_standby),
                (RankPowerState::PowerDown, res.power_down),
                (RankPowerState::SelfRefresh, res.self_refresh),
            ];
            for (state, cycles) in pairs {
                let secs = Cycles::new(cycles).as_f64() * t_ck;
                background_j += dev_per_rank
                    * (self.device_core_background_w(state) * bg_mult + self.device_static_w())
                    * secs;
            }
        }
        // Self-refresh residency already embeds refresh current via IDD6;
        // REF commands cover awake refresh.
        let refresh_j = stats.refreshes as f64 * self.refresh_energy_j() * ref_mult;
        let activate_j = stats.activates as f64 * self.act_pre_energy_j();
        let read_j = stats.reads as f64 * self.read_energy_j();
        let write_j = stats.writes as f64 * self.write_energy_j();
        let io_j = (stats.reads + stats.writes) as f64 * self.io_energy_j();
        DramEnergyBreakdown {
            background_j,
            refresh_j,
            activate_j,
            read_j,
            write_j,
            io_j,
        }
    }

    /// Peak data-bus throughput of the system in 64-byte transfers per
    /// second (all channels combined).
    pub fn peak_transfers_per_s(&self) -> f64 {
        let per_channel = 1.0 / (self.cfg.timing.burst().as_f64() * self.t_ck_s());
        per_channel * self.cfg.org.channels as f64
    }

    /// Average power for an [`ActivityProfile`], W.
    pub fn analytic_power_w(&self, profile: &ActivityProfile, gating: &PowerGating) -> f64 {
        let p = profile;
        let mut w = 0.0;
        // Background by state residency.
        let states = [
            (RankPowerState::ActiveStandby, p.active_standby),
            (RankPowerState::PrechargeStandby, p.precharge_standby),
            (RankPowerState::PowerDown, p.power_down),
            (RankPowerState::SelfRefresh, p.self_refresh),
        ];
        for (state, frac) in states {
            w += self.background_power_w(state, gating) * frac.clamp(0.0, 1.0);
        }
        // Refresh (not needed while in self-refresh: IDD6 covers it).
        w += self.refresh_avg_power_w(gating) * (1.0 - p.self_refresh).clamp(0.0, 1.0);
        // Activity power from bus utilization.
        let xfers = self.peak_transfers_per_s() * p.bandwidth_util.clamp(0.0, 1.0);
        let rf = p.read_fraction.clamp(0.0, 1.0);
        let per_xfer = rf * self.read_energy_j()
            + (1.0 - rf) * self.write_energy_j()
            + self.io_energy_j()
            + p.act_per_access * self.act_pre_energy_j();
        w + xfers * per_xfer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_dram::{LowPowerPolicy, MemRequest, MemorySystem};

    #[test]
    fn idle_power_256gb_matches_paper_measurement() {
        // Paper §3.2: 256 GB DRAM consumes ~18 W idle.
        let model = DramPowerModel::new(DramConfig::ddr4_2133_256gb());
        let idle = model.analytic_power_w(&ActivityProfile::idle_standby(), &PowerGating::none());
        assert!(
            (14.0..24.0).contains(&idle),
            "idle power {idle:.1} W should be near the paper's 18 W"
        );
    }

    #[test]
    fn busy_power_exceeds_idle_by_several_watts() {
        // Paper §3.2: 18 W idle vs 26 W busy at 256 GB.
        let model = DramPowerModel::new(DramConfig::ddr4_2133_256gb());
        let idle = model.analytic_power_w(&ActivityProfile::idle_standby(), &PowerGating::none());
        let busy = model.analytic_power_w(&ActivityProfile::busy(0.45), &PowerGating::none());
        assert!(busy > idle + 4.0, "busy {busy:.1} vs idle {idle:.1}");
        assert!(busy < idle * 2.5);
    }

    #[test]
    fn idle_power_is_flat_in_utilization() {
        // Table 1: without power management, DRAM power is constant no
        // matter how much of the capacity is used.
        let model = DramPowerModel::new(DramConfig::ddr4_2133_256gb());
        let p = ActivityProfile::idle_standby();
        let base = model.analytic_power_w(&p, &PowerGating::none());
        for _util in [0.1, 0.25, 0.5, 0.75, 1.0] {
            // Utilization of capacity does not enter the model at all.
            let again = model.analytic_power_w(&p, &PowerGating::none());
            assert_eq!(base, again);
        }
    }

    #[test]
    fn deep_pd_halves_background_when_half_offline() {
        let model = DramPowerModel::new(DramConfig::ddr4_2133_256gb());
        let p = ActivityProfile::idle_standby();
        let full = model.analytic_power_w(&p, &PowerGating::none());
        let half = model.analytic_power_w(&p, &PowerGating::deep_pd(0.5));
        assert!(half < full * 0.75);
        assert!(half > full * 0.4);
    }

    #[test]
    fn pasr_saves_less_than_deep_pd() {
        let model = DramPowerModel::new(DramConfig::ddr4_2133_256gb());
        let p = ActivityProfile::idle_standby();
        let pasr = model.analytic_power_w(&p, &PowerGating::pasr(0.5));
        let deep = model.analytic_power_w(&p, &PowerGating::deep_pd(0.5));
        assert!(
            deep < pasr,
            "deep power-down gates static power too: {deep:.2} < {pasr:.2}"
        );
    }

    #[test]
    fn capacity_scaling_is_monotone() {
        let p64 = DramPowerModel::new(DramConfig::ddr4_2133_64gb())
            .analytic_power_w(&ActivityProfile::idle_standby(), &PowerGating::none());
        let p256 = DramPowerModel::new(DramConfig::ddr4_2133_256gb())
            .analytic_power_w(&ActivityProfile::idle_standby(), &PowerGating::none());
        assert!(p256 > p64 * 1.3, "{p64:.1} -> {p256:.1}");
    }

    #[test]
    fn energy_from_cycle_stats_integrates() {
        let cfg = DramConfig::small_test();
        let mut sys = MemorySystem::new(cfg, LowPowerPolicy::disabled()).unwrap();
        let reqs: Vec<_> = (0..512).map(|i| MemRequest::read(i * 64, i * 8)).collect();
        let stats = sys.run_trace(reqs).unwrap();
        let model = DramPowerModel::new(cfg);
        let e = model.energy_from_stats(&stats, &PowerGating::none());
        assert!(e.total_j() > 0.0);
        assert!(e.background_j > 0.0);
        assert!(e.read_j > 0.0);
        assert!(e.write_j == 0.0);
        assert!(e.background_fraction() > 0.0 && e.background_fraction() < 1.0);
    }

    #[test]
    fn deep_pd_residency_reduces_energy() {
        use gd_types::ids::SubArrayGroup;
        let cfg = DramConfig::small_test();
        let model = DramPowerModel::new(cfg);
        let run_idle = |pd_groups: u32| {
            let mut sys = MemorySystem::new(cfg, LowPowerPolicy::disabled()).unwrap();
            for g in 0..pd_groups {
                sys.set_group_deep_pd(SubArrayGroup::new(g), true).unwrap();
            }
            let stats = sys.run_idle(1_000_000);
            model
                .energy_from_stats(&stats, &PowerGating::none())
                .total_j()
        };
        let none = run_idle(0);
        let half = run_idle(4); // 4 of 8 groups
        assert!(half < none * 0.8, "half {half:.3e} vs none {none:.3e}");
    }

    #[test]
    fn event_energies_positive_and_ordered() {
        let model = DramPowerModel::new(DramConfig::ddr4_2133_64gb());
        assert!(model.act_pre_energy_j() > 0.0);
        assert!(model.read_energy_j() > 0.0);
        assert!(model.write_energy_j() > 0.0);
        assert!(model.refresh_energy_j() > model.act_pre_energy_j());
    }
}
