//! Power-gating descriptors: how much of the DRAM's refresh and
//! peripheral/static power a management policy has turned off.

/// Residual power fraction of a deep-powered-down sub-array group, from the
/// paper's circuit analysis: spare repair rows (< 2 % of rows) stay on and
/// the power switches leak slightly.
pub const DEEP_PD_RESIDUAL: f64 = 0.03;

/// Fractions of the DRAM array whose power components are disabled.
///
/// * PASR disables only refresh of masked banks (`refresh_off`), leaving
///   peripheral/IO static power intact.
/// * GreenDIMM's sub-array deep power-down disables both refresh and the
///   peripheral/IO static power of off-lined groups (`refresh_off` and
///   `background_off`), minus the [`DEEP_PD_RESIDUAL`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerGating {
    /// Fraction of the array whose refresh is stopped, in `[0, 1]`.
    pub refresh_off: f64,
    /// Fraction of the array whose background (peripheral/IO static) power
    /// is gated off, in `[0, 1]`.
    pub background_off: f64,
}

impl PowerGating {
    /// No gating (conventional operation).
    pub fn none() -> Self {
        PowerGating::default()
    }

    /// GreenDIMM gating with `fraction` of sub-array groups in deep
    /// power-down: refresh stops entirely for them, and background power is
    /// gated down to the residual.
    pub fn deep_pd(fraction: f64) -> Self {
        let f = fraction.clamp(0.0, 1.0);
        PowerGating {
            refresh_off: f,
            background_off: f * (1.0 - DEEP_PD_RESIDUAL),
        }
    }

    /// PASR-style gating: `fraction` of banks are excluded from refresh but
    /// keep consuming static power.
    pub fn pasr(fraction: f64) -> Self {
        PowerGating {
            refresh_off: fraction.clamp(0.0, 1.0),
            background_off: 0.0,
        }
    }

    /// Multiplier applied to refresh energy.
    pub fn refresh_multiplier(&self) -> f64 {
        (1.0 - self.refresh_off).clamp(0.0, 1.0)
    }

    /// Multiplier applied to standby/background power.
    pub fn background_multiplier(&self) -> f64 {
        (1.0 - self.background_off).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let g = PowerGating::none();
        assert_eq!(g.refresh_multiplier(), 1.0);
        assert_eq!(g.background_multiplier(), 1.0);
    }

    #[test]
    fn deep_pd_gates_both() {
        let g = PowerGating::deep_pd(0.5);
        assert!((g.refresh_multiplier() - 0.5).abs() < 1e-12);
        assert!(g.background_multiplier() < 0.53);
        assert!(g.background_multiplier() > 0.5);
    }

    #[test]
    fn pasr_gates_refresh_only() {
        let g = PowerGating::pasr(0.75);
        assert!((g.refresh_multiplier() - 0.25).abs() < 1e-12);
        assert_eq!(g.background_multiplier(), 1.0);
    }

    #[test]
    fn fractions_are_clamped() {
        let g = PowerGating::deep_pd(2.0);
        assert_eq!(g.refresh_multiplier(), 0.0);
        let g = PowerGating::pasr(-1.0);
        assert_eq!(g.refresh_multiplier(), 1.0);
    }
}
