//! Constants from the paper's circuit-level analysis of the sub-array deep
//! power-down state (§4.3), standing in for the CACTI / commercial-design
//! numbers we cannot reproduce.

/// Area overhead of the per-sub-array power-switch transistors, as a
/// fraction of total DRAM chip area (paper: 1500 µm² per sub-array on a
/// commercial 1z-nm 8Gb design, 0.64 % of the chip).
pub const SWITCH_AREA_FRACTION: f64 = 0.0064;

/// Area overhead including per-sub-array control logic (paper: < 1 %).
pub const TOTAL_AREA_FRACTION: f64 = 0.01;

/// DRAM cost increase, same as PASR/PAAR control circuitry (paper: ~0.1 %
/// of die area).
pub const CONTROL_AREA_FRACTION: f64 = 0.001;

/// Fraction of rows occupied by spare repair arrays that stay powered even
/// when their sub-array group is off-lined (paper: < 2 %).
pub const SPARE_ROW_FRACTION: f64 = 0.02;

/// Number of bits in the memory controller's deep power-down register: one
/// per sub-array group, independent of channel/rank count (paper: 64 bits
/// vs. 128 bits for PASR bank masks on the same platform).
pub const REGISTER_BITS: u32 = 64;

/// Bits a PASR-style per-bank mask would need for the paper's platform
/// (16 banks × 2 ranks × 4 channels).
pub const PASR_REGISTER_BITS_REFERENCE: u32 = 128;

/// Turn-on resistance budget for the power switch (Ω).
pub const SWITCH_ON_RESISTANCE_OHM: f64 = 0.1;

// Compile-time checks that the constants match the paper's claims.
const _: () = {
    assert!(SWITCH_AREA_FRACTION < TOTAL_AREA_FRACTION);
    assert!(TOTAL_AREA_FRACTION <= 0.01);
    assert!(REGISTER_BITS < PASR_REGISTER_BITS_REFERENCE);
    assert!(SPARE_ROW_FRACTION <= 0.02);
    assert!(SWITCH_ON_RESISTANCE_OHM <= 0.1);
};
