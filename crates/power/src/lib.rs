//! DRAM and system power models for the GreenDIMM reproduction.
//!
//! The paper measures power with RAPL and a wall power meter, and estimates
//! the sub-array deep power-down effect with CACTI. This crate substitutes:
//!
//! * an IDD-current DRAM power model ([`DramPowerModel`]) following the
//!   standard Micron power-calculation methodology, integrating energy from
//!   either cycle-level simulation statistics or analytic activity profiles,
//! * a gating descriptor ([`PowerGating`]) capturing what PASR (refresh
//!   only) vs. GreenDIMM's deep power-down (refresh + peripheral static
//!   power) turn off,
//! * a calibrated whole-server model ([`SystemPowerModel`]), and
//! * the paper's circuit-analysis constants ([`subarray`]).
//!
//! # Example
//!
//! ```
//! use gd_power::{ActivityProfile, DramPowerModel, PowerGating};
//! use gd_types::config::DramConfig;
//!
//! let model = DramPowerModel::new(DramConfig::ddr4_2133_256gb());
//! let idle = model.analytic_power_w(&ActivityProfile::idle_standby(), &PowerGating::none());
//! // Off-lining half the sub-array groups nearly halves background power.
//! let gated = model.analytic_power_w(&ActivityProfile::idle_standby(), &PowerGating::deep_pd(0.5));
//! assert!(gated < idle * 0.75);
//! ```

pub mod device;
pub mod gating;
pub mod memspec;
pub mod model;
pub mod subarray;
pub mod system;

pub use device::IddParams;
pub use gating::{PowerGating, DEEP_PD_RESIDUAL};
pub use memspec::{
    memspec_for, memspec_with_idd, Ddr4Spec, Ddr5InterfaceParams, Ddr5Spec, Lpddr4PasrSpec,
    MemSpec, PASR_IDD6_ARRAY_SHARE,
};
pub use model::{ActivityProfile, DramEnergyBreakdown, DramPowerModel};
pub use system::SystemPowerModel;
