//! Per-device IDD current parameters (the Micron power-calculator
//! methodology the paper's CACTI/RAPL numbers stand in for).

use gd_types::{GdError, Result};

/// IDD currents (mA) and supply voltage for one DRAM device, as specified in
/// DDR4/DDR5/LPDDR4 datasheets. Energy is integrated from these plus the
/// timing parameters, following the standard DRAM power-calculation
/// methodology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IddParams {
    /// Core supply voltage (V).
    pub vdd: f64,
    /// One-bank ACT-PRE cycling current.
    pub idd0: f64,
    /// Precharge standby current (CKE high, all banks closed).
    pub idd2n: f64,
    /// Precharge power-down current (CKE low).
    pub idd2p: f64,
    /// Active standby current (a row open).
    pub idd3n: f64,
    /// Active power-down current.
    pub idd3p: f64,
    /// Burst read current.
    pub idd4r: f64,
    /// Burst write current.
    pub idd4w: f64,
    /// Burst refresh current (all-bank REF).
    pub idd5b: f64,
    /// Burst refresh current of a same-bank refresh (DDR5 REFsb, one bank
    /// per bank group). Equal to [`idd5b`](Self::idd5b) on devices without
    /// same-bank refresh.
    pub idd5c: f64,
    /// Self-refresh current.
    pub idd6: f64,
    /// I/O and termination power per data pin during a burst (mW) —
    /// an aggregate covering output drivers and ODT.
    pub io_mw_per_dq: f64,
    /// Static power of DIMM-level support circuitry amortized per device
    /// (register/PLL on RDIMMs), in mW. Calibrates total idle power to the
    /// paper's measured 18 W at 256 GB.
    pub dimm_static_mw: f64,
}

impl IddParams {
    /// Typical currents for a 4Gb ×8 DDR4-2133 device.
    pub fn ddr4_2133_4gb_x8() -> Self {
        IddParams {
            vdd: 1.2,
            idd0: 58.0,
            idd2n: 34.0,
            idd2p: 22.0,
            idd3n: 48.0,
            idd3p: 34.0,
            idd4r: 150.0,
            idd4w: 140.0,
            idd5b: 190.0,
            idd5c: 190.0,
            idd6: 14.0,
            io_mw_per_dq: 5.0,
            dimm_static_mw: 20.0,
        }
    }

    /// Typical currents for an 8Gb ×4 DDR4-2133 device (higher-density die;
    /// fewer DQs per device but more devices per rank).
    pub fn ddr4_2133_8gb_x4() -> Self {
        IddParams {
            vdd: 1.2,
            idd0: 55.0,
            idd2n: 32.0,
            idd2p: 20.0,
            idd3n: 45.0,
            idd3p: 32.0,
            idd4r: 115.0,
            idd4w: 105.0,
            idd5b: 215.0,
            idd5c: 215.0,
            idd6: 16.0,
            io_mw_per_dq: 5.0,
            dimm_static_mw: 20.0,
        }
    }

    /// Typical VDD-rail currents for a 16Gb ×8 DDR5-4800 device. The VDDQ
    /// interface rail is modeled separately (`Ddr5InterfaceParams`); idd5c
    /// covers one REFsb burst — one bank per bank group — which is how
    /// same-bank refresh cuts refresh energy (~1/4 of the all-bank delta
    /// over a much shorter tRFCsb).
    pub fn ddr5_4800_16gb_x8() -> Self {
        IddParams {
            vdd: 1.1,
            idd0: 95.0,
            idd2n: 50.0,
            idd2p: 30.0,
            idd3n: 62.0,
            idd3p: 44.0,
            idd4r: 260.0,
            idd4w: 230.0,
            idd5b: 277.0,
            idd5c: 135.0,
            idd6: 20.0,
            io_mw_per_dq: 4.0,
            dimm_static_mw: 20.0,
        }
    }

    /// Typical VDD-rail currents for a 16Gb ×4 DDR5-4800 device
    /// (higher-density rank build-out of the 256 GB platform).
    pub fn ddr5_4800_16gb_x4() -> Self {
        IddParams {
            vdd: 1.1,
            idd0: 90.0,
            idd2n: 48.0,
            idd2p: 28.0,
            idd3n: 60.0,
            idd3p: 42.0,
            idd4r: 200.0,
            idd4w: 180.0,
            idd5b: 300.0,
            idd5c: 150.0,
            idd6: 22.0,
            io_mw_per_dq: 4.0,
            dimm_static_mw: 20.0,
        }
    }

    /// Typical currents for an 8Gb ×16 LPDDR4-3200 die (VDD1 contributions
    /// folded into effective VDD2-rail currents). Unterminated LVSTL I/O
    /// and no RDIMM register make both per-pin I/O and static power much
    /// smaller than DDR4; idd6 is the full-array self-refresh current that
    /// PASR scales with the unmasked segment fraction.
    pub fn lpddr4_3200_8gb_x16() -> Self {
        IddParams {
            vdd: 1.1,
            idd0: 65.0,
            idd2n: 28.0,
            idd2p: 6.0,
            idd3n: 40.0,
            idd3p: 14.0,
            idd4r: 230.0,
            idd4w: 210.0,
            idd5b: 140.0,
            idd5c: 140.0,
            idd6: 4.0,
            io_mw_per_dq: 2.5,
            dimm_static_mw: 6.0,
        }
    }

    /// Validates the current orderings the energy model depends on.
    ///
    /// The model integrates *deltas* like `idd4r - idd3n`; a mis-entered
    /// spec that inverts an ordering would otherwise yield negative (or
    /// silently clamped-to-zero) event energy. Rejecting it here — at
    /// `MemSpec` construction — keeps every downstream energy a plain
    /// subtraction with no clamping.
    ///
    /// # Errors
    ///
    /// Returns [`GdError::InvalidConfig`] naming the violated ordering:
    /// every current must be finite and non-negative, `vdd` positive,
    /// `idd4r`/`idd4w` at least `idd3n`, `idd5b`/`idd5c` at least `idd2n`,
    /// and `idd0 >= idd3n` (an ACT-PRE cycle subsumes active standby).
    pub fn validate(&self) -> Result<()> {
        let fields = [
            ("vdd", self.vdd),
            ("idd0", self.idd0),
            ("idd2n", self.idd2n),
            ("idd2p", self.idd2p),
            ("idd3n", self.idd3n),
            ("idd3p", self.idd3p),
            ("idd4r", self.idd4r),
            ("idd4w", self.idd4w),
            ("idd5b", self.idd5b),
            ("idd5c", self.idd5c),
            ("idd6", self.idd6),
            ("io_mw_per_dq", self.io_mw_per_dq),
            ("dimm_static_mw", self.dimm_static_mw),
        ];
        for (name, v) in fields {
            if !v.is_finite() || v < 0.0 {
                return Err(GdError::InvalidConfig(format!(
                    "IDD parameter {name} must be finite and non-negative, got {v}"
                )));
            }
        }
        if self.vdd <= 0.0 {
            return Err(GdError::InvalidConfig("vdd must be positive".into()));
        }
        let orderings = [
            ("idd4r", self.idd4r, "idd3n", self.idd3n),
            ("idd4w", self.idd4w, "idd3n", self.idd3n),
            ("idd5b", self.idd5b, "idd2n", self.idd2n),
            ("idd5c", self.idd5c, "idd2n", self.idd2n),
            ("idd0", self.idd0, "idd3n", self.idd3n),
        ];
        for (hi_name, hi, lo_name, lo) in orderings {
            if hi < lo {
                return Err(GdError::InvalidConfig(format!(
                    "{hi_name} ({hi}) must be >= {lo_name} ({lo}): burst/refresh \
                     energy is integrated from their difference"
                )));
            }
        }
        Ok(())
    }

    /// Background power (W) of one device in precharge standby.
    pub fn precharge_standby_w(&self) -> f64 {
        self.vdd * self.idd2n * 1e-3 + self.dimm_static_mw * 1e-3
    }

    /// Background power (W) of one device in active standby.
    pub fn active_standby_w(&self) -> f64 {
        self.vdd * self.idd3n * 1e-3 + self.dimm_static_mw * 1e-3
    }

    /// Background power (W) of one device in precharge power-down.
    pub fn power_down_w(&self) -> f64 {
        self.vdd * self.idd2p * 1e-3 + self.dimm_static_mw * 1e-3
    }

    /// Background power (W) of one device in self-refresh (includes its
    /// internal refresh current).
    pub fn self_refresh_w(&self) -> f64 {
        self.vdd * self.idd6 * 1e-3 + self.dimm_static_mw * 1e-3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_power_ordering() {
        for p in [
            IddParams::ddr4_2133_4gb_x8(),
            IddParams::ddr4_2133_8gb_x4(),
            IddParams::ddr5_4800_16gb_x8(),
            IddParams::ddr5_4800_16gb_x4(),
            IddParams::lpddr4_3200_8gb_x16(),
        ] {
            assert!(p.active_standby_w() > p.precharge_standby_w());
            assert!(p.precharge_standby_w() > p.power_down_w());
            assert!(p.power_down_w() > p.self_refresh_w());
        }
    }

    #[test]
    fn all_presets_validate() {
        for p in [
            IddParams::ddr4_2133_4gb_x8(),
            IddParams::ddr4_2133_8gb_x4(),
            IddParams::ddr5_4800_16gb_x8(),
            IddParams::ddr5_4800_16gb_x4(),
            IddParams::lpddr4_3200_8gb_x16(),
        ] {
            p.validate().unwrap();
        }
    }

    #[test]
    fn inverted_burst_current_rejected() {
        let mut p = IddParams::ddr4_2133_4gb_x8();
        p.idd4r = p.idd3n - 1.0; // a mis-entered spec: burst below standby
        let err = p.validate().unwrap_err().to_string();
        assert!(err.contains("idd4r"), "{err}");
    }

    #[test]
    fn inverted_refresh_current_rejected() {
        let mut p = IddParams::ddr4_2133_4gb_x8();
        p.idd5b = p.idd2n - 1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn non_finite_current_rejected() {
        let mut p = IddParams::ddr4_2133_4gb_x8();
        p.idd6 = f64::NAN;
        assert!(p.validate().is_err());
        let mut p = IddParams::ddr4_2133_4gb_x8();
        p.vdd = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn ddr5_same_bank_refresh_current_is_below_all_bank() {
        for p in [
            IddParams::ddr5_4800_16gb_x8(),
            IddParams::ddr5_4800_16gb_x4(),
        ] {
            assert!(p.idd5c < p.idd5b);
            assert!(p.idd5c > p.idd2n);
        }
    }

    #[test]
    fn self_refresh_is_small_fraction_of_active() {
        let p = IddParams::ddr4_2133_4gb_x8();
        // Paper §2.2: self-refresh consumes "down to 10%" of active power
        // (before the DIMM static floor).
        let core_sr = p.vdd * p.idd6 * 1e-3;
        let core_act = p.vdd * p.idd3n * 1e-3;
        assert!(core_sr / core_act < 0.35);
    }
}
