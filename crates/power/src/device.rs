//! Per-device IDD current parameters (the Micron power-calculator
//! methodology the paper's CACTI/RAPL numbers stand in for).

/// IDD currents (mA) and supply voltage for one DRAM device, as specified in
/// DDR4 datasheets. Energy is integrated from these plus the timing
/// parameters, following the standard DRAM power-calculation methodology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IddParams {
    /// Core supply voltage (V).
    pub vdd: f64,
    /// One-bank ACT-PRE cycling current.
    pub idd0: f64,
    /// Precharge standby current (CKE high, all banks closed).
    pub idd2n: f64,
    /// Precharge power-down current (CKE low).
    pub idd2p: f64,
    /// Active standby current (a row open).
    pub idd3n: f64,
    /// Active power-down current.
    pub idd3p: f64,
    /// Burst read current.
    pub idd4r: f64,
    /// Burst write current.
    pub idd4w: f64,
    /// Burst refresh current.
    pub idd5b: f64,
    /// Self-refresh current.
    pub idd6: f64,
    /// I/O and termination power per data pin during a burst (mW) —
    /// an aggregate covering output drivers and ODT.
    pub io_mw_per_dq: f64,
    /// Static power of DIMM-level support circuitry amortized per device
    /// (register/PLL on RDIMMs), in mW. Calibrates total idle power to the
    /// paper's measured 18 W at 256 GB.
    pub dimm_static_mw: f64,
}

impl IddParams {
    /// Typical currents for a 4Gb ×8 DDR4-2133 device.
    pub fn ddr4_2133_4gb_x8() -> Self {
        IddParams {
            vdd: 1.2,
            idd0: 58.0,
            idd2n: 34.0,
            idd2p: 22.0,
            idd3n: 48.0,
            idd3p: 34.0,
            idd4r: 150.0,
            idd4w: 140.0,
            idd5b: 190.0,
            idd6: 14.0,
            io_mw_per_dq: 5.0,
            dimm_static_mw: 20.0,
        }
    }

    /// Typical currents for an 8Gb ×4 DDR4-2133 device (higher-density die;
    /// fewer DQs per device but more devices per rank).
    pub fn ddr4_2133_8gb_x4() -> Self {
        IddParams {
            vdd: 1.2,
            idd0: 55.0,
            idd2n: 32.0,
            idd2p: 20.0,
            idd3n: 45.0,
            idd3p: 32.0,
            idd4r: 115.0,
            idd4w: 105.0,
            idd5b: 215.0,
            idd6: 16.0,
            io_mw_per_dq: 5.0,
            dimm_static_mw: 20.0,
        }
    }

    /// Background power (W) of one device in precharge standby.
    pub fn precharge_standby_w(&self) -> f64 {
        self.vdd * self.idd2n * 1e-3 + self.dimm_static_mw * 1e-3
    }

    /// Background power (W) of one device in active standby.
    pub fn active_standby_w(&self) -> f64 {
        self.vdd * self.idd3n * 1e-3 + self.dimm_static_mw * 1e-3
    }

    /// Background power (W) of one device in precharge power-down.
    pub fn power_down_w(&self) -> f64 {
        self.vdd * self.idd2p * 1e-3 + self.dimm_static_mw * 1e-3
    }

    /// Background power (W) of one device in self-refresh (includes its
    /// internal refresh current).
    pub fn self_refresh_w(&self) -> f64 {
        self.vdd * self.idd6 * 1e-3 + self.dimm_static_mw * 1e-3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_power_ordering() {
        for p in [IddParams::ddr4_2133_4gb_x8(), IddParams::ddr4_2133_8gb_x4()] {
            assert!(p.active_standby_w() > p.precharge_standby_w());
            assert!(p.precharge_standby_w() > p.power_down_w());
            assert!(p.power_down_w() > p.self_refresh_w());
        }
    }

    #[test]
    fn self_refresh_is_small_fraction_of_active() {
        let p = IddParams::ddr4_2133_4gb_x8();
        // Paper §2.2: self-refresh consumes "down to 10%" of active power
        // (before the DIMM static floor).
        let core_sr = p.vdd * p.idd6 * 1e-3;
        let core_act = p.vdd * p.idd3n * 1e-3;
        assert!(core_sr / core_act < 0.35);
    }
}
