//! Whole-server power model.
//!
//! The paper measures a 16-core Xeon server with an HPM-100A power meter and
//! RAPL; we substitute a simple calibrated decomposition
//! `P_system = P_other + P_cpu(util) + P_dram`, with constants chosen so the
//! paper's reported shares reproduce: GreenDIMM's DRAM savings of ~32 % at
//! 256 GB correspond to ~9 % of system power, growing to 36 %/20 % at 1 TB
//! (Fig. 13).

/// Calibrated non-DRAM power constants for the evaluation server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemPowerModel {
    /// Power of everything except CPU dynamic power and DRAM (board, fans,
    /// PSU loss, disks, CPU idle), W.
    pub other_w: f64,
    /// Maximum additional CPU dynamic power at full utilization, W.
    pub cpu_dynamic_max_w: f64,
}

impl SystemPowerModel {
    /// Constants calibrated to the paper's 16-core Xeon platform.
    pub fn xeon_16core() -> Self {
        SystemPowerModel {
            other_w: 55.0,
            cpu_dynamic_max_w: 40.0,
        }
    }

    /// Total system power for a given DRAM power and CPU utilization.
    pub fn system_power_w(&self, dram_w: f64, cpu_util: f64) -> f64 {
        self.other_w + self.cpu_dynamic_max_w * cpu_util.clamp(0.0, 1.0) + dram_w
    }

    /// System energy over a duration in seconds.
    pub fn system_energy_j(&self, dram_w: f64, cpu_util: f64, seconds: f64) -> f64 {
        self.system_power_w(dram_w, cpu_util) * seconds.max(0.0)
    }

    /// The share of system power attributable to DRAM.
    pub fn dram_share(&self, dram_w: f64, cpu_util: f64) -> f64 {
        dram_w / self.system_power_w(dram_w, cpu_util)
    }
}

impl Default for SystemPowerModel {
    fn default() -> Self {
        Self::xeon_16core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition() {
        let m = SystemPowerModel::xeon_16core();
        let idle = m.system_power_w(18.0, 0.0);
        let busy = m.system_power_w(26.0, 1.0);
        assert!(busy > idle);
        assert!((idle - (55.0 + 18.0)).abs() < 1e-9);
    }

    #[test]
    fn fig13_shares_reproduce() {
        // At 256 GB (~26 W DRAM, light VM load): saving 32 % of DRAM power
        // should be roughly 9 % of system power.
        let m = SystemPowerModel::xeon_16core();
        let sys = m.system_power_w(26.0, 0.3);
        let share = 0.32 * 26.0 / sys;
        assert!((0.06..0.13).contains(&share), "share {share:.3}");
        // At 1 TB (~91 W DRAM): 36 % of DRAM power is ~20 % of system power.
        let sys_1tb = m.system_power_w(91.0, 0.3);
        let share_1tb = 0.36 * 91.0 / sys_1tb;
        assert!((0.15..0.26).contains(&share_1tb), "share {share_1tb:.3}");
    }

    #[test]
    fn util_is_clamped() {
        let m = SystemPowerModel::default();
        assert_eq!(m.system_power_w(0.0, 2.0), m.system_power_w(0.0, 1.0));
        assert_eq!(m.system_power_w(0.0, -1.0), m.system_power_w(0.0, 0.0));
    }

    #[test]
    fn energy_scales_with_time() {
        let m = SystemPowerModel::default();
        let e1 = m.system_energy_j(20.0, 0.5, 10.0);
        let e2 = m.system_energy_j(20.0, 0.5, 20.0);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
        assert_eq!(m.system_energy_j(20.0, 0.5, -5.0), 0.0);
    }
}
