//! Multi-generation memory power backends behind the [`MemSpec`] trait.
//!
//! The DDR4 model ([`DramPowerModel`]) predates this trait; [`Ddr4Spec`]
//! delegates to it verbatim so the default backend stays bit-identical to
//! the pre-trait code. The DDR5 and LPDDR4-PASR backends implement the
//! parts that genuinely differ per generation:
//!
//! * **DDR5** ([`Ddr5Spec`]): same-bank refresh (REFsb) energy — one bank
//!   per bank group at the lower IDD5C current over tRFCsb, issued every
//!   tREFI/sets — plus a split-rail model: VDD core currents through the
//!   shared Micron-methodology math, VDDQ interface power (CA/CS/CK
//!   drivers) accounted separately per [`Ddr5InterfaceParams`].
//! * **LPDDR4-PASR** ([`Lpddr4PasrSpec`]): masked self-refresh — IDD6
//!   scales with the unmasked segment fraction
//!   ([`PASR_IDD6_ARRAY_SHARE`]), which the DDR4 model deliberately does
//!   *not* do (DDR4 has no PASR segment mask, and the committed DDR4
//!   snapshots pin the original behavior).
//!
//! Construction goes through [`memspec_for`] / [`memspec_with_idd`], which
//! validate the configuration *and* the IDD parameter orderings
//! ([`IddParams::validate`]) so the energy math never needs to clamp a
//! negative current delta.

use crate::device::IddParams;
use crate::gating::PowerGating;
use crate::model::{ActivityProfile, DramEnergyBreakdown, DramPowerModel};
use gd_dram::{RankPowerState, RunStats};
use gd_types::config::{DramConfig, MemSpecKind, RefreshScheme};
use gd_types::{Cycles, GdError, Result};

/// Share of LPDDR4 IDD6 that is array retention current and therefore
/// scales with the unmasked PASR segment fraction; the remainder is the
/// control-logic/regulator floor that stays on while in self-refresh.
pub const PASR_IDD6_ARRAY_SHARE: f64 = 0.7;

/// VDDQ-rail interface parameters of a DDR5 rank (the CA/CS/CK drivers
/// that DDR4's single-rail IDD figures fold into the core currents).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ddr5InterfaceParams {
    /// Interface supply voltage (V).
    pub vddq: f64,
    /// Command/address pins per rank (14 per sub-channel × 2).
    pub num_ca: u32,
    /// Chip-select pins per rank.
    pub num_cs: u32,
    /// Per-pin driver current while toggling (mA).
    pub ca_active_ma: f64,
    /// Per-pin receiver/termination current while parked high (mA).
    pub ca_standby_ma: f64,
}

impl Ddr5InterfaceParams {
    /// Typical DDR5-4800 interface rail: VDDQ = 1.1 V, two 14-pin CA
    /// sub-channels plus chip selects.
    pub fn ddr5_4800() -> Self {
        Ddr5InterfaceParams {
            vddq: 1.1,
            num_ca: 28,
            num_cs: 2,
            ca_active_ma: 1.5,
            ca_standby_ma: 0.35,
        }
    }
}

/// One memory generation's timing-aware power model.
///
/// Default methods implement the shared Micron-methodology aggregation in
/// terms of the per-generation primitives; [`Ddr4Spec`] overrides them to
/// delegate to the original [`DramPowerModel`] code paths bit-for-bit.
pub trait MemSpec: Send + Sync + std::fmt::Debug {
    /// The generation this backend models.
    fn kind(&self) -> MemSpecKind;
    /// The configuration in use.
    fn config(&self) -> &DramConfig;
    /// The core-rail device parameters in use.
    fn idd(&self) -> &IddParams;
    /// A boxed copy (allows `Clone` for owners of `Box<dyn MemSpec>`).
    fn clone_box(&self) -> Box<dyn MemSpec>;

    /// Core (gateable) background power of one device in `state`, W.
    /// `refresh_off` is the fraction of the array whose refresh is masked —
    /// only the PASR backend uses it (IDD6 shrinks with the refresh-able
    /// footprint); other generations ignore it.
    fn device_core_background_w(&self, state: RankPowerState, refresh_off: f64) -> f64;

    /// Energy of one ACT/PRE pair across a rank, J.
    fn act_pre_energy_j(&self) -> f64;
    /// Core energy of one read burst across a rank, J.
    fn read_energy_j(&self) -> f64;
    /// Core energy of one write burst across a rank, J.
    fn write_energy_j(&self) -> f64;
    /// I/O + termination energy of one 64-byte transfer, J.
    fn io_energy_j(&self) -> f64;
    /// Energy of one refresh command on one rank, J (a REFsb on same-bank
    /// generations, an all-bank REF otherwise).
    fn refresh_energy_j(&self) -> f64;
    /// Cycles between refresh commands on one rank (tREFI, or tREFI/sets
    /// under same-bank refresh).
    fn refresh_interval_cycles(&self) -> f64;

    /// Extra per-transfer interface energy (VDDQ CA/CS drivers), J.
    fn interface_transfer_energy_j(&self) -> f64 {
        0.0
    }

    /// Interface-rail standby power per rank in `state`, W.
    fn interface_standby_w_per_rank(&self, _state: RankPowerState) -> f64 {
        0.0
    }

    /// Ungated static power of one device (DIMM support circuitry), W.
    fn device_static_w(&self) -> f64 {
        self.idd().dimm_static_mw * 1e-3
    }

    /// Total devices in the system.
    fn devices_total(&self) -> f64 {
        let org = &self.config().org;
        (org.total_ranks() * org.devices_per_rank) as f64
    }

    /// Clock period in seconds.
    fn t_ck_s(&self) -> f64 {
        self.config().timing.t_ck_ns() * 1e-9
    }

    /// Background power of the whole system with every rank in `state`, W.
    fn background_power_w(&self, state: RankPowerState, gating: &PowerGating) -> f64 {
        let devices = self.devices_total()
            * (self.device_core_background_w(state, gating.refresh_off)
                * gating.background_multiplier()
                + self.device_static_w());
        let interface = self.config().org.total_ranks() as f64
            * self.interface_standby_w_per_rank(state)
            * gating.background_multiplier();
        devices + interface
    }

    /// Average refresh power of the whole system when awake, W.
    fn refresh_avg_power_w(&self, gating: &PowerGating) -> f64 {
        let per_rank = self.refresh_energy_j() / (self.refresh_interval_cycles() * self.t_ck_s());
        per_rank * self.config().org.total_ranks() as f64 * gating.refresh_multiplier()
    }

    /// Peak data-bus throughput in 64-byte transfers per second.
    fn peak_transfers_per_s(&self) -> f64 {
        let per_channel = 1.0 / (self.config().timing.burst().as_f64() * self.t_ck_s());
        per_channel * self.config().org.channels as f64
    }

    /// Integrates energy over a cycle-level run (mirrors
    /// [`DramPowerModel::energy_from_stats`], with per-generation refresh
    /// energy, PASR-aware IDD6, and interface energy folded into `io_j`).
    fn energy_from_stats(
        &self,
        stats: &RunStats,
        extra_gating: &PowerGating,
    ) -> DramEnergyBreakdown {
        let t_ck = self.t_ck_s();
        let dev_per_rank = self.config().org.devices_per_rank as f64;
        let deep_pd = PowerGating::deep_pd(stats.mean_deep_pd_fraction());
        let bg_mult = deep_pd.background_multiplier() * extra_gating.background_multiplier();
        let ref_mult = deep_pd.refresh_multiplier() * extra_gating.refresh_multiplier();
        let refresh_off = 1.0 - ref_mult;

        let mut background_j = 0.0;
        for res in &stats.rank_residency {
            let pairs = [
                (RankPowerState::ActiveStandby, res.active_standby),
                (RankPowerState::PrechargeStandby, res.precharge_standby),
                (RankPowerState::PowerDown, res.power_down),
                (RankPowerState::SelfRefresh, res.self_refresh),
            ];
            for (state, cycles) in pairs {
                let secs = Cycles::new(cycles).as_f64() * t_ck;
                background_j += (dev_per_rank
                    * (self.device_core_background_w(state, refresh_off) * bg_mult
                        + self.device_static_w())
                    + self.interface_standby_w_per_rank(state) * bg_mult)
                    * secs;
            }
        }
        // Self-refresh residency already embeds refresh current via IDD6;
        // refresh commands cover awake refresh.
        let refresh_j = stats.refreshes as f64 * self.refresh_energy_j() * ref_mult;
        let activate_j = stats.activates as f64 * self.act_pre_energy_j();
        let read_j = stats.reads as f64 * self.read_energy_j();
        let write_j = stats.writes as f64 * self.write_energy_j();
        let io_j = (stats.reads + stats.writes) as f64
            * (self.io_energy_j() + self.interface_transfer_energy_j());
        DramEnergyBreakdown {
            background_j,
            refresh_j,
            activate_j,
            read_j,
            write_j,
            io_j,
        }
    }

    /// Average power for an [`ActivityProfile`], W (mirrors
    /// [`DramPowerModel::analytic_power_w`]).
    fn analytic_power_w(&self, profile: &ActivityProfile, gating: &PowerGating) -> f64 {
        let p = profile;
        let mut w = 0.0;
        let states = [
            (RankPowerState::ActiveStandby, p.active_standby),
            (RankPowerState::PrechargeStandby, p.precharge_standby),
            (RankPowerState::PowerDown, p.power_down),
            (RankPowerState::SelfRefresh, p.self_refresh),
        ];
        for (state, frac) in states {
            w += self.background_power_w(state, gating) * frac.clamp(0.0, 1.0);
        }
        w += self.refresh_avg_power_w(gating) * (1.0 - p.self_refresh).clamp(0.0, 1.0);
        let xfers = self.peak_transfers_per_s() * p.bandwidth_util.clamp(0.0, 1.0);
        let rf = p.read_fraction.clamp(0.0, 1.0);
        let per_xfer = rf * self.read_energy_j()
            + (1.0 - rf) * self.write_energy_j()
            + self.io_energy_j()
            + self.interface_transfer_energy_j()
            + p.act_per_access * self.act_pre_energy_j();
        w + xfers * per_xfer
    }
}

impl Clone for Box<dyn MemSpec> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Maps a rank power state to the core-rail background current, mA.
fn core_current_ma(idd: &IddParams, state: RankPowerState) -> f64 {
    match state {
        RankPowerState::ActiveStandby => idd.idd3n,
        RankPowerState::PrechargeStandby => idd.idd2n,
        RankPowerState::PowerDown => idd.idd2p,
        RankPowerState::SelfRefresh => idd.idd6,
    }
}

/// DDR4 backend: delegates every public computation to the original
/// [`DramPowerModel`] so the default generation is bit-identical to the
/// pre-`MemSpec` code.
#[derive(Debug, Clone)]
pub struct Ddr4Spec {
    inner: DramPowerModel,
}

impl MemSpec for Ddr4Spec {
    fn kind(&self) -> MemSpecKind {
        MemSpecKind::Ddr4
    }
    fn config(&self) -> &DramConfig {
        self.inner.config()
    }
    fn idd(&self) -> &IddParams {
        self.inner.idd()
    }
    fn clone_box(&self) -> Box<dyn MemSpec> {
        Box::new(self.clone())
    }
    fn device_core_background_w(&self, state: RankPowerState, _refresh_off: f64) -> f64 {
        let idd = self.inner.idd();
        idd.vdd * core_current_ma(idd, state) * 1e-3
    }
    fn act_pre_energy_j(&self) -> f64 {
        self.inner.act_pre_energy_j()
    }
    fn read_energy_j(&self) -> f64 {
        self.inner.read_energy_j()
    }
    fn write_energy_j(&self) -> f64 {
        self.inner.write_energy_j()
    }
    fn io_energy_j(&self) -> f64 {
        self.inner.io_energy_j()
    }
    fn refresh_energy_j(&self) -> f64 {
        self.inner.refresh_energy_j()
    }
    fn refresh_interval_cycles(&self) -> f64 {
        self.inner.config().timing.t_refi as f64
    }
    fn background_power_w(&self, state: RankPowerState, gating: &PowerGating) -> f64 {
        self.inner.background_power_w(state, gating)
    }
    fn refresh_avg_power_w(&self, gating: &PowerGating) -> f64 {
        self.inner.refresh_avg_power_w(gating)
    }
    fn peak_transfers_per_s(&self) -> f64 {
        self.inner.peak_transfers_per_s()
    }
    fn energy_from_stats(
        &self,
        stats: &RunStats,
        extra_gating: &PowerGating,
    ) -> DramEnergyBreakdown {
        self.inner.energy_from_stats(stats, extra_gating)
    }
    fn analytic_power_w(&self, profile: &ActivityProfile, gating: &PowerGating) -> f64 {
        self.inner.analytic_power_w(profile, gating)
    }
}

/// DDR5 backend: same-bank refresh energy + split VDD/VDDQ power.
#[derive(Debug, Clone)]
pub struct Ddr5Spec {
    inner: DramPowerModel,
    iface: Ddr5InterfaceParams,
    sets: u32,
}

impl MemSpec for Ddr5Spec {
    fn kind(&self) -> MemSpecKind {
        MemSpecKind::Ddr5
    }
    fn config(&self) -> &DramConfig {
        self.inner.config()
    }
    fn idd(&self) -> &IddParams {
        self.inner.idd()
    }
    fn clone_box(&self) -> Box<dyn MemSpec> {
        Box::new(self.clone())
    }
    fn device_core_background_w(&self, state: RankPowerState, _refresh_off: f64) -> f64 {
        let idd = self.inner.idd();
        idd.vdd * core_current_ma(idd, state) * 1e-3
    }
    fn act_pre_energy_j(&self) -> f64 {
        self.inner.act_pre_energy_j()
    }
    fn read_energy_j(&self) -> f64 {
        self.inner.read_energy_j()
    }
    fn write_energy_j(&self) -> f64 {
        self.inner.write_energy_j()
    }
    fn io_energy_j(&self) -> f64 {
        self.inner.io_energy_j()
    }
    /// Energy of one REFsb: the IDD5C delta over tRFCsb. Issued `sets`
    /// times more often than an all-bank REF, this still undercuts DDR4
    /// refresh energy because only one bank per group burns refresh
    /// current at a time.
    fn refresh_energy_j(&self) -> f64 {
        let cfg = self.inner.config();
        let idd = self.inner.idd();
        let t_rfc_sb_s = cfg.timing.t_rfc_sb as f64 * self.t_ck_s();
        idd.vdd * (idd.idd5c - idd.idd2n) * 1e-3 * t_rfc_sb_s * cfg.org.devices_per_rank as f64
    }
    fn refresh_interval_cycles(&self) -> f64 {
        (self.inner.config().timing.t_refi / self.sets as u64) as f64
    }
    /// VDDQ CA/CS driver energy of the ~2 two-cycle commands behind one
    /// transfer.
    fn interface_transfer_energy_j(&self) -> f64 {
        let pins = (self.iface.num_ca + self.iface.num_cs) as f64;
        pins * self.iface.vddq * self.iface.ca_active_ma * 1e-3 * 4.0 * self.t_ck_s()
    }
    /// VDDQ CA/CS/CK termination while the rank clock runs; gated off in
    /// power-down and self-refresh (clock stopped).
    fn interface_standby_w_per_rank(&self, state: RankPowerState) -> f64 {
        match state {
            RankPowerState::ActiveStandby | RankPowerState::PrechargeStandby => {
                let pins = (self.iface.num_ca + self.iface.num_cs + 1) as f64;
                pins * self.iface.vddq * self.iface.ca_standby_ma * 1e-3
            }
            RankPowerState::PowerDown | RankPowerState::SelfRefresh => 0.0,
        }
    }
}

/// LPDDR4-style backend with partial-array self-refresh: IDD6 scales with
/// the unmasked segment fraction, so masking segments genuinely shrinks
/// self-refresh power instead of only skipping awake REF commands.
#[derive(Debug, Clone)]
pub struct Lpddr4PasrSpec {
    inner: DramPowerModel,
}

impl MemSpec for Lpddr4PasrSpec {
    fn kind(&self) -> MemSpecKind {
        MemSpecKind::Lpddr4Pasr
    }
    fn config(&self) -> &DramConfig {
        self.inner.config()
    }
    fn idd(&self) -> &IddParams {
        self.inner.idd()
    }
    fn clone_box(&self) -> Box<dyn MemSpec> {
        Box::new(self.clone())
    }
    fn device_core_background_w(&self, state: RankPowerState, refresh_off: f64) -> f64 {
        let idd = self.inner.idd();
        let ma = match state {
            RankPowerState::SelfRefresh => {
                let array_off = PASR_IDD6_ARRAY_SHARE * refresh_off.clamp(0.0, 1.0);
                idd.idd6 * (1.0 - array_off)
            }
            other => core_current_ma(idd, other),
        };
        idd.vdd * ma * 1e-3
    }
    fn act_pre_energy_j(&self) -> f64 {
        self.inner.act_pre_energy_j()
    }
    fn read_energy_j(&self) -> f64 {
        self.inner.read_energy_j()
    }
    fn write_energy_j(&self) -> f64 {
        self.inner.write_energy_j()
    }
    fn io_energy_j(&self) -> f64 {
        self.inner.io_energy_j()
    }
    fn refresh_energy_j(&self) -> f64 {
        self.inner.refresh_energy_j()
    }
    fn refresh_interval_cycles(&self) -> f64 {
        self.inner.config().timing.t_refi as f64
    }
}

/// The default device parameters for a configuration, by generation and
/// device width (the DDR4 arm matches [`DramPowerModel::new`] exactly).
pub fn default_idd_for(cfg: &DramConfig) -> IddParams {
    match cfg.kind {
        MemSpecKind::Ddr4 => {
            if cfg.org.device_width == 4 {
                IddParams::ddr4_2133_8gb_x4()
            } else {
                IddParams::ddr4_2133_4gb_x8()
            }
        }
        MemSpecKind::Ddr5 => {
            if cfg.org.device_width == 4 {
                IddParams::ddr5_4800_16gb_x4()
            } else {
                IddParams::ddr5_4800_16gb_x8()
            }
        }
        MemSpecKind::Lpddr4Pasr => IddParams::lpddr4_3200_8gb_x16(),
    }
}

/// Builds the power backend for `cfg` with its default device parameters.
///
/// # Errors
///
/// Returns [`GdError::InvalidConfig`] if the configuration fails
/// [`DramConfig::validate`] (which covers a non-positive clock, i.e. a zero
/// tCK) or the device parameters fail [`IddParams::validate`].
pub fn memspec_for(cfg: DramConfig) -> Result<Box<dyn MemSpec>> {
    memspec_with_idd(cfg, default_idd_for(&cfg))
}

/// Builds the power backend for `cfg` with explicit device parameters,
/// validating both (the checked replacement for the silently-clamping
/// arithmetic the model used to carry).
///
/// # Errors
///
/// Returns [`GdError::InvalidConfig`] on an invalid configuration or IDD
/// parameter set.
pub fn memspec_with_idd(cfg: DramConfig, idd: IddParams) -> Result<Box<dyn MemSpec>> {
    cfg.validate()?;
    if !(cfg.timing.t_ck_ns() > 0.0 && cfg.timing.t_ck_ns().is_finite()) {
        return Err(GdError::InvalidConfig(format!(
            "clock period must be positive and finite, got {} ns",
            cfg.timing.t_ck_ns()
        )));
    }
    idd.validate()?;
    let inner = DramPowerModel::with_idd(cfg, idd);
    Ok(match cfg.kind {
        MemSpecKind::Ddr4 => Box::new(Ddr4Spec { inner }),
        MemSpecKind::Ddr5 => {
            let RefreshScheme::SameBank { sets } = cfg.refresh_scheme() else {
                unreachable!("DDR5 kind always yields the same-bank scheme");
            };
            Box::new(Ddr5Spec {
                inner,
                iface: Ddr5InterfaceParams::ddr5_4800(),
                sets,
            })
        }
        MemSpecKind::Lpddr4Pasr => Box::new(Lpddr4PasrSpec { inner }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_specs() -> Vec<Box<dyn MemSpec>> {
        MemSpecKind::all()
            .into_iter()
            .map(|k| memspec_for(DramConfig::preset_64gb(k)).unwrap())
            .collect()
    }

    #[test]
    fn ddr4_spec_is_bit_identical_to_model() {
        let cfg = DramConfig::ddr4_2133_64gb();
        let spec = memspec_for(cfg).unwrap();
        let model = DramPowerModel::new(cfg);
        assert_eq!(spec.act_pre_energy_j(), model.act_pre_energy_j());
        assert_eq!(spec.read_energy_j(), model.read_energy_j());
        assert_eq!(spec.write_energy_j(), model.write_energy_j());
        assert_eq!(spec.refresh_energy_j(), model.refresh_energy_j());
        assert_eq!(spec.io_energy_j(), model.io_energy_j());
        assert_eq!(spec.peak_transfers_per_s(), model.peak_transfers_per_s());
        for gating in [
            PowerGating::none(),
            PowerGating::deep_pd(0.4),
            PowerGating::pasr(0.4),
        ] {
            for profile in [ActivityProfile::idle_standby(), ActivityProfile::busy(0.5)] {
                assert_eq!(
                    spec.analytic_power_w(&profile, &gating),
                    model.analytic_power_w(&profile, &gating),
                );
            }
        }
    }

    #[test]
    fn invalid_idd_rejected_at_construction() {
        let cfg = DramConfig::ddr4_2133_64gb();
        let mut idd = IddParams::ddr4_2133_4gb_x8();
        idd.idd4r = idd.idd3n - 5.0;
        assert!(memspec_with_idd(cfg, idd).is_err());
        let mut idd = IddParams::ddr4_2133_4gb_x8();
        idd.idd5b = idd.idd2n - 1.0;
        assert!(memspec_with_idd(cfg, idd).is_err());
    }

    #[test]
    fn zero_clock_rejected_at_construction() {
        let mut cfg = DramConfig::ddr4_2133_64gb();
        cfg.timing.clock_mhz = 0.0;
        assert!(memspec_for(cfg).is_err());
    }

    #[test]
    fn ddr5_refresh_power_undercuts_all_bank_equivalent() {
        let cfg = DramConfig::ddr5_4800_64gb();
        let spec = memspec_for(cfg).unwrap();
        // What the same rank would pay with all-bank REF at IDD5B/tRFC1.
        let idd = spec.idd();
        let t_ck_s = cfg.timing.t_ck_ns() * 1e-9;
        let all_bank_j = idd.vdd
            * (idd.idd5b - idd.idd2n)
            * 1e-3
            * (cfg.timing.t_rfc as f64 * t_ck_s)
            * cfg.org.devices_per_rank as f64;
        let all_bank_w =
            all_bank_j / (cfg.timing.t_refi as f64 * t_ck_s) * cfg.org.total_ranks() as f64;
        let same_bank_w = spec.refresh_avg_power_w(&PowerGating::none());
        assert!(
            same_bank_w < all_bank_w * 0.8,
            "REFsb {same_bank_w:.2} W should undercut all-bank {all_bank_w:.2} W"
        );
    }

    #[test]
    fn ddr5_interface_power_is_present_and_clock_gated() {
        let spec = memspec_for(DramConfig::ddr5_4800_64gb()).unwrap();
        assert!(spec.interface_transfer_energy_j() > 0.0);
        assert!(spec.interface_standby_w_per_rank(RankPowerState::PrechargeStandby) > 0.0);
        assert_eq!(
            spec.interface_standby_w_per_rank(RankPowerState::SelfRefresh),
            0.0
        );
    }

    #[test]
    fn pasr_mask_shrinks_self_refresh_power_on_lpddr4_only() {
        let lp = memspec_for(DramConfig::lpddr4_3200_64gb()).unwrap();
        let d4 = memspec_for(DramConfig::ddr4_2133_64gb()).unwrap();
        let full = lp.device_core_background_w(RankPowerState::SelfRefresh, 0.0);
        let half = lp.device_core_background_w(RankPowerState::SelfRefresh, 0.5);
        assert!(
            half < full,
            "masking half the segments must shrink LPDDR4 IDD6"
        );
        assert!((full - half) / full - PASR_IDD6_ARRAY_SHARE * 0.5 < 1e-12);
        // The DDR4 backend keeps the original (snapshot-pinned) behavior.
        assert_eq!(
            d4.device_core_background_w(RankPowerState::SelfRefresh, 0.5),
            d4.device_core_background_w(RankPowerState::SelfRefresh, 0.0),
        );
    }

    #[test]
    fn every_backend_yields_positive_ordered_energies() {
        for spec in all_specs() {
            let kind = spec.kind();
            assert!(spec.act_pre_energy_j() > 0.0, "{kind}");
            assert!(spec.read_energy_j() > 0.0, "{kind}");
            assert!(spec.write_energy_j() > 0.0, "{kind}");
            assert!(spec.refresh_energy_j() > 0.0, "{kind}");
            let idle =
                spec.analytic_power_w(&ActivityProfile::idle_standby(), &PowerGating::none());
            let busy = spec.analytic_power_w(&ActivityProfile::busy(0.45), &PowerGating::none());
            assert!(busy > idle, "{kind}: busy {busy:.2} <= idle {idle:.2}");
        }
    }

    #[test]
    fn boxed_spec_clones() {
        let spec = memspec_for(DramConfig::ddr5_4800_64gb()).unwrap();
        let copy = spec.clone();
        assert_eq!(copy.kind(), MemSpecKind::Ddr5);
        assert_eq!(copy.refresh_energy_j(), spec.refresh_energy_j());
    }
}
