//! Cycle-level measurement + governor evaluation behind Figs. 3, 9, 10.

use gd_baselines::{
    GovernorContext, GovernorOutcome, GreenDimmGovernor, Pasr, PowerGovernor, RamZzz, SrfOnly,
};
use gd_dram::{EngineMode, EpochReplayCfg, LowPowerPolicy, MemorySystem, TimingChecker};
use gd_power::{memspec_for, ActivityProfile, MemSpec, SystemPowerModel};
use gd_types::config::{DramConfig, InterleaveMode, MemSpecKind};
use gd_types::{Cycles, GdError, Result};
use gd_workloads::{estimate_runtime, AppProfile, TraceGenerator};

/// Options for the measurement/evaluation pipeline behind Figs. 3/9/10.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeasureOpts {
    /// Replay-validate the full command stream of every cycle-level run
    /// against the independent protocol checker ([`gd_dram::validate`]) and
    /// run every governor outcome under the Strict sanity invariant
    /// ([`gd_baselines::sanity`]); any violation aborts the figure.
    /// Enabled by `--strict-validate` on the figure binaries.
    pub strict_validate: bool,
    /// Time-advance engine for the cycle-level runs. Defaults to the exact
    /// event-driven engine; `EpochReplay` trades a bounded sampling error
    /// for speed and is flagged in provenance headers.
    pub engine: EngineMode,
    /// True when the user pinned the engine via `--engine`. Binaries with a
    /// non-default engine (e.g. the fleet figure defaults to epoch replay)
    /// only override the engine when this is false.
    pub engine_explicit: bool,
    /// Memory-generation backend for the figure's platform config and power
    /// model (`--memspec ddr4|ddr5|lpddr4-pasr`). Defaults to the paper's
    /// DDR4 platform, whose outputs are bit-identical to the pre-backend
    /// code.
    pub memspec: MemSpecKind,
}

impl MeasureOpts {
    /// Parses the figure binaries' shared command line: `--strict-validate`
    /// (or a `GD_STRICT_VALIDATE=1` environment) turns the verification
    /// gate on; `--engine stepped|event|epoch-replay` selects the
    /// time-advance engine; `--memspec ddr4|ddr5|lpddr4-pasr` selects the
    /// memory-generation backend. An unknown `--memspec` value aborts
    /// rather than silently running the DDR4 default.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let strict = args.iter().any(|a| a == "--strict-validate")
            || std::env::var("GD_STRICT_VALIDATE")
                .map(|v| v == "1")
                .unwrap_or(false);
        let engine = args
            .iter()
            .position(|a| a == "--engine")
            .and_then(|i| args.get(i + 1))
            .map(|v| parse_engine(v));
        let memspec = args
            .iter()
            .position(|a| a == "--memspec")
            .and_then(|i| args.get(i + 1))
            .map(|v| {
                MemSpecKind::parse(v).unwrap_or_else(|| {
                    eprintln!("error: unknown --memspec {v:?} (expected ddr4, ddr5, lpddr4-pasr)");
                    std::process::exit(2);
                })
            });
        MeasureOpts {
            strict_validate: strict,
            engine: engine.unwrap_or_default(),
            engine_explicit: engine.is_some(),
            memspec: memspec.unwrap_or_default(),
        }
    }
}

/// Refuses the sampled epoch-replay engine outright. The cross-generation
/// figure compares backends bit for bit, so a bounded sampling error would
/// silently contaminate the comparison even though the provenance header
/// carries the `(sampled)` flag.
///
/// # Errors
///
/// [`GdError::InvalidConfig`] when `opts` selects the epoch-replay engine.
pub fn require_exact_engine(fig: &str, opts: &MeasureOpts) -> Result<()> {
    if matches!(opts.engine, EngineMode::EpochReplay(_)) {
        return Err(GdError::InvalidConfig(format!(
            "{fig}: --engine epoch-replay is sampled and only calibrated against the \
             DDR4 command mix; this run requires an exact engine (omit --engine or \
             pass stepped)"
        )));
    }
    Ok(())
}

/// Enforces the exactness contract of cross-generation runs (satellite of
/// the multi-backend work): the epoch-replay engine samples representative
/// epochs and was only ever calibrated against the DDR4 command mix, so a
/// non-DDR4 backend refuses it outright instead of emitting a snapshot
/// whose `engine=epoch-replay(sampled)` flag the reader might miss.
///
/// # Errors
///
/// [`GdError::InvalidConfig`] when `opts` combines a non-DDR4 backend with
/// the epoch-replay engine.
pub fn reject_sampled_engine(fig: &str, opts: &MeasureOpts) -> Result<()> {
    if opts.memspec != MemSpecKind::Ddr4 {
        require_exact_engine(fig, opts)?;
    }
    Ok(())
}

/// Provenance name of a backend's paper-platform speed grade, used in the
/// config descriptions the provenance hash covers. The DDR4 name matches
/// the pre-backend description strings exactly, so default snapshot
/// headers keep their hash.
#[must_use]
pub fn platform_desc(kind: MemSpecKind) -> &'static str {
    match kind {
        MemSpecKind::Ddr4 => "ddr4-2133",
        MemSpecKind::Ddr5 => "ddr5-4800",
        MemSpecKind::Lpddr4Pasr => "lpddr4-3200",
    }
}

/// Provenance fragment naming a non-default backend, e.g. ` memspec=ddr5`.
/// Empty for DDR4 so committed DDR4 snapshot headers stay byte-identical.
#[must_use]
pub fn memspec_suffix(kind: MemSpecKind) -> String {
    match kind {
        MemSpecKind::Ddr4 => String::new(),
        other => format!(" memspec={}", other.name()),
    }
}

/// Maps an `--engine` argument to an [`EngineMode`]; unknown values fall
/// back to the exact event-driven default.
pub fn parse_engine(v: &str) -> EngineMode {
    match v {
        "stepped" => EngineMode::Stepped,
        "epoch-replay" => EngineMode::EpochReplay(EpochReplayCfg::default()),
        _ => EngineMode::EventDriven,
    }
}

/// Provenance-header name of an engine. The replay engine is suffixed
/// `(sampled)` so any figure produced with it is visibly non-exact.
pub fn engine_name(mode: EngineMode) -> &'static str {
    match mode {
        EngineMode::Stepped => "stepped",
        EngineMode::EventDriven => "event-driven",
        EngineMode::EpochReplay(_) => "epoch-replay(sampled)",
    }
}

/// What one cycle-level run of a benchmark measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppMeasurement {
    /// Interleaving was enabled.
    pub interleaved: bool,
    /// Mean read latency in memory cycles.
    pub avg_latency_cycles: f64,
    /// Mean rank self-refresh residency.
    pub sr_fraction: f64,
    /// Predicted execution time, seconds.
    pub runtime_s: f64,
    /// Sustained fraction of peak bus bandwidth.
    pub bandwidth_util: f64,
}

/// Runs the cycle simulator for `profile` under the given interleave mode
/// and derives runtime via the MLP-aware CPU model.
///
/// # Errors
///
/// Propagates simulator configuration errors.
pub fn measure_app(
    profile: &AppProfile,
    cfg: DramConfig,
    mode: InterleaveMode,
    requests: usize,
    seed: u64,
) -> Result<AppMeasurement> {
    measure_app_opts(profile, cfg, mode, requests, seed, MeasureOpts::default())
}

/// [`measure_app`] with explicit [`MeasureOpts`].
///
/// # Errors
///
/// Propagates simulator configuration errors; with
/// [`MeasureOpts::strict_validate`], also protocol violations in the
/// scheduler's command stream.
pub fn measure_app_opts(
    profile: &AppProfile,
    cfg: DramConfig,
    mode: InterleaveMode,
    requests: usize,
    seed: u64,
    opts: MeasureOpts,
) -> Result<AppMeasurement> {
    measure_app_tele(profile, cfg, mode, requests, seed, opts, None)
}

/// [`measure_app_opts`] with an optional telemetry sink: when `tele` is
/// `Some`, the run's DRAM books (per-rank power-state residency, per-channel
/// command counters, per-group deep power-down dwell) are exported under a
/// scope named after the interleave mode.
///
/// # Errors
///
/// Same as [`measure_app_opts`].
pub fn measure_app_tele(
    profile: &AppProfile,
    cfg: DramConfig,
    mode: InterleaveMode,
    requests: usize,
    seed: u64,
    opts: MeasureOpts,
    tele: Option<&mut gd_obs::Telemetry>,
) -> Result<AppMeasurement> {
    let cfg = cfg.with_interleave(mode);
    let mut sys =
        MemorySystem::new(cfg, LowPowerPolicy::srf_default())?.with_engine_mode(opts.engine);
    if opts.strict_validate {
        sys.enable_command_log();
    }
    let cap = cfg.total_capacity_bytes();
    let mut gen = TraceGenerator::new(profile.clone(), seed);
    let trace: Vec<_> = gen
        .take(requests)
        .into_iter()
        .map(|mut r| {
            r.addr %= cap;
            r
        })
        .collect();
    let stats = sys.run_trace(trace)?;
    if opts.strict_validate {
        let log = sys.take_command_log();
        let violations = TimingChecker::for_config(&cfg).check(&log);
        if let Some(first) = violations.first() {
            return Err(GdError::InvalidState(format!(
                "{} protocol violation(s) in {} under {mode:?}; first: {first}",
                violations.len(),
                profile.name,
            )));
        }
    }
    if let Some(tele) = tele {
        let scope = if mode.is_interleaved() {
            "interleaved"
        } else {
            "linear"
        };
        sys.export_telemetry(tele, scope);
    }
    let avg_latency = stats.read_latency.mean().unwrap_or(60.0);
    let model = memspec_for(cfg)?;

    // Closed-loop runtime model. The open-loop probe saturates a single
    // channel under linear mapping, growing queueing delay without bound,
    // which a real CPU (with finite MLP) never sees. Combine:
    //   * a latency-bound time using the *unloaded* latency, and
    //   * a bandwidth-bound time using the throughput the probe actually
    //     sustained (requests per cycle), which captures the serialization
    //     that makes interleaving matter (Fig. 3a).
    let t = cfg.timing;
    let unloaded_latency = Cycles::new(t.t_rcd + t.cl + t.burst_cycles() + 8).as_f64();
    let delivered_per_cycle =
        (stats.reads + stats.writes) as f64 / Cycles::new(stats.cycles.max(1)).as_f64();
    // Little's law: a core keeping at most MLP misses outstanding perceives
    // latency no larger than MLP / throughput, however long the open-loop
    // probe's queues grew.
    let little_cap = profile.mlp / delivered_per_cycle.max(1e-9);
    let loaded_latency = avg_latency.clamp(unloaded_latency, little_cap.max(unloaded_latency));
    let est = estimate_runtime(profile, loaded_latency, model.peak_transfers_per_s());
    let total_requests =
        profile.giga_instructions * 1e9 * profile.mpki / 1000.0 * profile.prefetch_factor();
    let mem_clock_hz = t.clock_mhz * 1e6;
    let bw_bound_s = total_requests / (delivered_per_cycle.max(1e-9) * mem_clock_hz);
    let runtime_s = est.seconds.max(bw_bound_s);
    Ok(AppMeasurement {
        interleaved: mode.is_interleaved(),
        avg_latency_cycles: avg_latency,
        sr_fraction: stats.mean_self_refresh_fraction(),
        runtime_s,
        bandwidth_util: (est.bandwidth_util * est.seconds / runtime_s).clamp(0.0, 1.0),
    })
}

/// One cell of Figs. 9/10: a (policy, interleave) combination for one app.
#[derive(Debug, Clone)]
pub struct EnergyRow {
    /// Benchmark name.
    pub app: String,
    /// Policy legend name.
    pub policy: &'static str,
    /// Interleaving enabled.
    pub interleaved: bool,
    /// Execution time including policy overhead, seconds.
    pub runtime_s: f64,
    /// DRAM energy, joules.
    pub dram_j: f64,
    /// System energy, joules.
    pub system_j: f64,
    /// DRAM energy normalized to (w/o interleave, srf_only).
    pub dram_norm: f64,
    /// System energy normalized to (w/o interleave, srf_only).
    pub system_norm: f64,
}

/// Computes energy for one (app, policy, mode) cell from its measurement
/// and governor outcome.
fn energy_cell(
    model: &dyn MemSpec,
    system: &SystemPowerModel,
    profile: &AppProfile,
    meas: &AppMeasurement,
    out: &GovernorOutcome,
    cpu_util: f64,
) -> (f64, f64, f64) {
    let runtime = meas.runtime_s + out.overhead_s;
    let lp = (out.sr_fraction + out.pd_fraction).clamp(0.0, 1.0);
    let awake = 1.0 - lp;
    let activity = ActivityProfile {
        bandwidth_util: meas.bandwidth_util,
        read_fraction: profile.read_fraction,
        act_per_access: 1.0 - profile.row_locality,
        active_standby: awake * 0.6,
        precharge_standby: awake * 0.4,
        power_down: out.pd_fraction,
        self_refresh: out.sr_fraction,
    };
    let dram_w = model.analytic_power_w(&activity, &out.gating);
    let dram_j = dram_w * runtime;
    let system_j = system.system_energy_j(dram_w, cpu_util, runtime);
    (runtime, dram_j, system_j)
}

/// Evaluates all four policies × both interleave modes for one benchmark,
/// normalized to (w/o interleave, srf_only) — one group of bars in
/// Figs. 9/10.
///
/// # Errors
///
/// Propagates cycle-simulation errors.
pub fn evaluate_app(
    profile: &AppProfile,
    cfg: DramConfig,
    requests: usize,
    seed: u64,
) -> Result<Vec<EnergyRow>> {
    evaluate_app_opts(profile, cfg, requests, seed, MeasureOpts::default())
}

/// [`evaluate_app`] with explicit [`MeasureOpts`].
///
/// # Errors
///
/// Propagates cycle-simulation errors; with
/// [`MeasureOpts::strict_validate`], also scheduler protocol violations and
/// governor sanity violations.
pub fn evaluate_app_opts(
    profile: &AppProfile,
    cfg: DramConfig,
    requests: usize,
    seed: u64,
    opts: MeasureOpts,
) -> Result<Vec<EnergyRow>> {
    evaluate_app_tele(profile, cfg, requests, seed, opts, None)
}

/// [`evaluate_app_opts`] with an optional telemetry sink: both cycle-level
/// runs (interleaved and linear) export their DRAM books into `tele`,
/// under the `interleaved.*` and `linear.*` scopes respectively.
///
/// # Errors
///
/// Same as [`evaluate_app_opts`].
pub fn evaluate_app_tele(
    profile: &AppProfile,
    cfg: DramConfig,
    requests: usize,
    seed: u64,
    opts: MeasureOpts,
    mut tele: Option<&mut gd_obs::Telemetry>,
) -> Result<Vec<EnergyRow>> {
    let with = measure_app_tele(
        profile,
        cfg,
        InterleaveMode::Interleaved,
        requests,
        seed,
        opts,
        tele.as_deref_mut(),
    )?;
    let without = measure_app_tele(
        profile,
        cfg,
        InterleaveMode::Linear,
        requests,
        seed,
        opts,
        tele,
    )?;
    let model = memspec_for(cfg)?;
    let system = SystemPowerModel::default();
    let cpu_util = 0.6;

    let offline_fraction =
        (1.0 - profile.footprint_bytes() as f64 / cfg.total_capacity_bytes() as f64 - 0.10)
            .max(0.0);
    let make_ctx = |meas: &AppMeasurement| GovernorContext {
        interleaved: meas.interleaved,
        footprint_bytes: profile.footprint_bytes(),
        capacity_bytes: cfg.total_capacity_bytes(),
        ranks: cfg.org.total_ranks(),
        banks_per_rank: cfg.org.banks_per_rank(),
        measured_sr_fraction: meas.sr_fraction,
        runtime_s: meas.runtime_s,
        offline_fraction,
        offline_failures: gd_baselines::OfflineFailureBreakdown::default(),
    };

    let governors: Vec<Box<dyn PowerGovernor>> = vec![
        Box::new(SrfOnly),
        Box::new(RamZzz::default()),
        Box::new(Pasr),
        Box::new(GreenDimmGovernor::default()),
    ];

    let mut sanity = opts
        .strict_validate
        .then(|| gd_baselines::sanity_checker(gd_verify::Mode::Strict));
    let mut rows = Vec::new();
    let mut baseline: Option<(f64, f64)> = None;
    // Baseline first: (w/o interleave, srf_only).
    for meas in [&without, &with] {
        let ctx = make_ctx(meas);
        for g in &governors {
            let out = match &mut sanity {
                Some(checker) => gd_baselines::checked_evaluate(g.as_ref(), &ctx, checker)?,
                None => g.evaluate(&ctx),
            };
            let (runtime, dram_j, system_j) =
                energy_cell(model.as_ref(), &system, profile, meas, &out, cpu_util);
            if g.name() == "srf_only" && !meas.interleaved {
                baseline = Some((dram_j, system_j));
            }
            rows.push(EnergyRow {
                app: profile.name.to_string(),
                policy: g.name(),
                interleaved: meas.interleaved,
                runtime_s: runtime,
                dram_j,
                system_j,
                dram_norm: 0.0,
                system_norm: 0.0,
            });
        }
    }
    let (b_dram, b_sys) = baseline.expect("baseline cell present");
    for r in &mut rows {
        r.dram_norm = r.dram_j / b_dram;
        r.system_norm = r.system_j / b_sys;
    }
    Ok(rows)
}

/// Picks a row out of [`evaluate_app`] output.
pub fn find_row<'a>(
    rows: &'a [EnergyRow],
    policy: &str,
    interleaved: bool,
) -> Option<&'a EnergyRow> {
    rows.iter()
        .find(|r| r.policy == policy && r.interleaved == interleaved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_workloads::by_name;

    fn small() -> DramConfig {
        DramConfig::small_test()
    }

    /// libquantum scaled to the small test config: its 64 MB footprint
    /// exceeds the 16 MB capacity, so shrink it for unit tests.
    fn small_profile() -> AppProfile {
        AppProfile {
            footprint_mib: 4,
            // Intense enough to saturate the single channel the linear
            // mapping serializes onto.
            mpki: 80.0,
            ..by_name("libquantum").unwrap()
        }
    }

    #[test]
    fn interleaving_speeds_up_memory_intensive() {
        let p = small_profile();
        let with = measure_app(&p, small(), InterleaveMode::Interleaved, 8_000, 1).unwrap();
        let without = measure_app(&p, small(), InterleaveMode::Linear, 8_000, 1).unwrap();
        assert!(
            without.runtime_s > with.runtime_s * 1.3,
            "w/o {} vs w/ {}",
            without.runtime_s,
            with.runtime_s
        );
        // Fig. 3b: self-refresh residency only without interleaving.
        assert!(without.sr_fraction > with.sr_fraction + 0.2);
    }

    #[test]
    fn greendimm_beats_baselines_under_interleaving() {
        let p = small_profile();
        let rows = evaluate_app(&p, small(), 8_000, 1).unwrap();
        assert_eq!(rows.len(), 8);
        let gd = find_row(&rows, "GreenDIMM", true).unwrap();
        let srf = find_row(&rows, "srf_only", true).unwrap();
        let ramzzz = find_row(&rows, "RAMZzz", true).unwrap();
        let pasr = find_row(&rows, "PASR", true).unwrap();
        assert!(
            gd.dram_norm < srf.dram_norm * 0.9,
            "gd {} srf {}",
            gd.dram_norm,
            srf.dram_norm
        );
        assert!(gd.dram_norm < ramzzz.dram_norm);
        assert!(gd.dram_norm < pasr.dram_norm);
    }

    #[test]
    fn baseline_cell_is_normalized_to_one() {
        let p = small_profile();
        let rows = evaluate_app(&p, small(), 6_000, 2).unwrap();
        let base = find_row(&rows, "srf_only", false).unwrap();
        assert!((base.dram_norm - 1.0).abs() < 1e-9);
        assert!((base.system_norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn strict_validation_passes_on_clean_runs() {
        let p = small_profile();
        let opts = MeasureOpts {
            strict_validate: true,
            ..Default::default()
        };
        // Protocol replay + governor sanity both enabled: any scheduler or
        // governor defect turns this into an Err.
        let rows = evaluate_app_opts(&p, small(), 4_000, 4, opts).unwrap();
        assert_eq!(rows.len(), 8);
    }

    #[test]
    fn telemetry_export_is_deterministic_and_accounts_all_time() {
        let p = small_profile();
        let run = || {
            let mut tele = gd_obs::Telemetry::new();
            evaluate_app_tele(
                &p,
                small(),
                4_000,
                1,
                MeasureOpts::default(),
                Some(&mut tele),
            )
            .unwrap();
            tele
        };
        let tele = run();
        // Both interleave scopes exported their DRAM books.
        assert!(tele.registry.counter("interleaved.dram.cycles") > 0);
        assert!(tele.registry.counter("linear.dram.cycles") > 0);
        // Every rank's residency histogram sums to that run's cycle count.
        for scope in ["interleaved", "linear"] {
            let elapsed = tele.registry.counter(&format!("{scope}.dram.cycles"));
            let v = gd_verify::telemetry::check_residencies(
                &tele.registry,
                &format!("{scope}.dram."),
                elapsed,
                gd_verify::Mode::Strict,
            )
            .unwrap();
            assert_eq!(v, 0);
        }
        // Bit-identical across repeat runs.
        assert_eq!(tele.render_jsonl("p"), run().render_jsonl("p"));
    }

    #[test]
    fn rank_baselines_save_only_without_interleaving() {
        let p = small_profile();
        let rows = evaluate_app(&p, small(), 6_000, 3).unwrap();
        let rz_with = find_row(&rows, "RAMZzz", true).unwrap();
        let rz_without = find_row(&rows, "RAMZzz", false).unwrap();
        // Without interleaving RAMZzz parks ranks in self-refresh: lower
        // DRAM power. With interleaving it cannot.
        let srf_with = find_row(&rows, "srf_only", true).unwrap();
        assert!(rz_without.dram_norm < 1.0);
        assert!(rz_with.dram_norm >= srf_with.dram_norm * 0.99);
    }
}
