//! Robustness under injected faults (the `fig_faults` experiment): how
//! GreenDIMM's energy savings and stall overhead degrade as the
//! deterministic fault rate rises across the daemon/mmsim/dram layers.
//!
//! Each point co-simulates the managed region with [`gd_faults`] injectors
//! wired into the memory manager (pinned-page rejections, mid-migration
//! aborts with rollback, slow migrations) and the daemon (deep power-down
//! entry NACKs, delayed MRS acks, transient buddy-wake failures), then
//! probes the cycle-level DRAM model — with wake latencies stretched when
//! the bench-level injector fires — and evaluates the governor with the
//! observed offline-failure breakdown charged ([`gd_baselines::sanity`]).
//!
//! Determinism contract: every injector stream derives from
//! `derive_seed(seed, layer)`, so a row is a pure function of
//! `(profile, rate, engine, seed)` — byte-identical for any `--jobs` and
//! either time-advance engine — and a rate-0 row is byte-identical to a
//! run with no injectors installed at all.

use gd_baselines::{
    checked_evaluate, sanity_checker, GovernorContext, GovernorOutcome, GreenDimmGovernor,
    OfflineFailureBreakdown, SrfOnly,
};
use gd_dram::{EngineMode, LowPowerPolicy, MemorySystem};
use gd_faults::{FaultPlan, FaultSite, WAKE_STRETCH};
use gd_mmsim::{MemoryManager, MmConfig, PageKind, PAGE_BYTES};
use gd_obs::Telemetry;
use gd_power::{ActivityProfile, DramPowerModel};
use gd_types::config::{DramConfig, InterleaveMode};
use gd_types::rng::derive_seed;
use gd_types::{Result, SimTime};
use gd_verify::Mode;
use gd_workloads::{AppProfile, TraceGenerator};
use greendimm::{Daemon, DaemonStats, EpochSim, FootprintDriver, GreenDimmConfig, GroupMap};

use crate::blocks::{nominal_runtime_s, MANAGED_BYTES};

/// The fault rates swept by `fig_faults` (probability per injection site).
pub const FAULT_RATES: [f64; 6] = [0.0, 0.02, 0.05, 0.1, 0.2, 0.4];

/// Requests in the cycle-level DRAM probe of each point.
const PROBE_REQUESTS: usize = 6_000;

/// One point of the robustness curve.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessRow {
    /// Benchmark name.
    pub app: String,
    /// Per-site fault probability this row ran with.
    pub fault_rate: f64,
    /// Time-averaged off-lined capacity in GiB.
    pub offlined_gib_avg: f64,
    /// Execution-time increase caused by GreenDIMM under faults (stall
    /// overhead: hotplug time inflated by retries/aborts, interference,
    /// and the failure-time lower bound).
    pub overhead_fraction: f64,
    /// DRAM energy saved vs `srf_only` on the same measurement.
    pub energy_savings: f64,
    /// Faults the mm + daemon + bench injectors fired during the run.
    pub faults_injected: u64,
    /// Daemon retry attempts (quarantine re-entries + buddy-wake retries).
    pub retries: u64,
    /// Mid-migration aborts rolled back transactionally.
    pub rollbacks: u64,
    /// Groups permanently degraded to shallow power-down.
    pub degraded_groups: u64,
    /// Mean read latency of the DRAM probe, in memory cycles (stretched
    /// when the wake-stretch fault fired).
    pub probe_latency_cycles: f64,
    /// Offline-failure breakdown charged to the governor.
    pub offline_failures: OfflineFailureBreakdown,
    /// Full daemon counters after the run.
    pub daemon: DaemonStats,
}

/// Runs one robustness point at `fault_rate` (see [`FAULT_RATES`]).
///
/// # Errors
///
/// Propagates simulator-setup errors; with `Some(Mode::Strict)`, also any
/// co-simulation invariant or governor-sanity violation.
pub fn robustness_experiment(
    profile: &AppProfile,
    fault_rate: f64,
    engine: EngineMode,
    seed: u64,
    verify: Option<Mode>,
    with_telemetry: bool,
) -> Result<(RobustnessRow, Option<Telemetry>)> {
    let plan = (fault_rate > 0.0).then(|| FaultPlan::uniform(fault_rate));
    robustness_experiment_with_plan(
        profile,
        plan.as_ref(),
        fault_rate,
        engine,
        seed,
        verify,
        with_telemetry,
    )
}

/// [`robustness_experiment`] with an explicit fault plan. `None` installs
/// no injectors anywhere; `Some(plan)` installs per-layer injectors even
/// when the plan is inactive — the rate-0 byte-identity test relies on an
/// installed-but-inactive injector being indistinguishable from none.
///
/// # Errors
///
/// Same as [`robustness_experiment`].
#[allow(clippy::too_many_lines)]
pub fn robustness_experiment_with_plan(
    profile: &AppProfile,
    plan: Option<&FaultPlan>,
    fault_rate: f64,
    engine: EngineMode,
    seed: u64,
    verify: Option<Mode>,
    with_telemetry: bool,
) -> Result<(RobustnessRow, Option<Telemetry>)> {
    // --- Managed-region co-simulation with mm + daemon injectors. ---
    let mm_cfg = MmConfig {
        capacity_bytes: MANAGED_BYTES,
        block_bytes: 128 << 20,
        movablecore_bytes: None,
        unmovable_leak_prob: 0.0,
        transient_fail_prob: 0.0,
        seed,
    };
    let mut mm = MemoryManager::new(mm_cfg)?;
    let kernel_pages = mm.meminfo().installed_pages / 100;
    mm.allocate(kernel_pages.max(1), PageKind::KernelUnmovable)?;
    let map = GroupMap::new(MANAGED_BYTES, 64, mm_cfg.block_bytes)?;
    let mut daemon = Daemon::new(GreenDimmConfig::paper_default().with_seed(seed), map);
    if let Some(p) = plan {
        mm.set_fault_injector(p.build(derive_seed(seed, "faults.mm")));
        daemon.set_fault_injector(p.build(derive_seed(seed, "faults.daemon")));
    }
    let mut sim = EpochSim::new(mm, daemon, None);
    if let Some(mode) = verify {
        sim.enable_verification(mode);
    }
    if with_telemetry {
        sim.enable_telemetry();
    }
    sim.settle(120)?;
    let settle_stats = sim.daemon.stats;
    let settle_mm = sim.mm.stats.clone();
    let settle_fired = injector_fired(&sim);

    let runtime_s = nominal_runtime_s(profile);
    let epochs = runtime_s.ceil().clamp(10.0, 1_800.0) as u64;
    let peak_pages = profile.footprint_bytes().min(MANAGED_BYTES * 8 / 10) / PAGE_BYTES;
    let cache_max_pages = (2u64 << 30) / PAGE_BYTES;
    let cache_rate_pages = (24u64 << 20) / PAGE_BYTES;
    let reclaim_period_s = 60;
    let mut fp = FootprintDriver::new();
    let mut cache = FootprintDriver::new();
    let mut offline_gib_sum = 0.0;
    let mut down_groups_sum = 0.0;
    let groups = sim.daemon.group_map().groups() as f64;
    for t in 0..epochs {
        let frac = profile.footprint_fraction_at(t as f64 * runtime_s / epochs as f64);
        let _ = sim.set_footprint(&mut fp, (peak_pages as f64 * frac) as u64);
        let cache_phase = t % reclaim_period_s;
        let cache_target = if cache_phase == 0 && t > 0 {
            cache.pages() / 4
        } else {
            (cache.pages() + cache_rate_pages).min(cache_max_pages)
        };
        let _ = sim.set_footprint(&mut cache, cache_target);
        sim.step(SimTime::from_secs(1))?;
        let info = sim.mm.meminfo();
        offline_gib_sum += (info.offline_pages * PAGE_BYTES) as f64 / (1u64 << 30) as f64;
        down_groups_sum += sim.daemon.registers().down_count() as f64;
    }
    let d = sim.daemon.stats;
    let run_events = d.hotplug_events() - settle_stats.hotplug_events();
    let run_hotplug_time = d.hotplug_time - settle_stats.hotplug_time;
    let failures = OfflineFailureBreakdown {
        pinned: sim.mm.stats.offline_pinned - settle_mm.offline_pinned,
        kernel_block: sim.mm.stats.offline_kernel - settle_mm.offline_kernel,
        migration_aborted: sim.mm.stats.offline_eagain - settle_mm.offline_eagain,
    };
    let rollbacks = sim.mm.stats.rollbacks - settle_mm.rollbacks;
    let offlined_gib_avg = offline_gib_sum / epochs as f64;

    // --- Cycle-level DRAM probe, wake latencies stretched on fault. ---
    let mut bench_inj = plan.map(|p| p.build(derive_seed(seed, "faults.bench")));
    let stretched = bench_inj
        .as_mut()
        .is_some_and(|f| f.should_fire(FaultSite::WakeStretch));
    let dram_cfg = DramConfig::small_test().with_interleave(InterleaveMode::Interleaved);
    let mut probe = if stretched {
        MemorySystem::with_wake_stretch(dram_cfg, LowPowerPolicy::srf_default(), WAKE_STRETCH)?
    } else {
        MemorySystem::new(dram_cfg, LowPowerPolicy::srf_default())?
    };
    probe.set_engine_mode(engine);
    let cap = dram_cfg.total_capacity_bytes();
    let mut gen = TraceGenerator::new(profile.clone(), seed);
    let trace: Vec<_> = gen
        .take(PROBE_REQUESTS)
        .into_iter()
        .map(|mut r| {
            r.addr %= cap;
            r
        })
        .collect();
    let probe_stats = probe.run_trace(trace)?;
    let probe_latency = probe_stats.read_latency.mean().unwrap_or(0.0);

    // --- Governor evaluation with the failure breakdown charged. ---
    let interference_s = greendimm::system::INTERFERENCE_COEFF
        * run_events as f64
        * profile.mpki.max(0.1)
        * (profile.footprint_bytes() as f64 / (1u64 << 30) as f64);
    let cosim_overhead_s = run_hotplug_time.as_secs_f64() + interference_s + 0.001 * epochs as f64;
    let ctx = GovernorContext {
        interleaved: true,
        footprint_bytes: profile.footprint_bytes(),
        capacity_bytes: MANAGED_BYTES,
        ranks: dram_cfg.org.total_ranks(),
        banks_per_rank: dram_cfg.org.banks_per_rank(),
        measured_sr_fraction: probe_stats.mean_self_refresh_fraction(),
        runtime_s,
        // Energy is gated by what actually sits in deep power-down — the
        // time-averaged register down-fraction, not the off-lined capacity.
        // NACK quarantines and degraded (shallow-PD) groups show up here.
        offline_fraction: (down_groups_sum / epochs as f64 / groups).clamp(0.0, 1.0),
        offline_failures: failures,
    };
    let gd = GreenDimmGovernor {
        overhead_fraction: (cosim_overhead_s / runtime_s).max(0.0),
    };
    let mut sanity = sanity_checker(verify.unwrap_or(Mode::Record));
    let gd_out = checked_evaluate(&gd, &ctx, &mut sanity)?;
    // The baseline never off-lines memory, so its context carries neither
    // an offline fraction nor the failures off-lining caused.
    let srf_ctx = GovernorContext {
        offline_fraction: 0.0,
        offline_failures: OfflineFailureBreakdown::default(),
        ..ctx
    };
    let srf_out = checked_evaluate(&SrfOnly, &srf_ctx, &mut sanity)?;
    let model = DramPowerModel::new(dram_cfg);
    let gd_j = dram_energy_j(&model, profile, &ctx, &gd_out);
    let srf_j = dram_energy_j(&model, profile, &ctx, &srf_out);

    let faults_injected = injector_fired(&sim) - settle_fired
        + bench_inj
            .as_ref()
            .map_or(0, gd_faults::FaultInjector::total_fired);
    sim.export_telemetry("faults");
    let mut tele = sim.telemetry.take();
    if let (Some(t), Some(f)) = (tele.as_mut(), bench_inj.as_ref()) {
        f.export_telemetry(t, "faults.bench");
    }
    Ok((
        RobustnessRow {
            app: profile.name.to_string(),
            fault_rate,
            offlined_gib_avg,
            overhead_fraction: gd_out.overhead_s / runtime_s,
            energy_savings: 1.0 - gd_j / srf_j,
            faults_injected,
            retries: d.retries - settle_stats.retries,
            rollbacks,
            degraded_groups: sim.daemon.degraded_groups(),
            probe_latency_cycles: probe_latency,
            offline_failures: failures,
            daemon: d,
        },
        tele,
    ))
}

/// Total faults fired across the co-simulation's mm + daemon injectors.
fn injector_fired(sim: &EpochSim) -> u64 {
    sim.mm
        .fault_injector()
        .map_or(0, gd_faults::FaultInjector::total_fired)
        + sim
            .daemon
            .fault_injector()
            .map_or(0, gd_faults::FaultInjector::total_fired)
}

/// DRAM energy for one governor outcome (the `energy_cell` model, reduced
/// to the pieces the robustness curve needs).
fn dram_energy_j(
    model: &DramPowerModel,
    profile: &AppProfile,
    ctx: &GovernorContext,
    out: &GovernorOutcome,
) -> f64 {
    let runtime = ctx.runtime_s + out.overhead_s;
    let lp = (out.sr_fraction + out.pd_fraction).clamp(0.0, 1.0);
    let awake = 1.0 - lp;
    let activity = ActivityProfile {
        bandwidth_util: 0.2,
        read_fraction: profile.read_fraction,
        act_per_access: 1.0 - profile.row_locality,
        active_standby: awake * 0.6,
        precharge_standby: awake * 0.4,
        power_down: out.pd_fraction,
        self_refresh: out.sr_fraction,
    };
    model.analytic_power_w(&activity, &out.gating) * runtime
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_workloads::by_name;

    #[test]
    fn rate_zero_is_byte_identical_to_no_injectors() {
        let mcf = by_name("mcf").unwrap();
        let inactive = FaultPlan::uniform(0.0);
        let (with_plan, t1) = robustness_experiment_with_plan(
            &mcf,
            Some(&inactive),
            0.0,
            EngineMode::EventDriven,
            7,
            None,
            true,
        )
        .unwrap();
        let (without, t2) = robustness_experiment_with_plan(
            &mcf,
            None,
            0.0,
            EngineMode::EventDriven,
            7,
            None,
            true,
        )
        .unwrap();
        assert_eq!(with_plan, without);
        assert_eq!(t1.unwrap().render_jsonl("p"), t2.unwrap().render_jsonl("p"));
    }

    #[test]
    fn faulted_rows_agree_across_engine_modes() {
        let mcf = by_name("mcf").unwrap();
        let run = |engine| {
            robustness_experiment(&mcf, 0.2, engine, 11, Some(Mode::Strict), true).unwrap()
        };
        let (stepped, ts) = run(EngineMode::Stepped);
        let (event, te) = run(EngineMode::EventDriven);
        assert!(stepped.faults_injected > 0, "the plan must bite");
        assert_eq!(stepped, event);
        assert_eq!(ts.unwrap().render_jsonl("p"), te.unwrap().render_jsonl("p"));
    }

    #[test]
    fn rising_fault_rate_raises_overhead() {
        let mcf = by_name("mcf").unwrap();
        let run = |rate| {
            robustness_experiment(&mcf, rate, EngineMode::EventDriven, 3, None, false)
                .unwrap()
                .0
        };
        let clean = run(0.0);
        let faulty = run(0.4);
        assert!(faulty.faults_injected > 0);
        assert!(
            faulty.overhead_fraction >= clean.overhead_fraction,
            "faulty {} vs clean {}",
            faulty.overhead_fraction,
            clean.overhead_fraction
        );
        assert!(clean.energy_savings > 0.0);
    }
}
