//! `--telemetry <path>` wiring for the figure/table binaries.
//!
//! Each sweep point runs with its own [`Telemetry`] shard (points share no
//! mutable state, so shards need no locking); the harness merges the
//! shards **in point order** after the sweep joins, wrapping each one in a
//! synthetic `sweep.point` span so the merged JSONL reads as one document.
//! Because the merge order is the point order — never the completion
//! order — the rendered bytes are identical for any `--jobs N` and for
//! either time-advance engine.

use gd_obs::{Telemetry, Trace, Value};
use gd_types::SimTime;
use std::io::Write as _;
use std::path::PathBuf;

/// Parsed telemetry options of a figure binary.
#[derive(Debug, Clone, Default)]
pub struct TelemetryOpts {
    /// Where to write the merged JSONL trace; `None` disables telemetry
    /// entirely (simulation code then skips all instrumentation).
    pub path: Option<PathBuf>,
}

impl TelemetryOpts {
    /// Parses `--telemetry PATH` from the process arguments (also honoring
    /// a `GD_TELEMETRY` environment override), ignoring flags it does not
    /// know about so it composes with the other `from_args` parsers.
    pub fn from_args() -> Self {
        let mut opts = TelemetryOpts::default();
        if let Ok(p) = std::env::var("GD_TELEMETRY") {
            if !p.is_empty() {
                opts.path = Some(PathBuf::from(p));
            }
        }
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            if args[i] == "--telemetry" {
                if let Some(p) = args.get(i + 1) {
                    opts.path = Some(PathBuf::from(p));
                    i += 1;
                }
            }
            i += 1;
        }
        opts
    }

    /// True when a telemetry sink was requested.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.path.is_some()
    }

    /// A fresh per-point shard, or `None` when telemetry is off.
    #[must_use]
    pub fn shard(&self) -> Option<Telemetry> {
        self.enabled().then(Telemetry::new)
    }

    /// Merges labelled shards in the given (point) order and writes the
    /// JSONL file. Shards that are `None` (telemetry off, or a point that
    /// produced nothing) are skipped. Prints a warning (but does not fail
    /// the figure) if the write is impossible; no-op when disabled.
    pub fn write(&self, shards: &[(String, Option<Telemetry>)]) {
        let Some(path) = &self.path else {
            return;
        };
        let payload = render_shards(shards);
        let write = std::fs::File::create(path).and_then(|mut f| f.write_all(payload.as_bytes()));
        match write {
            Ok(()) => println!("[telemetry -> {}]", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}

/// Renders labelled shards as one JSONL document, in slice order, each
/// wrapped in a synthetic `sweep.point` span (stamped at sim time zero:
/// the wrapper is structural, not temporal — each shard's own events carry
/// the real sim times).
#[must_use]
pub fn render_shards(shards: &[(String, Option<Telemetry>)]) -> String {
    let mut out = String::new();
    for (label, tele) in shards {
        let Some(tele) = tele else {
            continue;
        };
        let mut wrap = Trace::default();
        wrap.span_open(SimTime::ZERO, "sweep.point");
        wrap.render_jsonl(label, &mut out);
        out.push_str(&tele.render_jsonl(label));
        let mut wrap = Trace::default();
        wrap.span_close(
            SimTime::ZERO,
            "sweep.point",
            &[("events", Value::U64(tele.trace.events().len() as u64))],
        );
        wrap.render_jsonl(label, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_opts_produce_no_shards() {
        let opts = TelemetryOpts::default();
        assert!(!opts.enabled());
        assert!(opts.shard().is_none());
        opts.write(&[]); // must be a silent no-op
    }

    #[test]
    fn shards_merge_in_slice_order_with_wrappers() {
        let mk = |n: u64| {
            let mut t = Telemetry::new();
            t.registry.counter_add("c", n);
            Some(t)
        };
        let out = render_shards(&[("p1".into(), mk(1)), ("p0".into(), mk(2))]);
        let lines: Vec<&str> = out.lines().collect();
        // p1 before p0: slice order wins, not label order.
        assert!(lines[0].contains("\"point\":\"p1\"") && lines[0].contains("sweep.point"));
        assert!(lines[1].contains("\"counter\"") && lines[1].contains("\"value\":1"));
        assert!(lines[2].contains("\"span_close\""));
        assert!(lines[3].contains("\"point\":\"p0\""));
        // Rendering twice is byte-identical.
        assert_eq!(
            out,
            render_shards(&[("p1".into(), mk(1)), ("p0".into(), mk(2))])
        );
    }

    #[test]
    fn none_shards_are_skipped() {
        let out = render_shards(&[("p0".into(), None), ("p1".into(), None)]);
        assert!(out.is_empty());
    }
}
