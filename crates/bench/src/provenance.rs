//! Result provenance: every regenerated `results/*.txt` snapshot starts
//! with a `# provenance:` header recording what produced it, so a stale
//! snapshot (produced by an older simulator) is mechanically detectable —
//! CI regenerates a cheap figure and diffs it against the committed file.
//!
//! The header must itself be deterministic across machines: the config is
//! identified by an FNV-1a hash of its canonical description, the engine
//! mode is named explicitly, and `jobs` renders as `auto` unless the user
//! pinned it (sweep output is jobs-invariant, so the machine's core count
//! must not leak into the snapshot).

use crate::sweep::SweepOpts;

/// 64-bit FNV-1a over a string — stable across platforms and runs, good
/// enough to fingerprint a config description.
#[must_use]
pub fn fnv1a(data: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in data.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Builds the one-line provenance header for a figure snapshot.
///
/// `config_desc` is a canonical human-readable description of everything
/// that determines the figure's numbers (platform config, seeds, durations);
/// only its hash lands in the header. `engine` names the time-advance
/// engine the figure ran with (`"event-driven"` for every default run).
#[must_use]
pub fn provenance_line_with_engine(
    fig: &str,
    config_desc: &str,
    engine: &str,
    opts: &SweepOpts,
) -> String {
    let jobs = if opts.jobs_explicit {
        opts.jobs.to_string()
    } else {
        "auto".to_string()
    };
    let requests = match opts.requests {
        Some(r) => r.to_string(),
        None => "default".to_string(),
    };
    format!(
        "# provenance: fig={fig} config={:016x} engine={engine} jobs={jobs} \
         requests={requests} version={}",
        fnv1a(config_desc),
        env!("CARGO_PKG_VERSION")
    )
}

/// [`provenance_line_with_engine`] for the default event-driven engine.
#[must_use]
pub fn provenance_line(fig: &str, config_desc: &str, opts: &SweepOpts) -> String {
    provenance_line_with_engine(fig, config_desc, "event-driven", opts)
}

/// Prints the provenance header (first line of every regenerated snapshot).
pub fn print_provenance(fig: &str, config_desc: &str, opts: &SweepOpts) {
    println!("{}", provenance_line(fig, config_desc, opts));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a("config-a"), fnv1a("config-b"));
    }

    #[test]
    fn default_opts_render_machine_independent() {
        let line = provenance_line("fig05_addrmap", "ddr4-2133 64GB", &SweepOpts::default());
        assert!(line.starts_with("# provenance: fig=fig05_addrmap config="));
        // The machine's core count must not appear: CI diffs this line.
        assert!(line.contains("jobs=auto"), "{line}");
        assert!(line.contains("requests=default"), "{line}");
        assert!(line.contains("engine=event-driven"), "{line}");
    }

    #[test]
    fn explicit_opts_are_recorded() {
        let opts = SweepOpts {
            jobs: 4,
            jobs_explicit: true,
            requests: Some(1000),
        };
        let line = provenance_line("fig03", "cfg", &opts);
        assert!(line.contains("jobs=4"), "{line}");
        assert!(line.contains("requests=1000"), "{line}");
    }

    #[test]
    fn config_changes_change_the_hash() {
        let a = provenance_line("f", "seed=1", &SweepOpts::default());
        let b = provenance_line("f", "seed=2", &SweepOpts::default());
        assert_ne!(a, b);
    }
}
