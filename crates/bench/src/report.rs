//! Minimal fixed-width table printing for the figure/table binaries.

/// Prints a header row followed by a rule.
pub fn header(title: &str, cols: &[&str], widths: &[usize]) {
    println!("\n=== {title} ===");
    let mut line = String::new();
    for (c, w) in cols.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len().min(120)));
}

/// Formats one cell-aligned row.
pub fn row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{line}");
}

/// Percent formatting helper.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Two-decimal float formatting helper.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.365), "36.5%");
        assert_eq!(f2(1.239), "1.24");
    }
}
