//! Block-size and off-lining-failure experiments (Figs. 6–8, Table 2).
//!
//! The paper runs these on a managed (movablecore-style) region of the
//! machine: with 128 MB blocks, one block maps to exactly one sub-array
//! group of the managed region; 256/512 MB blocks map to two/four.

use gd_dram::EngineMode;
use gd_mmsim::{MemoryManager, MmConfig, PageKind, PAGE_BYTES};
use gd_types::{Result, SimTime};
use gd_workloads::AppProfile;
use greendimm::{Daemon, DaemonStats, EpochSim, FootprintDriver, GreenDimmConfig, GroupMap};

/// Managed capacity for the block-size studies (the paper's
/// `movablecore=8G` example).
pub const MANAGED_BYTES: u64 = 8 << 30;

/// Nominal memory latency used to estimate runtimes in the epoch-only
/// experiments (no cycle simulation needed for hotplug dynamics).
pub const NOMINAL_LATENCY_CYCLES: f64 = 120.0;

/// Result of one (app, block-size, selector) co-simulation.
#[derive(Debug, Clone)]
pub struct BlockSizeRow {
    /// Benchmark name.
    pub app: String,
    /// Block size in MiB.
    pub block_mib: u64,
    /// Time-averaged off-lined capacity in GiB (Fig. 6).
    pub offlined_gib_avg: f64,
    /// Execution-time increase caused by GreenDIMM (Fig. 7).
    pub overhead_fraction: f64,
    /// On-lining + off-lining events (Table 2).
    pub hotplug_events: u64,
    /// Off-lining failures (Fig. 8).
    pub failures: u64,
    /// EAGAIN share of failures.
    pub failures_eagain: u64,
    /// Full daemon counters.
    pub daemon: DaemonStats,
}

/// Runs the managed-region co-simulation for one app and block size.
///
/// # Errors
///
/// Propagates simulator-setup errors.
pub fn block_size_experiment(
    profile: &AppProfile,
    block_mib: u64,
    gd_cfg: GreenDimmConfig,
    mm_cfg_tweaks: impl FnOnce(MmConfig) -> MmConfig,
    seed: u64,
) -> Result<BlockSizeRow> {
    block_size_experiment_verified(profile, block_mib, gd_cfg, mm_cfg_tweaks, seed, None)
}

/// [`block_size_experiment`] with optional runtime invariant checking on
/// the co-simulation (`--strict-validate` in the figure binaries).
///
/// # Errors
///
/// Propagates simulator-setup errors; with `Some(Mode::Strict)`, also any
/// invariant violation the harness detects.
pub fn block_size_experiment_verified(
    profile: &AppProfile,
    block_mib: u64,
    gd_cfg: GreenDimmConfig,
    mm_cfg_tweaks: impl FnOnce(MmConfig) -> MmConfig,
    seed: u64,
    verify: Option<gd_verify::Mode>,
) -> Result<BlockSizeRow> {
    Ok(block_size_experiment_tele(
        profile,
        block_mib,
        gd_cfg,
        mm_cfg_tweaks,
        seed,
        verify,
        false,
        EngineMode::EventDriven,
    )?
    .0)
}

/// [`block_size_experiment_verified`] with optional telemetry and engine
/// selection: when `with_telemetry` is true the co-simulation traces every
/// daemon tick and allocation stall, exports the mm/daemon books under the
/// `blocks.*` scope, and returns the filled sink.
///
/// The managed-region loop steps at 1 s epochs, so `Stepped` and
/// `EventDriven` are the same exact engine here. `EpochReplay`
/// fast-forwards an epoch when both footprint targets repeat the previous
/// epoch's *and* the previous exactly-simulated epoch moved no blocks —
/// the page cache churns most epochs, so replay only engages across the
/// settled stretches between reclaim events.
///
/// # Errors
///
/// Same as [`block_size_experiment_verified`].
#[allow(clippy::too_many_arguments)]
pub fn block_size_experiment_tele(
    profile: &AppProfile,
    block_mib: u64,
    gd_cfg: GreenDimmConfig,
    mm_cfg_tweaks: impl FnOnce(MmConfig) -> MmConfig,
    seed: u64,
    verify: Option<gd_verify::Mode>,
    with_telemetry: bool,
    engine: EngineMode,
) -> Result<(BlockSizeRow, Option<gd_obs::Telemetry>)> {
    let mm_cfg = mm_cfg_tweaks(MmConfig {
        capacity_bytes: MANAGED_BYTES,
        block_bytes: block_mib << 20,
        movablecore_bytes: None,
        unmovable_leak_prob: 0.0,
        transient_fail_prob: 0.0,
        seed,
    });
    let mut mm = MemoryManager::new(mm_cfg)?;
    // A small kernel presence inside the managed region (the paper notes
    // reserved movable regions still acquire unmovable pages).
    let kernel_pages = mm.meminfo().installed_pages / 100;
    mm.allocate(kernel_pages.max(1), PageKind::KernelUnmovable)?;
    let map = GroupMap::new(MANAGED_BYTES, 64, mm_cfg.block_bytes)?;
    let daemon = Daemon::new(gd_cfg.with_seed(seed), map);
    let mut sim = EpochSim::new(mm, daemon, None);
    if let Some(mode) = verify {
        sim.enable_verification(mode);
    }
    if with_telemetry {
        sim.enable_telemetry();
    }
    sim.settle(120)?;
    let settle_stats = sim.daemon.stats;

    // Drive the footprint through the app's runtime at 1 s epochs. A page
    // cache grows alongside (file I/O) and is periodically reclaimed — the
    // background memory activity that keeps the daemon busy even for
    // constant-footprint benchmarks (the paper's povray still sees ~40
    // on/off-linings).
    let runtime_s = nominal_runtime_s(profile);
    let epochs = runtime_s.ceil().clamp(10.0, 1_800.0) as u64;
    let peak_pages = profile.footprint_bytes().min(MANAGED_BYTES * 8 / 10) / PAGE_BYTES;
    let cache_max_pages = (2u64 << 30) / PAGE_BYTES;
    let cache_rate_pages = (24u64 << 20) / PAGE_BYTES; // 24 MB/s of file I/O
    let reclaim_period_s = 60;
    let mut fp = FootprintDriver::new();
    let mut cache = FootprintDriver::new();
    let mut offline_gib_sum = 0.0;
    let mut prev_targets = (u64::MAX, u64::MAX);
    let mut prev_offline_pages = 0u64;
    let mut prev_hotplug = settle_stats.hotplug_events();
    let mut last_quiet = false;
    for t in 0..epochs {
        let frac = profile.footprint_fraction_at(t as f64 * runtime_s / epochs as f64);
        let fp_target = (peak_pages as f64 * frac) as u64;
        let cache_phase = t % reclaim_period_s;
        let cache_target = if cache_phase == 0 && t > 0 {
            cache.pages() / 4 // reclaim drops most of the cache
        } else {
            (cache.pages() + cache_rate_pages).min(cache_max_pages)
        };
        let replay = matches!(engine, EngineMode::EpochReplay(_))
            && (fp_target, cache_target) == prev_targets
            && last_quiet;
        if replay {
            // Targets repeat and the previous exact epoch was stationary:
            // skip the epoch analytically.
            sim.fast_forward(SimTime::from_secs(1));
            offline_gib_sum += (prev_offline_pages * PAGE_BYTES) as f64 / (1u64 << 30) as f64;
            continue;
        }
        let _ = sim.set_footprint(&mut fp, fp_target);
        let _ = sim.set_footprint(&mut cache, cache_target);
        sim.step(SimTime::from_secs(1))?;
        let info = sim.mm.meminfo();
        offline_gib_sum += (info.offline_pages * PAGE_BYTES) as f64 / (1u64 << 30) as f64;
        let hotplug = sim.daemon.stats.hotplug_events();
        last_quiet = info.offline_pages == prev_offline_pages && hotplug == prev_hotplug;
        prev_targets = (fp_target, cache_target);
        prev_offline_pages = info.offline_pages;
        prev_hotplug = hotplug;
    }
    // Counters attributable to the app run (settling excluded, as the paper
    // measures during benchmark execution).
    let d = sim.daemon.stats;
    let run_events = d.hotplug_events() - settle_stats.hotplug_events();
    let run_failures = d.failures() - settle_stats.failures();
    let run_eagain = d.failures_eagain - settle_stats.failures_eagain;
    let run_hotplug_time = d.hotplug_time - settle_stats.hotplug_time;

    let interference_s = greendimm::system::INTERFERENCE_COEFF
        * run_events as f64
        * profile.mpki.max(0.1)
        * (profile.footprint_bytes() as f64 / (1u64 << 30) as f64);
    let overhead_s = run_hotplug_time.as_secs_f64() + interference_s + 0.001 * epochs as f64;

    sim.export_telemetry("blocks");
    let tele = sim.telemetry.take();
    Ok((
        BlockSizeRow {
            app: profile.name.to_string(),
            block_mib,
            offlined_gib_avg: offline_gib_sum / epochs as f64,
            overhead_fraction: overhead_s / runtime_s,
            hotplug_events: run_events,
            failures: run_failures,
            failures_eagain: run_eagain,
            daemon: d,
        },
        tele,
    ))
}

/// Nominal runtime from the CPU model at [`NOMINAL_LATENCY_CYCLES`].
pub fn nominal_runtime_s(profile: &AppProfile) -> f64 {
    gd_workloads::estimate_runtime(profile, NOMINAL_LATENCY_CYCLES, 4.5e9).seconds
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_workloads::by_name;
    use greendimm::SelectorPolicy;

    #[test]
    fn smaller_blocks_offline_more_capacity() {
        // Fig. 6's headline: gcc off-lines more with 128 MB than 512 MB
        // blocks because of quantization and churn.
        let gcc = by_name("gcc").unwrap();
        let r128 =
            block_size_experiment(&gcc, 128, GreenDimmConfig::paper_default(), |c| c, 1).unwrap();
        let r512 =
            block_size_experiment(&gcc, 512, GreenDimmConfig::paper_default(), |c| c, 1).unwrap();
        assert!(
            r128.offlined_gib_avg >= r512.offlined_gib_avg,
            "128MB {} vs 512MB {}",
            r128.offlined_gib_avg,
            r512.offlined_gib_avg
        );
    }

    #[test]
    fn smaller_blocks_mean_more_events() {
        // Table 2's trend for a churning app.
        let gcc = by_name("gcc").unwrap();
        let r128 =
            block_size_experiment(&gcc, 128, GreenDimmConfig::paper_default(), |c| c, 1).unwrap();
        let r512 =
            block_size_experiment(&gcc, 512, GreenDimmConfig::paper_default(), |c| c, 1).unwrap();
        assert!(
            r128.hotplug_events > r512.hotplug_events,
            "128MB {} vs 512MB {}",
            r128.hotplug_events,
            r512.hotplug_events
        );
    }

    #[test]
    fn overhead_stays_small() {
        // Fig. 7: all cases below ~3 %.
        let mcf = by_name("mcf").unwrap();
        let r =
            block_size_experiment(&mcf, 128, GreenDimmConfig::paper_default(), |c| c, 1).unwrap();
        assert!(r.overhead_fraction < 0.06, "{}", r.overhead_fraction);
    }

    #[test]
    fn epoch_replay_tracks_the_exact_engine() {
        let mcf = by_name("mcf").unwrap();
        let run = |engine: EngineMode| {
            block_size_experiment_tele(
                &mcf,
                128,
                GreenDimmConfig::paper_default(),
                |c| c,
                1,
                None,
                false,
                engine,
            )
            .unwrap()
            .0
        };
        let exact = run(EngineMode::EventDriven);
        let replay = run(EngineMode::EpochReplay(Default::default()));
        if replay.daemon.replayed_ticks == 0 {
            // Replay never engaged: the run must be bit-identical.
            assert_eq!(replay.offlined_gib_avg, exact.offlined_gib_avg);
            assert_eq!(replay.hotplug_events, exact.hotplug_events);
        } else {
            // Replay skipped settled epochs only: the time-averaged
            // offlined capacity stays within a few percent.
            let rel = (replay.offlined_gib_avg - exact.offlined_gib_avg).abs()
                / exact.offlined_gib_avg.max(1e-9);
            assert!(rel < 0.05, "replay drifted {rel}");
        }
    }

    #[test]
    fn removable_first_fails_less_than_random() {
        // Fig. 8: checking `removable` first roughly halves failures.
        // Aggregate over seeds — individual runs are noisy.
        let gcc = by_name("gcc").unwrap();
        let tweaks = |c: MmConfig| MmConfig {
            transient_fail_prob: 0.6,
            unmovable_leak_prob: 0.10,
            ..c
        };
        let total = |policy: SelectorPolicy| -> u64 {
            (1..=3)
                .map(|seed| {
                    block_size_experiment(
                        &gcc,
                        128,
                        GreenDimmConfig::paper_default().with_selector(policy),
                        tweaks,
                        seed,
                    )
                    .unwrap()
                    .failures
                })
                .sum()
        };
        let random = total(SelectorPolicy::Random);
        let removable = total(SelectorPolicy::RemovableFirst);
        assert!(
            removable <= random,
            "removable {removable} vs random {random}"
        );
        assert!(random > 0, "random must produce some failures");
    }
}
