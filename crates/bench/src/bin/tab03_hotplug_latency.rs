//! Table 3: average latencies of off-lining, on-lining, and the two
//! failure modes (paper: 1.58 ms / 3.44 ms / EAGAIN 4.37 ms / EBUSY 6 µs),
//! measured by forcing each path through the hotplug machinery.
//!
//! One sweep point (`--jobs N` accepted for interface uniformity);
//! `--requests N` sets the iterations per path; timing lands in
//! `results/BENCH_tab03_hotplug_latency.json` and `--telemetry PATH`
//! dumps the mm books as JSONL.

use gd_bench::report::{header, row};
use gd_bench::{print_provenance, timed_sweep, SweepOpts, TelemetryOpts};
use gd_mmsim::{HotplugStats, MemoryManager, MmConfig, PageKind};
use gd_obs::Telemetry;

fn measure(iters: usize, tele: &mut Option<Telemetry>) -> HotplugStats {
    let mut mm = MemoryManager::new(MmConfig {
        transient_fail_prob: 1.0, // force EAGAIN on migration paths
        ..MmConfig::small_test()
    })
    .expect("config");

    // Success + online: free block.
    for _ in 0..iters {
        mm.offline_block(15).unwrap().unwrap();
        mm.online_block(15).unwrap();
    }
    // EBUSY: kernel pages in block 0.
    let kernel = mm.allocate(64, PageKind::KernelUnmovable).unwrap();
    for _ in 0..iters {
        mm.offline_block(0).unwrap().unwrap_err();
    }
    mm.free(kernel).unwrap();
    // EAGAIN: movable pages, but migration always transiently fails.
    let app = mm.allocate(1000, PageKind::UserMovable).unwrap();
    for _ in 0..iters {
        mm.offline_block(0).unwrap().unwrap_err();
    }
    mm.free(app).unwrap();
    if let Some(t) = tele {
        mm.export_telemetry(t, "tab03");
    }
    mm.stats
}

fn main() {
    let sw = SweepOpts::from_args();
    let topts = TelemetryOpts::from_args();
    let iters = sw.requests.unwrap_or(50);
    print_provenance(
        "tab03_hotplug_latency",
        &format!("mm-small-test transient_fail=1.0 iters={iters}"),
        &sw,
    );
    let points = ["latency"];
    let labels = vec!["latency".to_string()];
    let mut results = timed_sweep(
        "tab03_hotplug_latency",
        &points,
        &labels,
        sw.jobs,
        |_ctx, _| {
            let mut tele = topts.shard();
            let stats = measure(iters, &mut tele);
            (stats, tele)
        },
    );
    let s = &results[0].0;

    let widths = [22, 18, 14];
    header(
        "Table 3: hotplug operation latencies (while running mcf)",
        &["event", "avg latency", "paper"],
        &widths,
    );
    let fmt_us = |v: Option<f64>| match v {
        Some(us) if us >= 1000.0 => format!("{:.2} ms", us / 1000.0),
        Some(us) => format!("{us:.0} us"),
        None => "-".into(),
    };
    row(
        &[
            "off-lining".into(),
            fmt_us(s.offline_latency_us.mean()),
            "1.58 ms".into(),
        ],
        &widths,
    );
    row(
        &[
            "on-lining".into(),
            fmt_us(s.online_latency_us.mean()),
            "3.44 ms".into(),
        ],
        &widths,
    );
    row(
        &[
            "failure (EAGAIN)".into(),
            fmt_us(s.eagain_latency_us.mean()),
            "4.37 ms".into(),
        ],
        &widths,
    );
    row(
        &[
            "failure (EBUSY)".into(),
            fmt_us(s.ebusy_latency_us.mean()),
            "6 us".into(),
        ],
        &widths,
    );
    println!(
        "\ncounts: {} offline, {} online, {} EAGAIN, {} EBUSY",
        s.offline_success, s.online_count, s.offline_eagain, s.offline_ebusy
    );
    topts.write(&[("latency".to_string(), results[0].1.take())]);
}
