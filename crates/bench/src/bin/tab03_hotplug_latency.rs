//! Table 3: average latencies of off-lining, on-lining, and the two
//! failure modes (paper: 1.58 ms / 3.44 ms / EAGAIN 4.37 ms / EBUSY 6 µs),
//! measured by forcing each path through the hotplug machinery.

use gd_bench::report::{header, row};
use gd_mmsim::{MemoryManager, MmConfig, PageKind};

fn main() {
    let mut mm = MemoryManager::new(MmConfig {
        transient_fail_prob: 1.0, // force EAGAIN on migration paths
        ..MmConfig::small_test()
    })
    .expect("config");

    // Success + online: free block.
    for _ in 0..50 {
        mm.offline_block(15).unwrap().unwrap();
        mm.online_block(15).unwrap();
    }
    // EBUSY: kernel pages in block 0.
    let kernel = mm.allocate(64, PageKind::KernelUnmovable).unwrap();
    for _ in 0..50 {
        mm.offline_block(0).unwrap().unwrap_err();
    }
    mm.free(kernel).unwrap();
    // EAGAIN: movable pages, but migration always transiently fails.
    let app = mm.allocate(1000, PageKind::UserMovable).unwrap();
    for _ in 0..50 {
        mm.offline_block(0).unwrap().unwrap_err();
    }
    mm.free(app).unwrap();

    let s = &mm.stats;
    let widths = [22, 18, 14];
    header(
        "Table 3: hotplug operation latencies (while running mcf)",
        &["event", "avg latency", "paper"],
        &widths,
    );
    let fmt_us = |v: Option<f64>| match v {
        Some(us) if us >= 1000.0 => format!("{:.2} ms", us / 1000.0),
        Some(us) => format!("{us:.0} us"),
        None => "-".into(),
    };
    row(
        &[
            "off-lining".into(),
            fmt_us(s.offline_latency_us.mean()),
            "1.58 ms".into(),
        ],
        &widths,
    );
    row(
        &[
            "on-lining".into(),
            fmt_us(s.online_latency_us.mean()),
            "3.44 ms".into(),
        ],
        &widths,
    );
    row(
        &[
            "failure (EAGAIN)".into(),
            fmt_us(s.eagain_latency_us.mean()),
            "4.37 ms".into(),
        ],
        &widths,
    );
    row(
        &[
            "failure (EBUSY)".into(),
            fmt_us(s.ebusy_latency_us.mean()),
            "6 us".into(),
        ],
        &widths,
    );
    println!(
        "\ncounts: {} offline, {} online, {} EAGAIN, {} EBUSY",
        s.offline_success, s.online_count, s.offline_eagain, s.offline_ebusy
    );
}
