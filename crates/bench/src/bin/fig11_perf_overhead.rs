//! Fig. 11: execution-time increase by GreenDIMM across all workloads
//! (paper: gcc variants worst at <3 %, everything else <2 %, and no
//! visible p95/p99 degradation for the latency-critical services).
//!
//! Co-simulation points fan across the sweep pool (`--jobs N`); timing
//! lands in `results/BENCH_fig11_perf_overhead.json` and
//! `--telemetry PATH` dumps each run's daemon/mm books as JSONL.

use gd_bench::blocks::{block_size_experiment_tele, nominal_runtime_s};
use gd_bench::energy::{engine_name, MeasureOpts};
use gd_bench::report::{header, pct, row};
use gd_bench::{provenance_line_with_engine, timed_sweep, SweepOpts, TelemetryOpts};
use gd_types::stats::percentile;
use gd_workloads::energy_figure_set;
use greendimm::GreenDimmConfig;

fn main() {
    let opts = MeasureOpts::from_args();
    let sw = SweepOpts::from_args();
    let topts = TelemetryOpts::from_args();
    let verify = opts.strict_validate.then_some(gd_verify::Mode::Strict);
    println!(
        "{}",
        provenance_line_with_engine(
            "fig11_perf_overhead",
            "managed=8GiB energy-figure-set blocks=128 seed=1",
            engine_name(opts.engine),
            &sw,
        )
    );
    if verify.is_some() {
        println!("[strict-validate: co-simulation invariants enforced]");
    }
    let profiles = energy_figure_set();
    let labels: Vec<String> = profiles.iter().map(|p| p.name.to_string()).collect();
    let mut results = timed_sweep(
        "fig11_perf_overhead",
        &profiles,
        &labels,
        sw.jobs,
        |_ctx, p| {
            block_size_experiment_tele(
                p,
                128,
                GreenDimmConfig::paper_default(),
                |c| c,
                1,
                verify,
                topts.enabled(),
                opts.engine,
            )
            .expect("co-sim")
        },
    );
    topts.write(
        &labels
            .iter()
            .zip(&mut results)
            .map(|(l, (_, tele))| (l.clone(), tele.take()))
            .collect::<Vec<_>>(),
    );
    let results: Vec<_> = results.into_iter().map(|(r, _)| r).collect();

    let widths = [16, 10, 12];
    header(
        "Fig. 11: execution-time increase by GreenDIMM (1 GB-equivalent blocks)",
        &["app", "overhead", "events"],
        &widths,
    );
    let mut lc_reports = Vec::new();
    for (p, r) in profiles.iter().zip(results) {
        row(
            &[
                p.name.to_string(),
                pct(r.overhead_fraction),
                r.hotplug_events.to_string(),
            ],
            &widths,
        );
        if p.latency_critical {
            lc_reports.push((p.clone(), r));
        }
    }

    // Tail-latency check for the latency-critical services: inject the
    // measured hotplug stalls into a synthetic service-time distribution.
    println!("\nTail latency (latency-critical services):");
    for (p, r) in lc_reports {
        let runtime = nominal_runtime_s(&p);
        let base_ms = 2.0;
        let n = 100_000usize;
        // Fraction of requests that collide with a hotplug operation.
        let collision = (r.daemon.hotplug_time.as_secs_f64() / runtime).min(1.0);
        let samples: Vec<f64> = (0..n)
            .map(|i| {
                let jitter = 1.0 + (i % 17) as f64 / 17.0; // deterministic spread
                let stalled = (i as f64 / n as f64) < collision;
                base_ms * jitter + if stalled { 3.44 } else { 0.0 }
            })
            .collect();
        let baseline: Vec<f64> = (0..n)
            .map(|i| base_ms * (1.0 + (i % 17) as f64 / 17.0))
            .collect();
        let p99 = percentile(&samples, 99.0).expect("samples");
        let p99_base = percentile(&baseline, 99.0).expect("samples");
        println!(
            "  {:<14} p99 {:.3} ms vs baseline {:.3} ms ({:+.2}%)",
            p.name,
            p99,
            p99_base,
            (p99 / p99_base - 1.0) * 100.0
        );
    }
    println!("\npaper: <3% worst case (gcc); tails of data-caching/serving/web unaffected");
}
