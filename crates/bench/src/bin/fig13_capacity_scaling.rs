//! Fig. 13: DRAM and system power as capacity scales 256 GB → 1 TB with
//! the same VM load (paper: GreenDIMM −32 %/−9 % at 256 GB rising to
//! −36 %/−20 % at 1 TB; with KSM −55 %/−30 % at 1 TB).
//!
//! Each {capacity × KSM} VM-trace run is one sweep point (`--jobs N`);
//! `--requests N` trims the trace to N scheduler samples; timing lands in
//! `results/BENCH_fig13_capacity_scaling.json` and `--telemetry PATH`
//! dumps every run's daemon/mm/ksm books as JSONL.

use gd_bench::energy::{
    engine_name, memspec_suffix, platform_desc, reject_sampled_engine, MeasureOpts,
};
use gd_bench::report::{f2, header, pct, row};
use gd_bench::{
    provenance_line_with_engine, run_vm_trace_tele, timed_sweep, SweepOpts, TelemetryOpts,
    VmTraceConfig,
};
use gd_power::{memspec_for, ActivityProfile, PowerGating, SystemPowerModel};
use gd_types::config::{DramConfig, MemSpecKind};

fn main() {
    let sw = SweepOpts::from_args();
    let topts = TelemetryOpts::from_args();
    let duration_s = sw
        .requests
        .map(|n| (n as u64 * 300).clamp(3_600, 86_400))
        .unwrap_or(86_400);
    let mopts = MeasureOpts::from_args();
    if let Err(e) = reject_sampled_engine("fig13_capacity_scaling", &mopts) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    // The VM-trace co-simulation is mm/daemon-level (block off-lining and
    // deep power-down dwell) and memory-generation-independent; the backend
    // only changes the analytic power model the dwell fractions feed. Keep
    // the DDR4 config description verbatim so its provenance hash holds.
    let platform = match mopts.memspec {
        MemSpecKind::Ddr4 => String::new(),
        kind => format!("{} ", platform_desc(kind)),
    };
    println!(
        "{}{}",
        provenance_line_with_engine(
            "fig13_capacity_scaling",
            &format!(
                "{platform}azure-24h block=1GB seed=42 duration_s={duration_s} caps=256..1024 x ksm"
            ),
            engine_name(mopts.engine),
            &sw,
        ),
        memspec_suffix(mopts.memspec)
    );
    let caps = [256u64, 512, 768, 1024];
    // One point per {capacity, ksm} pair; results stitched back per capacity.
    let points: Vec<(u64, bool)> = caps
        .iter()
        .flat_map(|&cap| [(cap, false), (cap, true)])
        .collect();
    let labels: Vec<String> = points
        .iter()
        .map(|(cap, ksm)| format!("{cap}G{}", if *ksm { "+ksm" } else { "" }))
        .collect();
    let mut runs = timed_sweep(
        "fig13_capacity_scaling",
        &points,
        &labels,
        sw.jobs,
        |_ctx, &(cap_gb, ksm)| {
            let cfg = VmTraceConfig {
                capacity_gb: cap_gb,
                ksm,
                duration_s,
                engine: mopts.engine,
                ..VmTraceConfig::paper_256gb()
            };
            run_vm_trace_tele(&cfg, topts.enabled()).expect("vm trace")
        },
    );
    topts.write(
        &labels
            .iter()
            .zip(&mut runs)
            .map(|(l, (_, tele))| (l.clone(), tele.take()))
            .collect::<Vec<_>>(),
    );
    let runs: Vec<_> = runs.into_iter().map(|(r, _)| r).collect();

    let widths = [9, 9, 9, 9, 9, 10, 10, 10, 10];
    header(
        "Fig. 13: DRAM/system power vs. capacity (24 h VM trace)",
        &[
            "cap", "dram W", "gd W", "ksm W", "sys W", "dram red", "sys red", "ksm dred",
            "ksm sred",
        ],
        &widths,
    );
    let sys_model = SystemPowerModel::default();
    let cpu_util = 0.3; // consolidated VM server, modest CPU activity
    let base_model = memspec_for(DramConfig::preset_256gb(mopts.memspec)).expect("paper preset");
    let activity = ActivityProfile::busy(0.15);
    let p256 = base_model.analytic_power_w(&activity, &PowerGating::none());

    for (i, &cap_gb) in caps.iter().enumerate() {
        let run = &runs[2 * i];
        let ksm_run = &runs[2 * i + 1];
        // Linear capacity scaling of the conventional power (same model the
        // paper fits to its 256 GB measurement).
        let scale = cap_gb as f64 / 256.0;
        let dram_w = p256 * scale;
        let gd_w = base_model.analytic_power_w(
            &activity,
            &PowerGating::deep_pd(run.mean_deep_pd_fraction()),
        ) * scale;
        let ksm_w = base_model.analytic_power_w(
            &activity,
            &PowerGating::deep_pd(ksm_run.mean_deep_pd_fraction()),
        ) * scale;
        let sys_w = sys_model.system_power_w(dram_w, cpu_util);
        let sys_gd = sys_model.system_power_w(gd_w, cpu_util);
        let sys_ksm = sys_model.system_power_w(ksm_w, cpu_util);
        row(
            &[
                format!("{cap_gb}G"),
                f2(dram_w),
                f2(gd_w),
                f2(ksm_w),
                f2(sys_w),
                pct(1.0 - gd_w / dram_w),
                pct(1.0 - sys_gd / sys_w),
                pct(1.0 - ksm_w / dram_w),
                pct(1.0 - sys_ksm / sys_w),
            ],
            &widths,
        );
    }
    println!("\npaper: -32%/-9% at 256 GB -> -36%/-20% at 1 TB; w/ KSM -55%/-30% at 1 TB");
}
