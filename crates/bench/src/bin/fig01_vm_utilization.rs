//! Fig. 1: memory capacity used by the server over 24 hours, with and
//! without KSM (paper: 48 % average, 7–92 % range; KSM −24 % on average).

use gd_bench::report::{header, pct, row};
use gd_bench::{run_vm_trace, VmTraceConfig};
use gd_workloads::azure::{synthesize, AzureConfig};

fn main() {
    let azure = AzureConfig::paper_24h();
    let trace = synthesize(&azure);

    // KSM effect measured through the full co-simulation.
    let ksm_run = run_vm_trace(&VmTraceConfig {
        ksm: true,
        greendimm: false,
        ..VmTraceConfig::paper_256gb()
    })
    .expect("vm trace");

    let widths = [6, 12, 12];
    header(
        "Fig. 1: VM-trace memory utilization over 24 h (256 GB host)",
        &["hour", "used", "used w/ksm"],
        &widths,
    );
    for h in 0..24u64 {
        let t = h * 3600;
        let base = trace
            .utilization
            .iter()
            .filter(|(ts, _)| *ts >= t && *ts < t + 3600)
            .map(|(_, u)| u)
            .sum::<f64>()
            / 12.0;
        let ksm = ksm_run
            .samples
            .iter()
            .filter(|s| s.time_s >= t && s.time_s < t + 3600)
            .map(|s| s.used_fraction)
            .sum::<f64>()
            / 12.0;
        row(&[format!("{h:02}"), pct(base), pct(ksm)], &widths);
    }
    let (lo, hi) = trace.utilization_range();
    println!(
        "\nmean {} (paper 48%), range {}..{} (paper 7%..92%)",
        pct(trace.mean_utilization()),
        pct(lo),
        pct(hi)
    );
    println!(
        "mean w/ KSM {} (paper: KSM saves 24% of used capacity on average)",
        pct(ksm_run.mean_used_fraction())
    );
}
