//! Fig. 1: memory capacity used by the server over 24 hours, with and
//! without KSM (paper: 48 % average, 7–92 % range; KSM −24 % on average).
//!
//! Two sweep points — the synthesized trace and the KSM co-simulation —
//! fan across the pool (`--jobs N`); `--requests N` trims the trace to N
//! scheduler samples for smoke runs; timing lands in
//! `results/BENCH_fig01_vm_utilization.json` and `--telemetry PATH` dumps
//! the co-simulation's daemon/mm/ksm books as JSONL.

use gd_bench::report::{header, pct, row};
use gd_bench::{
    print_provenance, run_vm_trace_tele, timed_sweep, SweepOpts, TelemetryOpts, VmTraceConfig,
};
use gd_obs::Telemetry;
use gd_workloads::azure::{synthesize, AzureConfig};

struct Point {
    /// Mean used fraction per displayed hour.
    hourly: Vec<f64>,
    mean: f64,
    range: (f64, f64),
    tele: Option<Telemetry>,
}

fn main() {
    let sw = SweepOpts::from_args();
    let topts = TelemetryOpts::from_args();
    let azure = AzureConfig::paper_24h();
    let duration_s = sw
        .requests
        .map(|n| (n as u64 * azure.schedule_period_s).clamp(3_600, 86_400))
        .unwrap_or(86_400);
    print_provenance(
        "fig01_vm_utilization",
        &format!("azure-24h capacity=256GB block=1GB seed=42 duration_s={duration_s} ksm"),
        &sw,
    );

    let kinds = ["trace", "ksm"];
    let labels: Vec<String> = kinds.iter().map(|k| (*k).to_string()).collect();
    let hours = (duration_s / 3_600).max(1);
    let results = timed_sweep(
        "fig01_vm_utilization",
        &kinds,
        &labels,
        sw.jobs,
        |_ctx, kind| match *kind {
            "trace" => {
                let trace = synthesize(&AzureConfig {
                    duration_s,
                    ..azure
                });
                let hourly = (0..hours)
                    .map(|h| {
                        let t = h * 3600;
                        trace
                            .utilization
                            .iter()
                            .filter(|(ts, _)| *ts >= t && *ts < t + 3600)
                            .map(|(_, u)| u)
                            .sum::<f64>()
                            / 12.0
                    })
                    .collect();
                let mut tele = topts.shard();
                if let Some(t) = &mut tele {
                    t.registry
                        .gauge_set("trace.mean_utilization", trace.mean_utilization());
                }
                Point {
                    hourly,
                    mean: trace.mean_utilization(),
                    range: trace.utilization_range(),
                    tele,
                }
            }
            _ => {
                let (out, tele) = run_vm_trace_tele(
                    &VmTraceConfig {
                        ksm: true,
                        greendimm: false,
                        duration_s,
                        ..VmTraceConfig::paper_256gb()
                    },
                    topts.enabled(),
                )
                .expect("vm trace");
                let hourly = (0..hours)
                    .map(|h| {
                        let t = h * 3600;
                        out.samples
                            .iter()
                            .filter(|s| s.time_s >= t && s.time_s < t + 3600)
                            .map(|s| s.used_fraction)
                            .sum::<f64>()
                            / 12.0
                    })
                    .collect();
                Point {
                    hourly,
                    mean: out.mean_used_fraction(),
                    range: (0.0, 0.0),
                    tele,
                }
            }
        },
    );

    let widths = [6, 12, 12];
    header(
        "Fig. 1: VM-trace memory utilization over 24 h (256 GB host)",
        &["hour", "used", "used w/ksm"],
        &widths,
    );
    let (trace, ksm) = (&results[0], &results[1]);
    for h in 0..hours as usize {
        row(
            &[format!("{h:02}"), pct(trace.hourly[h]), pct(ksm.hourly[h])],
            &widths,
        );
    }
    let (lo, hi) = trace.range;
    println!(
        "\nmean {} (paper 48%), range {}..{} (paper 7%..92%)",
        pct(trace.mean),
        pct(lo),
        pct(hi)
    );
    println!(
        "mean w/ KSM {} (paper: KSM saves 24% of used capacity on average)",
        pct(ksm.mean)
    );
    topts.write(
        &labels
            .iter()
            .zip(&results)
            .map(|(l, r)| (l.clone(), r.tele.clone()))
            .collect::<Vec<_>>(),
    );
}
