//! Fig. 2: DRAM idle and busy power as capacity grows (paper: 18 W idle /
//! 26 W busy at 256 GB; 9 W → 91 W from 64 GB to 1 TB with the background
//! share rising 44 % → 78 %).
//!
//! Each capacity is one sweep point (`--jobs N`); timing lands in
//! `results/BENCH_fig02_idle_busy_power.json` and `--telemetry PATH` dumps
//! the per-capacity power gauges as JSONL.

use gd_bench::energy::{memspec_suffix, platform_desc, reject_sampled_engine, MeasureOpts};
use gd_bench::report::{f2, header, pct, row};
use gd_bench::{provenance_line, timed_sweep, SweepOpts, TelemetryOpts};
use gd_obs::Telemetry;
use gd_power::{memspec_for, ActivityProfile, PowerGating};
use gd_types::config::DramConfig;

fn main() {
    let mopts = MeasureOpts::from_args();
    if let Err(e) = reject_sampled_engine("fig02_idle_busy_power", &mopts) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let sw = SweepOpts::from_args();
    let topts = TelemetryOpts::from_args();
    println!(
        "{}{}",
        provenance_line(
            "fig02_idle_busy_power",
            &format!(
                "analytic {} base=256GB busy_util=0.45 caps=64..1024",
                platform_desc(mopts.memspec)
            ),
            &sw,
        ),
        memspec_suffix(mopts.memspec)
    );
    let caps = [64u64, 128, 256, 512, 768, 1024];
    let labels: Vec<String> = caps.iter().map(|c| format!("{c}GB")).collect();
    let results: Vec<(f64, f64, Option<Telemetry>)> = timed_sweep(
        "fig02_idle_busy_power",
        &caps,
        &labels,
        sw.jobs,
        |_ctx, &cap_gb| {
            let base = memspec_for(DramConfig::preset_256gb(mopts.memspec)).expect("paper preset");
            let idle_256 =
                base.analytic_power_w(&ActivityProfile::idle_standby(), &PowerGating::none());
            let busy_256 =
                base.analytic_power_w(&ActivityProfile::busy(0.45), &PowerGating::none());
            // Activity power is set by the workload (16 copies of mcf), not
            // by the installed capacity: only the background term scales
            // with DIMM count.
            let activity_w = busy_256 - idle_256;
            let idle = if cap_gb == 64 {
                let m64 =
                    memspec_for(DramConfig::preset_64gb(mopts.memspec)).expect("paper preset");
                m64.analytic_power_w(&ActivityProfile::idle_standby(), &PowerGating::none())
            } else {
                // Capacity past the preset scales linearly in installed
                // DIMMs (the paper fits the same linear model).
                idle_256 * cap_gb as f64 / 256.0
            };
            let busy = idle + activity_w;
            let mut tele = topts.shard();
            if let Some(t) = &mut tele {
                t.registry.gauge_set("power.idle_w", idle);
                t.registry.gauge_set("power.busy_w", busy);
            }
            (idle, busy, tele)
        },
    );

    let widths = [10, 10, 10, 14];
    header(
        "Fig. 2: DRAM idle/busy power vs. capacity",
        &["capacity", "idle (W)", "busy (W)", "bg fraction"],
        &widths,
    );
    for (&cap_gb, (idle, busy, _)) in caps.iter().zip(&results) {
        row(
            &[
                format!("{cap_gb} GB"),
                f2(*idle),
                f2(*busy),
                pct(idle / busy),
            ],
            &widths,
        );
    }
    println!("\npaper: 18/26 W at 256 GB; 9→91 W busy from 64 GB→1 TB; bg 44%→78%");
    topts.write(
        &labels
            .iter()
            .zip(results)
            .map(|(l, (_, _, tele))| (l.clone(), tele))
            .collect::<Vec<_>>(),
    );
}
