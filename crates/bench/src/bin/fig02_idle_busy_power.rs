//! Fig. 2: DRAM idle and busy power as capacity grows (paper: 18 W idle /
//! 26 W busy at 256 GB; 9 W → 91 W from 64 GB to 1 TB with the background
//! share rising 44 % → 78 %).

use gd_bench::report::{f2, header, pct, row};
use gd_power::{ActivityProfile, DramPowerModel, PowerGating};
use gd_types::config::DramConfig;

fn main() {
    let widths = [10, 10, 10, 14];
    header(
        "Fig. 2: DRAM idle/busy power vs. capacity",
        &["capacity", "idle (W)", "busy (W)", "bg fraction"],
        &widths,
    );
    let base = DramPowerModel::new(DramConfig::ddr4_2133_256gb());
    let idle_256 = base.analytic_power_w(&ActivityProfile::idle_standby(), &PowerGating::none());
    let busy_256 = base.analytic_power_w(&ActivityProfile::busy(0.45), &PowerGating::none());
    // Activity power is set by the workload (16 copies of mcf), not by the
    // installed capacity: only the background term scales with DIMM count.
    let activity_w = busy_256 - idle_256;
    let m64 = DramPowerModel::new(DramConfig::ddr4_2133_64gb());
    let idle_64 = m64.analytic_power_w(&ActivityProfile::idle_standby(), &PowerGating::none());
    for cap_gb in [64u64, 128, 256, 512, 768, 1024] {
        let idle = if cap_gb == 64 {
            idle_64
        } else {
            // Capacity past the preset scales linearly in installed DIMMs
            // (the paper fits the same linear model).
            idle_256 * cap_gb as f64 / 256.0
        };
        let busy = idle + activity_w;
        let bg = idle / busy;
        row(
            &[format!("{cap_gb} GB"), f2(idle), f2(busy), pct(bg)],
            &widths,
        );
    }
    println!("\npaper: 18/26 W at 256 GB; 9→91 W busy from 64 GB→1 TB; bg 44%→78%");
}
