//! Fig. 6: off-lined capacity as the memory block size changes
//! (paper: gcc off-lines 3.125 GB with 128 MB blocks vs 2 GB with 512 MB).

use gd_bench::blocks::block_size_experiment;
use gd_bench::report::{f2, header, row};
use gd_workloads::spec2006_offlining_set;
use greendimm::GreenDimmConfig;

fn main() {
    let widths = [16, 12, 12, 12];
    header(
        "Fig. 6: average off-lined capacity (GiB) in an 8 GiB managed region",
        &["app", "128MB", "256MB", "512MB"],
        &widths,
    );
    for p in spec2006_offlining_set() {
        let mut cells = vec![p.name.to_string()];
        for block_mib in [128u64, 256, 512] {
            let r =
                block_size_experiment(&p, block_mib, GreenDimmConfig::paper_default(), |c| c, 1)
                    .expect("co-sim");
            cells.push(f2(r.offlined_gib_avg));
        }
        row(&cells, &widths);
    }
    println!("\npaper: smaller blocks off-line more (gcc: 3.125 GB @128MB vs 2 GB @512MB)");
}
