//! Fig. 6: off-lined capacity as the memory block size changes
//! (paper: gcc off-lines 3.125 GB with 128 MB blocks vs 2 GB with 512 MB).
//!
//! Each {app × block size} co-simulation is one sweep point (`--jobs N`);
//! timing lands in `results/BENCH_fig06_blocksize_capacity.json` and
//! `--telemetry PATH` dumps every run's daemon/mm books as JSONL.

use gd_bench::blocks::block_size_experiment_tele;
use gd_bench::report::{f2, header, row};
use gd_bench::{print_provenance, timed_sweep, SweepOpts, TelemetryOpts};
use gd_dram::EngineMode;
use gd_workloads::{spec2006_offlining_set, AppProfile};
use greendimm::GreenDimmConfig;

const BLOCKS: [u64; 3] = [128, 256, 512];

fn main() {
    let sw = SweepOpts::from_args();
    let topts = TelemetryOpts::from_args();
    print_provenance(
        "fig06_blocksize_capacity",
        "managed=8GiB spec2006-offlining blocks=128/256/512 seed=1",
        &sw,
    );
    let profiles = spec2006_offlining_set();
    let points: Vec<(AppProfile, u64)> = profiles
        .iter()
        .flat_map(|p| BLOCKS.iter().map(|&b| (p.clone(), b)))
        .collect();
    let labels: Vec<String> = points
        .iter()
        .map(|(p, b)| format!("{}/{b}MB", p.name))
        .collect();
    let results = timed_sweep(
        "fig06_blocksize_capacity",
        &points,
        &labels,
        sw.jobs,
        |_ctx, (p, block_mib)| {
            block_size_experiment_tele(
                p,
                *block_mib,
                GreenDimmConfig::paper_default(),
                |c| c,
                1,
                None,
                topts.enabled(),
                EngineMode::EventDriven,
            )
            .expect("co-sim")
        },
    );

    let widths = [16, 12, 12, 12];
    header(
        "Fig. 6: average off-lined capacity (GiB) in an 8 GiB managed region",
        &["app", "128MB", "256MB", "512MB"],
        &widths,
    );
    for (i, p) in profiles.iter().enumerate() {
        let mut cells = vec![p.name.to_string()];
        for j in 0..BLOCKS.len() {
            cells.push(f2(results[i * BLOCKS.len() + j].0.offlined_gib_avg));
        }
        row(&cells, &widths);
    }
    println!("\npaper: smaller blocks off-line more (gcc: 3.125 GB @128MB vs 2 GB @512MB)");
    topts.write(
        &labels
            .iter()
            .zip(results)
            .map(|(l, (_, tele))| (l.clone(), tele))
            .collect::<Vec<_>>(),
    );
}
