//! Ablation (extension): adaptive off_thr — back off the reserve after
//! stalls/failures, decay back when quiet. Compare against the fixed 10 %.
//!
//! App points fan across the sweep pool (`--jobs N`); timing lands in
//! `results/BENCH_ablation_adaptive_thr.json`.

use gd_bench::blocks::block_size_experiment;
use gd_bench::report::{f2, header, pct, row};
use gd_bench::{timed_sweep, SweepOpts};
use gd_workloads::spec2006_offlining_set;
use greendimm::GreenDimmConfig;

fn main() {
    let sw = SweepOpts::from_args();
    let profiles = spec2006_offlining_set();
    let labels: Vec<String> = profiles.iter().map(|p| p.name.to_string()).collect();
    let results = timed_sweep(
        "ablation_adaptive_thr",
        &profiles,
        &labels,
        sw.jobs,
        |_ctx, p| {
            let fixed = block_size_experiment(p, 128, GreenDimmConfig::paper_default(), |c| c, 1)
                .expect("co-sim");
            let adaptive = block_size_experiment(
                p,
                128,
                GreenDimmConfig {
                    adaptive_off_thr: true,
                    ..GreenDimmConfig::paper_default()
                },
                |c| c,
                1,
            )
            .expect("co-sim");
            (fixed, adaptive)
        },
    );

    let widths = [16, 12, 12, 12, 12];
    header(
        "Ablation: fixed vs adaptive off_thr (128 MB blocks)",
        &["app", "fixed GiB", "fixed ovh", "adapt GiB", "adapt ovh"],
        &widths,
    );
    for (p, (fixed, adaptive)) in profiles.iter().zip(results) {
        row(
            &[
                p.name.to_string(),
                f2(fixed.offlined_gib_avg),
                pct(fixed.overhead_fraction),
                f2(adaptive.offlined_gib_avg),
                pct(adaptive.overhead_fraction),
            ],
            &widths,
        );
    }
    println!("\nadaptive backs the reserve off after stalls, trading a little");
    println!("off-lined capacity for fewer demand-driven on-lining events");
}
