//! Ablation (extension): adaptive off_thr — back off the reserve after
//! stalls/failures, decay back when quiet. Compare against the fixed 10 %.
//!
//! App points fan across the sweep pool (`--jobs N`); timing lands in
//! `results/BENCH_ablation_adaptive_thr.json` and `--telemetry PATH`
//! dumps every run's daemon/mm books as JSONL.

use gd_bench::blocks::block_size_experiment_tele;
use gd_bench::energy::{engine_name, MeasureOpts};
use gd_bench::report::{f2, header, pct, row};
use gd_bench::{provenance_line_with_engine, timed_sweep, SweepOpts, TelemetryOpts};
use gd_workloads::spec2006_offlining_set;
use greendimm::GreenDimmConfig;

fn main() {
    let sw = SweepOpts::from_args();
    let topts = TelemetryOpts::from_args();
    let mopts = MeasureOpts::from_args();
    println!(
        "{}",
        provenance_line_with_engine(
            "ablation_adaptive_thr",
            "managed=8GiB spec2006-offlining blocks=128 seed=1 fixed-vs-adaptive",
            engine_name(mopts.engine),
            &sw,
        )
    );
    let profiles = spec2006_offlining_set();
    let labels: Vec<String> = profiles.iter().map(|p| p.name.to_string()).collect();
    let mut results = timed_sweep(
        "ablation_adaptive_thr",
        &profiles,
        &labels,
        sw.jobs,
        |_ctx, p| {
            let (fixed, tele_fixed) = block_size_experiment_tele(
                p,
                128,
                GreenDimmConfig::paper_default(),
                |c| c,
                1,
                None,
                topts.enabled(),
                mopts.engine,
            )
            .expect("co-sim");
            let (adaptive, tele_adaptive) = block_size_experiment_tele(
                p,
                128,
                GreenDimmConfig {
                    adaptive_off_thr: true,
                    ..GreenDimmConfig::paper_default()
                },
                |c| c,
                1,
                None,
                topts.enabled(),
                mopts.engine,
            )
            .expect("co-sim");
            (fixed, adaptive, tele_fixed, tele_adaptive)
        },
    );
    topts.write(
        &labels
            .iter()
            .zip(&mut results)
            .flat_map(|(l, (_, _, tf, ta))| {
                [
                    (format!("{l}/fixed"), tf.take()),
                    (format!("{l}/adaptive"), ta.take()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let results: Vec<_> = results.into_iter().map(|(f, a, _, _)| (f, a)).collect();

    let widths = [16, 12, 12, 12, 12];
    header(
        "Ablation: fixed vs adaptive off_thr (128 MB blocks)",
        &["app", "fixed GiB", "fixed ovh", "adapt GiB", "adapt ovh"],
        &widths,
    );
    for (p, (fixed, adaptive)) in profiles.iter().zip(results) {
        row(
            &[
                p.name.to_string(),
                f2(fixed.offlined_gib_avg),
                pct(fixed.overhead_fraction),
                f2(adaptive.offlined_gib_avg),
                pct(adaptive.overhead_fraction),
            ],
            &widths,
        );
    }
    println!("\nadaptive backs the reserve off after stalls, trading a little");
    println!("off-lined capacity for fewer demand-driven on-lining events");
}
