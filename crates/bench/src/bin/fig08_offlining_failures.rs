//! Fig. 8: off-lining failures — random block choice vs. checking the
//! sysfs `removable` flag first (paper: removable-first cuts failures
//! ~50 %, and churning apps fail most).
//!
//! Each app is one sweep point (`--jobs N`) aggregating seeds × both
//! selector policies; `--requests N` sets the seed count; timing lands in
//! `results/BENCH_fig08_offlining_failures.json` and `--telemetry PATH`
//! dumps every run's daemon/mm books as JSONL (one shard per
//! app/seed/policy).

use gd_bench::blocks::block_size_experiment_tele;
use gd_bench::report::{header, row};
use gd_bench::{print_provenance, timed_sweep, SweepOpts, TelemetryOpts};
use gd_dram::EngineMode;
use gd_mmsim::MmConfig;
use gd_obs::Telemetry;
use gd_workloads::spec2006_offlining_set;
use greendimm::{GreenDimmConfig, SelectorPolicy};

struct Point {
    totals: [u64; 4],
    shards: Vec<(String, Option<Telemetry>)>,
}

fn main() {
    let sw = SweepOpts::from_args();
    let topts = TelemetryOpts::from_args();
    let seed_count = sw.requests.unwrap_or(5).clamp(1, 64) as u64;
    print_provenance(
        "fig08_offlining_failures",
        &format!(
            "managed=8GiB blocks=128 transient_fail=0.5 unmovable_leak=0.30 seeds=1..{seed_count}"
        ),
        &sw,
    );
    let tweaks = |c: MmConfig| MmConfig {
        transient_fail_prob: 0.5,
        unmovable_leak_prob: 0.30,
        ..c
    };
    let profiles = spec2006_offlining_set();
    let labels: Vec<String> = profiles.iter().map(|p| p.name.to_string()).collect();
    let results = timed_sweep(
        "fig08_offlining_failures",
        &profiles,
        &labels,
        sw.jobs,
        |_ctx, p| {
            let mut totals = [0u64; 4];
            let mut shards = Vec::new();
            for seed in 1..=seed_count {
                for (policy, slot) in [
                    (SelectorPolicy::Random, 0),
                    (SelectorPolicy::RemovableFirst, 2),
                ] {
                    let (r, tele) = block_size_experiment_tele(
                        p,
                        128,
                        GreenDimmConfig::paper_default().with_selector(policy),
                        tweaks,
                        seed,
                        None,
                        topts.enabled(),
                        EngineMode::EventDriven,
                    )
                    .expect("co-sim");
                    totals[slot] += r.failures;
                    totals[slot + 1] += r.failures_eagain;
                    shards.push((format!("{}/s{seed}/{policy:?}", p.name), tele));
                }
            }
            Point { totals, shards }
        },
    );

    let widths = [16, 10, 12, 12, 12];
    header(
        "Fig. 8: off-lining failures by selector policy (128 MB blocks)",
        &["app", "random", "rnd EAGAIN", "removable", "rm EAGAIN"],
        &widths,
    );
    for (p, r) in profiles.iter().zip(&results) {
        row(
            &[
                p.name.to_string(),
                r.totals[0].to_string(),
                r.totals[1].to_string(),
                r.totals[2].to_string(),
                r.totals[3].to_string(),
            ],
            &widths,
        );
    }
    println!("\n(summed over {seed_count} seeds)");
    println!("paper: removable-first reduces failures by ~50%; churny apps fail most");
    topts.write(
        &results
            .into_iter()
            .flat_map(|r| r.shards)
            .collect::<Vec<_>>(),
    );
}
