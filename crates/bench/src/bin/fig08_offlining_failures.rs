//! Fig. 8: off-lining failures — random block choice vs. checking the
//! sysfs `removable` flag first (paper: removable-first cuts failures
//! ~50 %, and churning apps fail most).

use gd_bench::blocks::block_size_experiment;
use gd_bench::report::{header, row};
use gd_mmsim::MmConfig;
use gd_workloads::spec2006_offlining_set;
use greendimm::{GreenDimmConfig, SelectorPolicy};

fn main() {
    let widths = [16, 10, 12, 12, 12];
    header(
        "Fig. 8: off-lining failures by selector policy (128 MB blocks)",
        &["app", "random", "rnd EAGAIN", "removable", "rm EAGAIN"],
        &widths,
    );
    let tweaks = |c: MmConfig| MmConfig {
        transient_fail_prob: 0.5,
        unmovable_leak_prob: 0.30,
        ..c
    };
    let seeds = [1u64, 2, 3, 4, 5];
    for p in spec2006_offlining_set() {
        let mut totals = [0u64; 4];
        for &seed in &seeds {
            let rnd = block_size_experiment(
                &p,
                128,
                GreenDimmConfig::paper_default().with_selector(SelectorPolicy::Random),
                tweaks,
                seed,
            )
            .expect("co-sim");
            let rm = block_size_experiment(
                &p,
                128,
                GreenDimmConfig::paper_default().with_selector(SelectorPolicy::RemovableFirst),
                tweaks,
                seed,
            )
            .expect("co-sim");
            totals[0] += rnd.failures;
            totals[1] += rnd.failures_eagain;
            totals[2] += rm.failures;
            totals[3] += rm.failures_eagain;
        }
        row(
            &[
                p.name.to_string(),
                totals[0].to_string(),
                totals[1].to_string(),
                totals[2].to_string(),
                totals[3].to_string(),
            ],
            &widths,
        );
    }
    println!("\n(summed over {} seeds)", seeds.len());
    println!("paper: removable-first reduces failures by ~50%; churny apps fail most");
}
