//! Fig. 12: off-lined memory blocks over the 24 h VM trace (paper: 116 of
//! 256 blocks on average — 45 % of capacity; 230 at minimum utilization;
//! 4 at peak; KSM off-lines 61 more and cuts background power 70 %).
//!
//! The base and KSM co-simulations are two sweep points (`--jobs N`);
//! `--requests N` trims the trace to N scheduler samples; timing lands in
//! `results/BENCH_fig12_vm_offlined_blocks.json` and `--telemetry PATH`
//! dumps both runs' daemon/mm books as JSONL.

use gd_bench::report::{header, pct, row};
use gd_bench::{
    print_provenance, run_vm_trace_tele, timed_sweep, SweepOpts, TelemetryOpts, VmTraceConfig,
};
use gd_power::{ActivityProfile, DramPowerModel, PowerGating};
use gd_types::config::DramConfig;

fn main() {
    let sw = SweepOpts::from_args();
    let topts = TelemetryOpts::from_args();
    let duration_s = sw
        .requests
        .map(|n| (n as u64 * 300).clamp(3_600, 86_400))
        .unwrap_or(86_400);
    print_provenance(
        "fig12_vm_offlined_blocks",
        &format!("azure-24h capacity=256GB block=1GB seed=42 duration_s={duration_s} greendimm"),
        &sw,
    );

    let kinds = [false, true];
    let labels: Vec<String> = vec!["base".into(), "ksm".into()];
    let mut runs = timed_sweep(
        "fig12_vm_offlined_blocks",
        &kinds,
        &labels,
        sw.jobs,
        |_ctx, &ksm| {
            run_vm_trace_tele(
                &VmTraceConfig {
                    ksm,
                    duration_s,
                    ..VmTraceConfig::paper_256gb()
                },
                topts.enabled(),
            )
            .expect("vm trace")
        },
    );
    let shards: Vec<_> = labels
        .iter()
        .zip(&mut runs)
        .map(|(l, (_, tele))| (l.clone(), tele.take()))
        .collect();
    let (base, ksm) = (&runs[0].0, &runs[1].0);

    let widths = [8, 14, 14];
    header(
        "Fig. 12: off-lined 1 GB blocks over 24 h (256 GB = 256 blocks)",
        &["hour", "offline", "offline w/ksm"],
        &widths,
    );
    for h in 0..(duration_s / 3_600).max(1) {
        let avg = |o: &gd_bench::VmTraceOutcome| {
            let v: Vec<_> = o
                .samples
                .iter()
                .filter(|s| s.time_s >= h * 3600 && s.time_s < (h + 1) * 3600)
                .map(|s| s.offline_blocks as f64)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        row(
            &[
                format!("{h:02}"),
                format!("{:.0}", avg(base)),
                format!("{:.0}", avg(ksm)),
            ],
            &widths,
        );
    }
    let (lo, hi) = base.offline_blocks_range();
    println!(
        "\nmean {:.0} blocks offline (paper 116/256), range {lo}..{hi} (paper 4..230)",
        base.mean_offline_blocks()
    );
    println!(
        "w/ KSM: mean {:.0} blocks (+{:.0}; paper +61)",
        ksm.mean_offline_blocks(),
        ksm.mean_offline_blocks() - base.mean_offline_blocks()
    );

    // Background power reduction from the deep power-down residency.
    let model = DramPowerModel::new(DramConfig::ddr4_2133_256gb());
    let idle = ActivityProfile::idle_standby();
    let full = model.analytic_power_w(&idle, &PowerGating::none());
    let with = model.analytic_power_w(&idle, &PowerGating::deep_pd(base.mean_deep_pd_fraction()));
    let with_ksm =
        model.analytic_power_w(&idle, &PowerGating::deep_pd(ksm.mean_deep_pd_fraction()));
    println!(
        "\nbackground power reduction: {} (paper 46%), w/ KSM {} (paper 70%)",
        pct(1.0 - with / full),
        pct(1.0 - with_ksm / full)
    );
    topts.write(&shards);
}
