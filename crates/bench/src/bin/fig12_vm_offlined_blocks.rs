//! Fig. 12: off-lined memory blocks over the 24 h VM trace (paper: 116 of
//! 256 blocks on average — 45 % of capacity; 230 at minimum utilization;
//! 4 at peak; KSM off-lines 61 more and cuts background power 70 %).

use gd_bench::report::{header, pct, row};
use gd_bench::{run_vm_trace, VmTraceConfig};
use gd_power::{ActivityProfile, DramPowerModel, PowerGating};
use gd_types::config::DramConfig;

fn main() {
    let base = run_vm_trace(&VmTraceConfig::paper_256gb()).expect("vm trace");
    let ksm = run_vm_trace(&VmTraceConfig {
        ksm: true,
        ..VmTraceConfig::paper_256gb()
    })
    .expect("vm trace");

    let widths = [8, 14, 14];
    header(
        "Fig. 12: off-lined 1 GB blocks over 24 h (256 GB = 256 blocks)",
        &["hour", "offline", "offline w/ksm"],
        &widths,
    );
    for h in 0..24u64 {
        let avg = |o: &gd_bench::VmTraceOutcome| {
            let v: Vec<_> = o
                .samples
                .iter()
                .filter(|s| s.time_s >= h * 3600 && s.time_s < (h + 1) * 3600)
                .map(|s| s.offline_blocks as f64)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        row(
            &[
                format!("{h:02}"),
                format!("{:.0}", avg(&base)),
                format!("{:.0}", avg(&ksm)),
            ],
            &widths,
        );
    }
    let (lo, hi) = base.offline_blocks_range();
    println!(
        "\nmean {:.0} blocks offline (paper 116/256), range {lo}..{hi} (paper 4..230)",
        base.mean_offline_blocks()
    );
    println!(
        "w/ KSM: mean {:.0} blocks (+{:.0}; paper +61)",
        ksm.mean_offline_blocks(),
        ksm.mean_offline_blocks() - base.mean_offline_blocks()
    );

    // Background power reduction from the deep power-down residency.
    let model = DramPowerModel::new(DramConfig::ddr4_2133_256gb());
    let idle = ActivityProfile::idle_standby();
    let full = model.analytic_power_w(&idle, &PowerGating::none());
    let with = model.analytic_power_w(&idle, &PowerGating::deep_pd(base.mean_deep_pd_fraction()));
    let with_ksm =
        model.analytic_power_w(&idle, &PowerGating::deep_pd(ksm.mean_deep_pd_fraction()));
    println!(
        "\nbackground power reduction: {} (paper 46%), w/ KSM {} (paper 70%)",
        pct(1.0 - with / full),
        pct(1.0 - with_ksm / full)
    );
}
