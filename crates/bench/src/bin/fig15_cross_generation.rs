//! Fig. 15 (extension): GreenDIMM vs. rank power-down (RAMZzz) vs. PASR
//! across memory generations — the same energy-figure workload set run on
//! the DDR4, DDR5 (same-bank refresh), and LPDDR4-PASR backends of the
//! [`gd_power::MemSpec`] power/timing layer.
//!
//! Each {backend × app} pair is one sweep point (`--jobs N`); the
//! wall-clock profile lands in `results/BENCH_fig15_cross_generation.json`
//! and `--telemetry PATH` dumps each run's DRAM books as JSONL. The figure
//! refuses the sampled epoch-replay engine outright: the point of the
//! table is a bit-exact cross-backend comparison, so a bounded sampling
//! error is not acceptable even flagged.

use gd_bench::energy::{
    engine_name, evaluate_app_tele, platform_desc, require_exact_engine, EnergyRow, MeasureOpts,
};
use gd_bench::report::{f2, header, pct, row};
use gd_bench::{provenance_line_with_engine, timed_sweep, SweepOpts, TelemetryOpts};
use gd_types::config::{DramConfig, MemSpecKind};
use gd_types::stats::geomean;
use gd_workloads::energy_figure_set;

fn main() {
    let opts = MeasureOpts::from_args();
    if let Err(e) = require_exact_engine("fig15_cross_generation", &opts) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let sw = SweepOpts::from_args();
    let topts = TelemetryOpts::from_args();
    let requests = sw.requests.unwrap_or(20_000);
    println!(
        "{}",
        provenance_line_with_engine(
            "fig15_cross_generation",
            &format!(
                "cross-generation ddr4-2133/ddr5-4800/lpddr4-3200 64GB \
                 energy-figure-set requests={requests} seed=1"
            ),
            engine_name(opts.engine),
            &sw,
        )
    );
    if opts.strict_validate {
        println!("[strict-validate: protocol + governor invariants enforced]");
    }
    let profiles = energy_figure_set();
    // One point per {backend, app}; the point order (backend-major, fixed
    // MemSpecKind::all order) is part of the snapshot contract.
    let points: Vec<(MemSpecKind, &gd_workloads::AppProfile)> = MemSpecKind::all()
        .into_iter()
        .flat_map(|kind| profiles.iter().map(move |p| (kind, p)))
        .collect();
    let labels: Vec<String> = points
        .iter()
        .map(|(kind, p)| format!("{}/{}", kind.name(), p.name))
        .collect();
    let mut results = timed_sweep(
        "fig15_cross_generation",
        &points,
        &labels,
        sw.jobs,
        |_ctx, &(kind, p)| {
            let cfg = DramConfig::preset_64gb(kind);
            let mut tele = topts.shard();
            let rows = evaluate_app_tele(p, cfg, requests, 1, opts, tele.as_mut());
            (rows, tele)
        },
    );
    topts.write(
        &labels
            .iter()
            .zip(&mut results)
            .map(|(l, (_, tele))| (l.clone(), tele.take()))
            .collect::<Vec<_>>(),
    );
    let results: Vec<Vec<EnergyRow>> = results
        .into_iter()
        .map(|(rows, _)| rows.expect("energy"))
        .collect();

    let widths = [14, 9, 9, 9, 9, 12];
    header(
        "Fig. 15: normalized DRAM energy by generation (baseline = w/o intlv, srf_only)",
        &["backend", "srf+", "RZ+", "PASR+", "GD+", "GD saving"],
        &widths,
    );
    println!("(w/ interleaving; geomean over the energy-figure workload set)");
    let apps = profiles.len();
    for (b, kind) in MemSpecKind::all().into_iter().enumerate() {
        let backend_rows = &results[b * apps..(b + 1) * apps];
        let col = |policy: &str| {
            let norms: Vec<f64> = backend_rows
                .iter()
                .filter_map(|rows| gd_bench::find_row(rows, policy, true).map(|r| r.dram_norm))
                .collect();
            geomean(&norms).unwrap_or(f64::NAN)
        };
        let gd = col("GreenDIMM");
        row(
            &[
                platform_desc(kind).to_string(),
                f2(col("srf_only")),
                f2(col("RAMZzz")),
                f2(col("PASR")),
                f2(gd),
                pct(1.0 - gd),
            ],
            &widths,
        );
    }
    println!(
        "\nGreenDIMM's sub-array deep power-down survives interleaving on every \
         generation; rank power-down (RAMZzz) and PASR only help where the \
         generation's refresh/self-refresh granularity lets them."
    );
}
