//! Fig. 9: DRAM energy, normalized to (w/o interleave, srf_only), for four
//! policies under both interleave modes (paper: GreenDIMM reduces DRAM
//! energy 38 % for SPEC and 60 % for data-center workloads on average,
//! and beats RAMZzz/PASR by ~49 pp when interleaving is on).
//!
//! Every app is an independent sweep point; `--jobs N` fans them across a
//! worker pool (`--jobs 1` reproduces the serial path bit-for-bit), the
//! wall-clock profile lands in `results/BENCH_fig09_dram_energy.json`, and
//! `--telemetry PATH` dumps each run's DRAM books as JSONL.

use gd_bench::energy::{
    engine_name, evaluate_app_tele, memspec_suffix, platform_desc, reject_sampled_engine,
    MeasureOpts,
};
use gd_bench::report::{f2, header, row};
use gd_bench::{provenance_line_with_engine, timed_sweep, SweepOpts, TelemetryOpts};
use gd_types::config::DramConfig;
use gd_types::stats::geomean;
use gd_workloads::energy_figure_set;

fn main() {
    let opts = MeasureOpts::from_args();
    if let Err(e) = reject_sampled_engine("fig09_dram_energy", &opts) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let sw = SweepOpts::from_args();
    let topts = TelemetryOpts::from_args();
    let cfg = DramConfig::preset_64gb(opts.memspec);
    let requests = sw.requests.unwrap_or(20_000);
    println!(
        "{}{}",
        provenance_line_with_engine(
            "fig09_dram_energy",
            &format!(
                "{} 64GB energy-figure-set requests={requests} seed=1",
                platform_desc(opts.memspec)
            ),
            engine_name(opts.engine),
            &sw,
        ),
        memspec_suffix(opts.memspec)
    );
    if opts.strict_validate {
        println!("[strict-validate: protocol + governor invariants enforced]");
    }
    let profiles = energy_figure_set();
    let labels: Vec<String> = profiles.iter().map(|p| p.name.to_string()).collect();
    let mut results = timed_sweep(
        "fig09_dram_energy",
        &profiles,
        &labels,
        sw.jobs,
        |_ctx, p| {
            let mut tele = topts.shard();
            let rows = evaluate_app_tele(p, cfg, requests, 1, opts, tele.as_mut());
            (rows, tele)
        },
    );
    topts.write(
        &labels
            .iter()
            .zip(&mut results)
            .map(|(l, (_, tele))| (l.clone(), tele.take()))
            .collect::<Vec<_>>(),
    );
    let results: Vec<_> = results.into_iter().map(|(rows, _)| rows).collect();

    let widths = [16, 9, 9, 9, 9, 9, 9, 9, 9];
    header(
        "Fig. 9: normalized DRAM energy (baseline = w/o intlv, srf_only)",
        &[
            "app", "srf-", "srf+", "RZ-", "RZ+", "PASR-", "PASR+", "GD-", "GD+",
        ],
        &widths,
    );
    println!("('-' = w/o interleaving, '+' = w/ interleaving)");
    let mut gd_norms = Vec::new();
    for (p, rows) in profiles.iter().zip(results) {
        let rows = rows.expect("energy");
        let cell = |policy: &str, intlv: bool| {
            gd_bench::find_row(&rows, policy, intlv)
                .map(|r| r.dram_norm)
                .unwrap_or(f64::NAN)
        };
        gd_norms.push(cell("GreenDIMM", true));
        row(
            &[
                p.name.to_string(),
                f2(cell("srf_only", false)),
                f2(cell("srf_only", true)),
                f2(cell("RAMZzz", false)),
                f2(cell("RAMZzz", true)),
                f2(cell("PASR", false)),
                f2(cell("PASR", true)),
                f2(cell("GreenDIMM", false)),
                f2(cell("GreenDIMM", true)),
            ],
            &widths,
        );
    }
    if let Some(g) = geomean(&gd_norms) {
        println!(
            "\nGreenDIMM w/ interleaving geomean: {:.2} of baseline ({}% reduction)",
            g,
            ((1.0 - g) * 100.0).round()
        );
    }
    println!("paper: GreenDIMM -38% (SPEC) / -60% (data-center) vs baseline");
}
