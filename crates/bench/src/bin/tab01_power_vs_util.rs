//! Table 1: DRAM power vs. utilization of memory capacity — without power
//! management the power is flat (paper: 25.8–26.0 W at 256 GB).

use gd_bench::report::{f2, header, row};
use gd_power::{ActivityProfile, DramPowerModel, PowerGating};
use gd_types::config::DramConfig;

fn main() {
    let model = DramPowerModel::new(DramConfig::ddr4_2133_256gb());
    let widths = [12, 10];
    header(
        "Table 1: DRAM power vs. utilization of memory capacity (256 GB)",
        &["utilization", "power (W)"],
        &widths,
    );
    // A lightly loaded server: capacity utilization does not enter the
    // conventional power equation at all — only traffic does.
    for util in [0.10, 0.25, 0.50, 0.75, 1.00] {
        let p = model.analytic_power_w(&ActivityProfile::busy(0.40), &PowerGating::none());
        row(&[format!("{:.0}%", util * 100.0), f2(p)], &widths);
    }
    println!("\npaper: 25.8 W .. 26.0 W — constant regardless of used capacity");
}
