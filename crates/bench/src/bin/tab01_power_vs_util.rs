//! Table 1: DRAM power vs. utilization of memory capacity — without power
//! management the power is flat (paper: 25.8–26.0 W at 256 GB).
//!
//! Each utilization is one sweep point (`--jobs N`); timing lands in
//! `results/BENCH_tab01_power_vs_util.json` and `--telemetry PATH` dumps
//! the power gauges as JSONL.

use gd_bench::report::{f2, header, row};
use gd_bench::{print_provenance, timed_sweep, SweepOpts, TelemetryOpts};
use gd_obs::Telemetry;
use gd_power::{ActivityProfile, DramPowerModel, PowerGating};
use gd_types::config::DramConfig;

fn main() {
    let sw = SweepOpts::from_args();
    let topts = TelemetryOpts::from_args();
    print_provenance(
        "tab01_power_vs_util",
        "analytic ddr4-2133 256GB busy_util=0.40 utils=10..100",
        &sw,
    );
    // A lightly loaded server: capacity utilization does not enter the
    // conventional power equation at all — only traffic does.
    let utils = [0.10, 0.25, 0.50, 0.75, 1.00];
    let labels: Vec<String> = utils.iter().map(|u| format!("{:.0}%", u * 100.0)).collect();
    let results: Vec<(f64, Option<Telemetry>)> = timed_sweep(
        "tab01_power_vs_util",
        &utils,
        &labels,
        sw.jobs,
        |_ctx, _util| {
            let model = DramPowerModel::new(DramConfig::ddr4_2133_256gb());
            let p = model.analytic_power_w(&ActivityProfile::busy(0.40), &PowerGating::none());
            let mut tele = topts.shard();
            if let Some(t) = &mut tele {
                t.registry.gauge_set("power.dram_w", p);
            }
            (p, tele)
        },
    );

    let widths = [12, 10];
    header(
        "Table 1: DRAM power vs. utilization of memory capacity (256 GB)",
        &["utilization", "power (W)"],
        &widths,
    );
    for (label, (p, _)) in labels.iter().zip(&results) {
        row(&[label.clone(), f2(*p)], &widths);
    }
    println!("\npaper: 25.8 W .. 26.0 W — constant regardless of used capacity");
    topts.write(
        &labels
            .iter()
            .zip(results)
            .map(|(l, (_, tele))| (l.clone(), tele))
            .collect::<Vec<_>>(),
    );
}
