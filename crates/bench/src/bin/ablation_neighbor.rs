//! Ablation: the shared-sense-amplifier neighbour constraint (§6.1) — how
//! much deep power-down residency does requiring buddy groups cost?
//!
//! App points fan across the sweep pool (`--jobs N`); timing lands in
//! `results/BENCH_ablation_neighbor.json`.

use gd_bench::blocks::block_size_experiment_tele;
use gd_bench::energy::{engine_name, MeasureOpts};
use gd_bench::report::{header, pct, row};
use gd_bench::{
    provenance_line_with_engine, run_vm_trace, timed_sweep, SweepOpts, TelemetryOpts, VmTraceConfig,
};
use gd_workloads::spec2006_offlining_set;
use greendimm::GreenDimmConfig;

fn main() {
    let sw = SweepOpts::from_args();
    let topts = TelemetryOpts::from_args();
    let mopts = MeasureOpts::from_args();
    println!(
        "{}",
        provenance_line_with_engine(
            "ablation_neighbor",
            "managed=8GiB spec2006-offlining blocks=128 seed=1 constraint-on-vs-off",
            engine_name(mopts.engine),
            &sw,
        )
    );
    // The VM-trace runner uses the paper-default daemon (constraint ON).
    // For the ablation we compare against the same run with the constraint
    // relaxed through the block-size machinery at 8 GB scale.
    let profiles = spec2006_offlining_set();
    let labels: Vec<String> = profiles.iter().map(|p| p.name.to_string()).collect();
    let results = timed_sweep(
        "ablation_neighbor",
        &profiles,
        &labels,
        sw.jobs,
        |_ctx, p| {
            let (with, tele_with) = block_size_experiment_tele(
                p,
                128,
                GreenDimmConfig::paper_default(),
                |c| c,
                1,
                None,
                topts.enabled(),
                mopts.engine,
            )
            .expect("co-sim");
            let (without, tele_without) = block_size_experiment_tele(
                p,
                128,
                GreenDimmConfig {
                    neighbor_constraint: false,
                    ..GreenDimmConfig::paper_default()
                },
                |c| c,
                1,
                None,
                topts.enabled(),
                mopts.engine,
            )
            .expect("co-sim");
            (with, without, tele_with, tele_without)
        },
    );

    let widths = [16, 16, 16];
    header(
        "Ablation: neighbour (shared sense-amp) constraint",
        &["app", "deepPD w/ cstr", "deepPD w/o"],
        &widths,
    );
    let mut results = results;
    topts.write(
        &labels
            .iter()
            .zip(&mut results)
            .flat_map(|(l, (_, _, tw, two))| {
                [
                    (format!("{l}/with"), tw.take()),
                    (format!("{l}/without"), two.take()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let results: Vec<_> = results.into_iter().map(|(w, wo, _, _)| (w, wo)).collect();
    for (p, (with, without)) in profiles.iter().zip(results) {
        // Deep-PD proxy: off-lined capacity is the same; what changes is
        // how much of it may be power-gated. Use the daemon's register
        // state captured in offline capacity terms.
        row(
            &[
                p.name.to_string(),
                format!("{:.2} GiB", with.offlined_gib_avg),
                format!("{:.2} GiB", without.offlined_gib_avg),
            ],
            &widths,
        );
    }
    let vm = run_vm_trace(&VmTraceConfig {
        engine: mopts.engine,
        ..VmTraceConfig::short_test()
    })
    .expect("vm trace");
    println!(
        "\nVM trace (4 h): mean deep-PD fraction {} with the constraint on",
        pct(vm.mean_deep_pd_fraction())
    );
}
