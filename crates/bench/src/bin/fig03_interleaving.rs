//! Fig. 3: the impact of memory interleaving on performance, self-refresh
//! residency, and energy for high-MPKI SPEC CPU2006 benchmarks
//! (paper: up to 3.8x speedup; 0 % vs ~54 % SR cycles; −26 % energy w/o
//! interleaving).
//!
//! Each app is one sweep point (`--jobs N`, `--requests N` for smoke runs);
//! timing lands in `results/BENCH_fig03_interleaving.json` and
//! `--telemetry PATH` dumps each run's DRAM books as JSONL.

use gd_bench::energy::{engine_name, evaluate_app_tele, find_row, measure_app_opts, MeasureOpts};
use gd_bench::report::{f2, header, pct, row};
use gd_bench::{provenance_line_with_engine, timed_sweep, SweepOpts, TelemetryOpts};
use gd_obs::Telemetry;
use gd_types::config::{DramConfig, InterleaveMode};
use gd_workloads::by_name;

struct Point {
    app: String,
    speedup: f64,
    sr_with: f64,
    sr_without: f64,
    energy_ratio: f64,
    tele: Option<Telemetry>,
}

fn main() {
    let sw = SweepOpts::from_args();
    let topts = TelemetryOpts::from_args();
    let mopts = MeasureOpts::from_args();
    let cfg = DramConfig::ddr4_2133_64gb();
    let apps = ["mcf", "soplex", "lbm", "libquantum"];
    let requests = sw.requests.unwrap_or(25_000);
    println!(
        "{}",
        provenance_line_with_engine(
            "fig03_interleaving",
            &format!("ddr4-2133 64GB apps=mcf/soplex/lbm/libquantum requests={requests} seed=1"),
            engine_name(mopts.engine),
            &sw,
        )
    );
    let labels: Vec<String> = apps.iter().map(|a| (*a).to_string()).collect();
    let points = timed_sweep(
        "fig03_interleaving",
        &apps,
        &labels,
        sw.jobs,
        |_ctx, name| {
            let p = by_name(name).expect("profile");
            let with = measure_app_opts(&p, cfg, InterleaveMode::Interleaved, requests, 1, mopts)
                .expect("cycle sim");
            let without = measure_app_opts(&p, cfg, InterleaveMode::Linear, requests, 1, mopts)
                .expect("cycle sim");
            let mut tele = topts.shard();
            let rows =
                evaluate_app_tele(&p, cfg, requests, 1, mopts, tele.as_mut()).expect("energy");
            let e_with = find_row(&rows, "srf_only", true).expect("cell").system_j;
            let e_without = find_row(&rows, "srf_only", false).expect("cell").system_j;
            Point {
                app: p.name.to_string(),
                speedup: without.runtime_s / with.runtime_s,
                sr_with: with.sr_fraction,
                sr_without: without.sr_fraction,
                energy_ratio: e_without / e_with,
                tele,
            }
        },
    );

    let widths = [16, 9, 11, 11, 13];
    header(
        "Fig. 3: impact of memory interleaving (64 GB, 4ch x 4rank)",
        &["app", "speedup", "SR w/intlv", "SR w/o", "E w/o / E w/"],
        &widths,
    );
    let mut shards = Vec::new();
    for mut p in points {
        shards.push((p.app.clone(), p.tele.take()));
        row(
            &[
                p.app,
                format!("{:.2}x", p.speedup),
                pct(p.sr_with),
                pct(p.sr_without),
                f2(p.energy_ratio),
            ],
            &widths,
        );
    }
    println!("\npaper: speedup up to 3.8x (lbm); SR 0% w/ intlv vs ~54% w/o;");
    println!("w/o interleaving saves ~26% energy for these apps when SR is usable");
    topts.write(&shards);
}
