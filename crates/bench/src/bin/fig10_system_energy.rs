//! Fig. 10: system energy, same matrix as Fig. 9 (paper: GreenDIMM reduces
//! system energy by 26 % for SPEC and 30 % for data-center workloads; only
//! GreenDIMM helps when interleaving is on).
//!
//! Apps fan across the sweep pool (`--jobs N`); timing lands in
//! `results/BENCH_fig10_system_energy.json` and `--telemetry PATH` dumps
//! each run's DRAM books as JSONL.

use gd_bench::energy::{
    engine_name, evaluate_app_tele, memspec_suffix, platform_desc, reject_sampled_engine,
    MeasureOpts,
};
use gd_bench::report::{f2, header, row};
use gd_bench::{provenance_line_with_engine, timed_sweep, SweepOpts, TelemetryOpts};
use gd_types::config::DramConfig;
use gd_types::stats::geomean;
use gd_workloads::energy_figure_set;

fn main() {
    let opts = MeasureOpts::from_args();
    if let Err(e) = reject_sampled_engine("fig10_system_energy", &opts) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let sw = SweepOpts::from_args();
    let topts = TelemetryOpts::from_args();
    let cfg = DramConfig::preset_64gb(opts.memspec);
    let requests = sw.requests.unwrap_or(20_000);
    println!(
        "{}{}",
        provenance_line_with_engine(
            "fig10_system_energy",
            &format!(
                "{} 64GB energy-figure-set requests={requests} seed=1",
                platform_desc(opts.memspec)
            ),
            engine_name(opts.engine),
            &sw,
        ),
        memspec_suffix(opts.memspec)
    );
    if opts.strict_validate {
        println!("[strict-validate: protocol + governor invariants enforced]");
    }
    let profiles = energy_figure_set();
    let labels: Vec<String> = profiles.iter().map(|p| p.name.to_string()).collect();
    let mut results = timed_sweep(
        "fig10_system_energy",
        &profiles,
        &labels,
        sw.jobs,
        |_ctx, p| {
            let mut tele = topts.shard();
            let rows = evaluate_app_tele(p, cfg, requests, 1, opts, tele.as_mut());
            (rows, tele)
        },
    );
    topts.write(
        &labels
            .iter()
            .zip(&mut results)
            .map(|(l, (_, tele))| (l.clone(), tele.take()))
            .collect::<Vec<_>>(),
    );
    let results: Vec<_> = results.into_iter().map(|(rows, _)| rows).collect();

    let widths = [16, 9, 9, 9, 9, 9, 9, 9, 9];
    header(
        "Fig. 10: normalized system energy (baseline = w/o intlv, srf_only)",
        &[
            "app", "srf-", "srf+", "RZ-", "RZ+", "PASR-", "PASR+", "GD-", "GD+",
        ],
        &widths,
    );
    println!("('-' = w/o interleaving, '+' = w/ interleaving)");
    let mut gd_norms = Vec::new();
    for (p, rows) in profiles.iter().zip(results) {
        let rows = rows.expect("energy");
        let cell = |policy: &str, intlv: bool| {
            gd_bench::find_row(&rows, policy, intlv)
                .map(|r| r.system_norm)
                .unwrap_or(f64::NAN)
        };
        gd_norms.push(cell("GreenDIMM", true));
        row(
            &[
                p.name.to_string(),
                f2(cell("srf_only", false)),
                f2(cell("srf_only", true)),
                f2(cell("RAMZzz", false)),
                f2(cell("RAMZzz", true)),
                f2(cell("PASR", false)),
                f2(cell("PASR", true)),
                f2(cell("GreenDIMM", false)),
                f2(cell("GreenDIMM", true)),
            ],
            &widths,
        );
    }
    if let Some(g) = geomean(&gd_norms) {
        println!(
            "\nGreenDIMM w/ interleaving geomean: {:.2} of baseline ({}% reduction)",
            g,
            ((1.0 - g) * 100.0).round()
        );
    }
    println!("paper: GreenDIMM -26% (SPEC) / -30% (data-center) vs baseline");
}
