//! Table 2: number of on/off-lining events vs. block size
//! (paper: mcf 6/2/1, gcc 47/24/12, soplex 36/18/8, lbm 30/15/6,
//! libquantum 37/17/8, povray 40/20/9 for 128/256/512 MB).
//!
//! Each {app × block size} co-simulation is one sweep point (`--jobs N`);
//! timing lands in `results/BENCH_tab02_online_offline_counts.json` and
//! `--telemetry PATH` dumps every run's daemon/mm books as JSONL.

use gd_bench::blocks::block_size_experiment_tele;
use gd_bench::report::{header, row};
use gd_bench::{print_provenance, timed_sweep, SweepOpts, TelemetryOpts};
use gd_dram::EngineMode;
use gd_workloads::{spec2006_offlining_set, AppProfile};
use greendimm::GreenDimmConfig;

const BLOCKS: [u64; 3] = [128, 256, 512];

fn main() {
    let sw = SweepOpts::from_args();
    let topts = TelemetryOpts::from_args();
    print_provenance(
        "tab02_online_offline_counts",
        "managed=8GiB spec2006-offlining blocks=128/256/512 seed=1",
        &sw,
    );
    let profiles = spec2006_offlining_set();
    let points: Vec<(AppProfile, u64)> = profiles
        .iter()
        .flat_map(|p| BLOCKS.iter().map(|&b| (p.clone(), b)))
        .collect();
    let labels: Vec<String> = points
        .iter()
        .map(|(p, b)| format!("{}/{b}MB", p.name))
        .collect();
    let results = timed_sweep(
        "tab02_online_offline_counts",
        &points,
        &labels,
        sw.jobs,
        |_ctx, (p, block_mib)| {
            block_size_experiment_tele(
                p,
                *block_mib,
                GreenDimmConfig::paper_default(),
                |c| c,
                1,
                None,
                topts.enabled(),
                EngineMode::EventDriven,
            )
            .expect("co-sim")
        },
    );

    let widths = [16, 10, 10, 10];
    header(
        "Table 2: on/off-lining events vs. block size",
        &["app", "128MB", "256MB", "512MB"],
        &widths,
    );
    for (i, p) in profiles.iter().enumerate() {
        let mut cells = vec![p.name.to_string()];
        for j in 0..BLOCKS.len() {
            cells.push(results[i * BLOCKS.len() + j].0.hotplug_events.to_string());
        }
        row(&cells, &widths);
    }
    println!("\npaper: event counts roughly halve with each block-size doubling");
    topts.write(
        &labels
            .iter()
            .zip(results)
            .map(|(l, (_, tele))| (l.clone(), tele))
            .collect::<Vec<_>>(),
    );
}
