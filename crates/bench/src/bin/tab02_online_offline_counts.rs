//! Table 2: number of on/off-lining events vs. block size
//! (paper: mcf 6/2/1, gcc 47/24/12, soplex 36/18/8, lbm 30/15/6,
//! libquantum 37/17/8, povray 40/20/9 for 128/256/512 MB).

use gd_bench::blocks::block_size_experiment;
use gd_bench::report::{header, row};
use gd_workloads::spec2006_offlining_set;
use greendimm::GreenDimmConfig;

fn main() {
    let widths = [16, 10, 10, 10];
    header(
        "Table 2: on/off-lining events vs. block size",
        &["app", "128MB", "256MB", "512MB"],
        &widths,
    );
    for p in spec2006_offlining_set() {
        let mut cells = vec![p.name.to_string()];
        for block_mib in [128u64, 256, 512] {
            let r =
                block_size_experiment(&p, block_mib, GreenDimmConfig::paper_default(), |c| c, 1)
                    .expect("co-sim");
            cells.push(r.hotplug_events.to_string());
        }
        row(&cells, &widths);
    }
    println!("\npaper: event counts roughly halve with each block-size doubling");
}
