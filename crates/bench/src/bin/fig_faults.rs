//! `fig_faults`: robustness curve — GreenDIMM's energy savings and stall
//! overhead as the injected fault rate rises (see `gd-faults` and
//! DESIGN.md §11).
//!
//! Each sweep point is one fault rate (`--jobs N` fans rates out across
//! workers), aggregating `--requests N` seeds. `--fault-rate X` restricts
//! the sweep to a single rate; `--engine stepped|event` selects the DRAM
//! probe's time-advance engine (rows are byte-identical either way — the
//! provenance header records the choice). Output is deterministic for any
//! `--jobs`, and the rate-0 row is byte-identical to a run with no fault
//! injectors installed at all.

use gd_bench::energy::{engine_name, parse_engine, MeasureOpts};
use gd_bench::report::{header, row};
use gd_bench::robustness::{robustness_experiment, RobustnessRow, FAULT_RATES};
use gd_bench::{provenance_line_with_engine, timed_sweep, SweepOpts, TelemetryOpts};
use gd_dram::EngineMode;
use gd_obs::Telemetry;
use gd_workloads::by_name;

struct Point {
    rows: Vec<RobustnessRow>,
    shards: Vec<(String, Option<Telemetry>)>,
}

fn parse_args() -> (Option<f64>, EngineMode) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rate = None;
    let mut engine = EngineMode::EventDriven;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fault-rate" => {
                if let Some(r) = args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) {
                    rate = Some(r.clamp(0.0, 1.0));
                    i += 1;
                }
            }
            "--engine" => {
                if let Some(e) = args.get(i + 1) {
                    engine = parse_engine(e);
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    (rate, engine)
}

fn main() {
    let sw = SweepOpts::from_args();
    let topts = TelemetryOpts::from_args();
    let mopts = MeasureOpts::from_args();
    let verify = mopts.strict_validate.then_some(gd_verify::Mode::Strict);
    let (single_rate, engine) = parse_args();
    let seed_count = sw.requests.unwrap_or(3).clamp(1, 16) as u64;
    let engine_name = engine_name(engine);
    let rates: Vec<f64> = match single_rate {
        Some(r) => vec![r],
        None => FAULT_RATES.to_vec(),
    };
    println!(
        "{}",
        provenance_line_with_engine(
            "fig_faults",
            &format!("app=gcc managed=8GiB blocks=128 uniform-plan seeds=1..{seed_count}"),
            engine_name,
            &sw,
        )
    );
    if verify.is_some() {
        println!("[strict-validate: co-simulation invariants enforced]");
    }
    let profile = by_name("gcc").expect("profile");
    let labels: Vec<String> = rates.iter().map(|r| format!("rate={r}")).collect();
    let results = timed_sweep("fig_faults", &rates, &labels, sw.jobs, |_ctx, rate| {
        let mut rows = Vec::new();
        let mut shards = Vec::new();
        for seed in 1..=seed_count {
            let (r, tele) =
                robustness_experiment(&profile, *rate, engine, seed, verify, topts.enabled())
                    .expect("co-sim");
            shards.push((format!("rate{rate}/s{seed}", rate = *rate), tele));
            rows.push(r);
        }
        Point { rows, shards }
    });

    let widths = [8, 10, 10, 10, 9, 8, 9, 9, 12];
    header(
        "fig_faults: robustness vs injected fault rate (gcc, 128 MB blocks)",
        &[
            "rate",
            "offl GiB",
            "ovh %",
            "save %",
            "injected",
            "retries",
            "rollback",
            "degraded",
            "probe cyc",
        ],
        &widths,
    );
    for (rate, p) in rates.iter().zip(&results) {
        let n = p.rows.len() as f64;
        let mean = |f: &dyn Fn(&RobustnessRow) -> f64| p.rows.iter().map(f).sum::<f64>() / n;
        let sum = |f: &dyn Fn(&RobustnessRow) -> u64| p.rows.iter().map(f).sum::<u64>();
        row(
            &[
                format!("{rate}"),
                format!("{:.3}", mean(&|r| r.offlined_gib_avg)),
                format!("{:.3}", 100.0 * mean(&|r| r.overhead_fraction)),
                format!("{:.2}", 100.0 * mean(&|r| r.energy_savings)),
                sum(&|r| r.faults_injected).to_string(),
                sum(&|r| r.retries).to_string(),
                sum(&|r| r.rollbacks).to_string(),
                sum(&|r| r.degraded_groups).to_string(),
                format!("{:.2}", mean(&|r| r.probe_latency_cycles)),
            ],
            &widths,
        );
    }
    println!("\n(averaged/summed over {seed_count} seeds per rate)");
    println!("expectation: savings degrade gracefully while overhead stays bounded;");
    println!("rollbacks stay 0 under removable-first (free blocks need no migration)");
    topts.write(
        &results
            .into_iter()
            .flat_map(|p| p.shards)
            .collect::<Vec<_>>(),
    );
}
