//! Ablation: KSM scan-rate sweep (§5.3) — pages_to_scan controls how fast
//! merging converges, trading CPU for reclaimed frames.
//!
//! Scan-rate points fan across the sweep pool (`--jobs N`); timing lands
//! in `results/BENCH_ablation_ksm_scan.json`.

use gd_bench::energy::{engine_name, MeasureOpts};
use gd_bench::report::{header, row};
use gd_bench::{provenance_line_with_engine, timed_sweep, SweepOpts, TelemetryOpts};
use gd_ksm::{Ksm, KsmConfig};
use gd_mmsim::{MemoryManager, MmConfig, PageKind};
use gd_types::SimTime;

fn main() {
    let sw = SweepOpts::from_args();
    let topts = TelemetryOpts::from_args();
    // The KSM scan loop is exact under every engine (no time-advance
    // co-simulation); `--engine` is accepted for flag uniformity and
    // recorded in the provenance header.
    let mopts = MeasureOpts::from_args();
    println!(
        "{}",
        provenance_line_with_engine(
            "ablation_ksm_scan",
            "mm-small-test 2x4096-page-vms rates=100..5000",
            engine_name(mopts.engine),
            &sw,
        )
    );
    let rates = [100u64, 500, 1000, 5000];
    let labels: Vec<String> = rates.iter().map(|r| format!("pages_to_scan={r}")).collect();
    let mut results = timed_sweep(
        "ablation_ksm_scan",
        &rates,
        &labels,
        sw.jobs,
        |_ctx, &pages_to_scan| {
            let mut mm = MemoryManager::new(MmConfig::small_test()).expect("mm");
            let mut ksm = Ksm::new(KsmConfig {
                pages_to_scan,
                ..KsmConfig::default()
            });
            let a = mm.allocate(4096, PageKind::UserMovable).expect("alloc");
            let b = mm.allocate(4096, PageKind::UserMovable).expect("alloc");
            ksm.register_region(a, vec![(7, 4096)], 0);
            ksm.register_region(b, vec![(7, 4096)], 0);
            let at60 = ksm.advance(SimTime::from_secs(60), &mut mm).expect("scan");
            let more = ksm.advance(SimTime::from_secs(540), &mut mm).expect("scan");
            let mut tele = topts.shard();
            if let Some(t) = &mut tele {
                ksm.export_telemetry(t, "ablation", SimTime::from_secs(600));
                mm.export_telemetry(t, "ablation");
            }
            (at60, at60 + more, tele)
        },
    );
    topts.write(
        &labels
            .iter()
            .zip(&mut results)
            .map(|(l, (_, _, tele))| (l.clone(), tele.take()))
            .collect::<Vec<_>>(),
    );
    let results: Vec<_> = results.into_iter().map(|(a, b, _)| (a, b)).collect();

    let widths = [14, 14, 16];
    header(
        "Ablation: KSM pages_to_scan sweep (two 4k-page VMs, 60 s)",
        &["pages/scan", "freed @60s", "freed @600s"],
        &widths,
    );
    for (rate, (at60, at600)) in rates.iter().zip(results) {
        row(
            &[rate.to_string(), at60.to_string(), at600.to_string()],
            &widths,
        );
    }
    println!("\nthe paper's 1000 pages / 50 ms costs ~10% of a core and converges in seconds");
}
