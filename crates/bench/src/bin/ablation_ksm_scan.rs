//! Ablation: KSM scan-rate sweep (§5.3) — pages_to_scan controls how fast
//! merging converges, trading CPU for reclaimed frames.

use gd_bench::report::{header, row};
use gd_ksm::{Ksm, KsmConfig};
use gd_mmsim::{MemoryManager, MmConfig, PageKind};
use gd_types::SimTime;

fn main() {
    let widths = [14, 14, 16];
    header(
        "Ablation: KSM pages_to_scan sweep (two 4k-page VMs, 60 s)",
        &["pages/scan", "freed @60s", "freed @600s"],
        &widths,
    );
    for pages_to_scan in [100u64, 500, 1000, 5000] {
        let mut mm = MemoryManager::new(MmConfig::small_test()).expect("mm");
        let mut ksm = Ksm::new(KsmConfig {
            pages_to_scan,
            ..KsmConfig::default()
        });
        let a = mm.allocate(4096, PageKind::UserMovable).expect("alloc");
        let b = mm.allocate(4096, PageKind::UserMovable).expect("alloc");
        ksm.register_region(a, vec![(7, 4096)], 0);
        ksm.register_region(b, vec![(7, 4096)], 0);
        let at60 = ksm.advance(SimTime::from_secs(60), &mut mm).expect("scan");
        let more = ksm.advance(SimTime::from_secs(540), &mut mm).expect("scan");
        row(
            &[
                pages_to_scan.to_string(),
                at60.to_string(),
                (at60 + more).to_string(),
            ],
            &widths,
        );
    }
    println!("\nthe paper's 1000 pages / 50 ms costs ~10% of a core and converges in seconds");
}
