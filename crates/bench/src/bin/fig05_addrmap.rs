//! Fig. 5: the address mapping for the 64 GB platform and the sub-array
//! group as the minimum power-management unit (1.5625 % of capacity).

use gd_dram::AddressMapper;
use gd_types::config::DramConfig;
use gd_types::ids::SubArrayGroup;

fn main() {
    let cfg = DramConfig::ddr4_2133_64gb();
    let mapper = AddressMapper::new(&cfg).expect("valid config");
    let l = mapper.bit_layout();
    println!("=== Fig. 5: physical address layout, 64 GB 4ch x 4rank DDR4 x8 ===\n");
    println!("bit fields (LSB -> MSB):");
    println!("  [{:>2} b] cache-line offset", l.offset);
    println!("  [{:>2} b] channel select      (interleaved)", l.channel);
    println!(
        "  [{:>2} b] bank group select   (interleaved)",
        l.bank_group
    );
    println!("  [{:>2} b] bank select         (interleaved)", l.bank);
    println!("  [{:>2} b] column (cache line)", l.column);
    println!("  [{:>2} b] rank select         (interleaved)", l.rank);
    println!("  [{:>2} b] local row  <- local row decoder", l.local_row);
    println!(
        "  [{:>2} b] sub-array  <- global row decoder (MSBs)",
        l.subarray
    );
    println!(
        "  total {} bits = {} GB\n",
        l.total(),
        (1u64 << l.total()) >> 30
    );
    println!(
        "sub-array groups: {} x {} MB = {} GB ({}% of capacity each)",
        mapper.subarray_groups(),
        cfg.subarray_group_bytes() >> 20,
        cfg.total_capacity_bytes() >> 30,
        100.0 * cfg.subarray_group_bytes() as f64 / cfg.total_capacity_bytes() as f64,
    );
    for g in [0u32, 1, 63] {
        let (s, e) = mapper
            .subarray_group_range(SubArrayGroup::new(g))
            .expect("interleaved");
        println!("  group {g:>2}: physical [{s:#013x}, {e:#013x})");
    }
    println!("\npaper: 1024 MB unit = 1.5625% of capacity, independent of total size");
}
