//! Fig. 5: the address mapping for the 64 GB platform and the sub-array
//! group as the minimum power-management unit (1.5625 % of capacity).
//!
//! One sweep point (`--jobs N` accepted for interface uniformity); timing
//! lands in `results/BENCH_fig05_addrmap.json` and `--telemetry PATH`
//! dumps the layout gauges as JSONL. This figure is CI's snapshot
//! staleness probe: it is cheap, fully deterministic, and regenerating it
//! at HEAD must reproduce `results/fig05_addrmap.txt` byte for byte.

use gd_bench::{print_provenance, timed_sweep, SweepOpts, TelemetryOpts};
use gd_dram::AddressMapper;
use gd_obs::Telemetry;
use gd_types::config::DramConfig;
use gd_types::ids::SubArrayGroup;

fn render() -> String {
    let cfg = DramConfig::ddr4_2133_64gb();
    let mapper = AddressMapper::new(&cfg).expect("valid config");
    let l = mapper.bit_layout();
    let mut out = String::new();
    let mut line = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    line("=== Fig. 5: physical address layout, 64 GB 4ch x 4rank DDR4 x8 ===\n".into());
    line("bit fields (LSB -> MSB):".into());
    line(format!("  [{:>2} b] cache-line offset", l.offset));
    line(format!(
        "  [{:>2} b] channel select      (interleaved)",
        l.channel
    ));
    line(format!(
        "  [{:>2} b] bank group select   (interleaved)",
        l.bank_group
    ));
    line(format!(
        "  [{:>2} b] bank select         (interleaved)",
        l.bank
    ));
    line(format!("  [{:>2} b] column (cache line)", l.column));
    line(format!(
        "  [{:>2} b] rank select         (interleaved)",
        l.rank
    ));
    line(format!(
        "  [{:>2} b] local row  <- local row decoder",
        l.local_row
    ));
    line(format!(
        "  [{:>2} b] sub-array  <- global row decoder (MSBs)",
        l.subarray
    ));
    line(format!(
        "  total {} bits = {} GB\n",
        l.total(),
        (1u64 << l.total()) >> 30
    ));
    line(format!(
        "sub-array groups: {} x {} MB = {} GB ({}% of capacity each)",
        mapper.subarray_groups(),
        cfg.subarray_group_bytes() >> 20,
        cfg.total_capacity_bytes() >> 30,
        100.0 * cfg.subarray_group_bytes() as f64 / cfg.total_capacity_bytes() as f64,
    ));
    for g in [0u32, 1, 63] {
        let (s, e) = mapper
            .subarray_group_range(SubArrayGroup::new(g))
            .expect("interleaved");
        line(format!("  group {g:>2}: physical [{s:#013x}, {e:#013x})"));
    }
    line("\npaper: 1024 MB unit = 1.5625% of capacity, independent of total size".into());
    out
}

fn main() {
    let sw = SweepOpts::from_args();
    let topts = TelemetryOpts::from_args();
    print_provenance("fig05_addrmap", "ddr4-2133 64GB 4ch x 4rank x8", &sw);
    let points = ["64gb"];
    let labels = vec!["64gb".to_string()];
    let mut results: Vec<(String, Option<Telemetry>)> =
        timed_sweep("fig05_addrmap", &points, &labels, sw.jobs, |_ctx, _| {
            let body = render();
            let mut tele = topts.shard();
            if let Some(t) = &mut tele {
                let cfg = DramConfig::ddr4_2133_64gb();
                let mapper = AddressMapper::new(&cfg).expect("valid config");
                t.registry.gauge_set(
                    "addrmap.subarray_groups",
                    f64::from(mapper.subarray_groups()),
                );
                t.registry.gauge_set(
                    "addrmap.group_mib",
                    (cfg.subarray_group_bytes() >> 20) as f64,
                );
            }
            (body, tele)
        });
    print!("{}", results[0].0);
    topts.write(&[("64gb".to_string(), results[0].1.take())]);
}
