//! Fig. 14 (extension): fleet-level energy vs. consolidation
//! aggressiveness — N hosts driven from the synthesized Azure cluster
//! stream through the placement scheduler, with and without GreenDIMM and
//! KSM-aware co-location. The paper motivates GreenDIMM with datacenter
//! utilization (§1: 40–60 % average across fleets); this figure closes the
//! loop by aggregating per-host savings into cluster power curves.
//!
//! Hosts shard across the deterministic worker pool (`--jobs N` fans hosts
//! out *inside* each point; the outer sweep over points runs serially, so
//! the pool is never oversubscribed). The default engine is epoch replay
//! at fleet granularity: every `replay_stride`-th host is co-simulated
//! exactly and the rest use a surrogate calibrated against those anchors —
//! `--engine stepped|event` co-simulates every host exactly. Output is
//! byte-identical for any `--jobs`. `--hosts N` sets the fleet size
//! (default 1000), `--requests N` trims the simulated day to N scheduler
//! periods, `--telemetry PATH` dumps the exact hosts' daemon/mm/ksm books
//! as JSONL, and timing lands in `results/BENCH_fig14_fleet_energy.json`.

use gd_bench::energy::{engine_name, MeasureOpts};
use gd_bench::report::{f2, header, pct, row};
use gd_bench::{provenance_line_with_engine, timed_sweep_jobs, SweepOpts, TelemetryOpts};
use gd_dram::{EngineMode, EpochReplayCfg};
use gd_fleet::{run_fleet, FleetOutcome};
use gd_power::{ActivityProfile, DramPowerModel, PowerGating, SystemPowerModel};
use gd_types::config::DramConfig;
use gd_types::fleet::{FleetConfig, FleetPlacement};

const UTILS: [f64; 4] = [0.50, 0.65, 0.80, 0.95];

/// One fleet variant at each consolidation cap.
struct Variant {
    tag: &'static str,
    greendimm: bool,
    ksm: bool,
    placement: FleetPlacement,
}

const VARIANTS: [Variant; 3] = [
    Variant {
        tag: "base",
        greendimm: false,
        ksm: false,
        placement: FleetPlacement::BestFit,
    },
    Variant {
        tag: "gd",
        greendimm: true,
        ksm: false,
        placement: FleetPlacement::BestFit,
    },
    Variant {
        tag: "gd+ksm",
        greendimm: true,
        ksm: true,
        placement: FleetPlacement::KsmAware,
    },
];

fn hosts_from_args() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    args.iter()
        .position(|a| a == "--hosts")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .map(|h| h.clamp(1, 10_000))
        .unwrap_or(1_000)
}

fn main() {
    let sw = SweepOpts::from_args();
    let topts = TelemetryOpts::from_args();
    let mopts = MeasureOpts::from_args();
    let hosts = hosts_from_args();
    let duration_s = sw
        .requests
        .map(|n| (n as u64 * 300).clamp(3_600, 86_400))
        .unwrap_or(86_400);
    // Fleet default is the sampled replay engine (the exact engines
    // co-simulate every host and take ~stride× longer); `--engine` pins it.
    let engine = if mopts.engine_explicit {
        mopts.engine
    } else {
        EngineMode::EpochReplay(EpochReplayCfg::default())
    };
    let verify = mopts.strict_validate.then_some(gd_verify::Mode::Strict);
    println!(
        "{}",
        provenance_line_with_engine(
            "fig14_fleet_energy",
            &format!(
                "azure-cluster hosts={hosts} 256GB/host block=1GB seed=42 \
                 duration_s={duration_s} stride=16 utils=0.50..0.95 x base/gd/gd+ksm"
            ),
            engine_name(engine),
            &sw,
        )
    );
    if verify.is_some() {
        println!("[strict-validate: fleet + co-simulation invariants enforced]");
    }

    let points: Vec<(f64, &Variant)> = UTILS
        .iter()
        .flat_map(|&u| VARIANTS.iter().map(move |v| (u, v)))
        .collect();
    let labels: Vec<String> = points
        .iter()
        .map(|(u, v)| format!("u{u:.2}/{}", v.tag))
        .collect();
    // Outer sweep serial (pool_jobs = 1): each point parallelizes over its
    // hosts with `sw.jobs` workers, which the timing sidecar records.
    let mut runs: Vec<FleetOutcome> = timed_sweep_jobs(
        "fig14_fleet_energy",
        &points,
        &labels,
        1,
        sw.jobs,
        |_ctx, (max_util, v)| {
            let cfg = FleetConfig {
                hosts,
                duration_s,
                max_util: *max_util,
                placement: v.placement,
                ksm: v.ksm,
                greendimm: v.greendimm,
                ..FleetConfig::paper_1k()
            };
            run_fleet(&cfg, engine, sw.jobs, verify, topts.enabled()).expect("fleet run")
        },
    );
    if topts.enabled() {
        let shards: Vec<(String, Option<gd_obs::Telemetry>)> = labels
            .iter()
            .zip(&mut runs)
            .flat_map(|(label, run)| {
                run.telemetry
                    .take()
                    .unwrap_or_default()
                    .into_iter()
                    .map(|(host, tele)| (format!("{label}/{host}"), Some(tele)))
                    .collect::<Vec<_>>()
            })
            .collect();
        topts.write(&shards);
    }

    // Per-host DRAM power from the same model Fig. 13 fits to the paper's
    // 256 GB measurement; deep power-down gates each host individually.
    let sys_model = SystemPowerModel::default();
    let cpu_util = 0.3; // consolidated VM server, modest CPU activity
    let model = DramPowerModel::new(DramConfig::ddr4_2133_256gb());
    let activity = ActivityProfile::busy(0.15);
    let fleet_kw = |run: &FleetOutcome| -> (f64, f64) {
        let mut dram_w = 0.0;
        let mut sys_w = 0.0;
        for h in &run.hosts {
            let w =
                model.analytic_power_w(&activity, &PowerGating::deep_pd(h.mean_deep_pd_fraction));
            dram_w += w;
            sys_w += sys_model.system_power_w(w, cpu_util);
        }
        (dram_w / 1_000.0, sys_w / 1_000.0)
    };

    let widths = [6, 10, 10, 9, 10, 9, 9, 9, 9, 10];
    header(
        &format!("Fig. 14: fleet DRAM/system power vs. consolidation cap ({hosts} hosts, 24 h)"),
        &[
            "cap",
            "base kW",
            "gd kW",
            "gd red",
            "ksm kW",
            "ksm red",
            "sys red",
            "ksm sred",
            "placed",
            "peak used",
        ],
        &widths,
    );
    for (i, &u) in UTILS.iter().enumerate() {
        let base = &runs[3 * i];
        let gd = &runs[3 * i + 1];
        let ksm = &runs[3 * i + 2];
        let (base_kw, base_sys) = fleet_kw(base);
        let (gd_kw, gd_sys) = fleet_kw(gd);
        let (ksm_kw, ksm_sys) = fleet_kw(ksm);
        row(
            &[
                pct(u),
                f2(base_kw),
                f2(gd_kw),
                pct(1.0 - gd_kw / base_kw),
                f2(ksm_kw),
                pct(1.0 - ksm_kw / base_kw),
                pct(1.0 - gd_sys / base_sys),
                pct(1.0 - ksm_sys / base_sys),
                pct(gd.stats.placement_rate()),
                gd.stats.peak_hosts_used.to_string(),
            ],
            &widths,
        );
    }
    let exact = runs[0].exact_hosts;
    println!(
        "\n{hosts} hosts/point, {exact} co-simulated exactly per point ({})",
        engine_name(engine)
    );
    println!("mean scheduled utilization at cap 0.80 (gd): {}", {
        let gd = &runs[3 * UTILS.iter().position(|&u| u == 0.80).unwrap() + 1];
        pct(gd.mean_utilization())
    });
    println!(
        "looser caps spread VMs across more hosts -> more idle memory per host -> deeper\n\
         power-down; KSM-aware co-location frees extra frames on top"
    );
}
