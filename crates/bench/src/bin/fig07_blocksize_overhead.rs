//! Fig. 7: execution-time increase vs. block size (paper: all under 3 %;
//! overhead grows slightly as blocks shrink — mcf 2.9 % @128 MB vs 2.2 %
//! @512 MB).
//!
//! Each {app × block size} co-simulation is one sweep point (`--jobs N`);
//! timing lands in `results/BENCH_fig07_blocksize_overhead.json` and
//! `--telemetry PATH` dumps every run's daemon/mm books as JSONL.

use gd_bench::blocks::block_size_experiment_tele;
use gd_bench::report::{header, pct, row};
use gd_bench::{print_provenance, timed_sweep, SweepOpts, TelemetryOpts};
use gd_dram::EngineMode;
use gd_workloads::{spec2006_offlining_set, AppProfile};
use greendimm::GreenDimmConfig;

const BLOCKS: [u64; 3] = [128, 256, 512];

fn main() {
    let sw = SweepOpts::from_args();
    let topts = TelemetryOpts::from_args();
    print_provenance(
        "fig07_blocksize_overhead",
        "managed=8GiB spec2006-offlining blocks=128/256/512 seed=1",
        &sw,
    );
    let profiles = spec2006_offlining_set();
    let points: Vec<(AppProfile, u64)> = profiles
        .iter()
        .flat_map(|p| BLOCKS.iter().map(|&b| (p.clone(), b)))
        .collect();
    let labels: Vec<String> = points
        .iter()
        .map(|(p, b)| format!("{}/{b}MB", p.name))
        .collect();
    let results = timed_sweep(
        "fig07_blocksize_overhead",
        &points,
        &labels,
        sw.jobs,
        |_ctx, (p, block_mib)| {
            block_size_experiment_tele(
                p,
                *block_mib,
                GreenDimmConfig::paper_default(),
                |c| c,
                1,
                None,
                topts.enabled(),
                EngineMode::EventDriven,
            )
            .expect("co-sim")
        },
    );

    let widths = [16, 10, 10, 10];
    header(
        "Fig. 7: execution-time increase by GreenDIMM vs. block size",
        &["app", "128MB", "256MB", "512MB"],
        &widths,
    );
    for (i, p) in profiles.iter().enumerate() {
        let mut cells = vec![p.name.to_string()];
        for j in 0..BLOCKS.len() {
            cells.push(pct(results[i * BLOCKS.len() + j].0.overhead_fraction));
        }
        row(&cells, &widths);
    }
    println!("\npaper: <3% everywhere; overhead decreases slightly with larger blocks");
    topts.write(
        &labels
            .iter()
            .zip(results)
            .map(|(l, (_, tele))| (l.clone(), tele))
            .collect::<Vec<_>>(),
    );
}
