//! Fig. 7: execution-time increase vs. block size (paper: all under 3 %;
//! overhead grows slightly as blocks shrink — mcf 2.9 % @128 MB vs 2.2 %
//! @512 MB).

use gd_bench::blocks::block_size_experiment;
use gd_bench::report::{header, pct, row};
use gd_workloads::spec2006_offlining_set;
use greendimm::GreenDimmConfig;

fn main() {
    let widths = [16, 10, 10, 10];
    header(
        "Fig. 7: execution-time increase by GreenDIMM vs. block size",
        &["app", "128MB", "256MB", "512MB"],
        &widths,
    );
    for p in spec2006_offlining_set() {
        let mut cells = vec![p.name.to_string()];
        for block_mib in [128u64, 256, 512] {
            let r =
                block_size_experiment(&p, block_mib, GreenDimmConfig::paper_default(), |c| c, 1)
                    .expect("co-sim");
            cells.push(pct(r.overhead_fraction));
        }
        row(&cells, &widths);
    }
    println!("\npaper: <3% everywhere; overhead decreases slightly with larger blocks");
}
