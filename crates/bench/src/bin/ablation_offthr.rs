//! Ablation: the off-lining threshold `off_thr` — the paper fixes 10 %
//! because lower values cause swapping; sweep it and watch the
//! offline-capacity / on-lining-stall trade-off.
//!
//! Threshold points fan across the sweep pool (`--jobs N`); timing lands
//! in `results/BENCH_ablation_offthr.json`.

use gd_bench::blocks::block_size_experiment_tele;
use gd_bench::energy::{engine_name, MeasureOpts};
use gd_bench::report::{f2, header, pct, row};
use gd_bench::{provenance_line_with_engine, timed_sweep, SweepOpts, TelemetryOpts};
use gd_workloads::by_name;
use greendimm::GreenDimmConfig;

fn main() {
    let sw = SweepOpts::from_args();
    let topts = TelemetryOpts::from_args();
    let mopts = MeasureOpts::from_args();
    println!(
        "{}",
        provenance_line_with_engine(
            "ablation_offthr",
            "managed=8GiB gcc blocks=128 seed=1 thresholds=0.05..0.30",
            engine_name(mopts.engine),
            &sw,
        )
    );
    let thresholds = [0.05, 0.10, 0.15, 0.20, 0.30];
    let labels: Vec<String> = thresholds.iter().map(|t| format!("off_thr={t}")).collect();
    let gcc = by_name("gcc").expect("profile");
    let mut results = timed_sweep(
        "ablation_offthr",
        &thresholds,
        &labels,
        sw.jobs,
        |_ctx, &off_thr| {
            let cfg = GreenDimmConfig {
                off_thr,
                on_thr: off_thr / 2.0,
                ..GreenDimmConfig::paper_default()
            };
            block_size_experiment_tele(
                &gcc,
                128,
                cfg,
                |c| c,
                1,
                None,
                topts.enabled(),
                mopts.engine,
            )
            .expect("co-sim")
        },
    );
    topts.write(
        &labels
            .iter()
            .zip(&mut results)
            .map(|(l, (_, tele))| (l.clone(), tele.take()))
            .collect::<Vec<_>>(),
    );
    let results: Vec<_> = results.into_iter().map(|(r, _)| r).collect();

    let widths = [8, 14, 12, 10];
    header(
        "Ablation: off_thr sweep (gcc, 128 MB blocks, 8 GiB managed)",
        &["off_thr", "offlined GiB", "overhead", "events"],
        &widths,
    );
    for (off_thr, r) in thresholds.iter().zip(results) {
        row(
            &[
                pct(*off_thr),
                f2(r.offlined_gib_avg),
                pct(r.overhead_fraction),
                r.hotplug_events.to_string(),
            ],
            &widths,
        );
    }
    println!("\nsmaller reserves off-line more but stall allocations more often");
}
