//! The Azure VM-trace co-simulation behind Figs. 1, 12, and 13.
//!
//! The single-host replay loop itself lives in [`gd_fleet::host`] (the
//! fleet drives it once per host); this module keeps the bench-facing
//! configuration, synthesizes the single-host Azure trace, and adapts the
//! host runner's outcome to the shapes the figure binaries consume.

use gd_dram::EngineMode;
use gd_fleet::host::{run_host, HostSimConfig};
use gd_types::Result;
use gd_workloads::azure::{synthesize, AzureConfig};
use greendimm::DaemonStats;

/// Configuration of one VM-trace run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmTraceConfig {
    /// Installed memory capacity in GiB (the paper scales 256 GB → 1 TB in
    /// Fig. 13 while the VM load stays the same).
    pub capacity_gb: u64,
    /// Memory block size in GiB (paper: 1 GB for the VM experiments).
    pub block_gb: u64,
    /// Enable KSM.
    pub ksm: bool,
    /// Enable the GreenDIMM daemon (off = conventional kernel).
    pub greendimm: bool,
    /// Trace duration in seconds.
    pub duration_s: u64,
    /// RNG seed.
    pub seed: u64,
    /// Time-advance engine (`--engine` on the figure binaries). The exact
    /// engines agree bit for bit; `EpochReplay` fast-forwards quiet
    /// scheduler periods.
    pub engine: EngineMode,
}

impl VmTraceConfig {
    /// The paper's Fig. 12 setup.
    pub fn paper_256gb() -> Self {
        VmTraceConfig {
            capacity_gb: 256,
            block_gb: 1,
            ksm: false,
            greendimm: true,
            duration_s: 86_400,
            seed: 42,
            engine: EngineMode::EventDriven,
        }
    }

    /// A short variant for tests.
    pub fn short_test() -> Self {
        VmTraceConfig {
            duration_s: 4 * 3_600,
            ..Self::paper_256gb()
        }
    }
}

/// One sampled point of the co-simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmTraceSample {
    /// Seconds from trace start.
    pub time_s: u64,
    /// Used fraction of installed capacity (after KSM merging, if on).
    pub used_fraction: f64,
    /// Off-lined memory blocks.
    pub offline_blocks: usize,
    /// Fraction of sub-array groups in deep power-down.
    pub deep_pd_fraction: f64,
}

/// Full outcome of a VM-trace run.
#[derive(Debug, Clone)]
pub struct VmTraceOutcome {
    /// Per-scheduler-tick samples.
    pub samples: Vec<VmTraceSample>,
    /// Daemon counters.
    pub daemon: DaemonStats,
    /// Pages KSM released over the run.
    pub ksm_released_pages: u64,
}

impl VmTraceOutcome {
    /// Mean used fraction over the run.
    pub fn mean_used_fraction(&self) -> f64 {
        mean(self.samples.iter().map(|s| s.used_fraction))
    }

    /// Mean number of off-line blocks.
    pub fn mean_offline_blocks(&self) -> f64 {
        mean(self.samples.iter().map(|s| s.offline_blocks as f64))
    }

    /// Minimum and maximum off-line block counts.
    pub fn offline_blocks_range(&self) -> (usize, usize) {
        self.samples.iter().fold((usize::MAX, 0), |(lo, hi), s| {
            (lo.min(s.offline_blocks), hi.max(s.offline_blocks))
        })
    }

    /// Mean deep power-down fraction (drives the Fig. 12/13 power numbers).
    pub fn mean_deep_pd_fraction(&self) -> f64 {
        mean(self.samples.iter().map(|s| s.deep_pd_fraction))
    }
}

fn mean(iter: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = iter.fold((0.0, 0u64), |(s, n), v| (s + v, n + 1));
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Runs the VM-trace co-simulation.
///
/// # Errors
///
/// Propagates simulator-setup and bookkeeping errors (not kernel-level
/// off-lining failures, which are part of the experiment).
pub fn run_vm_trace(cfg: &VmTraceConfig) -> Result<VmTraceOutcome> {
    Ok(run_vm_trace_tele(cfg, false)?.0)
}

/// [`run_vm_trace`] with optional telemetry: when `with_telemetry` is
/// true, the co-simulation records span-scoped daemon ticks and
/// allocation-stall events as they happen, exports the mm/ksm/daemon books
/// under the `vm.*` scope at the end, and returns the filled sink.
///
/// # Errors
///
/// Same as [`run_vm_trace`].
pub fn run_vm_trace_tele(
    cfg: &VmTraceConfig,
    with_telemetry: bool,
) -> Result<(VmTraceOutcome, Option<gd_obs::Telemetry>)> {
    let azure = AzureConfig {
        duration_s: cfg.duration_s,
        seed: cfg.seed,
        ..AzureConfig::paper_24h()
    };
    let trace = synthesize(&azure);
    let host_cfg = HostSimConfig {
        capacity_gb: cfg.capacity_gb,
        block_gb: cfg.block_gb,
        ksm: cfg.ksm,
        greendimm: cfg.greendimm,
        duration_s: cfg.duration_s,
        schedule_period_s: azure.schedule_period_s,
        seed: cfg.seed,
        engine: cfg.engine,
    };
    let (run, tele) = run_host(&host_cfg, &trace.events, with_telemetry)?;
    Ok((
        VmTraceOutcome {
            samples: run
                .samples
                .iter()
                .map(|s| VmTraceSample {
                    time_s: s.time_s,
                    used_fraction: s.used_fraction,
                    offline_blocks: s.offline_blocks,
                    deep_pd_fraction: s.deep_pd_fraction,
                })
                .collect(),
            daemon: run.daemon,
            ksm_released_pages: run.ksm_released_pages,
        },
        tele,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greendimm_offlines_unused_blocks() {
        let out = run_vm_trace(&VmTraceConfig::short_test()).unwrap();
        assert!(
            out.mean_offline_blocks() > 20.0,
            "{}",
            out.mean_offline_blocks()
        );
        assert!(out.mean_deep_pd_fraction() > 0.05);
        assert!(out.daemon.offline_events > 0);
    }

    #[test]
    fn inert_daemon_offlines_nothing() {
        let cfg = VmTraceConfig {
            greendimm: false,
            ..VmTraceConfig::short_test()
        };
        let out = run_vm_trace(&cfg).unwrap();
        assert_eq!(out.mean_offline_blocks(), 0.0);
        assert_eq!(out.daemon.offline_events, 0);
    }

    #[test]
    fn telemetry_traces_every_tick() {
        let cfg = VmTraceConfig {
            ksm: true,
            ..VmTraceConfig::short_test()
        };
        let (out, tele) = run_vm_trace_tele(&cfg, true).unwrap();
        let tele = tele.expect("telemetry was enabled");
        // One span open + close per daemon tick, plus any stall spans. Each
        // scheduler step covers several daemon tick periods, so the daemon
        // ticks at least once per sample.
        let ticks = tele.registry.counter("vm.daemon.ticks");
        assert!(ticks >= out.samples.len() as u64, "{ticks} daemon ticks");
        assert!(tele.trace.events().len() as u64 >= 2 * ticks);
        assert!(tele.registry.counter("vm.ksm.pages_scanned") > 0);
        assert_eq!(
            tele.registry.counter("vm.daemon.offline_events"),
            out.daemon.offline_events
        );
        // Disabled telemetry must leave the outcome untouched.
        let (base, none) = run_vm_trace_tele(&cfg, false).unwrap();
        assert!(none.is_none());
        assert_eq!(base.samples, out.samples);
    }

    #[test]
    fn ksm_frees_pages_and_increases_offlining() {
        let base = run_vm_trace(&VmTraceConfig::short_test()).unwrap();
        let with_ksm = run_vm_trace(&VmTraceConfig {
            ksm: true,
            ..VmTraceConfig::short_test()
        })
        .unwrap();
        assert!(with_ksm.ksm_released_pages > 0);
        assert!(
            with_ksm.mean_offline_blocks() > base.mean_offline_blocks(),
            "ksm {} vs base {}",
            with_ksm.mean_offline_blocks(),
            base.mean_offline_blocks()
        );
        assert!(with_ksm.mean_used_fraction() < base.mean_used_fraction());
    }

    #[test]
    fn engines_agree_on_the_vm_trace() {
        let exact = run_vm_trace(&VmTraceConfig::short_test()).unwrap();
        let stepped = run_vm_trace(&VmTraceConfig {
            engine: EngineMode::Stepped,
            ..VmTraceConfig::short_test()
        })
        .unwrap();
        assert_eq!(exact.samples, stepped.samples);
        assert_eq!(exact.daemon, stepped.daemon);
        let replay = run_vm_trace(&VmTraceConfig {
            engine: EngineMode::EpochReplay(Default::default()),
            ..VmTraceConfig::short_test()
        })
        .unwrap();
        // The replay engine only skips settled periods, so the means stay
        // close even when it engages.
        assert!((replay.mean_deep_pd_fraction() - exact.mean_deep_pd_fraction()).abs() < 0.02);
        assert!((replay.mean_used_fraction() - exact.mean_used_fraction()).abs() < 0.02);
    }
}
