//! The Azure VM-trace co-simulation behind Figs. 1, 12, and 13.

use gd_ksm::{Ksm, KsmConfig, RegionId};
use gd_mmsim::{AllocationId, MemoryManager, MmConfig, PageKind};
use gd_types::{Result, SimTime};
use gd_workloads::azure::{synthesize, AzureConfig, VmEventKind};
use greendimm::{Daemon, DaemonStats, EpochSim, FootprintDriver, GreenDimmConfig, GroupMap};
use std::collections::HashMap; // detlint: allow(maporder)

/// Configuration of one VM-trace run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmTraceConfig {
    /// Installed memory capacity in GiB (the paper scales 256 GB → 1 TB in
    /// Fig. 13 while the VM load stays the same).
    pub capacity_gb: u64,
    /// Memory block size in GiB (paper: 1 GB for the VM experiments).
    pub block_gb: u64,
    /// Enable KSM.
    pub ksm: bool,
    /// Enable the GreenDIMM daemon (off = conventional kernel).
    pub greendimm: bool,
    /// Trace duration in seconds.
    pub duration_s: u64,
    /// RNG seed.
    pub seed: u64,
}

impl VmTraceConfig {
    /// The paper's Fig. 12 setup.
    pub fn paper_256gb() -> Self {
        VmTraceConfig {
            capacity_gb: 256,
            block_gb: 1,
            ksm: false,
            greendimm: true,
            duration_s: 86_400,
            seed: 42,
        }
    }

    /// A short variant for tests.
    pub fn short_test() -> Self {
        VmTraceConfig {
            duration_s: 4 * 3_600,
            ..Self::paper_256gb()
        }
    }
}

/// One sampled point of the co-simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmTraceSample {
    /// Seconds from trace start.
    pub time_s: u64,
    /// Used fraction of installed capacity (after KSM merging, if on).
    pub used_fraction: f64,
    /// Off-lined memory blocks.
    pub offline_blocks: usize,
    /// Fraction of sub-array groups in deep power-down.
    pub deep_pd_fraction: f64,
}

/// Full outcome of a VM-trace run.
#[derive(Debug, Clone)]
pub struct VmTraceOutcome {
    /// Per-scheduler-tick samples.
    pub samples: Vec<VmTraceSample>,
    /// Daemon counters.
    pub daemon: DaemonStats,
    /// Pages KSM released over the run.
    pub ksm_released_pages: u64,
}

impl VmTraceOutcome {
    /// Mean used fraction over the run.
    pub fn mean_used_fraction(&self) -> f64 {
        mean(self.samples.iter().map(|s| s.used_fraction))
    }

    /// Mean number of off-line blocks.
    pub fn mean_offline_blocks(&self) -> f64 {
        mean(self.samples.iter().map(|s| s.offline_blocks as f64))
    }

    /// Minimum and maximum off-line block counts.
    pub fn offline_blocks_range(&self) -> (usize, usize) {
        self.samples.iter().fold((usize::MAX, 0), |(lo, hi), s| {
            (lo.min(s.offline_blocks), hi.max(s.offline_blocks))
        })
    }

    /// Mean deep power-down fraction (drives the Fig. 12/13 power numbers).
    pub fn mean_deep_pd_fraction(&self) -> f64 {
        mean(self.samples.iter().map(|s| s.deep_pd_fraction))
    }
}

fn mean(iter: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = iter.fold((0.0, 0u64), |(s, n), v| (s + v, n + 1));
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Runs the VM-trace co-simulation.
///
/// # Errors
///
/// Propagates simulator-setup and bookkeeping errors (not kernel-level
/// off-lining failures, which are part of the experiment).
pub fn run_vm_trace(cfg: &VmTraceConfig) -> Result<VmTraceOutcome> {
    Ok(run_vm_trace_tele(cfg, false)?.0)
}

/// [`run_vm_trace`] with optional telemetry: when `with_telemetry` is
/// true, the co-simulation records span-scoped daemon ticks and
/// allocation-stall events as they happen, exports the mm/ksm/daemon books
/// under the `vm.*` scope at the end, and returns the filled sink.
///
/// # Errors
///
/// Same as [`run_vm_trace`].
pub fn run_vm_trace_tele(
    cfg: &VmTraceConfig,
    with_telemetry: bool,
) -> Result<(VmTraceOutcome, Option<gd_obs::Telemetry>)> {
    let azure = AzureConfig {
        duration_s: cfg.duration_s,
        seed: cfg.seed,
        ..AzureConfig::paper_24h()
    };
    let trace = synthesize(&azure);

    let mm_cfg = MmConfig {
        capacity_bytes: cfg.capacity_gb << 30,
        block_bytes: cfg.block_gb << 30,
        movablecore_bytes: None,
        unmovable_leak_prob: 0.0,
        transient_fail_prob: 0.0,
        seed: cfg.seed,
    };
    let mut mm = MemoryManager::new(mm_cfg)?;
    // Kernel reservation (unmovable, stays on-line).
    let kernel_pages = mm.meminfo().installed_pages / 50;
    mm.allocate(kernel_pages, PageKind::KernelUnmovable)?;

    let gd_cfg = if cfg.greendimm {
        GreenDimmConfig::paper_default().with_seed(cfg.seed)
    } else {
        // Thresholds that never trigger: the daemon is inert.
        GreenDimmConfig {
            off_thr: 2.0,
            on_thr: 0.0,
            ..GreenDimmConfig::paper_default()
        }
    };
    let map = GroupMap::new(mm_cfg.capacity_bytes, 64, mm_cfg.block_bytes)?;
    let daemon = Daemon::new(gd_cfg, map);
    let ksm = cfg.ksm.then(|| Ksm::new(KsmConfig::default()));
    let mut sim = EpochSim::new(mm, daemon, ksm);
    if with_telemetry {
        sim.enable_telemetry();
    }

    // Keyed lookups only (insert/remove by VM id) — never iterated, so the
    // hash order cannot reach any output.
    let mut footprints: HashMap<u32, (FootprintDriver, Option<RegionId>, AllocationId)> = // detlint: allow(maporder)
        HashMap::new(); // detlint: allow(maporder)
    let mut samples = Vec::new();
    let mut event_idx = 0;
    let tick = azure.schedule_period_s;
    let ticks = cfg.duration_s / tick;
    for t in 0..=ticks {
        let now_s = t * tick;
        // Apply this tick's VM lifecycle events.
        while event_idx < trace.events.len() && trace.events[event_idx].time_s <= now_s {
            let ev = &trace.events[event_idx];
            event_idx += 1;
            match ev.kind {
                VmEventKind::Start => {
                    let mut fp = FootprintDriver::new();
                    sim.set_footprint(&mut fp, ev.vm.mem_pages())?;
                    // Find the allocation id through the manager: the driver
                    // hides it, so register KSM against a fresh handle by
                    // re-deriving contents. We track the driver itself.
                    let region = match (&mut sim.ksm, cfg.ksm) {
                        (Some(_), true) => {
                            let (shareable, unique) = ev.vm.ksm_contents();
                            let owner = fp.allocation_id().expect("just allocated");
                            Some(
                                sim.ksm
                                    .as_mut()
                                    .expect("ksm on")
                                    .register_region(owner, shareable, unique),
                            )
                        }
                        _ => None,
                    };
                    let owner = fp.allocation_id().expect("just allocated");
                    footprints.insert(ev.vm.id, (fp, region, owner));
                }
                VmEventKind::Stop => {
                    if let Some((mut fp, region, _owner)) = footprints.remove(&ev.vm.id) {
                        if let (Some(r), Some(ksm)) = (region, &mut sim.ksm) {
                            ksm.unregister_region(r)?;
                        }
                        fp.clear(&mut sim.mm)?;
                    }
                }
            }
        }
        sim.step(SimTime::from_secs(tick))?;
        let info = sim.mm.meminfo();
        samples.push(VmTraceSample {
            time_s: now_s,
            used_fraction: info.used_pages as f64 / info.installed_pages as f64,
            offline_blocks: sim.mm.offline_block_count(),
            deep_pd_fraction: sim.deep_pd_fraction(),
        });
    }
    let released = sim.ksm.as_ref().map(|k| k.frames_released()).unwrap_or(0);
    sim.export_telemetry("vm");
    let tele = sim.telemetry.take();
    Ok((
        VmTraceOutcome {
            samples,
            daemon: sim.daemon.stats,
            ksm_released_pages: released,
        },
        tele,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greendimm_offlines_unused_blocks() {
        let out = run_vm_trace(&VmTraceConfig::short_test()).unwrap();
        assert!(
            out.mean_offline_blocks() > 20.0,
            "{}",
            out.mean_offline_blocks()
        );
        assert!(out.mean_deep_pd_fraction() > 0.05);
        assert!(out.daemon.offline_events > 0);
    }

    #[test]
    fn inert_daemon_offlines_nothing() {
        let cfg = VmTraceConfig {
            greendimm: false,
            ..VmTraceConfig::short_test()
        };
        let out = run_vm_trace(&cfg).unwrap();
        assert_eq!(out.mean_offline_blocks(), 0.0);
        assert_eq!(out.daemon.offline_events, 0);
    }

    #[test]
    fn telemetry_traces_every_tick() {
        let cfg = VmTraceConfig {
            ksm: true,
            ..VmTraceConfig::short_test()
        };
        let (out, tele) = run_vm_trace_tele(&cfg, true).unwrap();
        let tele = tele.expect("telemetry was enabled");
        // One span open + close per daemon tick, plus any stall spans. Each
        // scheduler step covers several daemon tick periods, so the daemon
        // ticks at least once per sample.
        let ticks = tele.registry.counter("vm.daemon.ticks");
        assert!(ticks >= out.samples.len() as u64, "{ticks} daemon ticks");
        assert!(tele.trace.events().len() as u64 >= 2 * ticks);
        assert!(tele.registry.counter("vm.ksm.pages_scanned") > 0);
        assert_eq!(
            tele.registry.counter("vm.daemon.offline_events"),
            out.daemon.offline_events
        );
        // Disabled telemetry must leave the outcome untouched.
        let (base, none) = run_vm_trace_tele(&cfg, false).unwrap();
        assert!(none.is_none());
        assert_eq!(base.samples, out.samples);
    }

    #[test]
    fn ksm_frees_pages_and_increases_offlining() {
        let base = run_vm_trace(&VmTraceConfig::short_test()).unwrap();
        let with_ksm = run_vm_trace(&VmTraceConfig {
            ksm: true,
            ..VmTraceConfig::short_test()
        })
        .unwrap();
        assert!(with_ksm.ksm_released_pages > 0);
        assert!(
            with_ksm.mean_offline_blocks() > base.mean_offline_blocks(),
            "ksm {} vs base {}",
            with_ksm.mean_offline_blocks(),
            base.mean_offline_blocks()
        );
        assert!(with_ksm.mean_used_fraction() < base.mean_used_fraction());
    }
}
