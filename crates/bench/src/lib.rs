//! The experiment harness: shared logic behind the figure/table
//! regeneration binaries (`src/bin/fig*.rs`, `src/bin/tab*.rs`) and the
//! criterion micro-benchmarks.
//!
//! Every table and figure of the paper's evaluation has a binary that
//! regenerates it; see `DESIGN.md` §5 for the index and `EXPERIMENTS.md`
//! for paper-vs-measured values. Run e.g.:
//!
//! ```text
//! cargo run --release -p gd-bench --bin fig09_dram_energy
//! ```

pub mod blocks;
pub mod energy;
pub mod report;
pub mod sweep;
pub mod vmtrace;

pub use blocks::{block_size_experiment, BlockSizeRow, MANAGED_BYTES};
pub use energy::{evaluate_app, find_row, measure_app, AppMeasurement, EnergyRow};
pub use sweep::{default_jobs, sweep, timed_sweep, PointCtx, SweepOpts, SweepTiming};
pub use vmtrace::{run_vm_trace, VmTraceConfig, VmTraceOutcome, VmTraceSample};
