//! The experiment harness: shared logic behind the figure/table
//! regeneration binaries (`src/bin/fig*.rs`, `src/bin/tab*.rs`) and the
//! criterion micro-benchmarks.
//!
//! Every table and figure of the paper's evaluation has a binary that
//! regenerates it; see `DESIGN.md` §5 for the index and `EXPERIMENTS.md`
//! for paper-vs-measured values. Run e.g.:
//!
//! ```text
//! cargo run --release -p gd-bench --bin fig09_dram_energy
//! ```

pub mod blocks;
pub mod energy;
pub mod provenance;
pub mod report;
pub mod robustness;
pub mod sweep;
pub mod telemetry;
pub mod vmtrace;

pub use blocks::{block_size_experiment, block_size_experiment_tele, BlockSizeRow, MANAGED_BYTES};
pub use energy::{
    engine_name, evaluate_app, evaluate_app_tele, find_row, measure_app, measure_app_tele,
    parse_engine, AppMeasurement, EnergyRow,
};
pub use provenance::{fnv1a, print_provenance, provenance_line, provenance_line_with_engine};
pub use robustness::{robustness_experiment, RobustnessRow, FAULT_RATES};
pub use sweep::{
    default_jobs, sweep, timed_sweep, timed_sweep_jobs, PointCtx, SweepOpts, SweepTiming,
};
pub use telemetry::{render_shards, TelemetryOpts};
pub use vmtrace::{run_vm_trace, run_vm_trace_tele, VmTraceConfig, VmTraceOutcome, VmTraceSample};
