//! Deterministic parallel sweep engine for the figure/table binaries.
//!
//! Every evaluation figure is an embarrassingly-parallel sweep over
//! independent {workload × policy × interleave} points: each point builds
//! its own [`gd_dram::MemorySystem`] (or co-simulation) from a config and a
//! seed, so points share no mutable state and can fan out across a worker
//! pool. Determinism is preserved by construction:
//!
//! * each point's seed comes from [`gd_types::rng::sweep_point_seed`] — a
//!   pure function of the experiment seed and the point *index*, never of
//!   the thread that ran it;
//! * workers pull indices from a shared atomic counter but collect results
//!   locally and the harness sorts the merged result set by index, so the
//!   returned `Vec` (and therefore every printed table) is byte-identical
//!   for any `--jobs` value and any thread schedule.
//!
//! The pool itself is [`gd_fleet::pool::shard_map`] — built on
//! `std::thread::scope` (the workspace is dependency-free, so there is no
//! rayon/crossbeam to lean on), shared with the fleet's host sharding, and
//! `--jobs 1` short-circuits to a plain serial loop, reproducing the
//! pre-sweep execution path exactly. A panicking point no longer poisons
//! the merge mutex into an opaque `PoisonError`: the pool re-panics with
//! the failing point index and the original payload text.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Context handed to the closure evaluating one sweep point.
#[derive(Debug, Clone, Copy)]
pub struct PointCtx {
    /// Zero-based index of this point in the sweep's point list.
    pub index: usize,
}

impl PointCtx {
    /// The point's derived seed under the given experiment seed (see
    /// [`gd_types::rng::sweep_point_seed`]).
    pub fn seed(&self, experiment_seed: u64) -> u64 {
        gd_types::rng::sweep_point_seed(experiment_seed, self.index)
    }
}

/// Shared command-line options of the sweep-driven figure binaries.
#[derive(Debug, Clone, Copy)]
pub struct SweepOpts {
    /// Worker threads (`--jobs N` / `GD_JOBS`); defaults to the machine's
    /// available parallelism. `1` runs the plain serial path.
    pub jobs: usize,
    /// Optional request-count override (`--requests N`) for smoke runs;
    /// `None` keeps each figure's paper-scale default.
    pub requests: Option<usize>,
    /// True when the user pinned `jobs` (via `--jobs` or `GD_JOBS`).
    /// Provenance headers render `jobs=auto` otherwise, so a snapshot
    /// never encodes the machine's core count.
    pub jobs_explicit: bool,
}

impl Default for SweepOpts {
    fn default() -> Self {
        SweepOpts {
            jobs: default_jobs(),
            requests: None,
            jobs_explicit: false,
        }
    }
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl SweepOpts {
    /// Parses `--jobs N` and `--requests N` from the process arguments
    /// (also honoring a `GD_JOBS` environment override), ignoring flags it
    /// does not know about so it composes with `MeasureOpts::from_args`.
    pub fn from_args() -> Self {
        let mut opts = SweepOpts::default();
        if let Ok(j) = std::env::var("GD_JOBS") {
            if let Ok(j) = j.parse::<usize>() {
                opts.jobs = j.max(1);
                opts.jobs_explicit = true;
            }
        }
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let value_of = |k: usize| args.get(k + 1).and_then(|v| v.parse::<usize>().ok());
            match args[i].as_str() {
                "--jobs" => {
                    if let Some(j) = value_of(i) {
                        opts.jobs = j.max(1);
                        opts.jobs_explicit = true;
                        i += 1;
                    }
                }
                "--requests" => {
                    if let Some(r) = value_of(i) {
                        opts.requests = Some(r.max(1));
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }
}

/// Runs `f` over every point, fanning across `jobs` workers, and returns
/// the results **in point order** regardless of scheduling.
///
/// Delegates to [`gd_fleet::pool::shard_map`] (the same pool that shards
/// fleet hosts), wrapping each index in a [`PointCtx`].
///
/// # Panics
///
/// If `f` panics on any point, the pool joins and re-panics with the
/// lowest failing point index plus the original panic payload text
/// (instead of the poisoned-mutex abort earlier versions produced).
pub fn sweep<T, R, F>(points: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(PointCtx, &T) -> R + Sync,
{
    gd_fleet::pool::shard_map(points, jobs, |index, point| f(PointCtx { index }, point))
}

/// One timed point of a [`timed_sweep`] run.
#[derive(Debug, Clone)]
pub struct PointTiming {
    /// Human-readable point label (row key of the figure).
    pub label: String,
    /// Wall-clock seconds this point took on its worker.
    pub seconds: f64,
}

/// Machine-readable timing record of one figure regeneration, written to
/// `results/BENCH_<fig>.json` so the performance trajectory is tracked
/// across PRs.
#[derive(Debug, Clone)]
pub struct SweepTiming {
    /// Figure binary name (e.g. `fig09_dram_energy`).
    pub fig: String,
    /// Worker-pool width the sweep ran with.
    pub jobs: usize,
    /// Total wall-clock seconds for the whole sweep.
    pub total_s: f64,
    /// Per-point wall-clock timings, in point order.
    pub points: Vec<PointTiming>,
}

impl SweepTiming {
    /// Serializes to JSON (hand-rolled; the workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"fig\": \"{}\",\n", escape(&self.fig)));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("  \"total_s\": {:.6},\n", self.total_s));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let comma = if i + 1 == self.points.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"seconds\": {:.6}}}{comma}\n",
                escape(&p.label),
                p.seconds
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `results/BENCH_<fig>.json` under the workspace root (or under
    /// `$GD_BENCH_DIR` when set); prints a warning (but does not fail the
    /// figure) if the write is impossible.
    pub fn write(&self) {
        let path = results_dir().join(format!("BENCH_{}.json", self.fig));
        let payload = self.to_json();
        let write = std::fs::create_dir_all(path.parent().expect("results dir has a parent"))
            .and_then(|()| {
                std::fs::File::create(&path).and_then(|mut f| f.write_all(payload.as_bytes()))
            });
        match write {
            Ok(()) => println!("[timing -> {}]", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect()
}

fn results_dir() -> PathBuf {
    // GD_BENCH_DIR redirects the timing sidecar (CI smoke runs use it so a
    // trimmed run never overwrites the committed full-run budget).
    if let Ok(d) = std::env::var("GD_BENCH_DIR") {
        if !d.is_empty() {
            return PathBuf::from(d);
        }
    }
    // crates/bench -> workspace root -> results/.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root two levels up")
        .join("results")
}

/// [`sweep`] plus wall-clock accounting: times every point and the whole
/// run, writes `results/BENCH_<fig>.json`, and returns the results in point
/// order. The labels slice must parallel `points`.
///
/// This is the one sweep entry point allowed to read the wall clock — the
/// timing sidecar is *about* wall time and never feeds back into any
/// simulated result.
#[allow(clippy::disallowed_methods)] // wall-time measurement is the point
pub fn timed_sweep<T, R, F>(fig: &str, points: &[T], labels: &[String], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(PointCtx, &T) -> R + Sync,
{
    timed_sweep_jobs(
        fig,
        points,
        labels,
        jobs,
        jobs.clamp(1, points.len().max(1)),
        f,
    )
}

/// [`timed_sweep`] with separate pool width and recorded width: the sweep
/// fans out across `pool_jobs` workers while the timing sidecar records
/// `recorded_jobs`. Figures that parallelize *inside* each point (the
/// fleet binary shards hosts, not sweep points) run their outer sweep
/// serially (`pool_jobs = 1`) but still report the worker width the inner
/// pool used.
#[allow(clippy::disallowed_methods)] // wall-time measurement is the point
pub fn timed_sweep_jobs<T, R, F>(
    fig: &str,
    points: &[T],
    labels: &[String],
    pool_jobs: usize,
    recorded_jobs: usize,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(PointCtx, &T) -> R + Sync,
{
    assert_eq!(points.len(), labels.len(), "one label per sweep point");
    let t0 = Instant::now(); // detlint: allow(instant) gd-lint: allow(sim-purity)
    let timed: Vec<(R, f64)> = sweep(points, pool_jobs, |ctx, p| {
        let p0 = Instant::now(); // detlint: allow(instant) gd-lint: allow(sim-purity)
        let r = f(ctx, p);
        (r, p0.elapsed().as_secs_f64())
    });
    let total_s = t0.elapsed().as_secs_f64();
    let (results, seconds): (Vec<R>, Vec<f64>) = timed.into_iter().unzip();
    SweepTiming {
        fig: fig.to_string(),
        jobs: recorded_jobs.max(1),
        total_s,
        points: labels
            .iter()
            .zip(seconds)
            .map(|(label, seconds)| PointTiming {
                label: label.clone(),
                seconds,
            })
            .collect(),
    }
    .write();
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let points: Vec<u64> = (0..37).collect();
        let f = |ctx: PointCtx, p: &u64| (ctx.index as u64) * 1000 + p * 3 + ctx.seed(9) % 7;
        let serial = sweep(&points, 1, f);
        for jobs in [2, 3, 8] {
            assert_eq!(sweep(&points, jobs, f), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn point_seeds_do_not_depend_on_jobs() {
        let points: Vec<u32> = (0..16).collect();
        let seeds1 = sweep(&points, 1, |ctx, _| ctx.seed(42));
        let seeds4 = sweep(&points, 4, |ctx, _| ctx.seed(42));
        assert_eq!(seeds1, seeds4);
        assert_eq!(seeds1[0], gd_types::rng::sweep_point_seed(42, 0));
    }

    #[test]
    fn empty_and_single_point_sweeps() {
        let empty: Vec<u8> = Vec::new();
        assert!(sweep(&empty, 4, |_, p| *p).is_empty());
        assert_eq!(sweep(&[5u8], 4, |_, p| *p * 2), vec![10]);
    }

    #[test]
    fn panicking_point_reports_index_and_payload() {
        // The old pool let a worker panic poison the merge mutex, so the
        // user saw "sweep result mutex poisoned" instead of the actual
        // failure. The shared shard pool re-panics with both the point
        // index and the original payload.
        let points: Vec<u32> = (0..8).collect();
        let caught = std::panic::catch_unwind(|| {
            sweep(&points, 4, |_, p| {
                if *p == 5 {
                    panic!("point 5 hit a wall");
                }
                *p
            })
        })
        .expect_err("panic must propagate");
        let text = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(text.contains("item 5"), "{text}");
        assert!(text.contains("point 5 hit a wall"), "{text}");
    }

    #[test]
    fn json_payload_shape() {
        let t = SweepTiming {
            fig: "fig99_test".into(),
            jobs: 2,
            total_s: 1.5,
            points: vec![PointTiming {
                label: "a\"b".into(),
                seconds: 0.25,
            }],
        };
        let j = t.to_json();
        assert!(j.contains("\"fig\": \"fig99_test\""));
        assert!(j.contains("\"jobs\": 2"));
        assert!(j.contains("a\\\"b"));
        assert!(j.ends_with("}\n"));
    }
}
