//! Cross-`--jobs` byte-identity of the figure binaries, checked on the
//! real executables: the sweep pool merges points in index order, so the
//! rendered table below the provenance line must be byte-identical for
//! any worker count. The provenance line itself records the requested
//! `jobs=` and is stripped before comparison, as `tools/ci.sh` does.

use std::process::Command;

/// Runs a figure binary and returns its stdout minus the provenance line
/// and the timing-sidecar announcement (both mention run-local context).
fn figure_output(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin)
        .args(args)
        .env("GD_BENCH_DIR", std::env::temp_dir())
        .output()
        .unwrap_or_else(|e| panic!("spawning {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout)
        .expect("figure output is UTF-8")
        .lines()
        .filter(|l| !l.starts_with("# provenance:") && !l.starts_with("[timing ->"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn fig01_output_is_byte_identical_across_jobs() {
    let bin = env!("CARGO_BIN_EXE_fig01_vm_utilization");
    let serial = figure_output(bin, &["--requests", "12", "--jobs", "1"]);
    let parallel = figure_output(bin, &["--requests", "12", "--jobs", "4"]);
    assert!(
        serial.contains("mean"),
        "unexpected fig01 output:\n{serial}"
    );
    assert_eq!(serial, parallel, "fig01 diverged between --jobs 1 and 4");
}

#[test]
fn fig14_output_is_byte_identical_across_jobs() {
    let bin = env!("CARGO_BIN_EXE_fig14_fleet_energy");
    let args = ["--hosts", "8", "--requests", "8"];
    let serial = figure_output(bin, &[&args[..], &["--jobs", "1"]].concat());
    let parallel = figure_output(bin, &[&args[..], &["--jobs", "4"]].concat());
    assert!(
        serial.contains("Fig. 14"),
        "unexpected fig14 output:\n{serial}"
    );
    assert_eq!(serial, parallel, "fig14 diverged between --jobs 1 and 4");
}
