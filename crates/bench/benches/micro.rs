//! Criterion micro-benchmarks of the substrate hot paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gd_dram::{AddressMapper, LowPowerPolicy, MemRequest, MemorySystem};
use gd_mmsim::{BuddyAllocator, MemoryManager, MmConfig, PageKind};
use gd_types::config::DramConfig;

fn bench_addr_decode(c: &mut Criterion) {
    let mapper = AddressMapper::new(&DramConfig::ddr4_2133_64gb()).unwrap();
    c.bench_function("addrmap/decode", |b| {
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 0x9e3779b97f4a7c15) % mapper.capacity_bytes();
            black_box(mapper.decode(black_box(addr & !63)).unwrap())
        })
    });
}

fn bench_buddy(c: &mut Criterion) {
    c.bench_function("buddy/alloc_free_order3", |b| {
        let mut buddy = BuddyAllocator::new(1 << 15);
        b.iter(|| {
            let off = buddy.alloc(3).unwrap();
            buddy.free(black_box(off), 3);
        })
    });
}

fn bench_controller(c: &mut Criterion) {
    c.bench_function("dram/run_trace_1k_reads", |b| {
        b.iter(|| {
            let mut sys =
                MemorySystem::new(DramConfig::small_test(), LowPowerPolicy::disabled())
                    .unwrap();
            let reqs: Vec<_> = (0..1000u64).map(|i| MemRequest::read(i * 64, i * 4)).collect();
            black_box(sys.run_trace(reqs).unwrap())
        })
    });
}

fn bench_hotplug(c: &mut Criterion) {
    c.bench_function("mmsim/offline_online_cycle", |b| {
        let mut mm = MemoryManager::new(MmConfig::small_test()).unwrap();
        mm.allocate(1000, PageKind::UserMovable).unwrap();
        b.iter(|| {
            mm.offline_block(15).unwrap().unwrap();
            mm.online_block(15).unwrap();
        })
    });
}

criterion_group!(
    benches,
    bench_addr_decode,
    bench_buddy,
    bench_controller,
    bench_hotplug
);
criterion_main!(benches);
