//! Micro-benchmarks of the substrate hot paths.
//!
//! A self-contained harness (`harness = false`): each benchmark runs its
//! closure in timed batches and reports ns/iter. This is the one place in
//! the workspace allowed to read the wall clock — measuring real elapsed
//! time is the point — so the `Instant` uses carry `detlint: allow`
//! annotations and a scoped clippy allow.

use gd_dram::{AddressMapper, LowPowerPolicy, MemRequest, MemorySystem};
use gd_mmsim::{BuddyAllocator, MemoryManager, MmConfig, PageKind};
use gd_types::config::DramConfig;
use std::hint::black_box;
use std::time::Instant;

/// Times `f` over enough iterations to fill ~50 ms and prints ns/iter.
#[allow(clippy::disallowed_methods)] // benchmark harness measures wall time
fn bench(name: &str, mut f: impl FnMut()) {
    // Warm-up and calibration.
    let mut iters = 1u64;
    loop {
        let t0 = Instant::now(); // detlint: allow(instant)
        for _ in 0..iters {
            f();
        }
        let elapsed = t0.elapsed();
        if elapsed.as_millis() >= 10 || iters >= 1 << 24 {
            break;
        }
        iters *= 4;
    }
    // Measurement: best of three batches.
    let mut best_ns = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now(); // detlint: allow(instant)
        for _ in 0..iters {
            f();
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        best_ns = best_ns.min(ns);
    }
    println!("{name:<32} {best_ns:>12.1} ns/iter ({iters} iters)");
}

fn bench_addr_decode() {
    let mapper = AddressMapper::new(&DramConfig::ddr4_2133_64gb()).unwrap();
    let mut addr = 0u64;
    bench("addrmap/decode", || {
        addr = (addr.wrapping_add(0x9e37_79b9_7f4a_7c15)) % mapper.capacity_bytes();
        black_box(mapper.decode(black_box(addr & !63)).unwrap());
    });
}

fn bench_buddy() {
    let mut buddy = BuddyAllocator::new(1 << 15);
    bench("buddy/alloc_free_order3", || {
        let off = buddy.alloc(3).unwrap();
        buddy.free(black_box(off), 3);
    });
}

fn bench_controller() {
    bench("dram/run_trace_1k_reads", || {
        let mut sys =
            MemorySystem::new(DramConfig::small_test(), LowPowerPolicy::disabled()).unwrap();
        let reqs: Vec<_> = (0..1000u64)
            .map(|i| MemRequest::read(i * 64, i * 4))
            .collect();
        black_box(sys.run_trace(reqs).unwrap());
    });
}

fn bench_hotplug() {
    let mut mm = MemoryManager::new(MmConfig::small_test()).unwrap();
    mm.allocate(1000, PageKind::UserMovable).unwrap();
    bench("mmsim/offline_online_cycle", || {
        mm.offline_block(15).unwrap().unwrap();
        mm.online_block(15).unwrap();
    });
}

fn main() {
    bench_addr_decode();
    bench_buddy();
    bench_controller();
    bench_hotplug();
}
