//! Micro-benchmarks of the substrate hot paths.
//!
//! A self-contained harness (`harness = false`): each benchmark runs its
//! closure in timed batches and reports ns/iter. This is the one place in
//! the workspace allowed to read the wall clock — measuring real elapsed
//! time is the point — so the `Instant` uses carry `detlint: allow`
//! annotations and a scoped clippy allow.

use gd_dram::{AddressMapper, EngineMode, LowPowerPolicy, MemRequest, MemorySystem};
use gd_mmsim::{BuddyAllocator, MemoryManager, MmConfig, PageKind};
use gd_types::config::{DramConfig, InterleaveMode};
use std::hint::black_box;
use std::time::Instant;

/// Times `f` over enough iterations to fill ~50 ms and prints ns/iter.
#[allow(clippy::disallowed_methods)] // benchmark harness measures wall time
fn bench(name: &str, mut f: impl FnMut()) {
    // Warm-up and calibration.
    let mut iters = 1u64;
    loop {
        let t0 = Instant::now(); // detlint: allow(instant) gd-lint: allow(sim-purity)
        for _ in 0..iters {
            f();
        }
        let elapsed = t0.elapsed();
        if elapsed.as_millis() >= 10 || iters >= 1 << 24 {
            break;
        }
        iters *= 4;
    }
    // Measurement: best of three batches.
    let mut best_ns = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now(); // detlint: allow(instant) gd-lint: allow(sim-purity)
        for _ in 0..iters {
            f();
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        best_ns = best_ns.min(ns);
    }
    println!("{name:<32} {best_ns:>12.1} ns/iter ({iters} iters)");
}

fn bench_addr_decode() {
    let mapper = AddressMapper::new(&DramConfig::ddr4_2133_64gb()).unwrap();
    let mut addr = 0u64;
    bench("addrmap/decode", || {
        addr = (addr.wrapping_add(0x9e37_79b9_7f4a_7c15)) % mapper.capacity_bytes();
        black_box(mapper.decode(black_box(addr & !63)).unwrap());
    });
}

fn bench_buddy() {
    let mut buddy = BuddyAllocator::new(1 << 15);
    bench("buddy/alloc_free_order3", || {
        let off = buddy.alloc(3).unwrap();
        buddy.free(black_box(off), 3);
    });
}

fn bench_controller() {
    bench("dram/run_trace_1k_reads", || {
        let mut sys =
            MemorySystem::new(DramConfig::small_test(), LowPowerPolicy::disabled()).unwrap();
        let reqs: Vec<_> = (0..1000u64)
            .map(|i| MemRequest::read(i * 64, i * 4))
            .collect();
        black_box(sys.run_trace(reqs).unwrap());
    });
}

fn bench_hotplug() {
    let mut mm = MemoryManager::new(MmConfig::small_test()).unwrap();
    mm.allocate(1000, PageKind::UserMovable).unwrap();
    bench("mmsim/offline_online_cycle", || {
        mm.offline_block(15).unwrap().unwrap();
        mm.online_block(15).unwrap();
    });
}

/// Long idle horizon with the default idle-timeout governor: the
/// event-driven engine should jump between refresh deadlines instead of
/// stepping 1M cycles.
fn bench_fastforward_idle() {
    for (tag, mode) in [
        ("stepped", EngineMode::Stepped),
        ("event", EngineMode::EventDriven),
    ] {
        bench(&format!("dram/idle_1M_{tag}"), || {
            let mut sys =
                MemorySystem::new(DramConfig::small_test(), LowPowerPolicy::srf_default())
                    .unwrap()
                    .with_engine_mode(mode);
            black_box(sys.run_idle(1_000_000));
        });
    }
}

/// Refresh-heavy idle horizon with low-power states disabled: every rank
/// stays in standby, so tREFI deadlines are the only events and the
/// fast-forward path jumps a full refresh interval at a time.
fn bench_fastforward_refresh() {
    for (tag, mode) in [
        ("stepped", EngineMode::Stepped),
        ("event", EngineMode::EventDriven),
    ] {
        bench(&format!("dram/refresh_1M_{tag}"), || {
            let mut sys = MemorySystem::new(DramConfig::small_test(), LowPowerPolicy::disabled())
                .unwrap()
                .with_engine_mode(mode);
            black_box(sys.run_idle(1_000_000));
        });
    }
}

/// Sparse periodic trace with an aggressive governor: ranks keep cycling
/// standby -> power-down -> wake, so the fast-forward path must chase the
/// governor's transition deadlines rather than one long horizon.
fn bench_fastforward_governor() {
    for (tag, mode) in [
        ("stepped", EngineMode::Stepped),
        ("event", EngineMode::EventDriven),
    ] {
        bench(&format!("dram/govcycle_{tag}"), || {
            let mut sys = MemorySystem::new(DramConfig::small_test(), LowPowerPolicy::aggressive())
                .unwrap()
                .with_engine_mode(mode);
            let reqs: Vec<_> = (0..200u64)
                .map(|i| MemRequest::read(i * 4096, i * 2000))
                .collect();
            black_box(sys.run_trace(reqs).unwrap());
        });
    }
}

/// Traffic-dense horizons (~1M cycles, one arrival every 8 cycles): the
/// regime where the batched FR-FCFS arbitration and SoA timing state pay
/// off. Three access patterns stress different arbiter paths:
///
/// * `read` — sequential reads marching through the interleaved space;
///   almost every access is a row hit, so the hot path is the cached
///   column-candidate lookup.
/// * `mixed` — 3:1 read/write with a page-sized stride; exercises the
///   per-kind candidate slots and read/write bus turnarounds.
/// * `conflict` — linear (non-interleaved) mapping with pseudo-random
///   rows, funnelling everything into one bank so nearly every access is
///   a row conflict; stresses candidate invalidation + the per-row
///   membership index that keeps re-scans from going quadratic.
fn bench_traffic_dense() {
    let cap = DramConfig::small_test().total_capacity_bytes();
    let n = 125_000u64; // one arrival per 8 cycles for 1M cycles
    let read_trace: Vec<_> = (0..n)
        .map(|i| MemRequest::read((i * 64) % cap, i * 8))
        .collect();
    let mixed_trace: Vec<_> = (0..n)
        .map(|i| {
            let addr = (i * 4096) % cap;
            if i % 4 == 3 {
                MemRequest::write(addr, i * 8)
            } else {
                MemRequest::read(addr, i * 8)
            }
        })
        .collect();
    let conflict_trace: Vec<_> = (0..n)
        .map(|i| {
            let addr = (i.wrapping_mul(0x9e37_79b9) * 64) % (cap / 8);
            MemRequest::read(addr, i * 8)
        })
        .collect();
    let cases: [(&str, DramConfig, &[MemRequest]); 3] = [
        ("read", DramConfig::small_test(), &read_trace),
        ("mixed", DramConfig::small_test(), &mixed_trace),
        (
            "conflict",
            DramConfig::small_test().with_interleave(InterleaveMode::Linear),
            &conflict_trace,
        ),
    ];
    for (pattern, cfg, trace) in cases {
        for (tag, mode) in [
            ("stepped", EngineMode::Stepped),
            ("event", EngineMode::EventDriven),
        ] {
            bench(&format!("dram/traffic_1M_{pattern}_{tag}"), || {
                let mut sys = MemorySystem::new(cfg, LowPowerPolicy::srf_default())
                    .unwrap()
                    .with_engine_mode(mode);
                black_box(sys.run_trace(trace.to_vec()).unwrap());
            });
        }
    }
}

fn main() {
    bench_addr_decode();
    bench_buddy();
    bench_controller();
    bench_hotplug();
    bench_fastforward_idle();
    bench_fastforward_refresh();
    bench_fastforward_governor();
    bench_traffic_dense();
}
