//! Hotplug operation cost model, calibrated to the paper's Table 3
//! measurements on a real kernel while running `mcf` with 128 MB blocks.

use gd_types::SimTime;

/// Latencies of memory on/off-lining operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotplugLatencies {
    /// Successful off-lining of an entirely-free block (no migration).
    pub offline_success: SimTime,
    /// On-lining a block.
    pub online: SimTime,
    /// Failed off-lining after three migration attempts (EAGAIN).
    pub eagain: SimTime,
    /// Failed isolation because of unmovable pages (EBUSY).
    pub ebusy: SimTime,
    /// Additional cost per migrated page when off-lining a block that still
    /// holds movable data.
    pub per_migrated_page: SimTime,
}

impl HotplugLatencies {
    /// The paper's measured values (Table 3): off-lining 1.58 ms, on-lining
    /// 3.44 ms, EAGAIN 4.37 ms, EBUSY 6 µs.
    pub fn paper_table3() -> Self {
        HotplugLatencies {
            offline_success: SimTime::from_micros(1_580),
            online: SimTime::from_micros(3_440),
            eagain: SimTime::from_micros(4_370),
            ebusy: SimTime::from_micros(6),
            per_migrated_page: SimTime::from_micros(2),
        }
    }
}

impl Default for HotplugLatencies {
    fn default() -> Self {
        Self::paper_table3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_relationships_hold() {
        let l = HotplugLatencies::paper_table3();
        // EAGAIN costs ~3x a successful off-lining (three failed attempts).
        let ratio = l.eagain.as_micros() as f64 / l.offline_success.as_micros() as f64;
        assert!((2.0..4.0).contains(&ratio));
        // EBUSY is cheap (isolation fails immediately).
        assert!(l.ebusy < l.offline_success);
        // On-lining is costlier than off-lining a free block.
        assert!(l.online > l.offline_success);
    }
}
