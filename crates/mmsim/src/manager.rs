//! The physical-memory manager: allocation across blocks, page migration,
//! and the memory on/off-lining operations GreenDIMM drives.

use crate::block::{BlockInfo, Chunk, MemoryBlock};
use crate::buddy::MAX_ORDER;
use crate::frame::{
    AllocationId, OfflineErrno, OfflineError, OfflineFailure, OfflineReport, PageKind, PAGE_BYTES,
};
use crate::latency::HotplugLatencies;
use gd_faults::{FaultInjector, FaultSite, MIGRATION_SLOWDOWN};
use gd_types::rng::{component_rng, StdRng};
use gd_types::stats::Summary;
use gd_types::{GdError, Result, SimTime};
use std::collections::HashMap;

/// Configuration of the simulated physical memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmConfig {
    /// Installed capacity in bytes.
    pub capacity_bytes: u64,
    /// Memory block (hotplug unit) size in bytes; Linux default 128 MB,
    /// configurable via `/sys/devices/system/memory/block_size_bytes`.
    pub block_bytes: u64,
    /// If set, the top `movablecore_bytes` of memory form ZONE_MOVABLE:
    /// kernel/pinned allocations avoid it (mirroring the `movablecore=`
    /// boot parameter).
    pub movablecore_bytes: Option<u64>,
    /// Probability that a kernel allocation spills into the movable zone
    /// anyway (the paper observes reserved movable regions still acquire
    /// unmovable pages).
    pub unmovable_leak_prob: f64,
    /// Per-attempt probability that page migration transiently fails even
    /// when space exists (locked pages, short-lived references). Three
    /// failed attempts produce EAGAIN.
    pub transient_fail_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl MmConfig {
    /// The paper's SPEC platform: 64 GB with 128 MB blocks, no movablecore.
    pub fn spec_64gb() -> Self {
        MmConfig {
            capacity_bytes: 64 << 30,
            block_bytes: 128 << 20,
            movablecore_bytes: None,
            unmovable_leak_prob: 0.02,
            transient_fail_prob: 0.25,
            seed: 1,
        }
    }

    /// The paper's VM platform: 256 GB with 1 GB blocks (§6.3).
    pub fn vm_256gb() -> Self {
        MmConfig {
            capacity_bytes: 256 << 30,
            block_bytes: 1 << 30,
            movablecore_bytes: None,
            unmovable_leak_prob: 0.02,
            transient_fail_prob: 0.25,
            seed: 1,
        }
    }

    /// A small configuration for tests: 256 MB with 16 MB blocks.
    pub fn small_test() -> Self {
        MmConfig {
            capacity_bytes: 256 << 20,
            block_bytes: 16 << 20,
            movablecore_bytes: None,
            unmovable_leak_prob: 0.0,
            transient_fail_prob: 0.0,
            seed: 1,
        }
    }

    /// Returns a copy with a different block size.
    pub fn with_block_bytes(mut self, bytes: u64) -> Self {
        self.block_bytes = bytes;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A `/proc/meminfo`-style snapshot (only on-line memory is visible to the
/// kernel's allocator, exactly as with real memory hotplug).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemInfo {
    /// Pages currently on-line.
    pub total_pages: u64,
    /// Free on-line pages.
    pub free_pages: u64,
    /// Used on-line pages.
    pub used_pages: u64,
    /// Pages removed from the physical address space by off-lining.
    pub offline_pages: u64,
    /// Installed capacity in pages (online + offline).
    pub installed_pages: u64,
}

impl MemInfo {
    /// Free fraction of on-line memory.
    pub fn free_fraction(&self) -> f64 {
        if self.total_pages == 0 {
            0.0
        } else {
            self.free_pages as f64 / self.total_pages as f64
        }
    }

    /// Used fraction of *installed* memory (the paper's "utilization of
    /// memory capacity").
    pub fn utilization_of_installed(&self) -> f64 {
        if self.installed_pages == 0 {
            0.0
        } else {
            self.used_pages as f64 / self.installed_pages as f64
        }
    }
}

/// Aggregate hotplug statistics (drives Table 3 and Fig. 8).
#[derive(Debug, Clone, Default)]
pub struct HotplugStats {
    /// Successful off-linings.
    pub offline_success: u64,
    /// EBUSY failures.
    pub offline_ebusy: u64,
    /// EAGAIN failures.
    pub offline_eagain: u64,
    /// EBUSY failures caused by device-pinned pages (including injected
    /// pin faults).
    pub offline_pinned: u64,
    /// EBUSY failures caused by kernel (slab/page-table) pages.
    pub offline_kernel: u64,
    /// Mid-migration aborts whose already-placed destination frames were
    /// rolled back transactionally.
    pub rollbacks: u64,
    /// On-linings.
    pub online_count: u64,
    /// Pages migrated during off-lining.
    pub migrated_pages: u64,
    /// Latency samples (µs) per event type.
    pub offline_latency_us: Summary,
    /// Latency samples (µs) for on-lining.
    pub online_latency_us: Summary,
    /// Latency samples (µs) for EBUSY failures.
    pub ebusy_latency_us: Summary,
    /// Latency samples (µs) for EAGAIN failures.
    pub eagain_latency_us: Summary,
    /// Total wall-clock time spent in hotplug operations.
    pub total_time: SimTime,
}

impl HotplugStats {
    /// All off-lining failures.
    pub fn offline_failures(&self) -> u64 {
        self.offline_ebusy + self.offline_eagain
    }
}

#[derive(Debug, Clone)]
struct AllocInfo {
    kind: PageKind,
    /// (block index, chunk offset) pairs, in allocation order.
    chunks: Vec<(usize, u32)>,
    pages: u64,
}

/// One journalled migration step: the source chunk's offset and
/// metadata plus the `(block, offset)` destinations reserved for it.
type MigrationJournalEntry = (u32, Chunk, Vec<(usize, u32)>);

/// The simulated physical-memory manager.
#[derive(Debug)]
pub struct MemoryManager {
    cfg: MmConfig,
    blocks: Vec<MemoryBlock>,
    block_pages: u32,
    /// First block of ZONE_MOVABLE (== blocks.len() when not configured).
    movable_zone_start: usize,
    allocs: HashMap<AllocationId, AllocInfo>,
    next_id: u64,
    rng: StdRng,
    latencies: HotplugLatencies,
    /// Optional fault injector (see `gd-faults`); `None` and an inactive
    /// plan behave identically (no stream draws, no telemetry keys).
    faults: Option<FaultInjector>,
    /// Test hook: when set, a migration abort "forgets" to undo one
    /// reserved destination chunk so Strict verification can prove it
    /// catches broken rollbacks.
    break_rollback: bool,
    /// Hotplug statistics.
    pub stats: HotplugStats,
}

/// Outcome of one migration attempt.
enum MigrateOutcome {
    /// Every movable chunk left the block.
    Done,
    /// Not enough free space elsewhere; nothing was changed.
    NoSpace,
    /// An injected fault aborted the attempt partway; reserved
    /// destination frames were rolled back.
    Aborted,
}

impl MemoryManager {
    /// Builds a manager with all blocks on-line and empty.
    ///
    /// # Errors
    ///
    /// Returns [`GdError::InvalidConfig`] if capacity is not block-aligned
    /// or a block is not a whole number of max-order buddy chunks.
    pub fn new(cfg: MmConfig) -> Result<Self> {
        if cfg.block_bytes == 0 || !cfg.capacity_bytes.is_multiple_of(cfg.block_bytes) {
            return Err(GdError::InvalidConfig(format!(
                "capacity {} not a multiple of block size {}",
                cfg.capacity_bytes, cfg.block_bytes
            )));
        }
        let block_pages = cfg.block_bytes / PAGE_BYTES;
        if block_pages == 0
            || !block_pages.is_multiple_of(1 << MAX_ORDER)
            || block_pages > u32::MAX as u64
        {
            return Err(GdError::InvalidConfig(format!(
                "block of {block_pages} pages is not buddy-alignable"
            )));
        }
        let n_blocks = (cfg.capacity_bytes / cfg.block_bytes) as usize;
        let movable_zone_start = match cfg.movablecore_bytes {
            Some(bytes) => {
                let mv_blocks = (bytes / cfg.block_bytes) as usize;
                if mv_blocks > n_blocks {
                    return Err(GdError::InvalidConfig(
                        "movablecore exceeds capacity".into(),
                    ));
                }
                n_blocks - mv_blocks
            }
            None => n_blocks,
        };
        Ok(MemoryManager {
            blocks: (0..n_blocks)
                .map(|i| MemoryBlock::new(i, block_pages as u32))
                .collect(),
            block_pages: block_pages as u32,
            movable_zone_start,
            allocs: HashMap::new(),
            next_id: 1,
            rng: component_rng(cfg.seed, "mmsim"),
            latencies: HotplugLatencies::default(),
            faults: None,
            break_rollback: false,
            stats: HotplugStats::default(),
            cfg,
        })
    }

    /// Installs a fault injector. Passing an inactive injector (or never
    /// calling this) leaves every code path byte-identical to a build
    /// without fault support.
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.faults = Some(faults);
    }

    /// The installed fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// Deliberately breaks migration-abort rollback (leaks one reserved
    /// destination chunk into the owner's chunk list without adjusting
    /// its page count). Only for negative tests proving that Strict
    /// verification catches the accounting corruption.
    #[doc(hidden)]
    pub fn debug_break_rollback(&mut self) {
        self.break_rollback = true;
    }

    /// The configuration.
    pub fn config(&self) -> &MmConfig {
        &self.cfg
    }

    /// Number of memory blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Pages per block.
    pub fn block_pages(&self) -> u64 {
        self.block_pages as u64
    }

    /// Snapshot of one block.
    ///
    /// # Errors
    ///
    /// Returns [`GdError::NotFound`] for an out-of-range index.
    pub fn block_info(&self, index: usize) -> Result<BlockInfo> {
        self.blocks
            .get(index)
            .map(|b| b.info())
            .ok_or_else(|| GdError::NotFound(format!("memory block {index}")))
    }

    /// Snapshots of every block.
    pub fn blocks(&self) -> Vec<BlockInfo> {
        self.blocks.iter().map(|b| b.info()).collect()
    }

    /// Number of off-line blocks.
    pub fn offline_block_count(&self) -> usize {
        self.blocks.iter().filter(|b| !b.online()).count()
    }

    /// A `/proc/meminfo` snapshot.
    pub fn meminfo(&self) -> MemInfo {
        let mut total = 0;
        let mut free = 0;
        let mut used = 0;
        let mut offline = 0;
        for b in &self.blocks {
            if b.online() {
                total += b.total_pages();
                free += b.free_pages();
                used += b.used_pages();
            } else {
                offline += b.total_pages();
            }
        }
        MemInfo {
            total_pages: total,
            free_pages: free,
            used_pages: used,
            offline_pages: offline,
            installed_pages: total + offline,
        }
    }

    fn eligible_blocks(&mut self, kind: PageKind) -> Vec<usize> {
        let leak = kind != PageKind::UserMovable
            && self.cfg.unmovable_leak_prob > 0.0
            && self.rng.gen_bool(self.cfg.unmovable_leak_prob);
        let limit = if kind.is_movable() || leak {
            self.blocks.len()
        } else {
            self.movable_zone_start
        };
        (0..limit).filter(|i| self.blocks[*i].online()).collect()
    }

    /// Allocates `pages` pages of the given kind, spread over on-line blocks
    /// first-fit ascending (densely packing low blocks, as the kernel's
    /// fallback order does).
    ///
    /// # Errors
    ///
    /// Returns [`GdError::OutOfMemory`] if the eligible on-line blocks do not
    /// hold enough free pages; no partial allocation is left behind.
    pub fn allocate(&mut self, pages: u64, kind: PageKind) -> Result<AllocationId> {
        if pages == 0 {
            return Err(GdError::InvalidConfig("zero-page allocation".into()));
        }
        let id = AllocationId(self.next_id);
        let eligible = self.eligible_blocks(kind);
        let free_total: u64 = eligible.iter().map(|i| self.blocks[*i].free_pages()).sum();
        if free_total < pages {
            return Err(GdError::OutOfMemory {
                requested_pages: pages,
                free_pages: free_total,
            });
        }
        let mut remaining = pages;
        let mut placed: Vec<(usize, u32)> = Vec::new();
        for bi in eligible {
            if remaining == 0 {
                break;
            }
            let chunks = self.blocks[bi].alloc_chunks(remaining, id, kind);
            for (off, order) in chunks {
                placed.push((bi, off));
                remaining = remaining.saturating_sub(1 << order);
            }
        }
        debug_assert_eq!(remaining, 0, "free accounting said space existed");
        self.next_id += 1;
        self.allocs.insert(
            id,
            AllocInfo {
                kind,
                chunks: placed,
                pages,
            },
        );
        Ok(id)
    }

    /// Frees an entire allocation.
    ///
    /// # Errors
    ///
    /// Returns [`GdError::NotFound`] for an unknown id.
    pub fn free(&mut self, id: AllocationId) -> Result<()> {
        let info = self
            .allocs
            .remove(&id)
            .ok_or_else(|| GdError::NotFound(id.to_string()))?;
        for (bi, off) in info.chunks {
            self.blocks[bi].free_chunk(off);
        }
        Ok(())
    }

    /// Shrinks an allocation by up to `pages` pages (LIFO chunk order),
    /// returning the number of pages actually freed. Used by KSM when
    /// merging duplicate pages releases frames.
    ///
    /// # Errors
    ///
    /// Returns [`GdError::NotFound`] for an unknown id.
    pub fn shrink(&mut self, id: AllocationId, pages: u64) -> Result<u64> {
        let info = self
            .allocs
            .get_mut(&id)
            .ok_or_else(|| GdError::NotFound(id.to_string()))?;
        let mut freed = 0u64;
        while freed < pages {
            let Some((bi, off)) = info.chunks.pop() else {
                break;
            };
            let order = self.blocks[bi]
                .chunk_at(off)
                .expect("alloc bookkeeping out of sync")
                .order;
            if freed + (1u64 << order) > pages && order > 0 {
                // Freeing the whole chunk would overshoot: split and retry,
                // keeping both halves owned.
                let (lo, hi) = self.blocks[bi].split_chunk(off);
                info.chunks.push((bi, lo));
                info.chunks.push((bi, hi));
                continue;
            }
            let chunk = self.blocks[bi].free_chunk(off);
            freed += 1u64 << chunk.order;
            info.pages = info.pages.saturating_sub(1u64 << chunk.order);
        }
        if info.chunks.is_empty() {
            self.allocs.remove(&id);
        }
        Ok(freed)
    }

    /// Grows an allocation by `pages` pages of its original kind.
    ///
    /// # Errors
    ///
    /// [`GdError::NotFound`] for an unknown id, [`GdError::OutOfMemory`] if
    /// space is insufficient.
    pub fn grow(&mut self, id: AllocationId, pages: u64) -> Result<()> {
        let kind = self
            .allocs
            .get(&id)
            .ok_or_else(|| GdError::NotFound(id.to_string()))?
            .kind;
        let eligible = self.eligible_blocks(kind);
        let free_total: u64 = eligible.iter().map(|i| self.blocks[*i].free_pages()).sum();
        if free_total < pages {
            return Err(GdError::OutOfMemory {
                requested_pages: pages,
                free_pages: free_total,
            });
        }
        let mut remaining = pages;
        let mut placed = Vec::new();
        for bi in eligible {
            if remaining == 0 {
                break;
            }
            for (off, order) in self.blocks[bi].alloc_chunks(remaining, id, kind) {
                placed.push((bi, off));
                remaining = remaining.saturating_sub(1 << order);
            }
        }
        let info = self.allocs.get_mut(&id).expect("checked above");
        info.chunks.extend(placed);
        info.pages += pages;
        Ok(())
    }

    /// Pages currently held by an allocation (0 if unknown).
    pub fn pages_of(&self, id: AllocationId) -> u64 {
        self.allocs.get(&id).map(|a| a.pages).unwrap_or(0)
    }

    /// Off-lines a memory block (the kernel's `offline_pages()`).
    ///
    /// Semantics follow §5.2:
    /// * a block with unmovable or pinned pages fails fast with EBUSY (6 µs);
    /// * a block with movable used pages requires migration; three failed
    ///   attempts (no space, or transient failure) produce EAGAIN (4.37 ms);
    /// * an entirely free block off-lines in 1.58 ms with no migration.
    ///
    /// # Errors
    ///
    /// [`GdError::NotFound`] / [`GdError::InvalidState`] for bad indices or
    /// an already off-line block; these are caller bugs, not kernel errnos.
    pub fn offline_block(
        &mut self,
        index: usize,
    ) -> Result<std::result::Result<OfflineReport, OfflineFailure>> {
        if index >= self.blocks.len() {
            return Err(GdError::NotFound(format!("memory block {index}")));
        }
        if !self.blocks[index].online() {
            return Err(GdError::InvalidState(format!(
                "block {index} is already offline"
            )));
        }
        // EBUSY: isolation fails on unmovable pages, or an injected pin
        // fault (a page grabbed a DMA reference between the removable
        // check and isolation).
        let injected_pin = self
            .faults
            .as_mut()
            .is_some_and(|f| f.should_fire(FaultSite::OfflinePinned));
        if injected_pin || self.blocks[index].unmovable_pages() > 0 {
            let cause = if injected_pin || self.blocks[index].pinned_pages() > 0 {
                self.stats.offline_pinned += 1;
                OfflineError::Pinned
            } else {
                self.stats.offline_kernel += 1;
                OfflineError::KernelBlock
            };
            let latency = self.latencies.ebusy;
            self.stats.offline_ebusy += 1;
            self.stats
                .ebusy_latency_us
                .record(latency.as_micros() as f64);
            self.stats.total_time += latency;
            return Ok(Err(OfflineFailure {
                errno: OfflineErrno::Busy,
                cause,
                latency,
            }));
        }
        let to_migrate = self.blocks[index].movable_pages();
        if to_migrate == 0 {
            let latency = self.latencies.offline_success;
            self.blocks[index].set_online(false);
            self.stats.offline_success += 1;
            self.stats
                .offline_latency_us
                .record(latency.as_micros() as f64);
            self.stats.total_time += latency;
            return Ok(Ok(OfflineReport {
                latency,
                migrated_pages: 0,
            }));
        }
        // Migration path: three attempts, as the (older) kernel does.
        let mut migrated = false;
        for _ in 0..3 {
            let transient = self.cfg.transient_fail_prob > 0.0
                && self.rng.gen_bool(self.cfg.transient_fail_prob);
            if transient {
                continue;
            }
            match self.try_migrate_out(index) {
                MigrateOutcome::Done => {
                    migrated = true;
                    break;
                }
                MigrateOutcome::NoSpace | MigrateOutcome::Aborted => {}
            }
        }
        if !migrated {
            let latency = self.latencies.eagain;
            self.stats.offline_eagain += 1;
            self.stats
                .eagain_latency_us
                .record(latency.as_micros() as f64);
            self.stats.total_time += latency;
            return Ok(Err(OfflineFailure {
                errno: OfflineErrno::Again,
                cause: OfflineError::MigrationAborted,
                latency,
            }));
        }
        // Injected compaction contention inflates the per-page copy cost.
        let slow = self
            .faults
            .as_mut()
            .is_some_and(|f| f.should_fire(FaultSite::MigrationSlow));
        let per_page = if slow {
            self.latencies.per_migrated_page * MIGRATION_SLOWDOWN
        } else {
            self.latencies.per_migrated_page
        };
        let latency = self.latencies.offline_success + per_page * to_migrate;
        self.blocks[index].set_online(false);
        self.stats.offline_success += 1;
        self.stats.migrated_pages += to_migrate;
        self.stats
            .offline_latency_us
            .record(latency.as_micros() as f64);
        self.stats.total_time += latency;
        Ok(Ok(OfflineReport {
            latency,
            migrated_pages: to_migrate,
        }))
    }

    /// Moves every movable chunk out of `index` into other on-line blocks.
    ///
    /// Runs as a two-phase transaction. Phase 1 *reserves* destination
    /// chunks while the source chunks stay in place, journalling every
    /// reservation; an injected [`FaultSite::MigrationAbort`] fault lands
    /// mid-journal and rolls the reservations back, leaving the manager
    /// byte-identical to the pre-attempt state. Phase 2 commits: sources
    /// are freed and the owners' chunk lists are patched. Destination
    /// placement excludes the source block, so reserving before freeing
    /// picks exactly the chunks the old single-pass code did.
    fn try_migrate_out(&mut self, index: usize) -> MigrateOutcome {
        let needed = self.blocks[index].movable_pages();
        let free_elsewhere: u64 = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| *i != index && b.online())
            .map(|(_, b)| b.free_pages())
            .sum();
        if free_elsewhere < needed {
            return MigrateOutcome::NoSpace;
        }
        let offsets = self.blocks[index].chunk_offsets();
        // One abort decision per attempt; when it fires, the abort lands
        // halfway through the chunk list so there is real work to undo.
        let abort_at = self
            .faults
            .as_mut()
            .is_some_and(|f| f.should_fire(FaultSite::MigrationAbort))
            .then_some(offsets.len() / 2);
        // Phase 1: reserve destinations; sources untouched.
        let mut journal: Vec<MigrationJournalEntry> = Vec::new();
        for (pos, off) in offsets.iter().copied().enumerate() {
            if abort_at == Some(pos) {
                self.rollback_migration(journal);
                self.stats.rollbacks += 1;
                return MigrateOutcome::Aborted;
            }
            let chunk = *self.blocks[index]
                .chunk_at(off)
                .expect("invariant: chunk_offsets lists live chunks");
            debug_assert!(chunk.kind.is_movable());
            let mut placed: Vec<(usize, u32)> = Vec::new();
            let mut remaining = 1u64 << chunk.order;
            for bi in 0..self.blocks.len() {
                if bi == index || !self.blocks[bi].online() || remaining == 0 {
                    continue;
                }
                for (noff, norder) in
                    self.blocks[bi].alloc_chunks(remaining, chunk.owner, chunk.kind)
                {
                    placed.push((bi, noff));
                    remaining = remaining.saturating_sub(1 << norder);
                }
            }
            debug_assert_eq!(remaining, 0, "free space was pre-checked");
            journal.push((off, chunk, placed));
        }
        // Phase 2: commit — free sources, patch the owners' chunk lists.
        for (off, chunk, placed) in journal {
            self.blocks[index].free_chunk(off);
            if let Some(info) = self.allocs.get_mut(&chunk.owner) {
                info.chunks.retain(|(bi, o)| !(*bi == index && *o == off));
                info.chunks.extend(placed);
            }
        }
        MigrateOutcome::Done
    }

    /// Undoes a partial migration: frees every reserved destination
    /// chunk. With `break_rollback` set (negative tests only), the first
    /// reservation is instead leaked into its owner's chunk list without
    /// adjusting the page count — corruption [`MemoryManager::audit`]
    /// (and therefore Strict `mm.buddy-consistency`) must detect.
    fn rollback_migration(&mut self, journal: Vec<MigrationJournalEntry>) {
        let mut leak_one = self.break_rollback;
        for (_, chunk, placed) in journal {
            for (bi, noff) in placed {
                if leak_one {
                    leak_one = false;
                    if let Some(info) = self.allocs.get_mut(&chunk.owner) {
                        info.chunks.push((bi, noff));
                    }
                    continue;
                }
                self.blocks[bi].free_chunk(noff);
            }
        }
    }

    /// External-fragmentation index of the on-line free memory, in `[0, 1]`:
    /// `1 - largest_free_chunk / min(free_pages, max_chunk)`. Zero while a
    /// max-order chunk is still available (or nothing is free); approaching
    /// one as free pages shatter into small chunks — the condition that
    /// makes migration-based off-lining fail with EAGAIN.
    pub fn fragmentation_index(&self) -> f64 {
        let mut free_total = 0u64;
        let mut largest_order: Option<u8> = None;
        for b in &self.blocks {
            if !b.online() {
                continue;
            }
            free_total += b.free_pages();
            if let Some(o) = b.max_free_order() {
                largest_order = Some(largest_order.map_or(o, |c| c.max(o)));
            }
        }
        if free_total == 0 {
            return 0.0;
        }
        let largest = largest_order.map(|o| 1u64 << o).unwrap_or(0);
        let attainable = free_total.min(1 << MAX_ORDER);
        1.0 - largest as f64 / attainable as f64
    }

    /// Audits every block (buddy structure, chunk layout, per-kind
    /// counters) plus the allocation table: every chunk an allocation
    /// records must exist in its block with the right owner, and sum to
    /// the allocation's page count.
    ///
    /// # Errors
    ///
    /// Returns every problem found, one description per entry.
    pub fn audit(&self) -> std::result::Result<(), Vec<String>> {
        let mut problems = Vec::new();
        for b in &self.blocks {
            if let Err(e) = b.audit() {
                problems.push(e);
            }
        }
        for (id, info) in &self.allocs {
            let mut pages = 0u64;
            for (bi, off) in &info.chunks {
                match self.blocks.get(*bi).and_then(|b| b.chunk_at(*off)) {
                    Some(c) if c.owner == *id => pages += 1u64 << c.order,
                    Some(c) => problems.push(format!(
                        "{id}: chunk at ({bi}, {off}) is owned by {}",
                        c.owner
                    )),
                    None => problems.push(format!(
                        "{id}: recorded chunk at ({bi}, {off}) does not exist"
                    )),
                }
            }
            if pages != info.pages {
                problems.push(format!(
                    "{id}: chunks hold {pages} pages but the table records {}",
                    info.pages
                ));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }

    /// On-lines a previously off-lined block (the kernel's
    /// `online_pages()`). Returns the latency.
    ///
    /// # Errors
    ///
    /// [`GdError::NotFound`] / [`GdError::InvalidState`] for bad indices or
    /// an already on-line block.
    pub fn online_block(&mut self, index: usize) -> Result<SimTime> {
        if index >= self.blocks.len() {
            return Err(GdError::NotFound(format!("memory block {index}")));
        }
        if self.blocks[index].online() {
            return Err(GdError::InvalidState(format!(
                "block {index} is already online"
            )));
        }
        self.blocks[index].set_online(true);
        let latency = self.latencies.online;
        self.stats.online_count += 1;
        self.stats
            .online_latency_us
            .record(latency.as_micros() as f64);
        self.stats.total_time += latency;
        Ok(latency)
    }

    /// Exports cumulative hotplug telemetry into `tele` under `scope`:
    /// offline/online event counters, per-errno failure tallies, migrated
    /// pages, total hotplug time, and current meminfo gauges.
    pub fn export_telemetry(&self, tele: &mut gd_obs::Telemetry, scope: &str) {
        let reg = &mut tele.registry;
        let s = &self.stats;
        reg.counter_add(&format!("{scope}.mm.offline_success"), s.offline_success);
        reg.counter_add(&format!("{scope}.mm.offline_ebusy"), s.offline_ebusy);
        reg.counter_add(&format!("{scope}.mm.offline_eagain"), s.offline_eagain);
        reg.counter_add(&format!("{scope}.mm.offline_pinned"), s.offline_pinned);
        reg.counter_add(&format!("{scope}.mm.offline_kernel"), s.offline_kernel);
        reg.counter_add(&format!("{scope}.mm.rollbacks"), s.rollbacks);
        reg.counter_add(&format!("{scope}.mm.online_count"), s.online_count);
        reg.counter_add(&format!("{scope}.mm.migrated_pages"), s.migrated_pages);
        reg.counter_add(
            &format!("{scope}.mm.hotplug_time_us"),
            s.total_time.as_micros(),
        );
        let info = self.meminfo();
        reg.gauge_set(&format!("{scope}.mm.free_pages"), info.free_pages as f64);
        reg.gauge_set(&format!("{scope}.mm.used_pages"), info.used_pages as f64);
        reg.gauge_set(
            &format!("{scope}.mm.offline_pages"),
            info.offline_pages as f64,
        );
        reg.gauge_set(
            &format!("{scope}.mm.offline_blocks"),
            self.offline_block_count() as f64,
        );
        // Per-site fault counters; a missing or inactive injector
        // exports nothing, keeping faultless telemetry byte-identical.
        if let Some(f) = &self.faults {
            f.export_telemetry(tele, scope);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm() -> MemoryManager {
        MemoryManager::new(MmConfig::small_test()).unwrap()
    }

    #[test]
    fn fresh_manager_accounting() {
        let m = mm();
        assert_eq!(m.block_count(), 16);
        let info = m.meminfo();
        assert_eq!(info.total_pages, 65_536); // 256 MB / 4 KB
        assert_eq!(info.free_pages, info.total_pages);
        assert_eq!(info.offline_pages, 0);
        assert_eq!(info.free_fraction(), 1.0);
    }

    #[test]
    fn allocate_and_free_roundtrip() {
        let mut m = mm();
        let id = m.allocate(10_000, PageKind::UserMovable).unwrap();
        let info = m.meminfo();
        assert_eq!(info.used_pages, 10_000);
        assert_eq!(m.pages_of(id), 10_000);
        m.free(id).unwrap();
        assert_eq!(m.meminfo().used_pages, 0);
    }

    #[test]
    fn allocation_packs_low_blocks_first() {
        let mut m = mm();
        m.allocate(4096, PageKind::UserMovable).unwrap(); // exactly one block
        assert!(m.block_info(0).unwrap().used_pages > 0);
        assert_eq!(m.block_info(15).unwrap().used_pages, 0);
    }

    #[test]
    fn oom_when_exceeding_capacity() {
        let mut m = mm();
        let err = m.allocate(1 << 30, PageKind::UserMovable).unwrap_err();
        assert!(matches!(err, GdError::OutOfMemory { .. }));
        // Nothing leaked.
        assert_eq!(m.meminfo().used_pages, 0);
    }

    #[test]
    fn offline_free_block_succeeds_with_table3_latency() {
        let mut m = mm();
        let r = m.offline_block(15).unwrap().unwrap();
        assert_eq!(r.migrated_pages, 0);
        assert_eq!(r.latency.as_micros(), 1_580);
        assert_eq!(m.offline_block_count(), 1);
        let info = m.meminfo();
        assert_eq!(info.offline_pages, 4096);
        assert_eq!(info.total_pages, 61_440);
    }

    #[test]
    fn offline_unmovable_block_is_ebusy() {
        let mut m = mm();
        // Kernel pages land in block 0.
        m.allocate(100, PageKind::KernelUnmovable).unwrap();
        let fail = m.offline_block(0).unwrap().unwrap_err();
        assert_eq!(fail.errno, OfflineErrno::Busy);
        assert_eq!(fail.latency.as_micros(), 6);
        assert!(m.block_info(0).unwrap().online);
        assert_eq!(m.stats.offline_ebusy, 1);
    }

    #[test]
    fn offline_with_movable_pages_migrates() {
        let mut m = mm();
        let id = m.allocate(2000, PageKind::UserMovable).unwrap();
        assert!(m.block_info(0).unwrap().used_pages > 0);
        let r = m.offline_block(0).unwrap().unwrap();
        assert_eq!(r.migrated_pages, 2000);
        assert!(r.latency > HotplugLatencies::default().offline_success);
        // Data still fully allocated, now elsewhere.
        assert_eq!(m.pages_of(id), 2000);
        assert_eq!(m.meminfo().used_pages, 2000);
        assert!(!m.block_info(0).unwrap().online);
    }

    #[test]
    fn offline_without_space_is_eagain() {
        let mut m = mm();
        // Fill almost everything so migration has nowhere to go.
        let total = m.meminfo().total_pages;
        m.allocate(total - 100, PageKind::UserMovable).unwrap();
        let fail = m.offline_block(0).unwrap().unwrap_err();
        assert_eq!(fail.errno, OfflineErrno::Again);
        assert_eq!(fail.latency.as_micros(), 4_370);
        assert_eq!(m.stats.offline_eagain, 1);
    }

    #[test]
    fn online_roundtrip() {
        let mut m = mm();
        m.offline_block(3).unwrap().unwrap();
        let lat = m.online_block(3).unwrap();
        assert_eq!(lat.as_micros(), 3_440);
        assert!(m.block_info(3).unwrap().online);
        // Double online is a caller bug.
        assert!(m.online_block(3).is_err());
    }

    #[test]
    fn offline_blocks_excluded_from_allocation() {
        let mut m = mm();
        for i in 8..16 {
            m.offline_block(i).unwrap().unwrap();
        }
        let info = m.meminfo();
        assert_eq!(info.total_pages, 32_768);
        // Can still allocate up to the on-line half.
        assert!(m.allocate(32_768, PageKind::UserMovable).is_ok());
        assert!(m.allocate(1, PageKind::UserMovable).is_err());
    }

    #[test]
    fn movablecore_keeps_kernel_out_of_movable_zone() {
        let cfg = MmConfig {
            movablecore_bytes: Some(128 << 20), // top 8 of 16 blocks
            unmovable_leak_prob: 0.0,
            ..MmConfig::small_test()
        };
        let mut m = MemoryManager::new(cfg).unwrap();
        // A huge kernel allocation only uses the lower half.
        m.allocate(20_000, PageKind::KernelUnmovable).unwrap();
        for i in 8..16 {
            assert!(m.block_info(i).unwrap().removable, "block {i} polluted");
        }
        // And it cannot exceed the non-movable zone.
        let err = m.allocate(20_000, PageKind::KernelUnmovable).unwrap_err();
        assert!(matches!(err, GdError::OutOfMemory { .. }));
    }

    #[test]
    fn shrink_frees_pages_lifo() {
        let mut m = mm();
        let id = m.allocate(4096, PageKind::UserMovable).unwrap();
        let freed = m.shrink(id, 1000).unwrap();
        assert!(freed >= 1000);
        assert_eq!(m.pages_of(id), 4096 - freed);
        assert_eq!(m.meminfo().used_pages, 4096 - freed);
    }

    #[test]
    fn grow_extends_allocation() {
        let mut m = mm();
        let id = m.allocate(100, PageKind::UserMovable).unwrap();
        m.grow(id, 50).unwrap();
        assert_eq!(m.pages_of(id), 150);
        m.free(id).unwrap();
        assert_eq!(m.meminfo().used_pages, 0);
    }

    #[test]
    fn fragmentation_index_reflects_shattering() {
        let mut m = mm();
        assert_eq!(m.fragmentation_index(), 0.0, "pristine memory");
        // Allocate many single pages, then free every other one: free
        // memory stays large but the largest chunk shrinks.
        let ids: Vec<_> = (0..2000)
            .map(|_| m.allocate(1, PageKind::UserMovable).unwrap())
            .collect();
        for id in ids.iter().step_by(2) {
            m.free(*id).unwrap();
        }
        let frag_some = m.fragmentation_index();
        assert!(frag_some >= 0.0);
        // Now consume all large chunks so only fragments remain.
        let total_free = m.meminfo().free_pages;
        let _big = m.allocate(total_free - 900, PageKind::UserMovable).unwrap();
        assert!(
            m.fragmentation_index() > frag_some,
            "shattered tail must raise the index"
        );
    }

    #[test]
    fn offline_failure_causes_are_structured() {
        let mut m = mm();
        m.allocate(100, PageKind::KernelUnmovable).unwrap();
        let fail = m.offline_block(0).unwrap().unwrap_err();
        assert_eq!(fail.cause, OfflineError::KernelBlock);
        assert_eq!(m.stats.offline_kernel, 1);
        assert_eq!(m.stats.offline_pinned, 0);

        let mut m2 = mm();
        m2.allocate(100, PageKind::Pinned).unwrap();
        let fail = m2.offline_block(0).unwrap().unwrap_err();
        assert_eq!(fail.cause, OfflineError::Pinned);
        assert_eq!(m2.stats.offline_pinned, 1);

        let mut m3 = mm();
        let total = m3.meminfo().total_pages;
        m3.allocate(total - 100, PageKind::UserMovable).unwrap();
        let fail = m3.offline_block(0).unwrap().unwrap_err();
        assert_eq!(fail.cause, OfflineError::MigrationAborted);
    }

    #[test]
    fn injected_pin_fault_forces_ebusy_on_a_free_block() {
        use gd_faults::{FaultPlan, FaultTrigger};
        let mut m = mm();
        m.set_fault_injector(
            FaultPlan::none()
                .with(FaultSite::OfflinePinned, FaultTrigger::OneShot(1))
                .build(m.config().seed),
        );
        let fail = m.offline_block(15).unwrap().unwrap_err();
        assert_eq!(fail.errno, OfflineErrno::Busy);
        assert_eq!(fail.cause, OfflineError::Pinned);
        assert_eq!(m.stats.offline_pinned, 1);
        assert!(m.block_info(15).unwrap().online, "block must stay online");
        // The one-shot is spent: the next attempt succeeds.
        assert!(m.offline_block(15).unwrap().is_ok());
    }

    #[test]
    fn migration_abort_rolls_back_exactly() {
        use gd_faults::{FaultPlan, FaultTrigger};
        let mut m = mm();
        let id = m.allocate(2000, PageKind::UserMovable).unwrap();
        let before = m.meminfo();
        // Abort all three migration attempts → EAGAIN, fully rolled back.
        m.set_fault_injector(
            FaultPlan::none()
                .with(FaultSite::MigrationAbort, FaultTrigger::Prob(1.0))
                .build(1),
        );
        let fail = m.offline_block(0).unwrap().unwrap_err();
        assert_eq!(fail.errno, OfflineErrno::Again);
        assert_eq!(fail.cause, OfflineError::MigrationAborted);
        assert_eq!(m.stats.rollbacks, 3, "all three attempts rolled back");
        assert_eq!(m.meminfo(), before, "rollback must restore accounting");
        assert_eq!(m.pages_of(id), 2000);
        m.audit().expect("rollback leaves a consistent manager");
        // Data never moved: block 0 still holds the pages.
        assert!(m.block_info(0).unwrap().used_pages > 0);
    }

    #[test]
    fn broken_rollback_is_caught_by_audit() {
        use gd_faults::{FaultPlan, FaultTrigger};
        let mut m = mm();
        m.allocate(2000, PageKind::UserMovable).unwrap();
        m.set_fault_injector(
            FaultPlan::none()
                .with(FaultSite::MigrationAbort, FaultTrigger::OneShot(1))
                .build(1),
        );
        m.debug_break_rollback();
        // First attempt aborts with the broken rollback; a later attempt
        // may still succeed, but the leaked chunk remains.
        let _ = m.offline_block(0).unwrap();
        let problems = m.audit().expect_err("leaked reservation must be caught");
        assert!(
            problems.iter().any(|p| p.contains("pages but the table")),
            "expected a page-sum mismatch, got: {problems:?}"
        );
    }

    #[test]
    fn slow_migration_fault_inflates_latency_only() {
        use gd_faults::{FaultPlan, FaultTrigger};
        let mut m = mm();
        m.allocate(2000, PageKind::UserMovable).unwrap();
        let mut plain = mm();
        plain.allocate(2000, PageKind::UserMovable).unwrap();
        m.set_fault_injector(
            FaultPlan::none()
                .with(FaultSite::MigrationSlow, FaultTrigger::Prob(1.0))
                .build(1),
        );
        let slow = m.offline_block(0).unwrap().unwrap();
        let fast = plain.offline_block(0).unwrap().unwrap();
        assert_eq!(slow.migrated_pages, fast.migrated_pages);
        assert!(slow.latency > fast.latency);
        assert_eq!(m.meminfo(), plain.meminfo(), "placement identical");
    }

    #[test]
    fn inactive_injector_is_byte_identical_to_none() {
        use gd_faults::FaultPlan;
        let drive = |m: &mut MemoryManager| {
            let a = m.allocate(3000, PageKind::UserMovable).unwrap();
            m.offline_block(0).unwrap().unwrap();
            m.shrink(a, 500).unwrap();
            m.offline_block(1).unwrap().unwrap();
            m.online_block(0).unwrap();
            m.meminfo()
        };
        let mut with_inactive = mm();
        with_inactive.set_fault_injector(FaultPlan::uniform(0.0).build(9));
        let mut without = mm();
        assert_eq!(drive(&mut with_inactive), drive(&mut without));
        assert_eq!(with_inactive.stats.rollbacks, 0);
        let mut ta = gd_obs::Telemetry::new();
        let mut tb = gd_obs::Telemetry::new();
        with_inactive.export_telemetry(&mut ta, "mm");
        without.export_telemetry(&mut tb, "mm");
        assert_eq!(ta.render_jsonl("p"), tb.render_jsonl("p"));
    }

    #[test]
    fn removable_flag_tracks_contents() {
        let mut m = mm();
        let kid = m.allocate(10, PageKind::KernelUnmovable).unwrap();
        assert!(!m.block_info(0).unwrap().removable);
        m.free(kid).unwrap();
        assert!(m.block_info(0).unwrap().removable);
    }
}
