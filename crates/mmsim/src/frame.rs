//! Page ownership vocabulary: allocation handles, page kinds, and hotplug
//! outcome types.

use gd_types::SimTime;
use std::fmt;

/// Base page size (4 KB), as on the paper's x86 server.
pub const PAGE_BYTES: u64 = 4096;

/// A handle identifying one logical allocation (a process heap region, a
/// VM's guest memory, a kernel object pool, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AllocationId(pub u64);

impl fmt::Display for AllocationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "alloc{}", self.0)
    }
}

/// What kind of pages an allocation holds, which determines whether its
/// memory block can be off-lined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageKind {
    /// User/anonymous pages that the kernel can migrate.
    UserMovable,
    /// Kernel allocations (slab, page tables) — not migratable.
    KernelUnmovable,
    /// Device-pinned pages (DMA targets) — not migratable.
    Pinned,
}

impl PageKind {
    /// Whether pages of this kind can be migrated away during off-lining.
    pub fn is_movable(self) -> bool {
        matches!(self, PageKind::UserMovable)
    }
}

/// Why a memory-block off-lining attempt failed, mirroring the kernel's
/// errno values (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OfflineErrno {
    /// Isolation failed: the block holds unmovable or pinned pages.
    Busy,
    /// Transient: page migration could not complete after three attempts
    /// (e.g. no space to migrate into).
    Again,
}

/// The result of a successful off-lining.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OfflineReport {
    /// Wall-clock cost of the operation.
    pub latency: SimTime,
    /// Pages migrated out of the block (0 when the block was entirely free,
    /// which is the only case GreenDIMM's selector chooses).
    pub migrated_pages: u64,
}

/// The structured cause behind an off-lining failure. An errno collapses
/// distinct causes (pinned DMA targets and kernel slabs both surface as
/// EBUSY); governors and telemetry want the distinction, so
/// [`OfflineFailure`] carries both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OfflineError {
    /// The block holds device-pinned pages (DMA targets).
    Pinned,
    /// The block holds kernel allocations (slab, page tables).
    KernelBlock,
    /// Page migration started but aborted partway; already-moved frames
    /// were rolled back.
    MigrationAborted,
}

impl OfflineError {
    /// The errno the kernel surfaces for this cause.
    pub fn errno(self) -> OfflineErrno {
        match self {
            OfflineError::Pinned | OfflineError::KernelBlock => OfflineErrno::Busy,
            OfflineError::MigrationAborted => OfflineErrno::Again,
        }
    }

    /// Stable label for telemetry and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            OfflineError::Pinned => "pinned",
            OfflineError::KernelBlock => "kernel-block",
            OfflineError::MigrationAborted => "migration-aborted",
        }
    }
}

impl fmt::Display for OfflineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The result of a failed off-lining, including the time wasted — EAGAIN
/// failures cost ~3× a successful off-lining (Table 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OfflineFailure {
    /// Which errno the kernel returned.
    pub errno: OfflineErrno,
    /// The structured cause behind the errno.
    pub cause: OfflineError,
    /// Wall-clock cost of the failed attempt.
    pub latency: SimTime,
}

impl fmt::Display for OfflineFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.errno {
            OfflineErrno::Busy => write!(
                f,
                "off-lining failed with EBUSY ({}) after {}",
                self.cause, self.latency
            ),
            OfflineErrno::Again => {
                write!(
                    f,
                    "off-lining failed with EAGAIN ({}) after {}",
                    self.cause, self.latency
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn movability() {
        assert!(PageKind::UserMovable.is_movable());
        assert!(!PageKind::KernelUnmovable.is_movable());
        assert!(!PageKind::Pinned.is_movable());
    }

    #[test]
    fn display_forms() {
        assert_eq!(AllocationId(7).to_string(), "alloc7");
        let f = OfflineFailure {
            errno: OfflineErrno::Again,
            cause: OfflineError::MigrationAborted,
            latency: SimTime::from_millis(4),
        };
        assert!(f.to_string().contains("EAGAIN"));
        assert!(f.to_string().contains("migration-aborted"));
    }

    #[test]
    fn cause_errno_mapping() {
        assert_eq!(OfflineError::Pinned.errno(), OfflineErrno::Busy);
        assert_eq!(OfflineError::KernelBlock.errno(), OfflineErrno::Busy);
        assert_eq!(OfflineError::MigrationAborted.errno(), OfflineErrno::Again);
    }
}
