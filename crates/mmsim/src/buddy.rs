//! A binary-buddy allocator over the pages of one memory block.
//!
//! This mirrors the Linux page allocator's per-zone buddy structure at the
//! granularity GreenDIMM interacts with: chunks of `2^order` pages,
//! split/coalesce on alloc/free, first-fit by order.

use std::collections::BTreeSet;

/// Maximum buddy order (2^10 pages = 4 MB with 4 KB pages), matching Linux's
/// `MAX_ORDER - 1`.
pub const MAX_ORDER: u8 = 10;

/// A buddy allocator managing `total_pages` pages (offsets are block-local).
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    total_pages: u32,
    /// Free chunk offsets per order.
    free_lists: Vec<BTreeSet<u32>>,
    free_pages: u32,
}

impl BuddyAllocator {
    /// Creates an allocator with all pages free.
    ///
    /// # Panics
    ///
    /// Panics if `total_pages` is zero or not a multiple of the maximum
    /// chunk size (memory blocks are always max-order aligned).
    pub fn new(total_pages: u32) -> Self {
        let max_chunk = 1u32 << MAX_ORDER;
        assert!(total_pages > 0, "empty buddy region");
        assert_eq!(
            total_pages % max_chunk,
            0,
            "block size must be a multiple of the max buddy chunk"
        );
        let mut free_lists = vec![BTreeSet::new(); MAX_ORDER as usize + 1];
        let mut off = 0;
        while off < total_pages {
            free_lists[MAX_ORDER as usize].insert(off);
            off += max_chunk;
        }
        BuddyAllocator {
            total_pages,
            free_lists,
            free_pages: total_pages,
        }
    }

    /// Pages managed.
    pub fn total_pages(&self) -> u32 {
        self.total_pages
    }

    /// Pages currently free.
    pub fn free_pages(&self) -> u32 {
        self.free_pages
    }

    /// True when every page is free.
    pub fn is_empty(&self) -> bool {
        self.free_pages == self.total_pages
    }

    /// Allocates a chunk of `2^order` pages; returns its offset.
    pub fn alloc(&mut self, order: u8) -> Option<u32> {
        if order > MAX_ORDER {
            return None;
        }
        // Find the smallest order with a free chunk.
        let mut o = order;
        while (o as usize) < self.free_lists.len() && self.free_lists[o as usize].is_empty() {
            o += 1;
        }
        if o > MAX_ORDER {
            return None;
        }
        let offset = *self.free_lists[o as usize].iter().next()?;
        self.free_lists[o as usize].remove(&offset);
        // Split down to the requested order, returning buddies to the lists.
        while o > order {
            o -= 1;
            let buddy = offset + (1u32 << o);
            self.free_lists[o as usize].insert(buddy);
        }
        self.free_pages -= 1u32 << order;
        Some(offset)
    }

    /// Frees a chunk previously returned by [`alloc`](Self::alloc) with the
    /// same order, coalescing with free buddies.
    ///
    /// # Panics
    ///
    /// Panics (debug) on double-free of the same chunk.
    pub fn free(&mut self, mut offset: u32, order: u8) {
        debug_assert!(order <= MAX_ORDER);
        debug_assert_eq!(offset % (1u32 << order), 0, "misaligned free");
        debug_assert!(offset + (1u32 << order) <= self.total_pages);
        let mut o = order;
        while o < MAX_ORDER {
            let buddy = offset ^ (1u32 << o);
            if self.free_lists[o as usize].remove(&buddy) {
                offset = offset.min(buddy);
                o += 1;
            } else {
                break;
            }
        }
        let inserted = self.free_lists[o as usize].insert(offset);
        debug_assert!(inserted, "double free at offset {offset} order {o}");
        self.free_pages += 1u32 << order;
    }

    /// The largest order that can currently be allocated.
    pub fn max_free_order(&self) -> Option<u8> {
        (0..=MAX_ORDER)
            .rev()
            .find(|o| !self.free_lists[*o as usize].is_empty())
    }

    /// Verifies the allocator's internal structure: every free chunk is
    /// aligned to its order, lies in range, overlaps no other free chunk,
    /// and the free lists sum to the free-page counter.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found.
    pub fn audit(&self) -> std::result::Result<(), String> {
        let mut covered: Vec<(u32, u32)> = Vec::new();
        let mut listed = 0u64;
        for (o, list) in self.free_lists.iter().enumerate() {
            let len = 1u32 << o;
            for &off in list {
                if off % len != 0 {
                    return Err(format!("free chunk {off} misaligned for order {o}"));
                }
                if off + len > self.total_pages {
                    return Err(format!(
                        "free chunk [{off}, {}) beyond {} pages",
                        off + len,
                        self.total_pages
                    ));
                }
                covered.push((off, off + len));
                listed += u64::from(len);
            }
        }
        covered.sort_unstable();
        for w in covered.windows(2) {
            if w[0].1 > w[1].0 {
                return Err(format!(
                    "free chunks overlap: [{}, {}) and [{}, {})",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ));
            }
        }
        if listed != u64::from(self.free_pages) {
            return Err(format!(
                "free lists hold {listed} pages but the counter says {}",
                self.free_pages
            ));
        }
        Ok(())
    }

    /// Allocates up to `pages` pages as a list of `(offset, order)` chunks,
    /// preferring large chunks. Returns the chunks actually obtained (which
    /// cover exactly `pages` pages on success, fewer if space ran out — the
    /// caller must free partial results if it needs all-or-nothing).
    pub fn alloc_pages(&mut self, pages: u64) -> Vec<(u32, u8)> {
        let mut remaining = pages.min(self.free_pages as u64);
        let mut out = Vec::new();
        while remaining > 0 {
            let want = remaining.min(1 << MAX_ORDER);
            // Largest power of two not exceeding `want`.
            let mut order = 63 - want.leading_zeros() as u8;
            order = order.min(MAX_ORDER);
            // Degrade to whatever is available.
            let got = loop {
                if let Some(off) = self.alloc(order) {
                    break Some((off, order));
                }
                if order == 0 {
                    break None;
                }
                order -= 1;
            };
            match got {
                Some((off, order)) => {
                    out.push((off, order));
                    remaining = remaining.saturating_sub(1 << order);
                }
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut b = BuddyAllocator::new(4096);
        let a = b.alloc(3).unwrap();
        assert_eq!(b.free_pages(), 4096 - 8);
        b.free(a, 3);
        assert_eq!(b.free_pages(), 4096);
        assert!(b.is_empty());
    }

    #[test]
    fn coalescing_restores_max_order() {
        let mut b = BuddyAllocator::new(1 << MAX_ORDER);
        let mut chunks = Vec::new();
        while let Some(off) = b.alloc(0) {
            chunks.push(off);
        }
        assert_eq!(b.free_pages(), 0);
        for off in chunks {
            b.free(off, 0);
        }
        assert_eq!(b.max_free_order(), Some(MAX_ORDER));
    }

    #[test]
    fn splitting_produces_distinct_chunks() {
        let mut b = BuddyAllocator::new(2048);
        let x = b.alloc(2).unwrap();
        let y = b.alloc(2).unwrap();
        assert_ne!(x, y);
        assert!(x.is_multiple_of(4) && y.is_multiple_of(4));
    }

    #[test]
    fn alloc_pages_covers_request() {
        let mut b = BuddyAllocator::new(4096);
        let chunks = b.alloc_pages(1000);
        let total: u64 = chunks.iter().map(|(_, o)| 1u64 << o).sum();
        // Greedy binary decomposition: 1000 = 512+256+128+64+32+8.
        assert_eq!(total, 1000);
        assert_eq!(chunks.len(), 6);
    }

    #[test]
    fn alloc_pages_exact_power_of_two() {
        let mut b = BuddyAllocator::new(4096);
        let chunks = b.alloc_pages(1024);
        let total: u64 = chunks.iter().map(|(_, o)| 1u64 << o).sum();
        assert_eq!(total, 1024);
        assert_eq!(chunks.len(), 1);
    }

    #[test]
    fn exhaustion_returns_partial() {
        let mut b = BuddyAllocator::new(1024);
        let chunks = b.alloc_pages(5000);
        let total: u64 = chunks.iter().map(|(_, o)| 1u64 << o).sum();
        assert_eq!(total, 1024);
        assert_eq!(b.free_pages(), 0);
        assert!(b.alloc(0).is_none());
    }

    #[test]
    #[should_panic(expected = "multiple of the max buddy chunk")]
    fn misaligned_size_rejected() {
        BuddyAllocator::new(1000);
    }
}
