//! A hot-pluggable memory block: the kernel's unit of on/off-lining.

use crate::buddy::BuddyAllocator;
use crate::frame::{AllocationId, PageKind};
use std::collections::BTreeMap;

/// One allocated buddy chunk inside a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Owning allocation.
    pub owner: AllocationId,
    /// Page kind (decides movability).
    pub kind: PageKind,
    /// Buddy order (`2^order` pages).
    pub order: u8,
}

/// A contiguous, block-aligned range of physical memory that the kernel can
/// on/off-line as a unit (default 128 MB in Linux; GreenDIMM sizes it to one
/// or more sub-array groups).
#[derive(Debug, Clone)]
pub struct MemoryBlock {
    index: usize,
    pages: u32,
    online: bool,
    buddy: BuddyAllocator,
    chunks: BTreeMap<u32, Chunk>,
    movable_pages: u64,
    unmovable_pages: u64,
    pinned_pages: u64,
}

/// A read-only snapshot of a block's state, as exposed through sysfs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInfo {
    /// Block index.
    pub index: usize,
    /// Whether the block is online.
    pub online: bool,
    /// The sysfs `removable` flag: true iff the block contains no unmovable
    /// or pinned pages (§5.2).
    pub removable: bool,
    /// Pages in use.
    pub used_pages: u64,
    /// Pages free.
    pub free_pages: u64,
    /// Total pages.
    pub total_pages: u64,
}

impl MemoryBlock {
    /// Creates an online block of `pages` pages.
    pub fn new(index: usize, pages: u32) -> Self {
        MemoryBlock {
            index,
            pages,
            online: true,
            buddy: BuddyAllocator::new(pages),
            chunks: BTreeMap::new(),
            movable_pages: 0,
            unmovable_pages: 0,
            pinned_pages: 0,
        }
    }

    /// Block index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Whether the block is online.
    pub fn online(&self) -> bool {
        self.online
    }

    /// Sets the online state (the manager enforces the transition rules).
    pub(crate) fn set_online(&mut self, online: bool) {
        self.online = online;
    }

    /// Total pages.
    pub fn total_pages(&self) -> u64 {
        self.pages as u64
    }

    /// Free pages.
    pub fn free_pages(&self) -> u64 {
        self.buddy.free_pages() as u64
    }

    /// Used pages.
    pub fn used_pages(&self) -> u64 {
        self.movable_pages + self.unmovable_pages + self.pinned_pages
    }

    /// Movable used pages.
    pub fn movable_pages(&self) -> u64 {
        self.movable_pages
    }

    /// Unmovable + pinned pages.
    pub fn unmovable_pages(&self) -> u64 {
        self.unmovable_pages + self.pinned_pages
    }

    /// Device-pinned pages only (distinguishes EBUSY causes).
    pub fn pinned_pages(&self) -> u64 {
        self.pinned_pages
    }

    /// The sysfs `removable` flag.
    pub fn removable(&self) -> bool {
        self.unmovable_pages() == 0
    }

    /// True when no page is in use.
    pub fn is_free(&self) -> bool {
        self.used_pages() == 0
    }

    /// Largest buddy order currently allocatable in this block.
    pub fn max_free_order(&self) -> Option<u8> {
        self.buddy.max_free_order()
    }

    /// Snapshot for the sysfs-style API.
    pub fn info(&self) -> BlockInfo {
        BlockInfo {
            index: self.index,
            online: self.online,
            removable: self.removable(),
            used_pages: self.used_pages(),
            free_pages: self.free_pages(),
            total_pages: self.total_pages(),
        }
    }

    /// Allocates up to `pages` pages for `owner`; returns `(offset, order)`
    /// chunks actually placed (possibly fewer pages than requested).
    pub fn alloc_chunks(
        &mut self,
        pages: u64,
        owner: AllocationId,
        kind: PageKind,
    ) -> Vec<(u32, u8)> {
        debug_assert!(self.online);
        let chunks = self.buddy.alloc_pages(pages);
        for (off, order) in &chunks {
            self.chunks.insert(
                *off,
                Chunk {
                    owner,
                    kind,
                    order: *order,
                },
            );
            let n = 1u64 << order;
            match kind {
                PageKind::UserMovable => self.movable_pages += n,
                PageKind::KernelUnmovable => self.unmovable_pages += n,
                PageKind::Pinned => self.pinned_pages += n,
            }
        }
        chunks
    }

    /// Frees the chunk at `offset`, returning its metadata.
    ///
    /// # Panics
    ///
    /// Panics if no chunk starts at `offset`.
    pub fn free_chunk(&mut self, offset: u32) -> Chunk {
        let chunk = self
            .chunks
            .remove(&offset)
            .expect("free of unknown chunk offset");
        self.buddy.free(offset, chunk.order);
        let n = 1u64 << chunk.order;
        match chunk.kind {
            PageKind::UserMovable => self.movable_pages -= n,
            PageKind::KernelUnmovable => self.unmovable_pages -= n,
            PageKind::Pinned => self.pinned_pages -= n,
        }
        chunk
    }

    /// Splits the chunk at `offset` into its two buddy halves (both remain
    /// allocated to the same owner). Returns the offsets of the halves.
    ///
    /// # Panics
    ///
    /// Panics if no chunk starts at `offset` or the chunk is order 0.
    pub fn split_chunk(&mut self, offset: u32) -> (u32, u32) {
        let chunk = *self.chunks.get(&offset).expect("split of unknown chunk");
        assert!(chunk.order > 0, "cannot split an order-0 chunk");
        let half = Chunk {
            order: chunk.order - 1,
            ..chunk
        };
        let upper = offset + (1u32 << half.order);
        self.chunks.insert(offset, half);
        self.chunks.insert(upper, half);
        (offset, upper)
    }

    /// Verifies the block's books: the buddy structure is sound, allocated
    /// chunks are aligned, in range, and non-overlapping, the per-kind
    /// counters match the chunk map, and used + free == total.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn audit(&self) -> std::result::Result<(), String> {
        self.buddy
            .audit()
            .map_err(|e| format!("block {}: {e}", self.index))?;
        let mut movable = 0u64;
        let mut unmovable = 0u64;
        let mut pinned = 0u64;
        let mut alloc_pages = 0u64;
        let mut prev_end = 0u32;
        for (&off, chunk) in &self.chunks {
            let len = 1u32 << chunk.order;
            if off % len != 0 || off + len > self.pages {
                return Err(format!(
                    "block {}: chunk at {off} order {} out of bounds",
                    self.index, chunk.order
                ));
            }
            if off < prev_end {
                return Err(format!(
                    "block {}: allocated chunks overlap at offset {off}",
                    self.index
                ));
            }
            prev_end = off + len;
            alloc_pages += u64::from(len);
            match chunk.kind {
                PageKind::UserMovable => movable += u64::from(len),
                PageKind::KernelUnmovable => unmovable += u64::from(len),
                PageKind::Pinned => pinned += u64::from(len),
            }
        }
        if (movable, unmovable, pinned)
            != (self.movable_pages, self.unmovable_pages, self.pinned_pages)
        {
            return Err(format!(
                "block {}: kind counters (movable {}, unmovable {}, pinned {}) \
                 disagree with chunks (movable {movable}, unmovable {unmovable}, \
                 pinned {pinned})",
                self.index, self.movable_pages, self.unmovable_pages, self.pinned_pages
            ));
        }
        if alloc_pages + self.free_pages() != self.total_pages() {
            return Err(format!(
                "block {}: {alloc_pages} allocated + {} free != {} total",
                self.index,
                self.free_pages(),
                self.total_pages()
            ));
        }
        Ok(())
    }

    /// Offsets of all chunks currently in the block (ascending).
    pub fn chunk_offsets(&self) -> Vec<u32> {
        self.chunks.keys().copied().collect()
    }

    /// The chunk starting at `offset`, if any.
    pub fn chunk_at(&self, offset: u32) -> Option<&Chunk> {
        self.chunks.get(&offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> MemoryBlock {
        MemoryBlock::new(0, 4096)
    }

    #[test]
    fn fresh_block_is_free_and_removable() {
        let b = block();
        assert!(b.is_free());
        assert!(b.removable());
        assert!(b.online());
        assert_eq!(b.free_pages(), 4096);
    }

    #[test]
    fn unmovable_chunk_clears_removable() {
        let mut b = block();
        b.alloc_chunks(16, AllocationId(1), PageKind::KernelUnmovable);
        assert!(!b.removable());
        assert_eq!(b.unmovable_pages(), 16);
        let info = b.info();
        assert!(!info.removable);
        assert_eq!(info.used_pages, 16);
    }

    #[test]
    fn movable_chunks_keep_removable() {
        let mut b = block();
        b.alloc_chunks(100, AllocationId(2), PageKind::UserMovable);
        assert!(b.removable());
        assert!(!b.is_free());
        assert_eq!(b.movable_pages(), 100);
    }

    #[test]
    fn free_chunk_restores_accounting() {
        let mut b = block();
        let chunks = b.alloc_chunks(64, AllocationId(3), PageKind::UserMovable);
        for (off, _) in chunks {
            let c = b.free_chunk(off);
            assert_eq!(c.owner, AllocationId(3));
        }
        assert!(b.is_free());
        assert_eq!(b.free_pages(), 4096);
    }

    #[test]
    fn pinned_counts_as_unmovable() {
        let mut b = block();
        b.alloc_chunks(8, AllocationId(4), PageKind::Pinned);
        assert!(!b.removable());
        assert_eq!(b.unmovable_pages(), 8);
        assert_eq!(b.movable_pages(), 0);
    }
}
