//! An OS physical-memory simulator: the substrate standing in for the Linux
//! kernel's page allocator and memory-hotplug machinery that GreenDIMM
//! drives through `offline_pages()` / `online_pages()` and sysfs.
//!
//! The model reproduces everything GreenDIMM can observe of the kernel:
//!
//! * a binary-buddy allocator per memory block ([`buddy`]),
//! * memory blocks with movable/unmovable/pinned pages and the sysfs
//!   `removable` flag ([`block`]),
//! * on/off-lining with the paper's measured EBUSY/EAGAIN failure semantics
//!   and Table 3 latencies ([`manager`], [`latency`]),
//! * `/proc/meminfo`-style accounting restricted to on-line memory.
//!
//! # Example
//!
//! ```
//! use gd_mmsim::{MemoryManager, MmConfig, PageKind};
//!
//! # fn main() -> gd_types::Result<()> {
//! let mut mm = MemoryManager::new(MmConfig::small_test())?;
//! let app = mm.allocate(10_000, PageKind::UserMovable)?;
//! // The last block is still entirely free, so off-lining it needs no
//! // page migration and costs the paper's 1.58 ms.
//! let report = mm.offline_block(mm.block_count() - 1)?.expect("free block");
//! assert_eq!(report.migrated_pages, 0);
//! mm.free(app)?;
//! # Ok(())
//! # }
//! ```

pub mod block;
pub mod buddy;
pub mod frame;
pub mod latency;
pub mod manager;

pub use block::{BlockInfo, MemoryBlock};
pub use buddy::{BuddyAllocator, MAX_ORDER};
pub use frame::{
    AllocationId, OfflineErrno, OfflineError, OfflineFailure, OfflineReport, PageKind, PAGE_BYTES,
};
pub use latency::HotplugLatencies;
pub use manager::{HotplugStats, MemInfo, MemoryManager, MmConfig};
