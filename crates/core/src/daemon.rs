//! The GreenDIMM power-management daemon: `memory_usage_monitor()` +
//! `block_selector()` + deep power-down register programming (§4.2).

use crate::config::GreenDimmConfig;
use crate::groupmap::GroupMap;
use crate::registers::{GroupRegisterFile, DEEP_PD_EXIT};
use gd_faults::{FaultInjector, FaultSite, RetryPolicy, MRS_ACK_DELAY};
use gd_mmsim::{MemoryManager, OfflineErrno};
use gd_types::ids::SubArrayGroup;
use gd_types::rng::{component_rng, StdRng};
use gd_types::{Result, SimTime};
use std::collections::HashSet;

/// Counters the daemon accumulates over a run (Tables 2–3, Fig. 8, and the
/// overhead model behind Figs. 7 and 11).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DaemonStats {
    /// Monitor ticks executed.
    pub ticks: u64,
    /// Successful block off-linings.
    pub offline_events: u64,
    /// Successful block on-linings.
    pub online_events: u64,
    /// Off-lining failures with EBUSY.
    pub failures_ebusy: u64,
    /// Off-lining failures with EAGAIN.
    pub failures_eagain: u64,
    /// Demand-driven on-lining passes ([`Daemon::handle_allocation_stall`]),
    /// counted even when no block could be woken.
    pub allocation_stalls: u64,
    /// Allocation stalls that on-lined nothing (every candidate already
    /// on-line, quarantined, or failed).
    pub stalls_unserved: u64,
    /// Deep power-down entry NACKs (injected MRS rejections).
    pub deep_pd_nacks: u64,
    /// Re-attempts after a failure: deep-PD entries retried once a
    /// group's quarantine expired, plus buddy-wake retries.
    pub retries: u64,
    /// Deep-PD entries whose MRS ack arrived late (latency charged).
    pub mrs_ack_delays: u64,
    /// Transient buddy-wake failures (each one forced a retry).
    pub buddy_wake_failures: u64,
    /// Wall-clock time spent inside hotplug operations and deep power-down
    /// exits.
    pub hotplug_time: SimTime,
    /// Monitor ticks skipped by the epoch-replay engine's steady-state
    /// fast-forward ([`crate::EpochSim::fast_forward`]). 0 ⇒ the run is
    /// exact; anything else flags a sampled result.
    pub replayed_ticks: u64,
}

impl DaemonStats {
    /// All off-lining failures.
    pub fn failures(&self) -> u64 {
        self.failures_ebusy + self.failures_eagain
    }

    /// All on/off-lining events (Table 2's metric).
    pub fn hotplug_events(&self) -> u64 {
        self.offline_events + self.online_events
    }
}

/// What one monitor tick did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickReport {
    /// Blocks off-lined.
    pub offlined: u32,
    /// Blocks on-lined.
    pub onlined: u32,
    /// Off-lining failures.
    pub failures: u32,
}

/// Per-group recovery state for deep power-down entry failures.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GroupRecovery {
    /// Consecutive deep-PD entry NACKs (reset on success).
    pub consecutive_nacks: u32,
    /// No deep-PD entry is attempted before this time (exponential
    /// backoff from [`RetryPolicy`]).
    pub quarantined_until: SimTime,
    /// Permanently degraded: the group stays in shallow power-down for
    /// the rest of the run instead of oscillating on a flaky MRS path.
    pub degraded: bool,
}

/// The daemon.
#[derive(Debug)]
pub struct Daemon {
    cfg: GreenDimmConfig,
    map: GroupMap,
    registers: GroupRegisterFile,
    rng: StdRng,
    /// Effective off threshold (== `cfg.off_thr` unless adaptive).
    current_off_thr: f64,
    /// Monitor ticks since the last failure or stall (for adaptive decay).
    quiet_ticks: u32,
    /// Optional fault injector (see `gd-faults`).
    faults: Option<FaultInjector>,
    /// Backoff/quarantine policy for deep-PD entry failures.
    retry: RetryPolicy,
    /// Per-group recovery state, indexed by group.
    recovery: Vec<GroupRecovery>,
    /// Run statistics.
    pub stats: DaemonStats,
}

impl Daemon {
    /// Creates a daemon for the given block/group geometry.
    pub fn new(cfg: GreenDimmConfig, map: GroupMap) -> Self {
        Daemon {
            registers: GroupRegisterFile::new(map.groups()),
            rng: component_rng(cfg.seed, "greendimm-daemon"),
            current_off_thr: cfg.off_thr,
            quiet_ticks: 0,
            faults: None,
            retry: RetryPolicy::paper_default(),
            recovery: vec![GroupRecovery::default(); map.groups() as usize],
            cfg,
            map,
            stats: DaemonStats::default(),
        }
    }

    /// Installs a fault injector. An inactive plan (or none at all)
    /// leaves every decision byte-identical to a faultless build.
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.faults = Some(faults);
    }

    /// The installed fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// Overrides the retry/backoff policy.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The active retry/backoff policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Recovery state of one group (`None` when out of range).
    pub fn recovery(&self, g: SubArrayGroup) -> Option<&GroupRecovery> {
        self.recovery.get(g.index())
    }

    /// Number of groups degraded to shallow power-down.
    pub fn degraded_groups(&self) -> u64 {
        self.recovery.iter().filter(|r| r.degraded).count() as u64
    }

    /// The effective off threshold (differs from the configured one only
    /// when [`GreenDimmConfig::adaptive_off_thr`] is on).
    ///
    /// [`GreenDimmConfig::adaptive_off_thr`]: crate::config::GreenDimmConfig::adaptive_off_thr
    pub fn effective_off_thr(&self) -> f64 {
        self.current_off_thr
    }

    /// Adaptive back-off: raise the reserve after trouble (off-lining
    /// failures or allocation stalls), decay toward the configured
    /// threshold after 30 quiet ticks.
    fn adapt(&mut self, had_trouble: bool) {
        if !self.cfg.adaptive_off_thr {
            return;
        }
        if had_trouble {
            self.quiet_ticks = 0;
            self.current_off_thr = (self.current_off_thr * 1.25).min(0.30);
        } else {
            self.quiet_ticks += 1;
            if self.quiet_ticks >= 30 {
                self.current_off_thr = (self.current_off_thr * 0.9).max(self.cfg.off_thr);
            }
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GreenDimmConfig {
        &self.cfg
    }

    /// The block/group geometry.
    pub fn group_map(&self) -> &GroupMap {
        &self.map
    }

    /// The deep power-down register file (for the power model).
    pub fn registers(&self) -> &GroupRegisterFile {
        &self.registers
    }

    /// Fraction of sub-array groups currently in deep power-down.
    pub fn deep_pd_fraction(&self) -> f64 {
        self.registers.down_fraction()
    }

    /// One `memory_usage_monitor()` pass at simulated time `now`.
    ///
    /// # Errors
    ///
    /// Propagates memory-manager errors that indicate caller bugs (the
    /// kernel's EBUSY/EAGAIN results are *handled*, not propagated).
    pub fn tick(&mut self, now: SimTime, mm: &mut MemoryManager) -> Result<TickReport> {
        self.stats.ticks += 1;
        let mut report = TickReport::default();
        let info = mm.meminfo();
        let installed = info.installed_pages;
        let off_floor = (self.current_off_thr * installed as f64) as u64;
        let on_floor = (self.cfg.on_thr * installed as f64) as u64;
        let block_pages = mm.block_pages();

        if info.free_pages > off_floor + block_pages {
            self.offline_pass(now, mm, off_floor, block_pages, &mut report)?;
        } else if info.free_pages < on_floor {
            self.online_pass(now, mm, off_floor, &mut report)?;
        }
        // Re-attempt deep-PD entry for groups whose quarantine may have
        // expired. Without prior NACKs this pass does not run at all, so
        // faultless ticks are byte-identical to pre-recovery behaviour.
        if self
            .recovery
            .iter()
            .any(|r| r.consecutive_nacks > 0 && !r.degraded)
        {
            self.update_registers_after_offline(now, mm)?;
        }
        self.adapt(report.failures > 0);
        Ok(report)
    }

    fn offline_pass(
        &mut self,
        now: SimTime,
        mm: &mut MemoryManager,
        off_floor: u64,
        block_pages: u64,
        report: &mut TickReport,
    ) -> Result<()> {
        let mut excluded: HashSet<usize> = HashSet::new();
        let mut attempts = 0;
        while attempts < self.cfg.max_attempts_per_tick
            && mm.meminfo().free_pages > off_floor + block_pages
        {
            let Some(block) =
                crate::selector::pick_candidate(mm, self.cfg.selector, &excluded, &mut self.rng)
            else {
                break;
            };
            attempts += 1;
            match mm.offline_block(block)? {
                Ok(ok) => {
                    self.stats.offline_events += 1;
                    self.stats.hotplug_time += ok.latency;
                    report.offlined += 1;
                    self.update_registers_after_offline(now + self.stats.hotplug_time, mm)?;
                }
                Err(fail) => {
                    match fail.errno {
                        OfflineErrno::Busy => self.stats.failures_ebusy += 1,
                        OfflineErrno::Again => self.stats.failures_eagain += 1,
                    }
                    self.stats.hotplug_time += fail.latency;
                    report.failures += 1;
                    excluded.insert(block);
                }
            }
        }
        Ok(())
    }

    fn online_pass(
        &mut self,
        now: SimTime,
        mm: &mut MemoryManager,
        off_floor: u64,
        report: &mut TickReport,
    ) -> Result<()> {
        // On-line blocks until the free reserve is restored to the off
        // threshold (the hysteresis upper edge).
        while mm.meminfo().free_pages < off_floor {
            let Some(block) = mm.blocks().iter().find(|b| !b.online).map(|b| b.index) else {
                break; // everything already on-line
            };
            self.wake_groups_for_block(now, block)?;
            let latency = mm.online_block(block)?;
            self.stats.online_events += 1;
            self.stats.hotplug_time += latency;
            report.onlined += 1;
        }
        Ok(())
    }

    /// Demand-driven on-lining: an allocation of `needed_pages` could not
    /// be satisfied, so the allocating task blocks while the daemon
    /// on-lines enough blocks (plus the hysteresis reserve). Returns the
    /// number of blocks on-lined; the caller retries its allocation.
    ///
    /// # Errors
    ///
    /// Propagates memory-manager errors that indicate caller bugs.
    pub fn handle_allocation_stall(
        &mut self,
        now: SimTime,
        mm: &mut MemoryManager,
        needed_pages: u64,
    ) -> Result<u32> {
        let mut onlined = 0u32;
        // Record the stall up front: a pass that wakes nothing (everything
        // already on-line, quarantined, or failed) is still a stall the
        // policy must answer for.
        self.stats.allocation_stalls += 1;
        self.adapt(true); // an allocation stall is trouble for the policy
        let target = {
            let info = mm.meminfo();
            let floor = (self.current_off_thr * info.installed_pages as f64) as u64;
            needed_pages + floor
        };
        while mm.meminfo().free_pages < target {
            let Some(block) = mm.blocks().iter().find(|b| !b.online).map(|b| b.index) else {
                break;
            };
            self.wake_groups_for_block(now, block)?;
            let latency = mm.online_block(block)?;
            self.stats.online_events += 1;
            self.stats.hotplug_time += latency;
            onlined += 1;
        }
        if onlined == 0 {
            self.stats.stalls_unserved += 1;
        }
        Ok(onlined)
    }

    /// Wakes every sub-array group a block about to be on-lined belongs to,
    /// polling the ready bit before `online_pages()` (§4.2). Under the
    /// shared-sense-amp neighbour constraint the buddy of each woken group
    /// must also leave deep power-down: once this block is on-line its
    /// groups receive traffic, and a powered-down buddy would be missing
    /// the sense amplifiers that traffic needs (§6.1).
    fn wake_groups_for_block(&mut self, now: SimTime, block: usize) -> Result<()> {
        for g in self.map.groups_of_block(block)? {
            let mut wake = vec![g];
            if self.cfg.neighbor_constraint {
                wake.push(self.map.sense_amp_buddy(g));
            }
            for g in wake {
                if self.registers.is_down(g) {
                    // An injected wake failure costs a full exit latency
                    // and forces a retry, bounded by the retry budget: the
                    // final attempt always succeeds, because a block about
                    // to receive traffic MUST leave deep power-down (§6.1
                    // safety is not negotiable under faults).
                    let mut attempts = 0u32;
                    loop {
                        attempts += 1;
                        let failed = attempts <= self.retry.max_retries
                            && self
                                .faults
                                .as_mut()
                                .is_some_and(|f| f.should_fire(FaultSite::BuddyWakeFail));
                        self.stats.hotplug_time += DEEP_PD_EXIT;
                        if !failed {
                            break;
                        }
                        self.stats.buddy_wake_failures += 1;
                        self.stats.retries += 1;
                    }
                    self.registers.set(g, false, now)?;
                }
            }
        }
        Ok(())
    }

    /// After off-lining, move every fully-off-lined group into deep
    /// power-down (honouring the shared-sense-amp neighbour constraint).
    fn update_registers_after_offline(&mut self, now: SimTime, mm: &MemoryManager) -> Result<()> {
        let offline_flags: Vec<bool> = mm.blocks().iter().map(|b| !b.online).collect();
        // The managed geometry may be smaller than the whole machine (the
        // paper manages a movablecore region); map only the managed prefix.
        let managed = self.map.blocks().min(offline_flags.len());
        let flags = &offline_flags[..managed];
        if flags.len() != self.map.blocks() {
            return Ok(()); // geometry mismatch: register programming skipped
        }
        let fully = self.map.fully_offline_groups(flags);
        for g in 0..self.map.groups() {
            let group = SubArrayGroup::new(g);
            if !fully[g as usize] || self.registers.is_down(group) {
                continue;
            }
            let ok = if self.cfg.neighbor_constraint {
                let buddy = self.map.sense_amp_buddy(group);
                fully.get(buddy.index()).copied().unwrap_or(false)
            } else {
                true
            };
            if ok {
                let entered = self.try_enter_deep_pd(group, now)?;
                // A fully-off-lined buddy that was previously blocked by this
                // group can now power down too.
                if entered && self.cfg.neighbor_constraint {
                    let buddy = self.map.sense_amp_buddy(group);
                    if fully.get(buddy.index()).copied().unwrap_or(false) {
                        self.try_enter_deep_pd(buddy, now)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Attempts to move one group into deep power-down, honouring the
    /// group's quarantine and degraded state. Returns whether the group
    /// is down afterwards.
    ///
    /// Failure handling: an injected MRS NACK quarantines the group with
    /// exponential backoff; [`RetryPolicy::degrade_after`] consecutive
    /// NACKs degrade it permanently to shallow power-down (it keeps its
    /// clock-gated savings but stops oscillating on a flaky MRS path).
    ///
    /// # Errors
    ///
    /// Propagates register-file errors (out-of-range groups are caller
    /// bugs).
    fn try_enter_deep_pd(&mut self, group: SubArrayGroup, now: SimTime) -> Result<bool> {
        if self.registers.is_down(group) {
            return Ok(true);
        }
        let Some(rec) = self.recovery.get(group.index()).copied() else {
            return Ok(false);
        };
        if rec.degraded || now < rec.quarantined_until {
            return Ok(false);
        }
        if rec.consecutive_nacks > 0 {
            // Quarantine expired: this attempt is a retry.
            self.stats.retries += 1;
        }
        let nack = self
            .faults
            .as_mut()
            .is_some_and(|f| f.should_fire(FaultSite::DeepPdEntryNack));
        if nack {
            self.stats.deep_pd_nacks += 1;
            let rec = &mut self.recovery[group.index()];
            rec.consecutive_nacks += 1;
            if rec.consecutive_nacks >= self.retry.degrade_after {
                rec.degraded = true;
            } else {
                rec.quarantined_until = now + self.retry.backoff_after(rec.consecutive_nacks);
            }
            return Ok(false);
        }
        self.recovery[group.index()].consecutive_nacks = 0;
        self.registers.set(group, true, now)?;
        if self
            .faults
            .as_mut()
            .is_some_and(|f| f.should_fire(FaultSite::MrsAckDelay))
        {
            self.stats.hotplug_time += MRS_ACK_DELAY;
            self.stats.mrs_ack_delays += 1;
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SelectorPolicy;
    use gd_mmsim::{MmConfig, PageKind};

    /// 256 MB managed as 16 blocks of 16 MB and 16 groups of 16 MB.
    fn setup(cfg: GreenDimmConfig) -> (Daemon, MemoryManager) {
        let mm = MemoryManager::new(MmConfig::small_test()).unwrap();
        let map = GroupMap::new(256 << 20, 16, 16 << 20).unwrap();
        (Daemon::new(cfg, map), mm)
    }

    #[test]
    fn idle_memory_gets_offlined_to_reserve() {
        let (mut d, mut mm) = setup(GreenDimmConfig::paper_default());
        // Entirely free machine: the daemon drains free memory down to the
        // 10% reserve (plus one block of slack) over a few ticks.
        for s in 0..20 {
            d.tick(SimTime::from_secs(s), &mut mm).unwrap();
        }
        let info = mm.meminfo();
        let reserve = (0.10 * info.installed_pages as f64) as u64;
        assert!(info.free_pages >= reserve);
        assert!(
            info.free_pages <= reserve + 2 * mm.block_pages(),
            "free {} should be near reserve {reserve}",
            info.free_pages
        );
        assert!(mm.offline_block_count() >= 12);
        // Deep power-down engaged for fully-off-lined groups.
        assert!(d.deep_pd_fraction() > 0.5);
    }

    #[test]
    fn allocation_pressure_triggers_onlining() {
        let (mut d, mut mm) = setup(GreenDimmConfig::paper_default());
        for s in 0..20 {
            d.tick(SimTime::from_secs(s), &mut mm).unwrap();
        }
        let offlined = mm.offline_block_count();
        assert!(offlined > 0);
        // Consume nearly all free memory.
        let free = mm.meminfo().free_pages;
        mm.allocate(free - 100, PageKind::UserMovable).unwrap();
        d.tick(SimTime::from_secs(30), &mut mm).unwrap();
        assert!(
            mm.offline_block_count() < offlined,
            "daemon must on-line blocks under pressure"
        );
        assert!(d.stats.online_events > 0);
        // Free memory restored to the off-threshold reserve.
        let info = mm.meminfo();
        assert!(info.free_pages >= (0.09 * info.installed_pages as f64) as u64);
    }

    #[test]
    fn neighbor_constraint_delays_deep_pd() {
        let mut cfg = GreenDimmConfig::paper_default();
        cfg.neighbor_constraint = true;
        cfg.max_attempts_per_tick = 1; // offline one block per tick
        let (mut d, mut mm) = setup(cfg);
        // After the first tick exactly one block (group) is off-line; its
        // buddy is not, so no group may power down yet.
        d.tick(SimTime::from_secs(0), &mut mm).unwrap();
        assert_eq!(mm.offline_block_count(), 1);
        assert_eq!(d.registers().down_count(), 0);
        // The selector walks down from the top, so the second tick off-lines
        // the buddy (15 then 14 form the pair {14,15}).
        d.tick(SimTime::from_secs(1), &mut mm).unwrap();
        assert_eq!(mm.offline_block_count(), 2);
        assert_eq!(d.registers().down_count(), 2);
    }

    #[test]
    fn without_neighbor_constraint_single_group_powers_down() {
        let mut cfg = GreenDimmConfig::paper_default();
        cfg.neighbor_constraint = false;
        cfg.max_attempts_per_tick = 1;
        let (mut d, mut mm) = setup(cfg);
        d.tick(SimTime::from_secs(0), &mut mm).unwrap();
        assert_eq!(d.registers().down_count(), 1);
    }

    #[test]
    fn onlining_wakes_sense_amp_buddy_group() {
        let (mut d, mut mm) = setup(GreenDimmConfig::paper_default());
        for s in 0..20 {
            d.tick(SimTime::from_secs(s), &mut mm).unwrap();
        }
        assert!(
            d.registers().down_count() >= 4,
            "need deep-PD groups to test"
        );
        // Pressure calibrated so the on-line pass restores exactly ONE
        // block: a single block of a buddy pair comes back on-line, which is
        // the case where forgetting to wake the buddy group breaks §6.1.
        let info = mm.meminfo();
        let on_floor = (0.05 * info.installed_pages as f64) as u64;
        mm.allocate(info.free_pages - (on_floor - 300), PageKind::UserMovable)
            .unwrap();
        d.tick(SimTime::from_secs(30), &mut mm).unwrap();
        assert!(d.stats.online_events > 0);
        // §6.1 safety: every group still in deep power-down must have a
        // fully-off-lined sense-amp buddy — an on-lined block whose buddy
        // group stayed down would receive traffic without sense amps.
        let offline: Vec<bool> = mm.blocks().iter().map(|b| !b.online).collect();
        let fully = d.map.fully_offline_groups(&offline[..d.map.blocks()]);
        for g in 0..d.map.groups() {
            let group = SubArrayGroup::new(g);
            if d.registers().is_down(group) {
                let buddy = d.map.sense_amp_buddy(group);
                assert!(
                    fully.get(buddy.index()).copied().unwrap_or(false),
                    "group {g} is down but its buddy has an on-line block"
                );
            }
        }
    }

    #[test]
    fn free_policy_never_fails() {
        let (mut d, mut mm) = setup(GreenDimmConfig::paper_default());
        mm.allocate(10_000, PageKind::UserMovable).unwrap();
        for s in 0..30 {
            d.tick(SimTime::from_secs(s), &mut mm).unwrap();
        }
        assert_eq!(d.stats.failures(), 0, "FreeRemovableFirst cannot fail");
    }

    #[test]
    fn random_policy_fails_on_kernel_blocks() {
        let cfg = GreenDimmConfig::paper_default().with_selector(SelectorPolicy::Random);
        let mm_cfg = MmConfig {
            transient_fail_prob: 0.3,
            ..MmConfig::small_test()
        };
        let mut mm = MemoryManager::new(mm_cfg).unwrap();
        let map = GroupMap::new(256 << 20, 16, 16 << 20).unwrap();
        let mut d = Daemon::new(cfg, map);
        // Kernel pages in the low blocks; app pages spread further up.
        mm.allocate(2000, PageKind::KernelUnmovable).unwrap();
        mm.allocate(20_000, PageKind::UserMovable).unwrap();
        for s in 0..50 {
            d.tick(SimTime::from_secs(s), &mut mm).unwrap();
        }
        assert!(
            d.stats.failures() > 0,
            "random selection must hit busy/used blocks"
        );
    }

    #[test]
    fn adaptive_threshold_backs_off_after_stall() {
        let mut cfg = GreenDimmConfig::paper_default();
        cfg.adaptive_off_thr = true;
        let (mut d, mut mm) = setup(cfg);
        for s in 0..20 {
            d.tick(SimTime::from_secs(s), &mut mm).unwrap();
        }
        assert!(
            (d.effective_off_thr() - 0.10).abs() < 1e-9,
            "quiet: stays at base"
        );
        // Provoke a stall: everything off-lined, then a large allocation.
        d.handle_allocation_stall(SimTime::from_secs(30), &mut mm, 30_000)
            .unwrap();
        assert!(d.effective_off_thr() > 0.10, "stall raises the reserve");
        // Long quiet period decays back toward the configured value.
        let raised = d.effective_off_thr();
        for s in 31..200 {
            d.tick(SimTime::from_secs(s), &mut mm).unwrap();
        }
        assert!(d.effective_off_thr() < raised);
    }

    #[test]
    fn adaptive_threshold_disabled_by_default() {
        let (mut d, mut mm) = setup(GreenDimmConfig::paper_default());
        d.handle_allocation_stall(SimTime::from_secs(1), &mut mm, 1_000)
            .unwrap();
        assert_eq!(d.effective_off_thr(), 0.10);
    }

    #[test]
    fn stall_is_recorded_even_when_nothing_can_be_woken() {
        let (mut d, mut mm) = setup(GreenDimmConfig::paper_default());
        // Everything is already on-line: the pass wakes nothing, but the
        // stall must still be counted.
        let onlined = d
            .handle_allocation_stall(SimTime::from_secs(1), &mut mm, 1_000)
            .unwrap();
        assert_eq!(onlined, 0);
        assert_eq!(d.stats.allocation_stalls, 1);
        assert_eq!(d.stats.stalls_unserved, 1);
        // A served stall counts only as a stall.
        for s in 0..20 {
            d.tick(SimTime::from_secs(s), &mut mm).unwrap();
        }
        let onlined = d
            .handle_allocation_stall(SimTime::from_secs(30), &mut mm, 30_000)
            .unwrap();
        assert!(onlined > 0);
        assert_eq!(d.stats.allocation_stalls, 2);
        assert_eq!(d.stats.stalls_unserved, 1);
    }

    #[test]
    fn deep_pd_nack_quarantines_then_degrades() {
        use gd_faults::{FaultPlan, FaultTrigger, RetryPolicy};
        let (mut d, mut mm) = setup(GreenDimmConfig::paper_default());
        d.set_fault_injector(
            FaultPlan::none()
                .with(FaultSite::DeepPdEntryNack, FaultTrigger::Prob(1.0))
                .build(1),
        );
        d.set_retry_policy(RetryPolicy {
            degrade_after: 3,
            ..RetryPolicy::paper_default()
        });
        for s in 0..40 {
            d.tick(SimTime::from_secs(s), &mut mm).unwrap();
        }
        // Every entry NACKs: blocks off-line but no group ever powers
        // down, and persistent failures degrade groups permanently.
        assert!(mm.offline_block_count() > 0);
        assert_eq!(d.registers().down_count(), 0);
        assert!(d.stats.deep_pd_nacks > 0);
        assert!(d.degraded_groups() > 0);
        // Degraded groups are never re-attempted.
        let nacks_at_degrade = d.stats.deep_pd_nacks;
        let before = d.degraded_groups();
        for s in 40..80 {
            d.tick(SimTime::from_secs(s), &mut mm).unwrap();
        }
        if d.degraded_groups() == before && before as usize == d.group_map().groups() as usize {
            assert_eq!(d.stats.deep_pd_nacks, nacks_at_degrade);
        }
    }

    #[test]
    fn quarantine_blocks_reentry_until_backoff_expires() {
        use gd_faults::{FaultPlan, FaultTrigger};
        let (mut d, mut mm) = setup(GreenDimmConfig::paper_default());
        // NACK exactly the first entry attempt, then behave.
        d.set_fault_injector(
            FaultPlan::none()
                .with(FaultSite::DeepPdEntryNack, FaultTrigger::OneShot(1))
                .build(1),
        );
        for s in 0..20 {
            d.tick(SimTime::from_secs(s), &mut mm).unwrap();
        }
        assert_eq!(d.stats.deep_pd_nacks, 1);
        assert!(d.stats.retries > 0, "the NACKed group must be retried");
        assert!(
            d.registers().down_count() > 0,
            "after backoff the group enters deep-PD"
        );
        // §6.1 invariant still holds for every down group.
        let obs = crate::verify::group_observations(&d, &mm);
        for o in obs {
            if o.down {
                assert!(o.fully_offline, "down group with on-line blocks");
            }
        }
        // The quarantine window was respected: entry happened at or after
        // quarantined_until.
        for g in 0..d.group_map().groups() {
            let group = SubArrayGroup::new(g);
            if let (Some(since), Some(rec)) = (d.registers().down_since(group), d.recovery(group)) {
                assert!(since >= rec.quarantined_until);
            }
        }
    }

    #[test]
    fn buddy_wake_failures_retry_but_always_wake() {
        use gd_faults::{FaultPlan, FaultTrigger};
        let (mut d, mut mm) = setup(GreenDimmConfig::paper_default());
        for s in 0..20 {
            d.tick(SimTime::from_secs(s), &mut mm).unwrap();
        }
        assert!(d.registers().down_count() > 0);
        d.set_fault_injector(
            FaultPlan::none()
                .with(FaultSite::BuddyWakeFail, FaultTrigger::Prob(1.0))
                .build(1),
        );
        let baseline = d.stats.hotplug_time;
        d.handle_allocation_stall(SimTime::from_secs(30), &mut mm, 30_000)
            .unwrap();
        assert!(d.stats.buddy_wake_failures > 0);
        assert!(d.stats.retries >= d.stats.buddy_wake_failures);
        assert!(d.stats.hotplug_time > baseline);
        // Safety: every group backing an on-line block is awake.
        let offline: Vec<bool> = mm.blocks().iter().map(|b| !b.online).collect();
        let fully = d.map.fully_offline_groups(&offline[..d.map.blocks()]);
        for g in 0..d.map.groups() {
            let group = SubArrayGroup::new(g);
            if d.registers().is_down(group) {
                assert!(fully[g as usize], "woken block left its group down");
            }
        }
    }

    #[test]
    fn mrs_ack_delay_charges_latency() {
        use gd_faults::{FaultPlan, FaultTrigger};
        let (mut d, mut mm) = setup(GreenDimmConfig::paper_default());
        let (mut plain, mut mm2) = setup(GreenDimmConfig::paper_default());
        d.set_fault_injector(
            FaultPlan::none()
                .with(FaultSite::MrsAckDelay, FaultTrigger::Prob(1.0))
                .build(1),
        );
        for s in 0..20 {
            d.tick(SimTime::from_secs(s), &mut mm).unwrap();
            plain.tick(SimTime::from_secs(s), &mut mm2).unwrap();
        }
        assert!(d.stats.mrs_ack_delays > 0);
        assert_eq!(d.registers().down_count(), plain.registers().down_count());
        assert_eq!(
            d.stats.hotplug_time,
            plain.stats.hotplug_time + MRS_ACK_DELAY * d.stats.mrs_ack_delays
        );
    }

    #[test]
    fn hotplug_time_accumulates() {
        let (mut d, mut mm) = setup(GreenDimmConfig::paper_default());
        for s in 0..20 {
            d.tick(SimTime::from_secs(s), &mut mm).unwrap();
        }
        let events = d.stats.hotplug_events();
        assert!(events > 0);
        // Free-block off-linings cost 1.58 ms each.
        assert!(d.stats.hotplug_time >= SimTime::from_micros(1_580) * events);
    }
}
