//! The memory controller's sub-array deep power-down register file, as seen
//! by the GreenDIMM daemon.
//!
//! One bit per sub-array group — 64 bits regardless of channel/rank count
//! (§4.3) versus 128 bits for per-bank PASR masks on the same platform.
//! Exit is asynchronous: after clearing a bit the daemon polls a ready bit
//! before calling `online_pages()`; the deep power-down exit takes no
//! longer than the 18 ns power-down exit because the DLL stays on.

use gd_types::ids::SubArrayGroup;
use gd_types::{GdError, Result, SimTime};

/// Deep power-down exit latency (= power-down exit; the DLL stays on).
pub const DEEP_PD_EXIT: SimTime = SimTime::from_nanos(18);

/// The bit-vector register with per-group power-down state and residency
/// accounting for the power model.
#[derive(Debug, Clone)]
pub struct GroupRegisterFile {
    bits: Vec<bool>,
    since: Vec<SimTime>,
    accum: Vec<SimTime>,
    /// Pending exit completion times (the "ready" bit source).
    ready_at: Vec<SimTime>,
}

impl GroupRegisterFile {
    /// Creates a register file for `groups` sub-array groups, all powered.
    pub fn new(groups: u32) -> Self {
        GroupRegisterFile {
            bits: vec![false; groups as usize],
            since: vec![SimTime::ZERO; groups as usize],
            accum: vec![SimTime::ZERO; groups as usize],
            ready_at: vec![SimTime::ZERO; groups as usize],
        }
    }

    /// Number of groups.
    pub fn groups(&self) -> u32 {
        self.bits.len() as u32
    }

    /// Whether a group is in deep power-down.
    pub fn is_down(&self, g: SubArrayGroup) -> bool {
        self.bits.get(g.index()).copied().unwrap_or(false)
    }

    /// Number of groups currently down.
    pub fn down_count(&self) -> usize {
        self.bits.iter().filter(|b| **b).count()
    }

    /// Fraction of groups currently down (feeds the power-gating model).
    pub fn down_fraction(&self) -> f64 {
        self.down_count() as f64 / self.bits.len().max(1) as f64
    }

    /// Sets a group's bit at time `now`. Entering is immediate; clearing
    /// starts the exit and arms the ready bit [`DEEP_PD_EXIT`] later.
    ///
    /// # Errors
    ///
    /// Returns [`GdError::NotFound`] for an out-of-range group.
    pub fn set(&mut self, g: SubArrayGroup, down: bool, now: SimTime) -> Result<()> {
        let i = g.index();
        if i >= self.bits.len() {
            return Err(GdError::NotFound(g.to_string()));
        }
        if self.bits[i] == down {
            return Ok(());
        }
        if down {
            self.since[i] = now;
        } else {
            self.accum[i] += now.saturating_sub(self.since[i]);
            self.ready_at[i] = now + DEEP_PD_EXIT;
        }
        self.bits[i] = down;
        Ok(())
    }

    /// When the group is down, the time it entered deep power-down
    /// (drives the quarantine invariant in `gd-verify`).
    pub fn down_since(&self, g: SubArrayGroup) -> Option<SimTime> {
        let i = g.index();
        (self.bits.get(i) == Some(&true)).then(|| self.since[i])
    }

    /// Polls the ready bit: true when the group has completed its exit and
    /// can serve requests (the daemon polls this before `online_pages()`).
    pub fn is_ready(&self, g: SubArrayGroup, now: SimTime) -> bool {
        !self.is_down(g) && now >= self.ready_at[g.index()]
    }

    /// Total time group `g` has spent in deep power-down up to `now`.
    pub fn residency(&self, g: SubArrayGroup, now: SimTime) -> SimTime {
        let i = g.index();
        let mut t = self.accum[i];
        if self.bits[i] {
            t += now.saturating_sub(self.since[i]);
        }
        t
    }

    /// Mean down-residency fraction across all groups over `[0, now]`.
    pub fn mean_down_fraction(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO || self.bits.is_empty() {
            return 0.0;
        }
        let total: f64 = (0..self.groups())
            .map(|g| self.residency(SubArrayGroup::new(g), now).as_secs_f64())
            .sum();
        total / (now.as_secs_f64() * self.bits.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_64_bits_for_any_platform() {
        // §4.3: GreenDIMM needs one bit per group regardless of topology.
        let r = GroupRegisterFile::new(64);
        assert_eq!(r.groups(), 64);
        assert!(r.groups() < gd_power::subarray::PASR_REGISTER_BITS_REFERENCE);
    }

    #[test]
    fn set_and_residency() {
        let mut r = GroupRegisterFile::new(8);
        let g = SubArrayGroup::new(3);
        r.set(g, true, SimTime::from_secs(10)).unwrap();
        assert!(r.is_down(g));
        assert_eq!(r.down_count(), 1);
        assert_eq!(
            r.residency(g, SimTime::from_secs(25)),
            SimTime::from_secs(15)
        );
        r.set(g, false, SimTime::from_secs(30)).unwrap();
        assert_eq!(
            r.residency(g, SimTime::from_secs(100)),
            SimTime::from_secs(20)
        );
    }

    #[test]
    fn exit_arms_ready_bit() {
        let mut r = GroupRegisterFile::new(4);
        let g = SubArrayGroup::new(0);
        let t0 = SimTime::from_secs(1);
        r.set(g, true, t0).unwrap();
        r.set(g, false, t0 + SimTime::from_secs(1)).unwrap();
        let exit_start = t0 + SimTime::from_secs(1);
        assert!(!r.is_ready(g, exit_start));
        assert!(r.is_ready(g, exit_start + DEEP_PD_EXIT));
    }

    #[test]
    fn idempotent_sets() {
        let mut r = GroupRegisterFile::new(4);
        let g = SubArrayGroup::new(1);
        r.set(g, true, SimTime::from_secs(1)).unwrap();
        r.set(g, true, SimTime::from_secs(2)).unwrap(); // no-op
        r.set(g, false, SimTime::from_secs(3)).unwrap();
        assert_eq!(
            r.residency(g, SimTime::from_secs(10)),
            SimTime::from_secs(2)
        );
    }

    #[test]
    fn mean_down_fraction() {
        let mut r = GroupRegisterFile::new(2);
        r.set(SubArrayGroup::new(0), true, SimTime::ZERO).unwrap();
        // Group 0 down for the whole window, group 1 never: mean 0.5.
        let f = r.mean_down_fraction(SimTime::from_secs(10));
        assert!((f - 0.5).abs() < 1e-9);
        assert_eq!(r.down_fraction(), 0.5);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut r = GroupRegisterFile::new(2);
        assert!(r.set(SubArrayGroup::new(5), true, SimTime::ZERO).is_err());
    }
}
