//! GreenDIMM daemon configuration.

use gd_types::SimTime;

/// How `block_selector()` picks off-lining candidates (§5.2, Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectorPolicy {
    /// The paper's production policy: only *movable* blocks whose pages are
    /// all unused — off-lining never migrates data and never fails.
    #[default]
    FreeRemovableFirst,
    /// Prefer blocks whose sysfs `removable` flag is set (may still hold
    /// used movable pages, so migration and EAGAIN are possible). Fig. 8's
    /// improved series.
    RemovableFirst,
    /// Pick candidate blocks uniformly at random (may hit unmovable pages:
    /// EBUSY; or used pages: migrations and EAGAIN). Fig. 8's baseline.
    Random,
}

/// Daemon tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreenDimmConfig {
    /// `memory_usage_monitor()` period. The paper uses 1 s: shorter periods
    /// add overhead without off-lining more.
    pub monitor_period: SimTime,
    /// Off-line free memory above this fraction of installed capacity
    /// (paper: 10 % + α; below 10 % swapping destroys performance).
    pub off_thr: f64,
    /// On-line memory when free memory falls below this fraction.
    pub on_thr: f64,
    /// Candidate selection policy.
    pub selector: SelectorPolicy,
    /// Enforce the shared-sense-amplifier constraint: a sub-array group
    /// enters deep power-down only when its neighbouring group is also
    /// off-lined (§6.1).
    pub neighbor_constraint: bool,
    /// Maximum off-lining attempts per monitor tick.
    pub max_attempts_per_tick: u32,
    /// React immediately when the KSM daemon completes a merge pass instead
    /// of waiting for the next monitor period (§5.3).
    pub ksm_fast_path: bool,
    /// Extension beyond the paper: adapt `off_thr` at run time — raise the
    /// reserve when off-lining failures or allocation stalls occur (backing
    /// off an over-aggressive setting), decay back toward the configured
    /// value during quiet periods.
    pub adaptive_off_thr: bool,
    /// RNG seed (used by the Random selector).
    pub seed: u64,
}

impl GreenDimmConfig {
    /// The paper's configuration.
    pub fn paper_default() -> Self {
        GreenDimmConfig {
            monitor_period: SimTime::from_secs(1),
            off_thr: 0.10,
            on_thr: 0.05,
            selector: SelectorPolicy::FreeRemovableFirst,
            neighbor_constraint: true,
            max_attempts_per_tick: 16,
            ksm_fast_path: true,
            adaptive_off_thr: false,
            seed: 1,
        }
    }

    /// Returns a copy with a different selector policy.
    pub fn with_selector(mut self, selector: SelectorPolicy) -> Self {
        self.selector = selector;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for GreenDimmConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GreenDimmConfig::default();
        assert_eq!(c.monitor_period, SimTime::from_secs(1));
        assert_eq!(c.off_thr, 0.10);
        assert!(c.on_thr < c.off_thr, "hysteresis requires on_thr < off_thr");
        assert_eq!(c.selector, SelectorPolicy::FreeRemovableFirst);
        assert!(c.neighbor_constraint);
    }

    #[test]
    fn builder_helpers() {
        let c = GreenDimmConfig::default()
            .with_selector(SelectorPolicy::Random)
            .with_seed(9);
        assert_eq!(c.selector, SelectorPolicy::Random);
        assert_eq!(c.seed, 9);
    }
}
