//! `block_selector()`: choosing which memory block to off-line.

use crate::config::SelectorPolicy;
use gd_mmsim::MemoryManager;
use gd_types::rng::StdRng;
use std::collections::HashSet;

/// Picks an off-lining candidate under `policy`, skipping `excluded`
/// blocks (failed earlier this tick). Returns `None` when no candidate
/// remains.
pub fn pick_candidate(
    mm: &MemoryManager,
    policy: SelectorPolicy,
    excluded: &HashSet<usize>,
    rng: &mut StdRng,
) -> Option<usize> {
    let blocks = mm.blocks();
    let online: Vec<_> = blocks
        .iter()
        .filter(|b| b.online && !excluded.contains(&b.index))
        .collect();
    if online.is_empty() {
        return None;
    }
    match policy {
        SelectorPolicy::FreeRemovableFirst => {
            // Only movable blocks with no used pages: off-lining never
            // migrates and never fails. Take the highest-index one so the
            // allocator's first-fit packing is undisturbed.
            online
                .iter()
                .rev()
                .find(|b| b.removable && b.used_pages == 0)
                .map(|b| b.index)
        }
        SelectorPolicy::RemovableFirst => {
            // Prefer removable blocks (their isolation cannot hit EBUSY),
            // picked uniformly among them — they may still hold used movable
            // pages, so migration and EAGAIN remain possible, which is why
            // the paper reports ~50 % fewer failures rather than zero.
            // Blocks with unmovable pages are a last resort.
            let removable: Vec<_> = online.iter().filter(|b| b.removable).collect();
            if removable.is_empty() {
                online.iter().min_by_key(|b| b.used_pages).map(|b| b.index)
            } else {
                Some(removable[rng.gen_range(0..removable.len())].index)
            }
        }
        SelectorPolicy::Random => {
            let i = rng.gen_range(0..online.len());
            Some(online[i].index)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_mmsim::{MmConfig, PageKind};
    use gd_types::rng::component_rng;

    fn setup() -> (MemoryManager, StdRng) {
        (
            MemoryManager::new(MmConfig::small_test()).unwrap(),
            component_rng(1, "selector-test"),
        )
    }

    #[test]
    fn free_policy_picks_highest_free_block() {
        let (mut mm, mut rng) = setup();
        mm.allocate(5000, PageKind::UserMovable).unwrap(); // fills low blocks
        let pick = pick_candidate(
            &mm,
            SelectorPolicy::FreeRemovableFirst,
            &HashSet::new(),
            &mut rng,
        );
        assert_eq!(pick, Some(mm.block_count() - 1));
    }

    #[test]
    fn free_policy_returns_none_when_all_blocks_used() {
        let (mut mm, mut rng) = setup();
        // One page in every block makes none fully free: spread by filling
        // almost everything.
        let total = mm.meminfo().total_pages;
        mm.allocate(total - 10, PageKind::UserMovable).unwrap();
        let pick = pick_candidate(
            &mm,
            SelectorPolicy::FreeRemovableFirst,
            &HashSet::new(),
            &mut rng,
        );
        assert_eq!(pick, None);
    }

    #[test]
    fn removable_first_avoids_kernel_blocks() {
        let (mut mm, mut rng) = setup();
        mm.allocate(100, PageKind::KernelUnmovable).unwrap(); // block 0
        let pick = pick_candidate(
            &mm,
            SelectorPolicy::RemovableFirst,
            &HashSet::new(),
            &mut rng,
        )
        .unwrap();
        assert_ne!(pick, 0, "must prefer a removable block");
    }

    #[test]
    fn random_respects_exclusions() {
        let (mut mm, mut rng) = setup();
        // Offline all but two blocks; exclude one of the remaining.
        for i in 0..mm.block_count() - 2 {
            mm.offline_block(i).unwrap().unwrap();
        }
        let n = mm.block_count();
        let excluded: HashSet<usize> = [n - 2].into_iter().collect();
        for _ in 0..20 {
            let pick = pick_candidate(&mm, SelectorPolicy::Random, &excluded, &mut rng).unwrap();
            assert_eq!(pick, n - 1);
        }
    }

    #[test]
    fn no_candidates_when_everything_excluded() {
        let (mm, mut rng) = setup();
        let excluded: HashSet<usize> = (0..mm.block_count()).collect();
        assert_eq!(
            pick_candidate(&mm, SelectorPolicy::Random, &excluded, &mut rng),
            None
        );
    }
}
