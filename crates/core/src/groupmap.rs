//! The mapping between OS memory blocks and DRAM sub-array groups.
//!
//! Because the sub-array index occupies the most significant physical
//! address bits under interleaving (see `gd_dram::addrmap`), memory block
//! `b` of size `block_bytes` covers a contiguous slice of the sub-array
//! group space. The paper sizes blocks to one, two, or four groups (§5.1);
//! Linux's default 128 MB block can also be *smaller* than one group, in
//! which case a group powers down only when every block inside it is
//! off-line.

use gd_types::ids::SubArrayGroup;
use gd_types::{GdError, Result};

/// Block ↔ sub-array-group geometry for a managed capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupMap {
    groups: u32,
    group_bytes: u64,
    block_bytes: u64,
    n_blocks: usize,
}

impl GroupMap {
    /// Builds a map for `managed_bytes` of capacity split into `groups`
    /// sub-array groups and blocks of `block_bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`GdError::InvalidConfig`] unless the managed capacity is an
    /// exact multiple of both sizes and one size divides the other.
    pub fn new(managed_bytes: u64, groups: u32, block_bytes: u64) -> Result<Self> {
        if groups == 0 || block_bytes == 0 || managed_bytes == 0 {
            return Err(GdError::InvalidConfig("zero-sized group map".into()));
        }
        if !managed_bytes.is_multiple_of(groups as u64) {
            return Err(GdError::InvalidConfig(format!(
                "managed capacity {managed_bytes} not divisible into {groups} groups"
            )));
        }
        let group_bytes = managed_bytes / groups as u64;
        if !managed_bytes.is_multiple_of(block_bytes) {
            return Err(GdError::InvalidConfig(format!(
                "managed capacity {managed_bytes} not divisible into {block_bytes}-byte blocks"
            )));
        }
        if !group_bytes.is_multiple_of(block_bytes) && !block_bytes.is_multiple_of(group_bytes) {
            return Err(GdError::InvalidConfig(format!(
                "block size {block_bytes} incommensurate with group size {group_bytes}"
            )));
        }
        Ok(GroupMap {
            groups,
            group_bytes,
            block_bytes,
            n_blocks: (managed_bytes / block_bytes) as usize,
        })
    }

    /// Number of sub-array groups.
    pub fn groups(&self) -> u32 {
        self.groups
    }

    /// Bytes per group.
    pub fn group_bytes(&self) -> u64 {
        self.group_bytes
    }

    /// Number of memory blocks.
    pub fn blocks(&self) -> usize {
        self.n_blocks
    }

    /// Sub-array groups covered by one memory block (≥ 1 when blocks are at
    /// least group-sized, e.g. the paper's 256/512 MB settings).
    pub fn groups_per_block(&self) -> u32 {
        (self.block_bytes / self.group_bytes).max(1) as u32
    }

    /// Memory blocks inside one group (≥ 1 when groups are at least
    /// block-sized).
    pub fn blocks_per_group(&self) -> u32 {
        (self.group_bytes / self.block_bytes).max(1) as u32
    }

    /// The groups whose address range intersects block `b`.
    pub fn groups_of_block(&self, block: usize) -> Result<Vec<SubArrayGroup>> {
        if block >= self.n_blocks {
            return Err(GdError::NotFound(format!("block {block}")));
        }
        let start = block as u64 * self.block_bytes;
        let end = start + self.block_bytes;
        let g0 = (start / self.group_bytes) as u32;
        let g1 = ((end - 1) / self.group_bytes) as u32;
        Ok((g0..=g1).map(SubArrayGroup::new).collect())
    }

    /// The blocks inside group `g`.
    pub fn blocks_of_group(&self, group: SubArrayGroup) -> Result<Vec<usize>> {
        if group.0 >= self.groups {
            return Err(GdError::NotFound(group.to_string()));
        }
        let start = group.0 as u64 * self.group_bytes;
        let end = start + self.group_bytes;
        let b0 = (start / self.block_bytes) as usize;
        let b1 = ((end - 1) / self.block_bytes) as usize;
        Ok((b0..=b1).collect())
    }

    /// Given per-block off-line flags, which groups are *fully* off-line
    /// (every block of the group is off-line) and therefore eligible for
    /// deep power-down.
    ///
    /// # Panics
    ///
    /// Panics if `block_offline.len()` differs from [`blocks`](Self::blocks).
    pub fn fully_offline_groups(&self, block_offline: &[bool]) -> Vec<bool> {
        assert_eq!(block_offline.len(), self.n_blocks, "flag vector size");
        (0..self.groups)
            .map(|g| {
                self.blocks_of_group(SubArrayGroup::new(g))
                    .expect("in range")
                    .iter()
                    .all(|b| block_offline[*b])
            })
            .collect()
    }

    /// The sense-amp buddy of a group: two consecutive sub-arrays share a
    /// sense amplifier, so deep power-down of group `g` additionally
    /// requires `buddy(g)` to be off-lined (§6.1).
    pub fn sense_amp_buddy(&self, group: SubArrayGroup) -> SubArrayGroup {
        SubArrayGroup::new(group.0 ^ 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_block_per_group() {
        // The paper's 8 GB managed region with 128 MB blocks: 64 groups.
        let m = GroupMap::new(8 << 30, 64, 128 << 20).unwrap();
        assert_eq!(m.blocks(), 64);
        assert_eq!(m.groups_per_block(), 1);
        assert_eq!(m.blocks_per_group(), 1);
        assert_eq!(m.groups_of_block(5).unwrap(), vec![SubArrayGroup::new(5)]);
    }

    #[test]
    fn block_spans_multiple_groups() {
        // 512 MB blocks = 4 sub-array groups each.
        let m = GroupMap::new(8 << 30, 64, 512 << 20).unwrap();
        assert_eq!(m.blocks(), 16);
        assert_eq!(m.groups_per_block(), 4);
        let gs = m.groups_of_block(1).unwrap();
        assert_eq!(gs, (4..8).map(SubArrayGroup::new).collect::<Vec<_>>());
    }

    #[test]
    fn group_spans_multiple_blocks() {
        // 256 GB with 1 GB blocks and 4 GB groups: 4 blocks per group.
        let m = GroupMap::new(256 << 30, 64, 1 << 30).unwrap();
        assert_eq!(m.blocks(), 256);
        assert_eq!(m.blocks_per_group(), 4);
        assert_eq!(
            m.blocks_of_group(SubArrayGroup::new(1)).unwrap(),
            vec![4, 5, 6, 7]
        );
    }

    #[test]
    fn fully_offline_requires_all_blocks() {
        let m = GroupMap::new(256 << 30, 64, 1 << 30).unwrap();
        let mut flags = vec![false; 256];
        flags[4] = true;
        flags[5] = true;
        flags[6] = true;
        assert!(!m.fully_offline_groups(&flags)[1]);
        flags[7] = true;
        assert!(m.fully_offline_groups(&flags)[1]);
        assert!(!m.fully_offline_groups(&flags)[0]);
    }

    #[test]
    fn buddy_pairs() {
        let m = GroupMap::new(8 << 30, 64, 128 << 20).unwrap();
        assert_eq!(m.sense_amp_buddy(SubArrayGroup::new(0)).0, 1);
        assert_eq!(m.sense_amp_buddy(SubArrayGroup::new(1)).0, 0);
        assert_eq!(m.sense_amp_buddy(SubArrayGroup::new(62)).0, 63);
    }

    #[test]
    fn incommensurate_sizes_rejected() {
        assert!(GroupMap::new(8 << 30, 64, 192 << 20).is_err());
        assert!(GroupMap::new(8 << 30, 0, 128 << 20).is_err());
    }
}
