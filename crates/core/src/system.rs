//! High-level convenience API: run one benchmark under GreenDIMM and get a
//! full report (runtime, overhead, energy). The figure-generation harness
//! in `gd-bench` composes the lower-level pieces directly; this type is the
//! "five-minute quickstart" entry point.

use crate::config::GreenDimmConfig;
use crate::cosim::{EpochSim, FootprintDriver};
use crate::daemon::{Daemon, DaemonStats};
use crate::groupmap::GroupMap;
use gd_dram::{LowPowerPolicy, MemorySystem};
use gd_mmsim::{MemoryManager, MmConfig, PageKind, PAGE_BYTES};
use gd_power::{memspec_for, ActivityProfile, MemSpec, PowerGating, SystemPowerModel};
use gd_types::config::DramConfig;
use gd_types::{Result, SimTime};
use gd_workloads::{by_name, estimate_runtime, AppProfile, TraceGenerator};

/// Calibrated per-event interference cost (seconds per on/off-lining event,
/// per MPKI, per GiB of footprint): covers migration interference and TLB
/// shootdowns that the raw hotplug latencies do not capture. Chosen so that
/// `mcf` with 128 MB blocks degrades by ~2.9 % as the paper measures, at
/// the paper's observed event rate (~0.5 events/s).
pub const INTERFERENCE_COEFF: f64 = 0.0006;

/// Fraction of installed capacity pre-allocated to the kernel (unmovable).
const KERNEL_RESERVED_FRACTION: f64 = 0.02;

/// Configuration of a [`GreenDimmSystem`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// DRAM organization/timing.
    pub dram: DramConfig,
    /// OS physical-memory configuration. Its capacity is the *managed*
    /// capacity (the paper manages a movablecore region smaller than the
    /// machine for the block-size studies).
    pub mm: MmConfig,
    /// Daemon configuration.
    pub gd: GreenDimmConfig,
    /// Requests to simulate in the cycle-level latency probe.
    pub probe_requests: usize,
    /// CPU utilization assumed for the system-power model while the
    /// benchmark runs.
    pub cpu_util: f64,
    /// When set, the co-simulation runs the standard invariant checkers
    /// ([`crate::verify::VerifyHarness`]) in the given mode;
    /// [`gd_verify::Mode::Strict`] turns any violation into an error.
    pub verify: Option<gd_verify::Mode>,
}

impl SystemConfig {
    /// A fast configuration for tests and the quickstart example: small
    /// DRAM, 256 MB managed memory, short probe.
    pub fn small_test() -> Self {
        SystemConfig {
            dram: DramConfig::small_test(),
            mm: MmConfig::small_test(),
            gd: GreenDimmConfig::paper_default(),
            probe_requests: 5_000,
            cpu_util: 0.5,
            verify: None,
        }
    }

    /// The paper's SPEC platform: 64 GB DDR4-2133, managed in 1 GB blocks
    /// (one sub-array group each).
    pub fn spec_64gb() -> Self {
        SystemConfig {
            dram: DramConfig::ddr4_2133_64gb(),
            mm: MmConfig::spec_64gb().with_block_bytes(1 << 30),
            gd: GreenDimmConfig::paper_default(),
            probe_requests: 30_000,
            cpu_util: 0.5,
            verify: None,
        }
    }

    /// Returns the configuration with invariant verification enabled in
    /// `mode` for the co-simulation phase.
    #[must_use]
    pub fn with_verify(mut self, mode: gd_verify::Mode) -> Self {
        self.verify = Some(mode);
        self
    }

    fn group_map(&self) -> Result<GroupMap> {
        GroupMap::new(
            self.mm.capacity_bytes,
            self.dram.org.subarray_groups(),
            self.mm.block_bytes,
        )
    }
}

/// Everything measured from one benchmark run.
#[derive(Debug, Clone)]
pub struct AppRunReport {
    /// Benchmark name.
    pub name: String,
    /// Execution time without GreenDIMM, seconds.
    pub baseline_runtime_s: f64,
    /// Execution time with GreenDIMM (including its overhead), seconds.
    pub runtime_s: f64,
    /// Relative execution-time increase caused by GreenDIMM (Figs. 7, 11).
    pub overhead_fraction: f64,
    /// DRAM energy over the run, joules.
    pub dram_energy_joules: f64,
    /// Whole-server energy over the run, joules.
    pub system_energy_joules: f64,
    /// Average DRAM power, watts.
    pub dram_power_w: f64,
    /// Time-averaged fraction of capacity off-lined.
    pub avg_offline_fraction: f64,
    /// Average read latency seen by the benchmark, memory cycles.
    pub avg_read_latency_cycles: f64,
    /// Daemon counters.
    pub daemon: DaemonStats,
}

/// The high-level system: DRAM simulator + power models + OS co-simulation
/// under the GreenDIMM daemon.
#[derive(Debug)]
pub struct GreenDimmSystem {
    cfg: SystemConfig,
    /// Generation-specific power/timing backend ([`gd_power::MemSpec`]):
    /// DDR4, DDR5, or LPDDR4-PASR, selected by `cfg.dram.kind`.
    power: Box<dyn MemSpec>,
    system_power: SystemPowerModel,
}

impl GreenDimmSystem {
    /// Builds a system.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (this is the
    /// convenience API; use the per-crate constructors for fallible setup).
    pub fn new(cfg: SystemConfig) -> Self {
        cfg.dram.validate().expect("valid DRAM config");
        cfg.group_map().expect("valid block/group geometry");
        GreenDimmSystem {
            power: memspec_for(cfg.dram).expect("valid power-model parameters"),
            system_power: SystemPowerModel::default(),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Runs one named benchmark (see [`gd_workloads::by_name`]) under
    /// GreenDIMM and reports runtime, overhead, and energy.
    ///
    /// # Panics
    ///
    /// Panics on an unknown benchmark name or on internal simulation errors
    /// (which indicate configuration bugs, not workload conditions).
    pub fn run_app(&mut self, name: &str, seed: u64) -> AppRunReport {
        let profile = by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
        self.run_profile(&profile, seed).expect("co-simulation")
    }

    /// Runs an arbitrary profile.
    ///
    /// # Errors
    ///
    /// Returns simulation-setup errors (invalid geometry, address range).
    pub fn run_profile(&mut self, profile: &AppProfile, seed: u64) -> Result<AppRunReport> {
        // 1. Cycle-level latency probe under interleaving.
        let mut probe = MemorySystem::new(self.cfg.dram, LowPowerPolicy::srf_default())?;
        let mut gen = TraceGenerator::new(profile.clone(), seed);
        let footprint_cap = self.cfg.dram.total_capacity_bytes();
        let trace: Vec<_> = gen
            .take(self.cfg.probe_requests)
            .into_iter()
            .map(|mut r| {
                r.addr %= footprint_cap;
                r
            })
            .collect();
        let stats = probe.run_trace(trace)?;
        let avg_latency = stats.read_latency.mean().unwrap_or(60.0);

        // 2. Runtime from the MLP-aware CPU model.
        let est = estimate_runtime(profile, avg_latency, self.power.peak_transfers_per_s());
        let baseline_runtime_s = est.seconds;

        // 3. Epoch co-simulation of the daemon against the footprint.
        let mut mm = MemoryManager::new(self.cfg.mm.with_seed(seed))?;
        let kernel_pages = (mm.meminfo().installed_pages as f64 * KERNEL_RESERVED_FRACTION) as u64;
        mm.allocate(kernel_pages.max(1), PageKind::KernelUnmovable)?;
        let daemon = Daemon::new(self.cfg.gd.with_seed(seed), self.cfg.group_map()?);
        let mut sim = EpochSim::new(mm, daemon, None);
        if let Some(mode) = self.cfg.verify {
            sim.enable_verification(mode);
        }
        sim.settle(120)?;

        let mut fp = FootprintDriver::new();
        let managed_bytes = self.cfg.mm.capacity_bytes;
        let peak_pages = profile.footprint_bytes().min(managed_bytes * 8 / 10) / PAGE_BYTES;
        let epochs = (baseline_runtime_s.ceil() as u64).clamp(10, 3_600);
        let mut offline_sum = 0.0;
        let mut deep_pd_sum = 0.0;
        for t in 0..epochs {
            let frac = profile.footprint_fraction_at(t as f64 * baseline_runtime_s / epochs as f64);
            let target = (peak_pages as f64 * frac) as u64;
            // Growth past on-line capacity stalls on demand-driven
            // on-lining (charged to the overhead model via hotplug_time).
            let _ = sim.set_footprint(&mut fp, target);
            sim.step(SimTime::from_secs(1))?;
            offline_sum += sim.offline_fraction();
            deep_pd_sum += sim.deep_pd_fraction();
        }
        let avg_offline_fraction = offline_sum / epochs as f64;
        let avg_deep_pd_fraction = deep_pd_sum / epochs as f64;
        let daemon_stats = sim.daemon.stats;

        // 4. Overhead: raw hotplug time + calibrated interference + monitor.
        let interference_s = INTERFERENCE_COEFF
            * daemon_stats.hotplug_events() as f64
            * profile.mpki.max(0.1)
            * (profile.footprint_bytes() as f64 / (1u64 << 30) as f64);
        let monitor_s = 0.001 * epochs as f64; // 1 ms of a core per tick
        let overhead_s = daemon_stats.hotplug_time.as_secs_f64() + interference_s + monitor_s;
        let runtime_s = baseline_runtime_s + overhead_s;
        let overhead_fraction = overhead_s / baseline_runtime_s;

        // 5. Energy integration with deep power-down gating.
        let activity = ActivityProfile {
            bandwidth_util: est.bandwidth_util,
            read_fraction: profile.read_fraction,
            act_per_access: 1.0 - profile.row_locality,
            active_standby: 0.6,
            precharge_standby: 0.4,
            power_down: 0.0,
            self_refresh: 0.0,
        };
        let gating = PowerGating::deep_pd(avg_deep_pd_fraction);
        let dram_power_w = self.power.analytic_power_w(&activity, &gating);
        let dram_energy_joules = dram_power_w * runtime_s;
        let system_energy_joules =
            self.system_power
                .system_energy_j(dram_power_w, self.cfg.cpu_util, runtime_s);

        Ok(AppRunReport {
            name: profile.name.to_string(),
            baseline_runtime_s,
            runtime_s,
            overhead_fraction,
            dram_energy_joules,
            system_energy_joules,
            dram_power_w,
            avg_offline_fraction,
            avg_read_latency_cycles: avg_latency,
            daemon: daemon_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_runs_mcf() {
        let mut sys = GreenDimmSystem::new(SystemConfig::small_test());
        let report = sys.run_app("libquantum", 42);
        assert!(report.dram_energy_joules > 0.0);
        assert!(report.system_energy_joules > report.dram_energy_joules);
        assert!(report.runtime_s >= report.baseline_runtime_s);
        assert!(report.avg_read_latency_cycles > 0.0);
    }

    #[test]
    fn small_footprint_app_offlines_most_memory() {
        let mut sys = GreenDimmSystem::new(SystemConfig::small_test());
        // povray's 30 MB footprint in 256 MB managed memory: most of the
        // capacity should be off-lined throughout.
        let report = sys.run_app("povray", 1);
        assert!(
            report.avg_offline_fraction > 0.5,
            "offline fraction {}",
            report.avg_offline_fraction
        );
    }

    #[test]
    fn overhead_is_small() {
        let mut sys = GreenDimmSystem::new(SystemConfig::small_test());
        let report = sys.run_app("libquantum", 3);
        assert!(
            report.overhead_fraction < 0.05,
            "overhead {}",
            report.overhead_fraction
        );
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        GreenDimmSystem::new(SystemConfig::small_test()).run_app("not-a-bench", 1);
    }

    #[test]
    fn strict_verification_passes_full_run() {
        let cfg = SystemConfig::small_test().with_verify(gd_verify::Mode::Strict);
        let mut sys = GreenDimmSystem::new(cfg);
        // Any invariant violation would abort run_profile with an error,
        // which run_app escalates to a panic.
        let report = sys.run_app("mcf", 7);
        assert!(report.dram_energy_joules > 0.0);
    }
}
