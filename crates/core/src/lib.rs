//! GreenDIMM: OS-assisted DRAM power management with a sub-array
//! granularity power-down state — the paper's core contribution.
//!
//! The pieces map one-to-one onto the paper's §4:
//!
//! * [`groupmap`] — the interleaving-agnostic power-management unit: memory
//!   blocks ↔ sub-array groups spanning every channel, rank, and bank
//!   (§4.1, Fig. 5);
//! * [`daemon`] — `memory_usage_monitor()` and `block_selector()` driving
//!   the kernel's memory on/off-lining (§4.2, §5.2);
//! * [`registers`] — the 64-bit deep power-down register file in the memory
//!   controller (§4.3);
//! * [`selector`] — candidate-selection policies incl. the `removable`
//!   optimization (Fig. 8);
//! * [`cosim`] — the epoch-level co-simulation engine for system-scale
//!   experiments;
//! * [`verify`] — the runtime invariant harness binding the [`gd_verify`]
//!   checkers to the co-simulation;
//! * [`system`] — the one-call convenience API.
//!
//! # Quickstart
//!
//! ```
//! use greendimm::{GreenDimmSystem, SystemConfig};
//!
//! let mut sys = GreenDimmSystem::new(SystemConfig::small_test());
//! let report = sys.run_app("libquantum", 42);
//! assert!(report.dram_energy_joules > 0.0);
//! assert!(report.overhead_fraction < 0.05); // ~1% in the paper
//! ```

pub mod config;
pub mod cosim;
pub mod daemon;
pub mod groupmap;
pub mod registers;
pub mod selector;
pub mod system;
pub mod verify;

pub use config::{GreenDimmConfig, SelectorPolicy};
pub use cosim::{EpochSim, FootprintDriver};
pub use daemon::{Daemon, DaemonStats, GroupRecovery, TickReport};
pub use groupmap::GroupMap;
pub use registers::{GroupRegisterFile, DEEP_PD_EXIT};
pub use system::{AppRunReport, GreenDimmSystem, SystemConfig};
pub use verify::{quarantine_observations, VerifyHarness};
