//! Runtime verification harness for the co-simulation.
//!
//! [`VerifyHarness`] bundles the workspace's standard invariant sets
//! ([`gd_verify`]) and knows how to derive the daemon-level observation
//! records from live simulator state. [`EpochSim`] drives it after every
//! daemon tick when verification is enabled:
//!
//! * memory-manager page accounting and buddy/block consistency,
//! * KSM logical-content conservation (when KSM runs),
//! * the §4.2 hysteresis contract on each monitor tick,
//! * the §4.3/§6.1 deep power-down safety properties of the register file
//!   against the hotplug state.
//!
//! In [`Mode::Record`] the harness only counts and stores violations (see
//! [`VerifyHarness::stats`]); in [`Mode::Strict`] the first violation
//! aborts the simulation with [`gd_types::GdError::InvalidState`].
//!
//! [`EpochSim`]: crate::cosim::EpochSim

use crate::daemon::Daemon;
use gd_ksm::Ksm;
use gd_mmsim::MemoryManager;
use gd_types::ids::SubArrayGroup;
use gd_types::Result;
use gd_verify::faults::QuarantineObs;
use gd_verify::obs::{DaemonTickObs, GroupStateObs};
use gd_verify::{Checker, CheckerStats, Mode, Violation};

/// The standard invariant sets, bound to the co-simulation's subjects.
#[derive(Debug)]
pub struct VerifyHarness {
    mode: Mode,
    mm: Checker<MemoryManager>,
    ksm: Checker<Ksm>,
    tick: Checker<DaemonTickObs>,
    group: Checker<[GroupStateObs]>,
    quarantine: Checker<[QuarantineObs]>,
}

impl VerifyHarness {
    /// Creates a harness running every standard invariant in `mode`.
    pub fn new(mode: Mode) -> Self {
        VerifyHarness {
            mode,
            mm: gd_verify::mm::standard_checker(mode),
            ksm: gd_verify::ksm::standard_checker(mode),
            tick: gd_verify::obs::tick_checker(mode),
            group: gd_verify::obs::group_checker(mode),
            quarantine: gd_verify::faults::quarantine_checker(mode),
        }
    }

    /// The failure mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Runs the state invariants (memory manager, KSM, group registers)
    /// without a tick observation — used after out-of-band state changes
    /// such as demand-driven on-lining.
    ///
    /// # Errors
    ///
    /// In [`Mode::Strict`], the first violation as
    /// [`gd_types::GdError::InvalidState`].
    pub fn check_state(
        &mut self,
        daemon: &Daemon,
        mm: &MemoryManager,
        ksm: Option<&Ksm>,
    ) -> Result<()> {
        self.mm.run(mm)?;
        if let Some(k) = ksm {
            self.ksm.run(k)?;
        }
        let groups = group_observations(daemon, mm);
        self.group.run(&groups[..])?;
        let quarantine = quarantine_observations(daemon);
        self.quarantine.run(&quarantine[..])?;
        Ok(())
    }

    /// Runs every invariant after one daemon monitor tick.
    ///
    /// # Errors
    ///
    /// In [`Mode::Strict`], the first violation as
    /// [`gd_types::GdError::InvalidState`].
    pub fn after_tick(
        &mut self,
        daemon: &Daemon,
        mm: &MemoryManager,
        ksm: Option<&Ksm>,
        obs: DaemonTickObs,
    ) -> Result<()> {
        self.tick.run(&obs)?;
        self.check_state(daemon, mm, ksm)
    }

    /// Total invariant evaluations across all checkers.
    pub fn checks_run(&self) -> u64 {
        self.stats().map(|s| s.checks_run).sum()
    }

    /// Total violations found across all checkers.
    pub fn violations(&self) -> u64 {
        self.stats().map(|s| s.violations).sum()
    }

    /// Every recorded violation, over all checkers in registration order.
    pub fn recorded(&self) -> Vec<&Violation> {
        self.stats().flat_map(|s| s.recorded.iter()).collect()
    }

    fn stats(&self) -> impl Iterator<Item = &CheckerStats> {
        [
            &self.mm.stats,
            &self.ksm.stats,
            &self.tick.stats,
            &self.group.stats,
            &self.quarantine.stats,
        ]
        .into_iter()
    }
}

/// Derives the per-group safety observations from live daemon + manager
/// state. Returns an empty vector when the managed geometry does not match
/// the block list (register programming is skipped in that case too).
pub fn group_observations(daemon: &Daemon, mm: &MemoryManager) -> Vec<GroupStateObs> {
    let map = daemon.group_map();
    let offline: Vec<bool> = mm.blocks().iter().map(|b| !b.online).collect();
    if offline.len() < map.blocks() {
        return Vec::new();
    }
    let fully = map.fully_offline_groups(&offline[..map.blocks()]);
    let regs = daemon.registers();
    let constraint = daemon.config().neighbor_constraint;
    (0..map.groups())
        .map(|g| {
            let group = SubArrayGroup::new(g);
            let buddy = map.sense_amp_buddy(group);
            GroupStateObs {
                group: group.index(),
                down: regs.is_down(group),
                fully_offline: fully.get(group.index()).copied().unwrap_or(false),
                buddy_down: regs.is_down(buddy),
                buddy_fully_offline: fully.get(buddy.index()).copied().unwrap_or(false),
                neighbor_constraint: constraint,
            }
        })
        .collect()
}

/// Derives the fault-recovery observations ([`QuarantineObs`]) from live
/// daemon state.
pub fn quarantine_observations(daemon: &Daemon) -> Vec<QuarantineObs> {
    let regs = daemon.registers();
    (0..daemon.group_map().groups())
        .map(|g| {
            let group = SubArrayGroup::new(g);
            let rec = daemon.recovery(group).copied().unwrap_or_default();
            QuarantineObs {
                group: group.index(),
                down: regs.is_down(group),
                down_since_ns: regs.down_since(group).map_or(0, |t| t.as_nanos()),
                quarantined_until_ns: rec.quarantined_until.as_nanos(),
                degraded: rec.degraded,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GreenDimmConfig;
    use crate::groupmap::GroupMap;
    use gd_mmsim::MmConfig;
    use gd_types::SimTime;

    fn setup() -> (Daemon, MemoryManager) {
        let mm = MemoryManager::new(MmConfig::small_test()).unwrap();
        let map = GroupMap::new(256 << 20, 16, 16 << 20).unwrap();
        (Daemon::new(GreenDimmConfig::paper_default(), map), mm)
    }

    #[test]
    fn settled_daemon_passes_strict_harness() {
        let (mut d, mut mm) = setup();
        let mut h = VerifyHarness::new(Mode::Strict);
        for s in 0..25 {
            let before = mm.meminfo().free_pages;
            let r = d.tick(SimTime::from_secs(s), &mut mm).unwrap();
            let info = mm.meminfo();
            let obs = DaemonTickObs {
                free_before: before,
                free_after: info.free_pages,
                total_after: info.total_pages,
                offlined_pages: u64::from(r.offlined) * mm.block_pages(),
                onlined_pages: u64::from(r.onlined) * mm.block_pages(),
                off_thr: d.effective_off_thr(),
                on_thr: d.config().on_thr,
            };
            h.after_tick(&d, &mm, None, obs).unwrap();
        }
        assert!(h.checks_run() > 0);
        assert_eq!(h.violations(), 0);
        assert!(h.recorded().is_empty());
    }

    #[test]
    fn faulted_run_passes_quarantine_invariants() {
        use gd_faults::{FaultPlan, FaultSite, FaultTrigger};
        let (mut d, mut mm) = setup();
        d.set_fault_injector(
            FaultPlan::none()
                .with(FaultSite::DeepPdEntryNack, FaultTrigger::Prob(0.5))
                .with(FaultSite::BuddyWakeFail, FaultTrigger::Prob(0.5))
                .build(11),
        );
        let mut h = VerifyHarness::new(Mode::Strict);
        for s in 0..60 {
            d.tick(SimTime::from_secs(s), &mut mm).unwrap();
            h.check_state(&d, &mm, None).unwrap();
        }
        assert!(d.stats.deep_pd_nacks > 0, "the fault plan must bite");
        assert_eq!(h.violations(), 0);
    }

    #[test]
    fn corrupted_register_state_is_caught() {
        let (mut d, mut mm) = setup();
        for s in 0..20 {
            d.tick(SimTime::from_secs(s), &mut mm).unwrap();
        }
        assert!(d.registers().down_count() > 0);
        // Bring a deep-powered-down block back on-line *behind the daemon's
        // back* — its group register bit is now stale (§4.3 violation).
        let stale = mm
            .blocks()
            .iter()
            .find(|b| !b.online)
            .map(|b| b.index)
            .unwrap();
        mm.online_block(stale).unwrap();
        let mut h = VerifyHarness::new(Mode::Record);
        h.check_state(&d, &mm, None).unwrap();
        assert!(h.violations() > 0);
        assert!(h
            .recorded()
            .iter()
            .any(|v| v.invariant == "group.deep-pd-requires-offline"));
        // Strict mode turns the same corruption into an error.
        let mut strict = VerifyHarness::new(Mode::Strict);
        assert!(strict.check_state(&d, &mm, None).is_err());
    }
}
