//! Epoch-level co-simulation: the daemon, the OS memory manager, and
//! (optionally) KSM advancing together in simulated time.
//!
//! Cycle simulation of a 24-hour VM trace is intractable, so the system
//! experiments advance in epochs (the daemon's 1 s monitor period): the
//! workload adjusts its footprint, KSM merges what its scan budget allows,
//! and the daemon on/off-lines blocks. DRAM power is integrated per epoch
//! from state-residency fractions.

use crate::daemon::{Daemon, TickReport};
use crate::verify::VerifyHarness;
use gd_ksm::Ksm;
use gd_mmsim::{AllocationId, MemoryManager, PageKind};
use gd_obs::{Telemetry, Value};
use gd_types::ids::SubArrayGroup;
use gd_types::{Result, SimTime};
use gd_verify::obs::DaemonTickObs;

/// Keeps one allocation sized to a moving target (an application footprint
/// following its profile dynamics).
#[derive(Debug, Default)]
pub struct FootprintDriver {
    alloc: Option<AllocationId>,
    pages: u64,
}

impl FootprintDriver {
    /// Creates an empty driver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current footprint in pages.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// The backing allocation handle, if any pages are held (used to
    /// register the region with KSM).
    pub fn allocation_id(&self) -> Option<AllocationId> {
        self.alloc
    }

    /// Grows or shrinks the allocation to `target` pages.
    ///
    /// # Errors
    ///
    /// Propagates [`gd_types::GdError::OutOfMemory`] when growth exceeds
    /// on-line free memory (the caller decides whether that models swapping
    /// or an on-lining stall).
    pub fn set_target(&mut self, mm: &mut MemoryManager, target: u64) -> Result<()> {
        if target == self.pages {
            return Ok(());
        }
        match self.alloc {
            None => {
                if target > 0 {
                    self.alloc = Some(mm.allocate(target, PageKind::UserMovable)?);
                    self.pages = target;
                }
            }
            Some(id) => {
                if target > self.pages {
                    mm.grow(id, target - self.pages)?;
                    self.pages = target;
                } else {
                    let freed = mm.shrink(id, self.pages - target)?;
                    self.pages = self.pages.saturating_sub(freed);
                    if self.pages == 0 {
                        self.alloc = None;
                    }
                }
            }
        }
        Ok(())
    }

    /// Releases everything.
    ///
    /// # Errors
    ///
    /// Propagates manager errors for unknown allocations (a driver bug).
    pub fn clear(&mut self, mm: &mut MemoryManager) -> Result<()> {
        if let Some(id) = self.alloc.take() {
            if self.pages > 0 {
                match mm.free(id) {
                    // KSM may have merged the allocation away entirely
                    // behind our back; nothing left to free is fine.
                    Err(gd_types::GdError::NotFound(_)) => {}
                    other => other?,
                }
            }
        }
        self.pages = 0;
        Ok(())
    }
}

/// The epoch engine.
#[derive(Debug)]
pub struct EpochSim {
    /// The simulated OS physical memory.
    pub mm: MemoryManager,
    /// The GreenDIMM daemon.
    pub daemon: Daemon,
    /// Optional KSM daemon.
    pub ksm: Option<Ksm>,
    /// Optional runtime invariant checking (see [`crate::verify`]).
    pub verify: Option<VerifyHarness>,
    /// Optional deterministic telemetry (see [`gd_obs`]). `None` keeps the
    /// hot path to a single branch per tick.
    pub telemetry: Option<Telemetry>,
    now: SimTime,
    next_monitor: SimTime,
}

impl EpochSim {
    /// Creates an epoch simulation at t = 0.
    pub fn new(mm: MemoryManager, daemon: Daemon, ksm: Option<Ksm>) -> Self {
        let next_monitor = daemon.config().monitor_period;
        EpochSim {
            mm,
            daemon,
            ksm,
            verify: None,
            telemetry: None,
            now: SimTime::ZERO,
            next_monitor,
        }
    }

    /// Enables deterministic telemetry: span events around every daemon
    /// tick and allocation stall, plus an end-of-run metrics harvest via
    /// [`export_telemetry`](Self::export_telemetry).
    pub fn enable_telemetry(&mut self) -> &mut Self {
        self.telemetry = Some(Telemetry::new());
        self
    }

    /// Enables runtime invariant checking with the standard invariant sets.
    /// In [`gd_verify::Mode::Strict`] the first violation aborts the
    /// simulation; in [`gd_verify::Mode::Record`] violations accumulate in
    /// [`verify`](Self::verify) for post-run inspection.
    pub fn enable_verification(&mut self, mode: gd_verify::Mode) -> &mut Self {
        self.verify = Some(VerifyHarness::new(mode));
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Fraction of installed capacity currently off-lined.
    pub fn offline_fraction(&self) -> f64 {
        let info = self.mm.meminfo();
        if info.installed_pages == 0 {
            0.0
        } else {
            info.offline_pages as f64 / info.installed_pages as f64
        }
    }

    /// Fraction of sub-array groups in deep power-down.
    pub fn deep_pd_fraction(&self) -> f64 {
        self.daemon.deep_pd_fraction()
    }

    /// Advances simulated time by `dt`, running KSM continuously and the
    /// daemon at its monitor period (plus the KSM fast path).
    ///
    /// # Errors
    ///
    /// Propagates daemon/manager errors that indicate bugs; kernel-level
    /// off-lining failures are handled internally.
    pub fn step(&mut self, dt: SimTime) -> Result<TickReport> {
        let target = self.now + dt;
        let mut aggregate = TickReport::default();
        while self.now < target {
            let next = self.next_monitor.min(target);
            let slice = next - self.now;
            let mut merged = 0;
            if let Some(ksm) = &mut self.ksm {
                merged = ksm.advance(slice, &mut self.mm)?;
            }
            self.now = next;
            let fast_path = merged > 0 && self.daemon.config().ksm_fast_path;
            if self.now >= self.next_monitor || fast_path {
                let free_before = self.mm.meminfo().free_pages;
                let hotplug_before = self.daemon.stats.hotplug_time;
                if let Some(t) = self.telemetry.as_mut() {
                    t.trace.span_open(self.now, "daemon.tick");
                }
                let r = self.daemon.tick(self.now, &mut self.mm)?;
                if let Some(t) = self.telemetry.as_mut() {
                    let info = self.mm.meminfo();
                    let latency = self.daemon.stats.hotplug_time - hotplug_before;
                    t.trace.span_close(
                        self.now,
                        "daemon.tick",
                        &[
                            ("free_before", Value::U64(free_before)),
                            ("free_after", Value::U64(info.free_pages)),
                            ("offlined", Value::U64(u64::from(r.offlined))),
                            ("onlined", Value::U64(u64::from(r.onlined))),
                            ("failures", Value::U64(u64::from(r.failures))),
                            ("off_thr", Value::F64(self.daemon.effective_off_thr())),
                            ("latency_us", Value::U64(latency.as_micros())),
                        ],
                    );
                    t.registry
                        .counter_add("daemon.tick_latency_us_total", latency.as_micros());
                }
                if let Some(v) = &mut self.verify {
                    let info = self.mm.meminfo();
                    let block_pages = self.mm.block_pages();
                    let obs = DaemonTickObs {
                        free_before,
                        free_after: info.free_pages,
                        total_after: info.total_pages,
                        offlined_pages: u64::from(r.offlined) * block_pages,
                        onlined_pages: u64::from(r.onlined) * block_pages,
                        off_thr: self.daemon.effective_off_thr(),
                        on_thr: self.daemon.config().on_thr,
                    };
                    v.after_tick(&self.daemon, &self.mm, self.ksm.as_ref(), obs)?;
                }
                aggregate.offlined += r.offlined;
                aggregate.onlined += r.onlined;
                aggregate.failures += r.failures;
                if self.now >= self.next_monitor {
                    self.next_monitor += self.daemon.config().monitor_period;
                }
            }
        }
        Ok(aggregate)
    }

    /// Advances simulated time by `dt` **without** running the daemon, KSM,
    /// or any workload — the epoch-replay engine's steady-state jump. The
    /// caller asserts that the skipped window is quiescent (no VM events,
    /// the last exact tick changed nothing); under that assumption the jump
    /// is loss-free for state and a bounded-error sample for counters:
    ///
    /// * register residency needs no catch-up — it is integrated lazily
    ///   from `now`, so deep power-down dwell accrues across the jump;
    /// * monitor deadlines are rolled past the window, and every skipped
    ///   tick is counted in [`DaemonStats::replayed_ticks`]
    ///   (`0` ⇒ the run was exact);
    /// * KSM scanning is *not* advanced: replay only engages once merging
    ///   has gone idle, which is exactly when skipping it is free.
    ///
    /// Returns the number of monitor ticks skipped.
    ///
    /// [`DaemonStats::replayed_ticks`]: crate::daemon::DaemonStats::replayed_ticks
    pub fn fast_forward(&mut self, dt: SimTime) -> u64 {
        let target = self.now + dt;
        let period = self.daemon.config().monitor_period;
        let mut skipped = 0u64;
        while self.next_monitor <= target {
            self.next_monitor += period;
            skipped += 1;
        }
        self.now = target;
        self.daemon.stats.replayed_ticks += skipped;
        skipped
    }

    /// Resizes a footprint, modelling the kernel's demand-driven on-lining
    /// when growth outruns on-line free memory: the allocation stalls, the
    /// daemon on-lines blocks, and the allocation retries.
    ///
    /// # Errors
    ///
    /// Returns [`gd_types::GdError::OutOfMemory`] only if the target exceeds
    /// even the fully on-lined capacity.
    pub fn set_footprint(&mut self, fp: &mut FootprintDriver, target: u64) -> Result<()> {
        match fp.set_target(&mut self.mm, target) {
            Ok(()) => Ok(()),
            Err(gd_types::GdError::OutOfMemory {
                requested_pages, ..
            }) => {
                let now = self.now;
                if let Some(t) = self.telemetry.as_mut() {
                    // The stall count itself lives in DaemonStats (recorded
                    // even when nothing can be woken) and is exported with
                    // the other daemon counters.
                    t.trace.span_open(now, "daemon.allocation_stall");
                }
                self.daemon
                    .handle_allocation_stall(now, &mut self.mm, requested_pages)?;
                if let Some(t) = self.telemetry.as_mut() {
                    t.trace.span_close(
                        now,
                        "daemon.allocation_stall",
                        &[("requested_pages", Value::U64(requested_pages))],
                    );
                }
                if let Some(v) = &mut self.verify {
                    // The stall path changed hotplug + register state outside
                    // a monitor tick; re-check the state invariants.
                    v.check_state(&self.daemon, &self.mm, self.ksm.as_ref())?;
                }
                fp.set_target(&mut self.mm, target)
            }
            Err(e) => Err(e),
        }
    }

    /// Harvests end-of-run metrics into the enabled telemetry sink under
    /// the dotted `scope` prefix: hotplug counters and meminfo gauges from
    /// the memory manager, KSM scan/merge counters and rates, daemon
    /// counters, and per-group deep power-down dwell (ns) from the register
    /// file. No-op when telemetry is disabled.
    pub fn export_telemetry(&mut self, scope: &str) {
        let Some(mut tele) = self.telemetry.take() else {
            return;
        };
        let now = self.now;
        self.mm.export_telemetry(&mut tele, scope);
        if let Some(ksm) = &self.ksm {
            ksm.export_telemetry(&mut tele, scope, now);
        }
        let s = self.daemon.stats;
        let reg = &mut tele.registry;
        reg.counter_add(&format!("{scope}.daemon.ticks"), s.ticks);
        reg.counter_add(&format!("{scope}.daemon.offline_events"), s.offline_events);
        reg.counter_add(&format!("{scope}.daemon.online_events"), s.online_events);
        reg.counter_add(&format!("{scope}.daemon.failures_ebusy"), s.failures_ebusy);
        reg.counter_add(
            &format!("{scope}.daemon.failures_eagain"),
            s.failures_eagain,
        );
        reg.counter_add(&format!("{scope}.daemon.failures"), s.failures());
        reg.counter_add(
            &format!("{scope}.daemon.hotplug_events"),
            s.hotplug_events(),
        );
        reg.counter_add(
            &format!("{scope}.daemon.allocation_stalls"),
            s.allocation_stalls,
        );
        reg.counter_add(
            &format!("{scope}.daemon.stalls_unserved"),
            s.stalls_unserved,
        );
        reg.counter_add(&format!("{scope}.daemon.deep_pd_nacks"), s.deep_pd_nacks);
        reg.counter_add(&format!("{scope}.daemon.retries"), s.retries);
        reg.counter_add(&format!("{scope}.daemon.mrs_ack_delays"), s.mrs_ack_delays);
        reg.counter_add(
            &format!("{scope}.daemon.buddy_wake_failures"),
            s.buddy_wake_failures,
        );
        reg.counter_add(
            &format!("{scope}.daemon.hotplug_time_us"),
            s.hotplug_time.as_micros(),
        );
        reg.counter_add(&format!("{scope}.daemon.replayed_ticks"), s.replayed_ticks);
        reg.gauge_set(
            &format!("{scope}.daemon.degraded_groups"),
            self.daemon.degraded_groups() as f64,
        );
        // Per-site fault counters from the daemon's injector (inactive
        // injectors export nothing).
        if let Some(f) = self.daemon.fault_injector() {
            f.export_telemetry(&mut tele, scope);
        }
        let reg = &mut tele.registry;
        let regs = self.daemon.registers();
        for g in 0..regs.groups() {
            let dwell = regs.residency(SubArrayGroup::new(g), now);
            if dwell > SimTime::ZERO {
                reg.residency_add_unit(
                    &format!("{scope}.daemon.deep_pd_dwell"),
                    &format!("g{g:02}"),
                    dwell.as_nanos(),
                    "ns",
                );
            }
        }
        reg.gauge_set(
            &format!("{scope}.daemon.mean_down_fraction"),
            regs.mean_down_fraction(now),
        );
        self.telemetry = Some(tele);
    }

    /// Runs the daemon with no workload until off-lining converges (steady
    /// state before an experiment starts), up to `max_secs`.
    ///
    /// # Errors
    ///
    /// Propagates [`step`](Self::step) errors.
    pub fn settle(&mut self, max_secs: u64) -> Result<()> {
        let mut last_offline = usize::MAX;
        for _ in 0..max_secs {
            self.step(SimTime::from_secs(1))?;
            let now_offline = self.mm.offline_block_count();
            if now_offline == last_offline {
                break;
            }
            last_offline = now_offline;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GreenDimmConfig;
    use crate::groupmap::GroupMap;
    use gd_mmsim::MmConfig;

    fn sim() -> EpochSim {
        let mm = MemoryManager::new(MmConfig::small_test()).unwrap();
        let map = GroupMap::new(256 << 20, 16, 16 << 20).unwrap();
        let daemon = Daemon::new(GreenDimmConfig::paper_default(), map);
        EpochSim::new(mm, daemon, None)
    }

    #[test]
    fn settle_reaches_reserve_steady_state() {
        let mut s = sim();
        s.settle(30).unwrap();
        assert!(s.offline_fraction() > 0.7, "{}", s.offline_fraction());
        let before = s.mm.offline_block_count();
        s.step(SimTime::from_secs(5)).unwrap();
        assert_eq!(s.mm.offline_block_count(), before, "steady state");
    }

    #[test]
    fn footprint_growth_triggers_onlining() {
        let mut s = sim();
        s.settle(30).unwrap();
        let mut fp = FootprintDriver::new();
        // Target 60% of installed capacity: far beyond the 10% reserve.
        let target = s.mm.meminfo().installed_pages * 6 / 10;
        // Growth may require on-lining first; grow in steps as an app would.
        let mut current = 0;
        for _ in 0..200 {
            let step_target = (current + 2000).min(target);
            if fp.set_target(&mut s.mm, step_target).is_ok() {
                current = step_target;
            }
            s.step(SimTime::from_secs(1)).unwrap();
            if current == target {
                break;
            }
        }
        assert_eq!(current, target, "growth must eventually succeed");
        assert!(s.daemon.stats.online_events > 0);
    }

    #[test]
    fn footprint_shrink_triggers_offlining() {
        let mut s = sim();
        let mut fp = FootprintDriver::new();
        let half = s.mm.meminfo().installed_pages / 2;
        fp.set_target(&mut s.mm, half).unwrap();
        s.step(SimTime::from_secs(5)).unwrap();
        let offline_with_app = s.mm.offline_block_count();
        fp.set_target(&mut s.mm, half / 8).unwrap();
        s.step(SimTime::from_secs(10)).unwrap();
        assert!(
            s.mm.offline_block_count() > offline_with_app,
            "freed memory must be off-lined"
        );
    }

    #[test]
    fn set_footprint_stalls_and_onlines_on_demand() {
        let mut s = sim();
        s.settle(30).unwrap();
        assert!(s.offline_fraction() > 0.5);
        let mut fp = FootprintDriver::new();
        // One shot far beyond the on-line reserve: must stall + on-line.
        let target = s.mm.meminfo().installed_pages * 7 / 10;
        s.set_footprint(&mut fp, target).unwrap();
        assert_eq!(fp.pages(), target);
        assert!(s.daemon.stats.online_events > 0);
    }

    #[test]
    fn driver_clear_releases_all() {
        let mut s = sim();
        let mut fp = FootprintDriver::new();
        fp.set_target(&mut s.mm, 5000).unwrap();
        assert_eq!(fp.pages(), 5000);
        fp.clear(&mut s.mm).unwrap();
        assert_eq!(fp.pages(), 0);
        assert_eq!(s.mm.meminfo().used_pages, 0);
    }

    #[test]
    fn telemetry_spans_every_tick_and_exports_identically() {
        let run = || {
            let mut s = sim();
            s.enable_telemetry();
            s.step(SimTime::from_secs(10)).unwrap();
            s.export_telemetry("test");
            s
        };
        let s = run();
        let tele = s.telemetry.as_ref().unwrap();
        // One span_open + span_close pair per monitor tick.
        assert_eq!(tele.trace.events().len() as u64, s.daemon.stats.ticks * 2);
        assert_eq!(
            tele.registry.counter("test.daemon.ticks"),
            s.daemon.stats.ticks
        );
        assert!(tele.registry.counter("test.mm.offline_success") > 0);
        // Deterministic by construction: two identical runs render the
        // same bytes.
        let again = run();
        assert_eq!(
            tele.render_jsonl("p"),
            again.telemetry.as_ref().unwrap().render_jsonl("p")
        );
    }

    #[test]
    fn fast_forward_skips_ticks_but_accrues_residency() {
        let mut exact = sim();
        exact.settle(30).unwrap();
        let mut replay = sim();
        replay.settle(30).unwrap();
        assert_eq!(
            exact.mm.offline_block_count(),
            replay.mm.offline_block_count()
        );
        let ticks_before = replay.daemon.stats.ticks;
        // A quiescent window: stepping exactly and fast-forwarding must
        // leave identical state (steady daemon does nothing) while the
        // replay run charges the window to replayed_ticks instead.
        exact.step(SimTime::from_secs(60)).unwrap();
        let skipped = replay.fast_forward(SimTime::from_secs(60));
        assert_eq!(skipped, 60);
        assert_eq!(replay.daemon.stats.ticks, ticks_before, "no daemon work");
        assert_eq!(replay.daemon.stats.replayed_ticks, 60);
        assert_eq!(exact.daemon.stats.replayed_ticks, 0);
        assert_eq!(replay.now(), exact.now());
        assert_eq!(
            exact.mm.offline_block_count(),
            replay.mm.offline_block_count()
        );
        // Deep-PD dwell is integrated lazily from `now`, so the jump
        // accrues the same residency as exact stepping.
        let g = gd_types::ids::SubArrayGroup::new(0);
        assert_eq!(
            exact.daemon.registers().residency(g, exact.now()),
            replay.daemon.registers().residency(g, replay.now()),
        );
        // The next monitor deadline rolled past the window: one more step
        // ticks exactly once.
        replay.step(SimTime::from_secs(1)).unwrap();
        assert_eq!(replay.daemon.stats.ticks, ticks_before + 1);
    }

    #[test]
    fn time_advances_and_monitor_fires_once_per_period() {
        let mut s = sim();
        s.step(SimTime::from_secs(10)).unwrap();
        assert_eq!(s.now(), SimTime::from_secs(10));
        assert_eq!(s.daemon.stats.ticks, 10);
    }
}
