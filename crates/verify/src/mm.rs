//! Invariants over the physical-memory simulator: page-accounting
//! conservation and buddy-allocator structural consistency.
//!
//! The conservation properties are stated over an [`MmSnapshot`] (a pure
//! data view) so tests can corrupt a snapshot to prove the checker fires;
//! the same invariants also run directly against a live
//! [`MemoryManager`]. [`BuddyConsistency`] needs allocator internals and
//! therefore only runs against the live manager (via
//! [`MemoryManager::audit`]).

use crate::{Invariant, Violation};
use gd_mmsim::{BlockInfo, MemInfo, MemoryManager};

/// A pure-data view of the memory manager's books.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MmSnapshot {
    /// The `/proc/meminfo` totals.
    pub meminfo: MemInfo,
    /// Every block's sysfs snapshot.
    pub blocks: Vec<BlockInfo>,
}

impl MmSnapshot {
    /// Captures the current state of `mm`.
    pub fn capture(mm: &MemoryManager) -> Self {
        MmSnapshot {
            meminfo: mm.meminfo(),
            blocks: mm.blocks(),
        }
    }
}

/// `/proc/meminfo` self-consistency: used + free == total (on-line), and
/// total + offline == installed. Pages may move between blocks and between
/// the on-line and off-line pools, but never appear or disappear.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeminfoConservation;

fn check_meminfo(info: &MemInfo, out: &mut Vec<Violation>) {
    if info.used_pages + info.free_pages != info.total_pages {
        out.push(Violation {
            invariant: "mm.meminfo-conservation",
            detail: format!(
                "used {} + free {} != online total {}",
                info.used_pages, info.free_pages, info.total_pages
            ),
        });
    }
    if info.total_pages + info.offline_pages != info.installed_pages {
        out.push(Violation {
            invariant: "mm.meminfo-conservation",
            detail: format!(
                "online {} + offline {} != installed {}",
                info.total_pages, info.offline_pages, info.installed_pages
            ),
        });
    }
}

impl Invariant<MmSnapshot> for MeminfoConservation {
    fn name(&self) -> &'static str {
        "mm.meminfo-conservation"
    }
    fn check(&self, subject: &MmSnapshot, out: &mut Vec<Violation>) {
        check_meminfo(&subject.meminfo, out);
    }
}

impl Invariant<MemoryManager> for MeminfoConservation {
    fn name(&self) -> &'static str {
        "mm.meminfo-conservation"
    }
    fn check(&self, subject: &MemoryManager, out: &mut Vec<Violation>) {
        check_meminfo(&subject.meminfo(), out);
    }
}

/// Per-block conservation, and agreement between the block population and
/// the meminfo totals: the block state machine (on-line ⇄ off-line, with
/// migration moving pages between blocks) never loses or invents a page.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockConservation;

fn check_blocks(info: &MemInfo, blocks: &[BlockInfo], out: &mut Vec<Violation>) {
    let mut online = (0u64, 0u64, 0u64); // (total, used, free)
    let mut offline_total = 0u64;
    for b in blocks {
        if b.used_pages + b.free_pages != b.total_pages {
            out.push(Violation {
                invariant: "mm.block-conservation",
                detail: format!(
                    "block {}: used {} + free {} != total {}",
                    b.index, b.used_pages, b.free_pages, b.total_pages
                ),
            });
        }
        if b.online {
            online.0 += b.total_pages;
            online.1 += b.used_pages;
            online.2 += b.free_pages;
        } else {
            offline_total += b.total_pages;
        }
    }
    if online != (info.total_pages, info.used_pages, info.free_pages) {
        out.push(Violation {
            invariant: "mm.block-conservation",
            detail: format!(
                "online blocks sum to (total, used, free) = {online:?} \
                 but meminfo says ({}, {}, {})",
                info.total_pages, info.used_pages, info.free_pages
            ),
        });
    }
    if offline_total != info.offline_pages {
        out.push(Violation {
            invariant: "mm.block-conservation",
            detail: format!(
                "offline blocks sum to {} pages but meminfo says {}",
                offline_total, info.offline_pages
            ),
        });
    }
}

impl Invariant<MmSnapshot> for BlockConservation {
    fn name(&self) -> &'static str {
        "mm.block-conservation"
    }
    fn check(&self, subject: &MmSnapshot, out: &mut Vec<Violation>) {
        check_blocks(&subject.meminfo, &subject.blocks, out);
    }
}

impl Invariant<MemoryManager> for BlockConservation {
    fn name(&self) -> &'static str {
        "mm.block-conservation"
    }
    fn check(&self, subject: &MemoryManager, out: &mut Vec<Violation>) {
        check_blocks(&subject.meminfo(), &subject.blocks(), out);
    }
}

/// Structural soundness of every block's buddy allocator and of the
/// allocation table (free chunks aligned, in range, non-overlapping; free
/// lists agree with the free-page counter; every recorded allocation chunk
/// exists with the right owner). Delegates to [`MemoryManager::audit`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BuddyConsistency;

impl Invariant<MemoryManager> for BuddyConsistency {
    fn name(&self) -> &'static str {
        "mm.buddy-consistency"
    }
    fn check(&self, subject: &MemoryManager, out: &mut Vec<Violation>) {
        if let Err(problems) = subject.audit() {
            for detail in problems {
                out.push(Violation {
                    invariant: "mm.buddy-consistency",
                    detail,
                });
            }
        }
    }
}

/// The standard invariant set over a live [`MemoryManager`].
pub fn standard_checker(mode: crate::Mode) -> crate::Checker<MemoryManager> {
    crate::Checker::new(mode)
        .with(Box::new(MeminfoConservation))
        .with(Box::new(BlockConservation))
        .with(Box::new(BuddyConsistency))
}

/// The conservation invariants over a captured [`MmSnapshot`].
pub fn snapshot_checker(mode: crate::Mode) -> crate::Checker<MmSnapshot> {
    crate::Checker::new(mode)
        .with(Box::new(MeminfoConservation))
        .with(Box::new(BlockConservation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;
    use gd_mmsim::{MmConfig, PageKind};

    fn mm() -> MemoryManager {
        MemoryManager::new(MmConfig::small_test()).unwrap()
    }

    #[test]
    fn live_manager_is_clean_through_hotplug_churn() {
        let mut m = mm();
        let mut checker = standard_checker(Mode::Strict);
        let a = m.allocate(3000, PageKind::UserMovable).unwrap();
        checker.run(&m).unwrap();
        m.offline_block(0).unwrap().unwrap();
        checker.run(&m).unwrap();
        m.online_block(0).unwrap();
        m.free(a).unwrap();
        checker.run(&m).unwrap();
        assert_eq!(checker.stats.violations, 0);
    }

    #[test]
    fn page_loss_fires_meminfo_conservation() {
        // Negative injection: a snapshot that "loses" pages (the class of
        // bug where a block drops frames during migration).
        let m = mm();
        let mut snap = MmSnapshot::capture(&m);
        snap.meminfo.free_pages -= 128;
        let mut checker = snapshot_checker(Mode::Record);
        let n = checker.run(&snap).unwrap();
        assert!(n >= 1, "page loss must be flagged");
        assert!(checker
            .stats
            .recorded
            .iter()
            .any(|v| v.invariant == "mm.meminfo-conservation"));
    }

    #[test]
    fn block_level_page_loss_fires_block_conservation() {
        let m = mm();
        let mut snap = MmSnapshot::capture(&m);
        snap.blocks[2].free_pages -= 1; // block books no longer balance
        let mut checker = snapshot_checker(Mode::Record);
        checker.run(&snap).unwrap();
        assert!(checker
            .stats
            .recorded
            .iter()
            .any(|v| v.invariant == "mm.block-conservation" && v.detail.contains("block 2")));
    }

    #[test]
    fn strict_mode_surfaces_injected_violation_as_error() {
        let m = mm();
        let mut snap = MmSnapshot::capture(&m);
        snap.meminfo.offline_pages += 4096; // pages appear from nowhere
        let mut checker = snapshot_checker(Mode::Strict);
        assert!(checker.run(&snap).is_err());
    }
}
