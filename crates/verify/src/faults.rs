//! Invariants over the daemon's fault-recovery behaviour.
//!
//! Like [`crate::obs`], these are stated over plain observation records
//! the co-simulation harness derives from live daemon state after every
//! tick, so this crate needs no dependency on the daemon itself:
//!
//! * [`QuarantineRespected`] — a group NACKed out of deep power-down must
//!   not re-enter within its backoff window;
//! * [`DegradedStaysShallow`] — a group degraded to shallow power-down
//!   never shows up in deep power-down again.

use crate::{Invariant, Violation};

/// One group's recovery state against its register bit, in nanoseconds
/// of sim time (observations are plain data; the harness converts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuarantineObs {
    /// Group index.
    pub group: usize,
    /// Deep power-down bit set in the register file.
    pub down: bool,
    /// When the group entered deep power-down (meaningful only when
    /// `down`).
    pub down_since_ns: u64,
    /// End of the group's quarantine window (0 when never quarantined).
    pub quarantined_until_ns: u64,
    /// The group has been permanently degraded to shallow power-down.
    pub degraded: bool,
}

/// A quarantined group must not re-enter deep power-down before its
/// backoff window expires: the whole point of the exponential backoff is
/// to stop hammering a flaky MRS path.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuarantineRespected;

impl Invariant<[QuarantineObs]> for QuarantineRespected {
    fn name(&self) -> &'static str {
        "faults.quarantine-respected"
    }

    fn check(&self, groups: &[QuarantineObs], out: &mut Vec<Violation>) {
        for g in groups {
            if g.down && g.down_since_ns < g.quarantined_until_ns {
                out.push(Violation {
                    invariant: self.name(),
                    detail: format!(
                        "group {} entered deep power-down at {} ns, inside its \
                         quarantine window ending at {} ns",
                        g.group, g.down_since_ns, g.quarantined_until_ns
                    ),
                });
            }
        }
    }
}

/// A degraded group has given up on deep power-down for the run; seeing
/// its bit set again means the degradation latch is broken.
#[derive(Debug, Clone, Copy, Default)]
pub struct DegradedStaysShallow;

impl Invariant<[QuarantineObs]> for DegradedStaysShallow {
    fn name(&self) -> &'static str {
        "faults.degraded-stays-shallow"
    }

    fn check(&self, groups: &[QuarantineObs], out: &mut Vec<Violation>) {
        for g in groups {
            if g.degraded && g.down {
                out.push(Violation {
                    invariant: self.name(),
                    detail: format!(
                        "group {} is degraded to shallow power-down but its deep \
                         power-down bit is set",
                        g.group
                    ),
                });
            }
        }
    }
}

/// The standard invariant set over fault-recovery observations.
pub fn quarantine_checker(mode: crate::Mode) -> crate::Checker<[QuarantineObs]> {
    crate::Checker::new(mode)
        .with(Box::new(QuarantineRespected))
        .with(Box::new(DegradedStaysShallow))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;

    fn clean() -> QuarantineObs {
        QuarantineObs {
            group: 3,
            down: true,
            down_since_ns: 10_000,
            quarantined_until_ns: 8_000,
            degraded: false,
        }
    }

    #[test]
    fn entry_after_backoff_passes() {
        let mut c = quarantine_checker(Mode::Strict);
        c.run(&[clean()][..]).unwrap();
        // An up group is never a violation, whatever its window.
        c.run(
            &[QuarantineObs {
                down: false,
                quarantined_until_ns: u64::MAX,
                ..clean()
            }][..],
        )
        .unwrap();
    }

    #[test]
    fn reentry_inside_window_fires() {
        let mut c = quarantine_checker(Mode::Record);
        let bad = QuarantineObs {
            down_since_ns: 5_000,
            ..clean()
        };
        assert_eq!(c.run(&[bad][..]).unwrap(), 1);
        assert_eq!(c.stats.recorded[0].invariant, "faults.quarantine-respected");
    }

    #[test]
    fn degraded_group_in_deep_pd_fires() {
        let mut c = quarantine_checker(Mode::Strict);
        let bad = QuarantineObs {
            degraded: true,
            ..clean()
        };
        let err = c.run(&[bad][..]).unwrap_err();
        assert!(err.to_string().contains("degraded"));
    }
}
