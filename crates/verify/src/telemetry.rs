//! Invariants over exported telemetry.
//!
//! Telemetry is only trustworthy if it accounts for all of simulated time:
//! a per-rank residency histogram whose bins do not sum to the elapsed
//! cycle count means a state transition was missed (or double-counted),
//! which would silently skew every power number derived from it.

use crate::{Checker, Invariant, Mode, Violation};
use gd_obs::Registry;

/// One residency histogram paired with the elapsed time it must cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResidencyObs {
    /// Histogram key (e.g. `"app.dram.ch0.rank1"`).
    pub key: String,
    /// Sum of the histogram's bins.
    pub total: u64,
    /// Elapsed sim time in the histogram's unit.
    pub elapsed: u64,
}

/// Residency bins must sum exactly to elapsed sim time.
pub struct ResidencySumsToElapsed;

impl Invariant<ResidencyObs> for ResidencySumsToElapsed {
    fn name(&self) -> &'static str {
        "telemetry.residency_sums_to_elapsed"
    }

    fn check(&self, subject: &ResidencyObs, out: &mut Vec<Violation>) {
        if subject.total != subject.elapsed {
            out.push(Violation {
                invariant: self.name(),
                detail: format!(
                    "{}: bins sum to {} but {} elapsed ({} unaccounted)",
                    subject.key,
                    subject.total,
                    subject.elapsed,
                    subject.elapsed.abs_diff(subject.total)
                ),
            });
        }
    }
}

/// The standard telemetry checker.
#[must_use]
pub fn standard_checker(mode: Mode) -> Checker<ResidencyObs> {
    Checker::new(mode).with(Box::new(ResidencySumsToElapsed))
}

/// Runs the residency invariant over every histogram in `registry` whose
/// key contains `key_filter` (empty matches all), against `elapsed` (in
/// the histograms' unit). Returns the number of violations found.
///
/// # Errors
///
/// In [`Mode::Strict`], the first violated histogram aborts with
/// [`gd_types::GdError::InvalidState`].
pub fn check_residencies(
    registry: &Registry,
    key_filter: &str,
    elapsed: u64,
    mode: Mode,
) -> gd_types::Result<usize> {
    let mut checker = standard_checker(mode);
    let mut total = 0;
    for (key, hist) in registry.residencies() {
        if !key_filter.is_empty() && !key.contains(key_filter) {
            continue;
        }
        total += checker.run(&ResidencyObs {
            key: key.to_string(),
            total: hist.total(),
            elapsed,
        })?;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_sum_passes() {
        let mut reg = Registry::default();
        reg.residency_add("r0", "A", 60);
        reg.residency_add("r0", "B", 40);
        assert_eq!(check_residencies(&reg, "", 100, Mode::Strict).unwrap(), 0);
    }

    #[test]
    fn shortfall_fires() {
        let mut reg = Registry::default();
        reg.residency_add("r0", "A", 99);
        let err = check_residencies(&reg, "", 100, Mode::Strict).unwrap_err();
        assert!(err.to_string().contains("1 unaccounted"), "{err}");
        assert_eq!(check_residencies(&reg, "", 100, Mode::Record).unwrap(), 1);
    }

    #[test]
    fn filter_limits_scope() {
        let mut reg = Registry::default();
        reg.residency_add("app.dram.rank0", "A", 100);
        reg.residency_add("other.thing", "A", 7);
        // Only the dram key is checked; the mismatched other key is skipped.
        assert_eq!(
            check_residencies(&reg, ".dram.", 100, Mode::Strict).unwrap(),
            0
        );
    }
}
