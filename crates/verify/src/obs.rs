//! Invariants over the GreenDIMM daemon's *observable* behaviour.
//!
//! The daemon lives in `greendimm` (which depends on this crate's
//! siblings), so its invariants are stated over plain observation records
//! that the co-simulation harness fills in after every monitoring tick:
//!
//! * [`DaemonTickObs`] — what one `memory_usage_monitor()` tick did to the
//!   free-page pool, checked by [`HysteresisInvariant`];
//! * [`GroupStateObs`] — one sub-array group's deep power-down bit against
//!   its hotplug state, checked by [`DeepPdRequiresOffline`] and
//!   [`NeighborPair`] (the paper's §4.3/§6.1 safety properties: traffic
//!   never reaches a deep-PD group, and a group only powers down when its
//!   sense-amplifier buddy holds no on-line data).

use crate::{Invariant, Violation};

/// What one daemon tick did, as observed by the harness.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DaemonTickObs {
    /// Free pages before the tick.
    pub free_before: u64,
    /// Free pages after the tick.
    pub free_after: u64,
    /// On-line pages after the tick.
    pub total_after: u64,
    /// Pages taken off-line by this tick.
    pub offlined_pages: u64,
    /// Pages brought on-line by this tick.
    pub onlined_pages: u64,
    /// The off-lining threshold in effect (fraction of on-line memory).
    pub off_thr: f64,
    /// The on-lining threshold (fraction of on-line memory).
    pub on_thr: f64,
}

/// The §4.2 hysteresis contract: thresholds are ordered, off-lining never
/// pushes free memory below the on-lining floor (which would trigger an
/// immediate re-online next tick), and one tick never moves in both
/// directions.
#[derive(Debug, Clone, Copy, Default)]
pub struct HysteresisInvariant;

impl Invariant<DaemonTickObs> for HysteresisInvariant {
    fn name(&self) -> &'static str {
        "daemon.hysteresis"
    }

    fn check(&self, t: &DaemonTickObs, out: &mut Vec<Violation>) {
        if t.off_thr < t.on_thr {
            out.push(Violation {
                invariant: self.name(),
                detail: format!(
                    "off_thr {} below on_thr {}: hysteresis band inverted",
                    t.off_thr, t.on_thr
                ),
            });
        }
        if t.offlined_pages > 0 {
            let on_floor = (t.total_after as f64 * t.on_thr).ceil() as u64;
            if t.free_after < on_floor {
                out.push(Violation {
                    invariant: self.name(),
                    detail: format!(
                        "off-lined {} pages leaving only {} free pages, below the \
                         on-lining floor of {on_floor}",
                        t.offlined_pages, t.free_after
                    ),
                });
            }
        }
        if t.offlined_pages > 0 && t.onlined_pages > 0 {
            out.push(Violation {
                invariant: self.name(),
                detail: format!(
                    "tick both off-lined {} and on-lined {} pages",
                    t.offlined_pages, t.onlined_pages
                ),
            });
        }
    }
}

/// One sub-array group's register bit against its hotplug state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupStateObs {
    /// Group index.
    pub group: usize,
    /// Deep power-down bit set in the register file.
    pub down: bool,
    /// Every memory block overlapping the group is off-line.
    pub fully_offline: bool,
    /// The sense-amplifier buddy group's deep power-down bit.
    pub buddy_down: bool,
    /// Every block overlapping the buddy group is off-line.
    pub buddy_fully_offline: bool,
    /// Whether the open-bitline buddy constraint is being enforced.
    pub neighbor_constraint: bool,
}

/// §4.3 safety: the OS may only set a group's deep power-down bit while
/// every overlapping memory block is off-line (otherwise live data loses
/// refresh), and on-lined memory implies the bit was cleared first.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeepPdRequiresOffline;

impl Invariant<[GroupStateObs]> for DeepPdRequiresOffline {
    fn name(&self) -> &'static str {
        "group.deep-pd-requires-offline"
    }

    fn check(&self, groups: &[GroupStateObs], out: &mut Vec<Violation>) {
        for g in groups {
            if g.down && !g.fully_offline {
                out.push(Violation {
                    invariant: self.name(),
                    detail: format!(
                        "group {} is in deep power-down while holding on-line memory",
                        g.group
                    ),
                });
            }
        }
    }
}

/// §6.1 open-bitline safety: with the neighbor constraint on, a group may
/// only stay in deep power-down while its sense-amplifier buddy group is
/// fully off-line (the buddy's accesses would otherwise need the powered
/// down group's sense amplifiers).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeighborPair;

impl Invariant<[GroupStateObs]> for NeighborPair {
    fn name(&self) -> &'static str {
        "group.neighbor-pair"
    }

    fn check(&self, groups: &[GroupStateObs], out: &mut Vec<Violation>) {
        for g in groups {
            if g.neighbor_constraint && g.down && !g.buddy_fully_offline {
                out.push(Violation {
                    invariant: self.name(),
                    detail: format!(
                        "group {} is in deep power-down but its sense-amp buddy \
                         still holds on-line memory",
                        g.group
                    ),
                });
            }
        }
    }
}

/// The standard invariant set over per-tick observations.
pub fn tick_checker(mode: crate::Mode) -> crate::Checker<DaemonTickObs> {
    crate::Checker::new(mode).with(Box::new(HysteresisInvariant))
}

/// The standard invariant set over group-state observations.
pub fn group_checker(mode: crate::Mode) -> crate::Checker<[GroupStateObs]> {
    crate::Checker::new(mode)
        .with(Box::new(DeepPdRequiresOffline))
        .with(Box::new(NeighborPair))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;

    fn clean_tick() -> DaemonTickObs {
        DaemonTickObs {
            free_before: 10_000,
            free_after: 6_000,
            total_after: 50_000,
            offlined_pages: 4_000,
            onlined_pages: 0,
            off_thr: 0.10,
            on_thr: 0.05,
        }
    }

    #[test]
    fn clean_tick_passes() {
        let mut c = tick_checker(Mode::Strict);
        c.run(&clean_tick()).unwrap();
    }

    #[test]
    fn offlining_below_on_floor_fires() {
        let mut c = tick_checker(Mode::Record);
        let t = DaemonTickObs {
            free_after: 2_000, // floor is 2_500
            ..clean_tick()
        };
        assert_eq!(c.run(&t).unwrap(), 1);
        assert!(c.stats.recorded[0].detail.contains("on-lining floor"));
    }

    #[test]
    fn inverted_thresholds_fire() {
        let mut c = tick_checker(Mode::Record);
        let t = DaemonTickObs {
            off_thr: 0.04,
            ..clean_tick()
        };
        assert!(c.run(&t).unwrap() >= 1);
    }

    #[test]
    fn bidirectional_tick_fires() {
        let mut c = tick_checker(Mode::Record);
        let t = DaemonTickObs {
            onlined_pages: 100,
            ..clean_tick()
        };
        assert_eq!(c.run(&t).unwrap(), 1);
    }

    fn group(idx: usize) -> GroupStateObs {
        GroupStateObs {
            group: idx,
            down: false,
            fully_offline: false,
            buddy_down: false,
            buddy_fully_offline: false,
            neighbor_constraint: true,
        }
    }

    #[test]
    fn deep_pd_with_online_memory_fires() {
        let mut c = group_checker(Mode::Record);
        let gs = vec![GroupStateObs {
            down: true,
            fully_offline: false,
            buddy_fully_offline: true,
            ..group(3)
        }];
        assert_eq!(c.run(&gs).unwrap(), 1);
        assert_eq!(
            c.stats.recorded[0].invariant,
            "group.deep-pd-requires-offline"
        );
    }

    #[test]
    fn neighbor_pair_violation_fires_only_under_constraint() {
        let bad = GroupStateObs {
            down: true,
            fully_offline: true,
            buddy_fully_offline: false,
            ..group(4)
        };
        let mut c = group_checker(Mode::Record);
        assert_eq!(c.run(&[bad][..]).unwrap(), 1);
        assert_eq!(c.stats.recorded[0].invariant, "group.neighbor-pair");
        let unconstrained = GroupStateObs {
            neighbor_constraint: false,
            ..bad
        };
        let mut c2 = group_checker(Mode::Strict);
        c2.run(&[unconstrained][..]).unwrap();
    }

    #[test]
    fn buddy_pair_both_down_is_legal() {
        let mut c = group_checker(Mode::Strict);
        let gs = vec![
            GroupStateObs {
                down: true,
                fully_offline: true,
                buddy_down: true,
                buddy_fully_offline: true,
                ..group(0)
            },
            GroupStateObs {
                down: true,
                fully_offline: true,
                buddy_down: true,
                buddy_fully_offline: true,
                ..group(1)
            },
        ];
        c.run(&gs).unwrap();
    }
}
