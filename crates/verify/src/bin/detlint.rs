//! detlint: the source-level determinism gate.
//!
//! Every simulation result in this workspace must be a pure function of
//! its configuration and seed. This scanner walks the workspace's Rust
//! sources and rejects the hazards that break that: entropy-seeded RNGs
//! and wall-clock reads. It mirrors the `disallowed_methods` clippy
//! configuration in `clippy.toml`, but runs without clippy (and also
//! catches hazards in code paths clippy cannot see, e.g. behind cfgs).
//!
//! A line may opt out with a trailing `detlint: allow(<tag>)` annotation;
//! the only intended use is the micro-benchmark harness, which measures
//! real elapsed time on purpose. Comment lines are ignored (prose may
//! discuss the hazards).
//!
//! Run with `cargo run -p gd-verify --bin detlint`; exits non-zero when
//! any hazard is found.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Hazard {
    /// The source pattern that trips the gate. Spliced with `concat!` so
    /// this scanner does not flag its own source.
    needle: &'static str,
    /// Why the pattern is banned.
    why: &'static str,
    /// Tag accepted in a `detlint: allow(<tag>)` annotation.
    tag: &'static str,
    /// When non-empty, the hazard only applies to files under one of these
    /// workspace-relative prefixes; empty applies everywhere.
    scope: &'static [&'static str],
}

const HAZARDS: &[Hazard] = &[
    Hazard {
        needle: concat!("from_", "entropy"),
        why: "entropy-seeded RNG; seed from the configuration instead",
        tag: "entropy",
        scope: &[],
    },
    Hazard {
        needle: concat!("thread_", "rng"),
        why: "thread-local entropy RNG; use gd_types::rng with a fixed seed",
        tag: "entropy",
        scope: &[],
    },
    Hazard {
        needle: concat!("SystemTime::", "now"),
        why: "wall-clock read; simulated time comes from SimTime",
        tag: "wallclock",
        scope: &[],
    },
    Hazard {
        needle: concat!("Instant::", "now"),
        why: "wall-clock read; use SimTime or cycle counters",
        tag: "instant",
        scope: &[],
    },
    // The sweep pool promises results in point-index order regardless of
    // thread schedule; a hash map in the results path would silently break
    // that (completion-order or hash-order output). The telemetry crate
    // additionally promises byte-identical rendering, so hash order is
    // banned there outright. Lookup-only maps may opt out line-by-line.
    Hazard {
        needle: concat!("Hash", "Map"),
        why: "nondeterministic iteration order in the sweep/figure/telemetry \
              path; collect into a Vec ordered by point index (or BTreeMap), \
              or annotate a lookup-only map",
        tag: "maporder",
        scope: &["crates/bench", "crates/obs"],
    },
];

/// Directories under the workspace root that hold Rust sources.
const ROOTS: &[&str] = &["crates", "src", "tests", "examples", "benches"];

struct Finding {
    file: PathBuf,
    line: usize,
    needle: &'static str,
    why: &'static str,
}

fn main() -> ExitCode {
    let workspace = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/verify has a workspace root two levels up")
        .to_path_buf();
    let mut files = Vec::new();
    for root in ROOTS {
        collect_rs_files(&workspace.join(root), &mut files);
    }
    files.sort();
    let mut findings = Vec::new();
    for file in &files {
        let Ok(text) = fs::read_to_string(file) else {
            continue;
        };
        let rel = file.strip_prefix(&workspace).unwrap_or(file);
        scan(rel, &text, &mut findings);
    }
    if findings.is_empty() {
        println!("detlint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!(
                "detlint: {}:{}: `{}` — {}",
                f.file.strip_prefix(&workspace).unwrap_or(&f.file).display(),
                f.line,
                f.needle,
                f.why
            );
        }
        println!(
            "detlint: {} hazard(s) in {} files scanned",
            findings.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Scans one file; `file` is workspace-relative so hazard scopes match.
fn scan(file: &Path, text: &str, out: &mut Vec<Finding>) {
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            continue; // prose may name the hazards
        }
        for hazard in HAZARDS {
            if !hazard.scope.is_empty() && !hazard.scope.iter().any(|s| file.starts_with(s)) {
                continue;
            }
            if !line.contains(hazard.needle) {
                continue;
            }
            if is_allowed(line, hazard.tag) {
                continue;
            }
            out.push(Finding {
                file: file.to_path_buf(),
                line: idx + 1,
                needle: hazard.needle,
                why: hazard.why,
            });
        }
    }
}

fn is_allowed(line: &str, tag: &str) -> bool {
    let marker = concat!("detlint: ", "allow");
    let Some(pos) = line.find(marker) else {
        return false;
    };
    let rest = &line[pos + marker.len()..];
    match rest.trim_start().strip_prefix('(') {
        // `detlint: allow(tag)` — only the named hazard is exempt.
        Some(args) => args
            .split(')')
            .next()
            .is_some_and(|list| list.split(',').any(|t| t.trim() == tag)),
        // Bare `detlint: allow` exempts the whole line.
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_each_hazard_class() {
        for h in HAZARDS {
            let src = format!("let x = {}();", h.needle);
            // Every scope prefix (or an arbitrary path for global hazards)
            // must trip the gate.
            let paths: Vec<String> = if h.scope.is_empty() {
                vec!["crates/x/src/x.rs".to_string()]
            } else {
                h.scope.iter().map(|s| format!("{s}/src/x.rs")).collect()
            };
            for path in paths {
                let mut findings = Vec::new();
                scan(Path::new(&path), &src, &mut findings);
                assert_eq!(
                    findings.len(),
                    1,
                    "hazard `{}` did not fire in {path}",
                    h.needle
                );
            }
        }
    }

    #[test]
    fn scoped_hazards_ignore_other_paths() {
        let needle = concat!("Hash", "Map");
        let src = format!("use std::collections::{needle};");
        let mut findings = Vec::new();
        scan(Path::new("crates/dram/src/x.rs"), &src, &mut findings);
        assert!(findings.is_empty(), "maporder fired outside its scope");
        scan(Path::new("crates/bench/src/x.rs"), &src, &mut findings);
        assert_eq!(findings.len(), 1, "maporder must fire inside crates/bench");
        scan(Path::new("crates/obs/src/x.rs"), &src, &mut findings);
        assert_eq!(findings.len(), 2, "maporder must fire inside crates/obs");
    }

    #[test]
    fn comments_and_annotations_are_exempt() {
        let hazard = concat!("thread_", "rng");
        let src =
            format!("// {hazard} is banned\nlet a = {hazard}(); // detlint: allow(entropy)\n");
        let mut findings = Vec::new();
        scan(Path::new("x.rs"), &src, &mut findings);
        assert!(findings.is_empty(), "{}", findings.len());
    }

    #[test]
    fn wrong_tag_does_not_exempt() {
        let hazard = concat!("thread_", "rng");
        let src = format!("let a = {hazard}(); // detlint: allow(instant)\n");
        let mut findings = Vec::new();
        scan(Path::new("x.rs"), &src, &mut findings);
        assert_eq!(findings.len(), 1);
    }
}
