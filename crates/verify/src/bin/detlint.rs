//! detlint: the fast pre-gate of the source-level determinism checks.
//!
//! Every simulation result in this workspace must be a pure function of
//! its configuration and seed. This scanner walks the workspace's Rust
//! sources and rejects the hazards that break that: entropy-seeded RNGs
//! and wall-clock reads. It mirrors the `disallowed_methods` clippy
//! configuration in `clippy.toml`, but runs without clippy (and also
//! catches hazards in code paths clippy cannot see, e.g. behind cfgs).
//!
//! detlint is deliberately a line-substring scanner: it finishes in
//! milliseconds and needs no build. The AST-level analysis — expression
//! context, per-crate scoping, unit/panic/float-order rules — lives in
//! `gd-lint` (`crates/lint`), which runs right after it in CI. Overlap
//! between the two is intentional: detlint's `sim-purity` needles catch
//! regressions even when `gd-lint` itself fails to build.
//!
//! Comments (line and block) and string literals are stripped before
//! matching, so prose and diagnostic messages may name the hazards. A
//! line may opt out with a trailing `detlint: allow(<tag>)` annotation;
//! the only intended use is the micro-benchmark harness, which measures
//! real elapsed time on purpose.
//!
//! Run with `cargo run -p gd-verify --bin detlint`; exits non-zero when
//! any hazard is found.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Hazard {
    /// The source pattern that trips the gate. Needles live in string
    /// literals, which the stripper blanks, so this scanner never flags
    /// its own source.
    needle: &'static str,
    /// Why the pattern is banned.
    why: &'static str,
    /// Tag accepted in a `detlint: allow(<tag>)` annotation.
    tag: &'static str,
    /// When non-empty, the hazard only applies to files under one of these
    /// workspace-relative prefixes; empty applies everywhere.
    scope: &'static [&'static str],
}

const HAZARDS: &[Hazard] = &[
    Hazard {
        needle: "from_entropy",
        why: "entropy-seeded RNG; seed from the configuration instead",
        tag: "entropy",
        scope: &[],
    },
    Hazard {
        needle: "thread_rng",
        why: "thread-local entropy RNG; use gd_types::rng with a fixed seed",
        tag: "entropy",
        scope: &[],
    },
    Hazard {
        needle: "SystemTime::now",
        why: "wall-clock read; simulated time comes from SimTime",
        tag: "wallclock",
        scope: &[],
    },
    Hazard {
        needle: "Instant::now",
        why: "wall-clock read; use SimTime or cycle counters",
        tag: "instant",
        scope: &[],
    },
    // The sweep pool promises results in point-index order regardless of
    // thread schedule; a hash map in the results path would silently break
    // that (completion-order or hash-order output). The telemetry crate
    // additionally promises byte-identical rendering, so hash order is
    // banned there outright. Lookup-only maps may opt out line-by-line.
    Hazard {
        needle: "HashMap",
        why: "nondeterministic iteration order in the sweep/figure/telemetry \
              path; collect into a Vec ordered by point index (or BTreeMap), \
              or annotate a lookup-only map",
        tag: "maporder",
        scope: &["crates/bench", "crates/obs"],
    },
];

/// Directories under the workspace root that hold Rust sources.
const ROOTS: &[&str] = &["crates", "src", "tests", "examples", "benches"];

struct Finding {
    file: PathBuf,
    line: usize,
    needle: &'static str,
    why: &'static str,
}

fn main() -> ExitCode {
    let workspace = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/verify has a workspace root two levels up")
        .to_path_buf();
    let mut files = Vec::new();
    for root in ROOTS {
        collect_rs_files(&workspace.join(root), &mut files);
    }
    files.sort();
    let mut findings = Vec::new();
    for file in &files {
        let Ok(text) = fs::read_to_string(file) else {
            continue;
        };
        let rel = file.strip_prefix(&workspace).unwrap_or(file);
        scan(rel, &text, &mut findings);
    }
    if findings.is_empty() {
        println!("detlint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!(
                "detlint: {}:{}: `{}` — {}",
                f.file.strip_prefix(&workspace).unwrap_or(&f.file).display(),
                f.line,
                f.needle,
                f.why
            );
        }
        println!(
            "detlint: {} hazard(s) in {} files scanned",
            findings.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            // Lint fixture corpora contain hazards on purpose; gd-lint's
            // own harness asserts over them.
            if path.file_name().is_some_and(|n| n == "fixtures")
                && path
                    .parent()
                    .and_then(Path::file_name)
                    .is_some_and(|n| n == "tests")
            {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Scans one file; `file` is workspace-relative so hazard scopes match.
///
/// Needles are matched against the *stripped* line (comments and string
/// contents blanked), while `detlint: allow(...)` annotations are read
/// from the original line, where they live inside a trailing comment.
fn scan(file: &Path, text: &str, out: &mut Vec<Finding>) {
    let stripped = strip_comments_and_strings(text);
    for (idx, (line, code)) in text.lines().zip(stripped.lines()).enumerate() {
        for hazard in HAZARDS {
            if !hazard.scope.is_empty() && !hazard.scope.iter().any(|s| file.starts_with(s)) {
                continue;
            }
            if !code.contains(hazard.needle) {
                continue;
            }
            if is_allowed(line, hazard.tag) {
                continue;
            }
            out.push(Finding {
                file: file.to_path_buf(),
                line: idx + 1,
                needle: hazard.needle,
                why: hazard.why,
            });
        }
    }
}

/// Returns `text` with comments and string/char literal contents replaced
/// by spaces. Newlines are preserved so line numbers stay aligned.
/// Handles nested block comments, escapes, and raw strings (`r#"…"#`).
fn strip_comments_and_strings(text: &str) -> String {
    let b = text.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if !prev_is_ident(&out) && raw_string_hashes(&b[i..]).is_some() => {
                let hashes = raw_string_hashes(&b[i..]).unwrap_or(0);
                // Skip the prefix (`r`/`br` + hashes + opening quote).
                let prefix = if b[i] == b'b' { 2 } else { 1 } + hashes + 1;
                out.extend(std::iter::repeat_n(b' ', prefix));
                i += prefix;
                let terminator: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                while i < b.len() && !b[i..].starts_with(&terminator) {
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
                let consumed = terminator.len().min(b.len() - i);
                out.extend(std::iter::repeat_n(b' ', consumed));
                i += consumed;
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
                if i < b.len() {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal (`'x'`, `'\n'`) vs lifetime (`'a`): a
                // lifetime is never closed by a quote within two chars.
                let is_char = match b.get(i + 1) {
                    Some(b'\\') => true,
                    Some(_) => b.get(i + 2) == Some(&b'\''),
                    None => false,
                };
                if is_char {
                    out.push(b' ');
                    i += 1;
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\\' && i + 1 < b.len() {
                            out.extend_from_slice(b"  ");
                            i += 2;
                        } else {
                            out.push(b' ');
                            i += 1;
                        }
                    }
                    if i < b.len() {
                        out.push(b' ');
                        i += 1;
                    }
                } else {
                    out.push(b[i]);
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

/// When `rest` starts a raw (byte) string — `r"`, `r#"`, `br##"`, … —
/// returns the number of `#`s; otherwise `None`.
fn raw_string_hashes(rest: &[u8]) -> Option<usize> {
    let mut j = 1;
    if rest[0] == b'b' {
        if rest.get(1) != Some(&b'r') {
            return None;
        }
        j = 2;
    }
    let mut hashes = 0;
    while rest.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (rest.get(j) == Some(&b'"')).then_some(hashes)
}

/// True when the stripped output so far ends in an identifier character —
/// then a following `r`/`b` is part of an identifier, not a raw-string
/// prefix (e.g. `hdr"x"` cannot occur, but `for r in ..` can).
fn prev_is_ident(out: &[u8]) -> bool {
    out.last()
        .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
}

fn is_allowed(line: &str, tag: &str) -> bool {
    let marker = "detlint: allow";
    let Some(pos) = line.find(marker) else {
        return false;
    };
    let rest = &line[pos + marker.len()..];
    match rest.trim_start().strip_prefix('(') {
        // `detlint: allow(tag)` — only the named hazard is exempt.
        Some(args) => args
            .split(')')
            .next()
            .is_some_and(|list| list.split(',').any(|t| t.trim() == tag)),
        // Bare `detlint: allow` exempts the whole line.
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_each_hazard_class() {
        for h in HAZARDS {
            let src = format!("let x = {}();", h.needle);
            // Every scope prefix (or an arbitrary path for global hazards)
            // must trip the gate.
            let paths: Vec<String> = if h.scope.is_empty() {
                vec!["crates/x/src/x.rs".to_string()]
            } else {
                h.scope.iter().map(|s| format!("{s}/src/x.rs")).collect()
            };
            for path in paths {
                let mut findings = Vec::new();
                scan(Path::new(&path), &src, &mut findings);
                assert_eq!(
                    findings.len(),
                    1,
                    "hazard `{}` did not fire in {path}",
                    h.needle
                );
            }
        }
    }

    #[test]
    fn scoped_hazards_ignore_other_paths() {
        let needle = "HashMap";
        let src = format!("use std::collections::{needle};");
        let mut findings = Vec::new();
        scan(Path::new("crates/dram/src/x.rs"), &src, &mut findings);
        assert!(findings.is_empty(), "maporder fired outside its scope");
        scan(Path::new("crates/bench/src/x.rs"), &src, &mut findings);
        assert_eq!(findings.len(), 1, "maporder must fire inside crates/bench");
        scan(Path::new("crates/obs/src/x.rs"), &src, &mut findings);
        assert_eq!(findings.len(), 2, "maporder must fire inside crates/obs");
    }

    #[test]
    fn comments_and_annotations_are_exempt() {
        let hazard = "thread_rng";
        let src =
            format!("// {hazard} is banned\nlet a = {hazard}(); // detlint: allow(entropy)\n");
        let mut findings = Vec::new();
        scan(Path::new("x.rs"), &src, &mut findings);
        assert!(findings.is_empty(), "{}", findings.len());
    }

    #[test]
    fn block_comments_are_exempt() {
        let hazard = "Instant::now";
        let src = format!("/* {hazard} is discussed\nacross lines: {hazard} */\nlet t = 0;\n");
        let mut findings = Vec::new();
        scan(Path::new("x.rs"), &src, &mut findings);
        assert!(findings.is_empty(), "block comment was scanned");
        // Nested block comments terminate where they should: the hazard
        // after the true end of the comment is live code again.
        let src = format!("/* outer /* inner */ still comment */ let t = {hazard}();");
        let mut findings = Vec::new();
        scan(Path::new("x.rs"), &src, &mut findings);
        assert_eq!(
            findings.len(),
            1,
            "code after nested comment must be scanned"
        );
    }

    #[test]
    fn string_literals_are_exempt() {
        let hazard = "SystemTime::now";
        let src = format!(
            "let msg = \"{hazard} is banned\";\nlet raw = r#\"{hazard} too\"#;\nlet c = 'x';\n"
        );
        let mut findings = Vec::new();
        scan(Path::new("x.rs"), &src, &mut findings);
        assert!(findings.is_empty(), "string contents were scanned");
    }

    #[test]
    fn line_numbers_survive_stripping() {
        let hazard = "from_entropy";
        let src = format!("/* a\nmulti\nline comment */\nlet x = {hazard}();\n");
        let mut findings = Vec::new();
        scan(Path::new("x.rs"), &src, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 4, "line numbers drifted after stripping");
    }

    #[test]
    fn wrong_tag_does_not_exempt() {
        let hazard = "thread_rng";
        let src = format!("let a = {hazard}(); // detlint: allow(instant)\n");
        let mut findings = Vec::new();
        scan(Path::new("x.rs"), &src, &mut findings);
        assert_eq!(findings.len(), 1);
    }
}
