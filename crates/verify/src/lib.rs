//! Cross-crate invariant checking for the GreenDIMM workspace.
//!
//! The simulators in this workspace each maintain internal books (page
//! counters, buddy free lists, KSM sharing counts, deep power-down
//! registers). `gd-verify` states the properties those books must satisfy
//! *as data*, so that harnesses can run them continuously:
//!
//! * an [`Invariant`] is one checkable property of a subject type;
//! * a [`Checker`] is a registry of invariants over one subject, run in
//!   either [`Mode::Record`] (collect violations into [`CheckerStats`] and
//!   keep simulating) or [`Mode::Strict`] (error out on the first
//!   violation);
//! * the [`mm`], [`ksm`], and [`obs`] modules provide the standard
//!   invariant sets for the physical-memory simulator, the KSM simulator,
//!   and the GreenDIMM daemon's observable behaviour; [`faults`] covers
//!   the fault-recovery contract (quarantine backoff respected, degraded
//!   groups stay shallow); [`telemetry`] checks exported gd-obs data
//!   (residency histograms sum to elapsed sim time); [`fleet`] covers the
//!   cluster scheduler (VM conservation, host capacity caps).
//!
//! The DRAM command-protocol validator lives with the command log it
//! replays, in [`gd_dram::validate`]; this crate covers everything above
//! the memory controller. The `detlint` binary (see `src/bin/detlint.rs`)
//! is the source-level determinism gate that backs the workspace clippy
//! configuration.

pub mod faults;
pub mod fleet;
pub mod ksm;
pub mod mm;
pub mod obs;
pub mod telemetry;

use gd_types::{GdError, Result};
use std::fmt;

/// How a [`Checker`] reacts to a violated invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Collect violations into [`CheckerStats`] and keep going.
    #[default]
    Record,
    /// Return an error on the first violation (after recording it).
    Strict,
}

/// One violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the invariant that fired.
    pub invariant: &'static str,
    /// What went wrong, with the numbers involved.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// A checkable property of a subject `S`.
///
/// Implementations push one [`Violation`] per distinct problem found; an
/// empty `out` after [`check`](Invariant::check) means the property holds.
pub trait Invariant<S: ?Sized> {
    /// Stable identifier, used in reports (convention: `area.property`).
    fn name(&self) -> &'static str;
    /// Checks `subject`, appending violations to `out`.
    fn check(&self, subject: &S, out: &mut Vec<Violation>);
}

/// Counters accumulated over a [`Checker`]'s lifetime.
#[derive(Debug, Clone, Default)]
pub struct CheckerStats {
    /// Individual invariant evaluations performed.
    pub checks_run: u64,
    /// Total violations found (also counts the one a strict checker
    /// errored on).
    pub violations: u64,
    /// Every violation seen, in discovery order.
    pub recorded: Vec<Violation>,
}

/// A registry of invariants over one subject type.
pub struct Checker<S: ?Sized> {
    mode: Mode,
    invariants: Vec<Box<dyn Invariant<S> + Send + Sync>>,
    /// Lifetime counters.
    pub stats: CheckerStats,
}

impl<S: ?Sized> fmt::Debug for Checker<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Checker")
            .field("mode", &self.mode)
            .field(
                "invariants",
                &self.invariants.iter().map(|i| i.name()).collect::<Vec<_>>(),
            )
            .field("stats", &self.stats)
            .finish()
    }
}

impl<S: ?Sized> Checker<S> {
    /// Creates an empty checker.
    pub fn new(mode: Mode) -> Self {
        Checker {
            mode,
            invariants: Vec::new(),
            stats: CheckerStats::default(),
        }
    }

    /// The failure mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Adds an invariant. Builder-style registration is available through
    /// [`with`](Checker::with).
    pub fn register(&mut self, invariant: Box<dyn Invariant<S> + Send + Sync>) {
        self.invariants.push(invariant);
    }

    /// Builder-style [`register`](Checker::register).
    #[must_use]
    pub fn with(mut self, invariant: Box<dyn Invariant<S> + Send + Sync>) -> Self {
        self.register(invariant);
        self
    }

    /// Number of registered invariants.
    pub fn len(&self) -> usize {
        self.invariants.len()
    }

    /// True when no invariant is registered.
    pub fn is_empty(&self) -> bool {
        self.invariants.is_empty()
    }

    /// Runs every registered invariant against `subject`; returns the
    /// number of violations found in this run.
    ///
    /// # Errors
    ///
    /// In [`Mode::Strict`], returns [`GdError::InvalidState`] describing
    /// the first violation (all violations of the run are still recorded
    /// in [`CheckerStats`] for post-mortem inspection).
    pub fn run(&mut self, subject: &S) -> Result<usize> {
        let mut found = Vec::new();
        for inv in &self.invariants {
            self.stats.checks_run += 1;
            inv.check(subject, &mut found);
        }
        let n = found.len();
        self.stats.violations += n as u64;
        let first = found.first().cloned();
        self.stats.recorded.extend(found);
        match (self.mode, first) {
            (Mode::Strict, Some(v)) => {
                Err(GdError::InvalidState(format!("invariant violated: {v}")))
            }
            _ => Ok(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysFires;
    impl Invariant<u32> for AlwaysFires {
        fn name(&self) -> &'static str {
            "test.always"
        }
        fn check(&self, subject: &u32, out: &mut Vec<Violation>) {
            out.push(Violation {
                invariant: self.name(),
                detail: format!("subject was {subject}"),
            });
        }
    }

    struct NeverFires;
    impl Invariant<u32> for NeverFires {
        fn name(&self) -> &'static str {
            "test.never"
        }
        fn check(&self, _subject: &u32, _out: &mut Vec<Violation>) {}
    }

    #[test]
    fn record_mode_collects_and_continues() {
        let mut c = Checker::new(Mode::Record)
            .with(Box::new(AlwaysFires))
            .with(Box::new(NeverFires));
        assert_eq!(c.run(&7).unwrap(), 1);
        assert_eq!(c.run(&8).unwrap(), 1);
        assert_eq!(c.stats.checks_run, 4);
        assert_eq!(c.stats.violations, 2);
        assert_eq!(c.stats.recorded.len(), 2);
        assert!(c.stats.recorded[0].detail.contains('7'));
    }

    #[test]
    fn strict_mode_errors_but_still_records() {
        let mut c = Checker::new(Mode::Strict).with(Box::new(AlwaysFires));
        let err = c.run(&1).unwrap_err();
        assert!(err.to_string().contains("test.always"), "{err}");
        assert_eq!(c.stats.violations, 1);
        assert_eq!(c.stats.recorded.len(), 1);
    }

    #[test]
    fn clean_subject_passes_in_strict_mode() {
        let mut c = Checker::new(Mode::Strict).with(Box::new(NeverFires));
        assert_eq!(c.run(&1).unwrap(), 0);
        assert_eq!(c.stats.violations, 0);
    }

    #[test]
    fn empty_checker_is_vacuously_clean() {
        let mut c: Checker<u32> = Checker::new(Mode::Strict);
        assert!(c.is_empty());
        assert_eq!(c.run(&0).unwrap(), 0);
    }
}
