//! Invariants over the fleet scheduler's observable state.
//!
//! The cluster scheduler lives in `gd-fleet` (which depends on this
//! crate), so — like the daemon invariants in [`crate::obs`] — its
//! properties are stated over plain observation records the scheduler
//! fills in after every scheduling tick:
//!
//! * [`FleetObs`] — cluster-wide VM accounting, checked by
//!   [`VmConservation`] (every arrival is running, queued, retired, or
//!   abandoned — never lost or double-counted);
//! * [`HostObs`] — one host's scheduled load, checked by [`HostCapacity`]
//!   (no host is ever scheduled past its installed memory or its vCPU
//!   oversubscription cap).

use crate::{Invariant, Violation};

/// One host's scheduled load, as observed after a scheduler tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostObs {
    /// Host index within the fleet.
    pub host: usize,
    /// Memory scheduled onto the host (GiB, pre-KSM accounting).
    pub used_gb: u64,
    /// Installed memory (GiB).
    pub capacity_gb: u64,
    /// vCPUs scheduled onto the host.
    pub used_vcpus: u32,
    /// vCPU oversubscription cap (e.g. 2 × physical cores).
    pub vcpu_cap: u32,
}

/// Cluster-wide VM accounting after one scheduler tick.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetObs {
    /// VMs that have arrived so far.
    pub arrivals: u64,
    /// VMs ever placed on a host.
    pub placed: u64,
    /// VMs that ran to completion.
    pub retired: u64,
    /// VMs that left the queue unplaced.
    pub abandoned: u64,
    /// VMs currently running.
    pub running: u64,
    /// VMs currently queued.
    pub queued: u64,
    /// Per-host load.
    pub hosts: Vec<HostObs>,
}

/// VM conservation: arrivals split exactly into running + queued +
/// retired + abandoned, and placements into running + retired.
#[derive(Debug, Clone, Copy, Default)]
pub struct VmConservation;

impl Invariant<FleetObs> for VmConservation {
    fn name(&self) -> &'static str {
        "fleet.vm-conservation"
    }

    fn check(&self, o: &FleetObs, out: &mut Vec<Violation>) {
        let accounted = o.running + o.queued + o.retired + o.abandoned;
        if o.arrivals != accounted {
            out.push(Violation {
                invariant: self.name(),
                detail: format!(
                    "{} arrivals but {accounted} accounted for \
                     (running {} + queued {} + retired {} + abandoned {})",
                    o.arrivals, o.running, o.queued, o.retired, o.abandoned
                ),
            });
        }
        if o.placed != o.running + o.retired {
            out.push(Violation {
                invariant: self.name(),
                detail: format!(
                    "{} placements but running {} + retired {} = {}",
                    o.placed,
                    o.running,
                    o.retired,
                    o.running + o.retired
                ),
            });
        }
    }
}

/// Hard host caps: scheduled memory never exceeds installed capacity and
/// scheduled vCPUs never exceed the oversubscription cap.
#[derive(Debug, Clone, Copy, Default)]
pub struct HostCapacity;

impl Invariant<FleetObs> for HostCapacity {
    fn name(&self) -> &'static str {
        "fleet.host-capacity"
    }

    fn check(&self, o: &FleetObs, out: &mut Vec<Violation>) {
        for h in &o.hosts {
            if h.used_gb > h.capacity_gb {
                out.push(Violation {
                    invariant: self.name(),
                    detail: format!(
                        "host {} scheduled {} GiB over its {} GiB capacity",
                        h.host, h.used_gb, h.capacity_gb
                    ),
                });
            }
            if h.used_vcpus > h.vcpu_cap {
                out.push(Violation {
                    invariant: self.name(),
                    detail: format!(
                        "host {} scheduled {} vCPUs over its cap of {}",
                        h.host, h.used_vcpus, h.vcpu_cap
                    ),
                });
            }
        }
    }
}

/// The standard invariant set over fleet scheduler observations.
pub fn fleet_checker(mode: crate::Mode) -> crate::Checker<FleetObs> {
    crate::Checker::new(mode)
        .with(Box::new(VmConservation))
        .with(Box::new(HostCapacity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;

    fn clean() -> FleetObs {
        FleetObs {
            arrivals: 100,
            placed: 80,
            retired: 30,
            abandoned: 5,
            running: 50,
            queued: 15,
            hosts: vec![HostObs {
                host: 0,
                used_gb: 200,
                capacity_gb: 256,
                used_vcpus: 20,
                vcpu_cap: 32,
            }],
        }
    }

    #[test]
    fn clean_observation_passes_strict() {
        fleet_checker(Mode::Strict).run(&clean()).unwrap();
    }

    #[test]
    fn lost_vm_fires_conservation() {
        let mut c = fleet_checker(Mode::Record);
        let o = FleetObs {
            running: 49,
            ..clean()
        };
        // Both conservation equations break (arrivals and placements).
        assert_eq!(c.run(&o).unwrap(), 2);
        assert_eq!(c.stats.recorded[0].invariant, "fleet.vm-conservation");
    }

    #[test]
    fn overcommitted_host_fires_capacity() {
        let mut c = fleet_checker(Mode::Record);
        let mut o = clean();
        o.hosts[0].used_gb = 300;
        assert_eq!(c.run(&o).unwrap(), 1);
        assert!(c.stats.recorded[0].detail.contains("over its 256 GiB"));
    }

    #[test]
    fn vcpu_overcommit_fires_capacity() {
        let mut c = fleet_checker(Mode::Strict);
        let mut o = clean();
        o.hosts[0].used_vcpus = 40;
        let err = c.run(&o).unwrap_err();
        assert!(err.to_string().contains("fleet.host-capacity"), "{err}");
    }
}
