//! Invariants over the KSM simulator: logical-content conservation.
//!
//! Merging changes how many *frames* back a region's pages, never how many
//! pages the region logically holds: every registered page is at all times
//! pending (unscanned), merged (duplicate, frame released), a stable-tree
//! original (resident, backing a shared frame), or unique (volatile).

use crate::{Invariant, Violation};
use gd_ksm::Ksm;

/// Logical-content conservation and sharing-count consistency.
#[derive(Debug, Clone, Copy, Default)]
pub struct KsmConservation;

impl Invariant<Ksm> for KsmConservation {
    fn name(&self) -> &'static str {
        "ksm.logical-conservation"
    }

    fn check(&self, subject: &Ksm, out: &mut Vec<Violation>) {
        let mut merged_total = 0u64;
        for acc in subject.region_accounting() {
            let sum = acc.pending + acc.merged + acc.originals + acc.unique_pages;
            if sum != acc.logical_pages {
                out.push(Violation {
                    invariant: self.name(),
                    detail: format!(
                        "{}: pending {} + merged {} + originals {} + unique {} = {sum} \
                         != registered {} pages",
                        acc.region,
                        acc.pending,
                        acc.merged,
                        acc.originals,
                        acc.unique_pages,
                        acc.logical_pages
                    ),
                });
            }
            merged_total += acc.merged;
        }
        let stats = subject.stats();
        if stats.pages_shared != subject.stable_contents() as u64 {
            out.push(Violation {
                invariant: self.name(),
                detail: format!(
                    "pages_shared {} != stable-tree size {}",
                    stats.pages_shared,
                    subject.stable_contents()
                ),
            });
        }
        // One-sided: `unregister_region` documents an approximation that
        // dissolves stable originals, after which another region's merged
        // pages can outlive their pages_sharing contribution being
        // released. Live regions can therefore account for *at most*
        // pages_sharing merged pages.
        if merged_total > stats.pages_sharing {
            out.push(Violation {
                invariant: self.name(),
                detail: format!(
                    "regions hold {merged_total} merged pages but pages_sharing is {}",
                    stats.pages_sharing
                ),
            });
        }
    }
}

/// The standard invariant set over a live [`Ksm`].
pub fn standard_checker(mode: crate::Mode) -> crate::Checker<Ksm> {
    crate::Checker::new(mode).with(Box::new(KsmConservation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;
    use gd_ksm::KsmConfig;
    use gd_mmsim::{MemoryManager, MmConfig, PageKind};
    use gd_types::SimTime;

    #[test]
    fn conservation_holds_through_merge_cow_unregister() {
        let mut mm = MemoryManager::new(MmConfig::small_test()).unwrap();
        let mut ksm = Ksm::new(KsmConfig::default());
        let mut checker = standard_checker(Mode::Strict);
        let a = mm.allocate(1000, PageKind::UserMovable).unwrap();
        let b = mm.allocate(1000, PageKind::UserMovable).unwrap();
        let ra = ksm.register_region(a, vec![(0xAB, 600), (0xCD, 300)], 100);
        let rb = ksm.register_region(b, vec![(0xAB, 900)], 100);
        checker.run(&ksm).unwrap();
        for _ in 0..10 {
            ksm.advance(SimTime::from_millis(200), &mut mm).unwrap();
            checker.run(&ksm).unwrap();
        }
        ksm.cow_break(rb, 0xAB, 50, &mut mm).unwrap();
        checker.run(&ksm).unwrap();
        ksm.unregister_region(ra).unwrap();
        checker.run(&ksm).unwrap();
        assert_eq!(checker.stats.violations, 0);
    }
}
