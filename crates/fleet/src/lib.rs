//! Datacenter-scale fleet simulation for the GreenDIMM reproduction.
//!
//! The paper evaluates GreenDIMM on one host; this crate asks the
//! datacenter question: what does sub-array power-down buy across a fleet
//! of 1 000–10 000 hosts whose load is set by a cluster scheduler? A fleet
//! run has two phases:
//!
//! 1. **Schedule** ([`scheduler`]) — the synthesized Azure arrival stream
//!    for the whole cluster is placed onto hosts by a consolidation
//!    scheduler (first-fit, best-fit, or KSM-aware same-OS co-location),
//!    producing one VM lifecycle event stream per host. Scheduling is
//!    serial and cheap; its books are invariant-checked by
//!    [`gd_verify::fleet`].
//! 2. **Simulate** ([`host`]) — each host replays its event stream through
//!    the full mm/daemon/KSM co-simulation. Hosts are independent, so they
//!    fan out across the deterministic shard pool ([`pool`]): results merge
//!    in host order and the outcome is byte-identical for any `--jobs`.
//!
//! Engine selection trades fidelity for wall-clock at the *fleet* level:
//! the exact engines (`stepped`, `event-driven`) co-simulate every host,
//! while `epoch-replay` co-simulates every `replay_stride`-th host exactly
//! and replays the rest through an analytic surrogate calibrated against
//! the exact hosts (deep power-down tracks scheduled-memory headroom; the
//! calibration runs serially after the merge, so it is jobs-invariant).

pub mod host;
pub mod pool;
pub mod scheduler;

pub use host::{run_host, HostRun, HostSample, HostSimConfig};
pub use pool::shard_map;
pub use scheduler::{schedule_fleet, FleetSchedule};

use gd_dram::EngineMode;
use gd_types::fleet::{FleetConfig, FleetStats};
use gd_types::rng::sweep_point_seed;
use gd_types::Result;

/// Per-host roll-up of one fleet run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostSummary {
    /// Host index within the fleet.
    pub host: usize,
    /// True when this host was co-simulated exactly; false when its numbers
    /// come from the calibrated epoch-replay surrogate.
    pub exact: bool,
    /// Mean used fraction (simulated for exact hosts, scheduled-memory mean
    /// for surrogate hosts).
    pub mean_used_fraction: f64,
    /// Mean fraction of sub-array groups in deep power-down.
    pub mean_deep_pd_fraction: f64,
    /// Hotplug events over the run.
    pub hotplug_events: u64,
    /// Pages KSM released over the run.
    pub ksm_released_pages: u64,
    /// Monitor ticks replayed analytically instead of simulated.
    pub replayed_ticks: u64,
}

/// Outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Scheduler accounting (conservation-checked).
    pub stats: FleetStats,
    /// `(time_s, cluster_used_fraction)` per scheduler tick.
    pub utilization: Vec<(u64, f64)>,
    /// Per-host roll-ups, in host order.
    pub hosts: Vec<HostSummary>,
    /// Hosts that were co-simulated exactly.
    pub exact_hosts: usize,
    /// Telemetry shards from the exactly-simulated hosts, labeled
    /// `host<index>`, when telemetry was requested.
    pub telemetry: Option<Vec<(String, gd_obs::Telemetry)>>,
}

impl FleetOutcome {
    /// Mean of the cluster scheduled-utilization series.
    pub fn mean_utilization(&self) -> f64 {
        if self.utilization.is_empty() {
            return 0.0;
        }
        self.utilization.iter().map(|(_, u)| u).sum::<f64>() / self.utilization.len() as f64
    }

    /// Fleet-mean deep power-down fraction (unweighted over hosts; every
    /// host has the same installed capacity).
    pub fn mean_deep_pd_fraction(&self) -> f64 {
        if self.hosts.is_empty() {
            return 0.0;
        }
        self.hosts
            .iter()
            .map(|h| h.mean_deep_pd_fraction)
            .sum::<f64>()
            / self.hosts.len() as f64
    }

    /// Total hotplug events across the fleet.
    pub fn total_hotplug_events(&self) -> u64 {
        self.hosts.iter().map(|h| h.hotplug_events).sum()
    }

    /// Total pages KSM released across the fleet.
    pub fn total_ksm_released_pages(&self) -> u64 {
        self.hosts.iter().map(|h| h.ksm_released_pages).sum()
    }
}

/// Runs the full fleet: schedule, then per-host co-simulation sharded
/// across `jobs` workers.
///
/// Under [`EngineMode::EpochReplay`], only every `cfg.replay_stride`-th
/// host is co-simulated (exactly, with the event-driven engine); the
/// remaining hosts get surrogate numbers calibrated against the exact
/// hosts in a serial post-pass, so the outcome is byte-identical for any
/// `jobs`. The exact engines co-simulate every host.
///
/// # Errors
///
/// Propagates configuration and bookkeeping errors from the scheduler and
/// the per-host simulations, and invariant violations when `verify` is
/// [`gd_verify::Mode::Strict`].
pub fn run_fleet(
    cfg: &FleetConfig,
    engine: EngineMode,
    jobs: usize,
    verify: Option<gd_verify::Mode>,
    with_telemetry: bool,
) -> Result<FleetOutcome> {
    let schedule = schedule_fleet(cfg, verify)?;
    let sampled = matches!(engine, EngineMode::EpochReplay(_));
    // Exact hosts run the event-driven engine (the calibration anchors
    // must be exact); a non-sampled fleet runs every host on `engine`.
    let host_engine = if sampled {
        EngineMode::EventDriven
    } else {
        engine
    };
    let host_cfg = |host: usize| HostSimConfig {
        capacity_gb: cfg.host_capacity_gb,
        block_gb: cfg.block_gb,
        ksm: cfg.ksm,
        greendimm: cfg.greendimm,
        duration_s: cfg.duration_s,
        schedule_period_s: cfg.schedule_period_s,
        seed: sweep_point_seed(cfg.seed, host),
        engine: host_engine,
    };
    type HostResult = Option<(HostRun, Option<gd_obs::Telemetry>)>;
    let runs: Vec<Result<HostResult>> = shard_map(
        &schedule.host_events,
        jobs,
        |host, events: &Vec<gd_workloads::VmEvent>| {
            if sampled && !host.is_multiple_of(cfg.replay_stride) {
                return Ok(None);
            }
            run_host(&host_cfg(host), events, with_telemetry).map(Some)
        },
    );
    let runs: Vec<HostResult> = runs.into_iter().collect::<Result<_>>()?;

    // Calibrate the surrogate against the exact hosts (serial, in host
    // order: the ratios are sums, so they do not depend on worker
    // scheduling). Deep power-down tracks scheduled-memory headroom; KSM
    // release tracks scheduled memory.
    let mut sum_pd = 0.0;
    let mut sum_headroom = 0.0;
    let mut sum_released = 0.0;
    let mut sum_sched_used = 0.0;
    let mut sum_hotplug = 0u64;
    let mut n_exact = 0u64;
    for (host, run) in runs.iter().enumerate() {
        if let Some((run, _)) = run {
            let sched_used = schedule.host_mean_used[host];
            sum_pd += run.mean_deep_pd_fraction();
            sum_headroom += (1.0 - sched_used).max(0.0);
            sum_released += run.ksm_released_pages as f64;
            sum_sched_used += sched_used;
            sum_hotplug += run.daemon.hotplug_events();
            n_exact += 1;
        }
    }
    let alpha_pd = if sum_headroom > 0.0 {
        sum_pd / sum_headroom
    } else {
        0.0
    };
    let alpha_released = if sum_sched_used > 0.0 {
        sum_released / sum_sched_used
    } else {
        0.0
    };
    let mean_hotplug = sum_hotplug.checked_div(n_exact).unwrap_or(0);

    let mut hosts = Vec::with_capacity(runs.len());
    let mut telemetry = with_telemetry.then(Vec::new);
    for (host, run) in runs.into_iter().enumerate() {
        match run {
            Some((run, tele)) => {
                hosts.push(HostSummary {
                    host,
                    exact: true,
                    mean_used_fraction: run.mean_used_fraction(),
                    mean_deep_pd_fraction: run.mean_deep_pd_fraction(),
                    hotplug_events: run.daemon.hotplug_events(),
                    ksm_released_pages: run.ksm_released_pages,
                    replayed_ticks: run.daemon.replayed_ticks,
                });
                if let (Some(out), Some(tele)) = (telemetry.as_mut(), tele) {
                    out.push((format!("host{host:04}"), tele));
                }
            }
            None => {
                let sched_used = schedule.host_mean_used[host];
                let headroom = (1.0 - sched_used).max(0.0);
                hosts.push(HostSummary {
                    host,
                    exact: false,
                    mean_used_fraction: sched_used,
                    mean_deep_pd_fraction: (alpha_pd * headroom).clamp(0.0, 1.0),
                    hotplug_events: mean_hotplug,
                    ksm_released_pages: (alpha_released * sched_used).round() as u64,
                    // Every monitor tick of a surrogate host is, in effect,
                    // replayed.
                    replayed_ticks: cfg.duration_s,
                });
            }
        }
    }
    let exact_hosts = hosts.iter().filter(|h| h.exact).count();
    Ok(FleetOutcome {
        stats: schedule.stats,
        utilization: schedule.utilization,
        hosts,
        exact_hosts,
        telemetry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_types::fleet::FleetConfig;

    fn tiny() -> FleetConfig {
        FleetConfig {
            hosts: 6,
            duration_s: 2 * 3_600,
            ..FleetConfig::paper_1k()
        }
    }

    #[test]
    fn outcome_is_byte_identical_across_jobs() {
        let a = run_fleet(&tiny(), EngineMode::EventDriven, 1, None, false).unwrap();
        let b = run_fleet(&tiny(), EngineMode::EventDriven, 4, None, false).unwrap();
        assert_eq!(a.hosts, b.hosts);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.utilization, b.utilization);
    }

    #[test]
    fn epoch_replay_samples_by_stride_and_stays_jobs_invariant() {
        let cfg = FleetConfig {
            hosts: 8,
            replay_stride: 4,
            ..tiny()
        };
        let engine = EngineMode::EpochReplay(Default::default());
        let a = run_fleet(&cfg, engine, 1, None, false).unwrap();
        assert_eq!(a.exact_hosts, 2, "hosts 0 and 4 are the anchors");
        assert!(a.hosts[0].exact && a.hosts[4].exact);
        assert!(!a.hosts[1].exact);
        for h in &a.hosts {
            assert!((0.0..=1.0).contains(&h.mean_deep_pd_fraction), "{h:?}");
        }
        let b = run_fleet(&cfg, engine, 3, None, false).unwrap();
        assert_eq!(a.hosts, b.hosts);
    }

    #[test]
    fn surrogate_tracks_exact_hosts() {
        // With a homogeneous fleet the surrogate's fleet-mean deep-PD must
        // land near the all-exact fleet's.
        let cfg = FleetConfig {
            hosts: 8,
            replay_stride: 2,
            ..tiny()
        };
        let exact = run_fleet(&cfg, EngineMode::EventDriven, 2, None, false).unwrap();
        let replay = run_fleet(
            &cfg,
            EngineMode::EpochReplay(Default::default()),
            2,
            None,
            false,
        )
        .unwrap();
        let d = (exact.mean_deep_pd_fraction() - replay.mean_deep_pd_fraction()).abs();
        assert!(d < 0.10, "surrogate drifted: {d}");
    }

    #[test]
    fn telemetry_covers_exact_hosts_only() {
        let cfg = FleetConfig {
            hosts: 4,
            replay_stride: 2,
            duration_s: 3_600,
            ..FleetConfig::paper_1k()
        };
        let out = run_fleet(
            &cfg,
            EngineMode::EpochReplay(Default::default()),
            2,
            None,
            true,
        )
        .unwrap();
        let tele = out.telemetry.expect("telemetry requested");
        assert_eq!(tele.len(), out.exact_hosts);
        assert_eq!(tele[0].0, "host0000");
        assert!(tele[0].1.registry.counter("vm.daemon.ticks") > 0);
    }
}
