//! The deterministic shard pool: fan independent items across workers,
//! return results in item order, propagate worker panics usefully.
//!
//! This is the machinery `gd_bench::sweep` pioneered for figure points,
//! hoisted below the bench crate so fleet hosts (and the sweep itself,
//! which now delegates here) share one implementation:
//!
//! * workers pull indices from a shared atomic counter, collect results
//!   locally, and the harness sorts the merged set by index — the returned
//!   `Vec` is byte-identical for any `jobs` value and thread schedule;
//! * `jobs == 1` short-circuits to a plain serial loop, reproducing the
//!   single-threaded execution path exactly;
//! * a panicking item no longer poisons the merge mutex into an opaque
//!   `PoisonError`: the pool stops handing out new items, joins, and
//!   re-panics with the failing item index plus the original payload text.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Renders a caught panic payload as text (the common `&str` / `String`
/// payloads verbatim, anything else a placeholder).
fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `f` over every item, fanning across `jobs` workers, and returns
/// the results **in item order** regardless of scheduling.
///
/// # Panics
///
/// If `f` panics on any item, the pool finishes in-flight items, joins,
/// and panics with a message naming the lowest failing item index plus the
/// original panic payload text.
pub fn shard_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs == 1 {
        // The plain serial path, bit for bit: same iteration order, no
        // pool, and a panic propagates with its original payload.
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let merged: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    // The lowest-index panic seen (workers race; lowest wins for a stable
    // message), with its payload text.
    let panicked: Mutex<Option<(usize, String)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(index) else {
                        break;
                    };
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(index, item)))
                    {
                        Ok(r) => local.push((index, r)),
                        Err(payload) => {
                            stop.store(true, Ordering::Relaxed);
                            let text = payload_text(payload.as_ref());
                            let mut slot = panicked.lock().unwrap_or_else(|e| e.into_inner());
                            if slot.as_ref().is_none_or(|(i, _)| index < *i) {
                                *slot = Some((index, text));
                            }
                        }
                    }
                }
                // A worker that panicked inside `f` never reaches the
                // merge with a lock held, so this lock cannot be poisoned
                // by item panics; tolerate poisoning anyway rather than
                // trading one opaque abort for another.
                merged
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .append(&mut local);
            });
        }
    });
    if let Some((index, text)) = panicked.into_inner().unwrap_or_else(|e| e.into_inner()) {
        panic!("shard pool item {index} panicked: {text}");
    }
    let mut results = merged.into_inner().unwrap_or_else(|e| e.into_inner());
    // Completion order depends on the thread schedule; item order must not.
    results.sort_by_key(|(index, _)| *index);
    debug_assert!(
        results
            .iter()
            .enumerate()
            .all(|(k, (index, _))| k == *index),
        "shard pool lost or duplicated an item"
    );
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let items: Vec<u64> = (0..41).collect();
        let f = |i: usize, x: &u64| i as u64 * 1000 + x * 3;
        let serial = shard_map(&items, 1, f);
        for jobs in [2, 3, 8] {
            assert_eq!(shard_map(&items, jobs, f), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<u8> = Vec::new();
        assert!(shard_map(&empty, 4, |_, x| *x).is_empty());
        assert_eq!(shard_map(&[7u8], 4, |_, x| *x * 2), vec![14]);
    }

    #[test]
    fn panic_carries_item_index_and_payload() {
        let items: Vec<u32> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            shard_map(&items, 4, |_, x| {
                if *x == 3 {
                    panic!("host 3 exploded: {}", x * 2);
                }
                *x
            })
        })
        .expect_err("must propagate the panic");
        let text = payload_text(caught.as_ref());
        assert!(text.contains("item 3"), "{text}");
        assert!(text.contains("host 3 exploded: 6"), "{text}");
    }

    #[test]
    fn lowest_failing_index_wins() {
        // Every item panics; the reported index must be deterministic (the
        // lowest), not whichever worker lost the race.
        let items: Vec<u32> = (0..32).collect();
        for _ in 0..8 {
            let caught = std::panic::catch_unwind(|| {
                shard_map(&items, 8, |i, _: &u32| -> u32 { panic!("boom {i}") })
            })
            .expect_err("must propagate");
            let text = payload_text(caught.as_ref());
            assert!(
                text.contains("item 0 panicked: boom 0"),
                "non-deterministic panic report: {text}"
            );
        }
    }

    #[test]
    fn serial_path_panics_with_original_payload() {
        let items = [1u32];
        let caught = std::panic::catch_unwind(|| {
            shard_map(&items, 1, |_, _: &u32| -> u32 { panic!("plain") })
        })
        .expect_err("must propagate");
        assert_eq!(payload_text(caught.as_ref()), "plain");
    }
}
