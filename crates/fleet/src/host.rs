//! One host's co-simulation: replay a VM lifecycle event stream through
//! the mm/daemon/KSM stack under a selectable engine.
//!
//! This is the single-host loop `gd_bench::vmtrace` pioneered for
//! Figs. 1/12/13, hoisted below the bench crate so the fleet can drive it
//! once per host with scheduler-produced event streams (and so the bench
//! crate can delegate to it, keeping exactly one copy of the loop). The
//! three [`EngineMode`]s:
//!
//! * [`EngineMode::Stepped`] — one [`EpochSim::step`] per second;
//! * [`EngineMode::EventDriven`] — one step per scheduler period.
//!   `EpochSim::step` slices internally at monitor boundaries, so the two
//!   exact engines agree bit for bit by construction;
//! * [`EngineMode::EpochReplay`] — once a period sees no VM events *and*
//!   the previous exactly-simulated period was quiet (no hotplug, no KSM
//!   progress), the period is fast-forwarded: monitor ticks are replayed
//!   analytically ([`EpochSim::fast_forward`]) and the sample repeats the
//!   settled state. Footprints only move at VM events, so a settled quiet
//!   host is exactly stationary; the approximation is the skipped KSM scan
//!   work, which the quiet gate requires to have already converged.

use gd_dram::EngineMode;
use gd_ksm::{Ksm, KsmConfig, RegionId};
use gd_mmsim::{AllocationId, MemoryManager, MmConfig, PageKind};
use gd_types::{Result, SimTime};
use gd_workloads::{VmEvent, VmEventKind};
use greendimm::{Daemon, DaemonStats, EpochSim, FootprintDriver, GreenDimmConfig, GroupMap};
use std::collections::HashMap; // detlint: allow(maporder)

/// Configuration of one host co-simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostSimConfig {
    /// Installed memory capacity in GiB.
    pub capacity_gb: u64,
    /// Memory block size in GiB.
    pub block_gb: u64,
    /// Enable KSM.
    pub ksm: bool,
    /// Enable the GreenDIMM daemon (off = conventional kernel).
    pub greendimm: bool,
    /// Simulated duration in seconds.
    pub duration_s: u64,
    /// Scheduler period in seconds (sampling granularity).
    pub schedule_period_s: u64,
    /// RNG seed for this host's simulators.
    pub seed: u64,
    /// Simulation engine.
    pub engine: EngineMode,
}

impl HostSimConfig {
    /// The paper's 256 GiB host with 1 GiB blocks.
    pub fn paper_256gb() -> Self {
        HostSimConfig {
            capacity_gb: 256,
            block_gb: 1,
            ksm: false,
            greendimm: true,
            duration_s: 86_400,
            schedule_period_s: 300,
            seed: 42,
            engine: EngineMode::EventDriven,
        }
    }
}

/// One sampled point of a host co-simulation (one per scheduler period).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostSample {
    /// Seconds from run start.
    pub time_s: u64,
    /// Used fraction of installed capacity (after KSM merging, if on).
    pub used_fraction: f64,
    /// Off-lined memory blocks.
    pub offline_blocks: usize,
    /// Fraction of sub-array groups in deep power-down.
    pub deep_pd_fraction: f64,
}

/// Full outcome of one host co-simulation.
#[derive(Debug, Clone)]
pub struct HostRun {
    /// Per-scheduler-period samples.
    pub samples: Vec<HostSample>,
    /// Daemon counters (including `replayed_ticks` under epoch replay).
    pub daemon: DaemonStats,
    /// Pages KSM released over the run.
    pub ksm_released_pages: u64,
    /// Scheduler periods that were fast-forwarded instead of simulated.
    pub replayed_periods: u64,
}

impl HostRun {
    /// Mean used fraction over the run.
    pub fn mean_used_fraction(&self) -> f64 {
        mean(self.samples.iter().map(|s| s.used_fraction))
    }

    /// Mean number of off-line blocks.
    pub fn mean_offline_blocks(&self) -> f64 {
        mean(self.samples.iter().map(|s| s.offline_blocks as f64))
    }

    /// Mean deep power-down fraction (drives the power numbers).
    pub fn mean_deep_pd_fraction(&self) -> f64 {
        mean(self.samples.iter().map(|s| s.deep_pd_fraction))
    }
}

fn mean(iter: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = iter.fold((0.0, 0u64), |(s, n), v| (s + v, n + 1));
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Replays `events` (time-ordered, stops before starts within a tick)
/// through a fresh host stack and samples once per scheduler period.
///
/// When `with_telemetry` is true the run records span-scoped daemon ticks
/// and exports the mm/ksm/daemon books under the `vm.*` scope at the end.
///
/// # Errors
///
/// Propagates simulator-setup and bookkeeping errors (not kernel-level
/// off-lining failures, which are part of the experiment).
pub fn run_host(
    cfg: &HostSimConfig,
    events: &[VmEvent],
    with_telemetry: bool,
) -> Result<(HostRun, Option<gd_obs::Telemetry>)> {
    let mm_cfg = MmConfig {
        capacity_bytes: cfg.capacity_gb << 30,
        block_bytes: cfg.block_gb << 30,
        movablecore_bytes: None,
        unmovable_leak_prob: 0.0,
        transient_fail_prob: 0.0,
        seed: cfg.seed,
    };
    let mut mm = MemoryManager::new(mm_cfg)?;
    // Kernel reservation (unmovable, stays on-line).
    let kernel_pages = mm.meminfo().installed_pages / 50;
    mm.allocate(kernel_pages, PageKind::KernelUnmovable)?;

    let gd_cfg = if cfg.greendimm {
        GreenDimmConfig::paper_default().with_seed(cfg.seed)
    } else {
        // Thresholds that never trigger: the daemon is inert.
        GreenDimmConfig {
            off_thr: 2.0,
            on_thr: 0.0,
            ..GreenDimmConfig::paper_default()
        }
    };
    let map = GroupMap::new(mm_cfg.capacity_bytes, 64, mm_cfg.block_bytes)?;
    let daemon = Daemon::new(gd_cfg, map);
    let ksm = cfg.ksm.then(|| Ksm::new(KsmConfig::default()));
    let mut sim = EpochSim::new(mm, daemon, ksm);
    if with_telemetry {
        sim.enable_telemetry();
    }

    // Keyed lookups only (insert/remove by VM id) — never iterated, so the
    // hash order cannot reach any output.
    let mut footprints: HashMap<u32, (FootprintDriver, Option<RegionId>, AllocationId)> = // detlint: allow(maporder)
        HashMap::new(); // detlint: allow(maporder)
    let mut samples = Vec::new();
    let mut event_idx = 0;
    let mut replayed_periods = 0u64;
    // Epoch-replay quiet gate: the previous period was simulated exactly
    // and moved nothing the fast path cannot reproduce.
    let mut last_quiet = false;
    let mut prev_offline = 0usize;
    let mut prev_hotplug = 0u64;
    let mut prev_released = 0u64;
    let tick = cfg.schedule_period_s;
    let ticks = cfg.duration_s / tick;
    for t in 0..=ticks {
        let now_s = t * tick;
        // Apply this period's VM lifecycle events.
        let mut had_events = false;
        while event_idx < events.len() && events[event_idx].time_s <= now_s {
            let ev = &events[event_idx];
            event_idx += 1;
            had_events = true;
            match ev.kind {
                VmEventKind::Start => {
                    let mut fp = FootprintDriver::new();
                    sim.set_footprint(&mut fp, ev.vm.mem_pages())?;
                    let region = match (&mut sim.ksm, cfg.ksm) {
                        (Some(_), true) => {
                            let (shareable, unique) = ev.vm.ksm_contents();
                            let owner = fp.allocation_id().expect("just allocated");
                            Some(
                                sim.ksm
                                    .as_mut()
                                    .expect("ksm on")
                                    .register_region(owner, shareable, unique),
                            )
                        }
                        _ => None,
                    };
                    let owner = fp.allocation_id().expect("just allocated");
                    footprints.insert(ev.vm.id, (fp, region, owner));
                }
                VmEventKind::Stop => {
                    if let Some((mut fp, region, _owner)) = footprints.remove(&ev.vm.id) {
                        if let (Some(r), Some(ksm)) = (region, &mut sim.ksm) {
                            ksm.unregister_region(r)?;
                        }
                        fp.clear(&mut sim.mm)?;
                    }
                }
            }
        }
        let replay =
            matches!(cfg.engine, EngineMode::EpochReplay(_)) && t > 0 && !had_events && last_quiet;
        if replay {
            sim.fast_forward(SimTime::from_secs(tick));
            replayed_periods += 1;
            // State is stationary by the quiet gate: repeat the previous
            // sample at the new timestamp.
            let prev = *samples.last().expect("t > 0 implies a prior sample");
            samples.push(HostSample {
                time_s: now_s,
                ..prev
            });
            continue;
        }
        match cfg.engine {
            EngineMode::Stepped => {
                for _ in 0..tick {
                    sim.step(SimTime::from_secs(1))?;
                }
            }
            _ => {
                sim.step(SimTime::from_secs(tick))?;
            }
        }
        let offline = sim.mm.offline_block_count();
        let hotplug = sim.daemon.stats.hotplug_events();
        let released = sim.ksm.as_ref().map(|k| k.frames_released()).unwrap_or(0);
        last_quiet =
            offline == prev_offline && hotplug == prev_hotplug && released == prev_released;
        prev_offline = offline;
        prev_hotplug = hotplug;
        prev_released = released;
        let info = sim.mm.meminfo();
        samples.push(HostSample {
            time_s: now_s,
            used_fraction: info.used_pages as f64 / info.installed_pages as f64,
            offline_blocks: offline,
            deep_pd_fraction: sim.deep_pd_fraction(),
        });
    }
    let released = sim.ksm.as_ref().map(|k| k.frames_released()).unwrap_or(0);
    sim.export_telemetry("vm");
    let tele = sim.telemetry.take();
    Ok((
        HostRun {
            samples,
            daemon: sim.daemon.stats,
            ksm_released_pages: released,
            replayed_periods,
        },
        tele,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_workloads::azure::{synthesize, AzureConfig};

    fn short_events() -> Vec<VmEvent> {
        synthesize(&AzureConfig {
            duration_s: 2 * 3_600,
            ..AzureConfig::paper_24h()
        })
        .events
    }

    fn short_cfg(engine: EngineMode) -> HostSimConfig {
        HostSimConfig {
            duration_s: 2 * 3_600,
            engine,
            ..HostSimConfig::paper_256gb()
        }
    }

    #[test]
    fn stepped_and_event_driven_agree_bit_for_bit() {
        let events = short_events();
        let (stepped, _) = run_host(&short_cfg(EngineMode::Stepped), &events, false).unwrap();
        let (event, _) = run_host(&short_cfg(EngineMode::EventDriven), &events, false).unwrap();
        assert_eq!(stepped.samples, event.samples);
        assert_eq!(stepped.ksm_released_pages, event.ksm_released_pages);
        assert_eq!(stepped.daemon, event.daemon);
        assert_eq!(stepped.replayed_periods, 0);
        assert_eq!(event.replayed_periods, 0);
    }

    #[test]
    fn epoch_replay_fast_forwards_quiet_periods() {
        // A single short burst of events, then a long idle tail: the tail
        // must be replayed, and the replayed samples must repeat the
        // settled state.
        let mut events = short_events();
        events.retain(|e| e.time_s <= 600);
        let cfg = HostSimConfig {
            duration_s: 6 * 3_600,
            ..short_cfg(EngineMode::EpochReplay(Default::default()))
        };
        let (run, _) = run_host(&cfg, &events, false).unwrap();
        assert!(run.replayed_periods > 0, "idle tail was not replayed");
        assert!(run.daemon.replayed_ticks > 0);
        let last = run.samples.last().unwrap();
        let prev = run.samples[run.samples.len() - 2];
        assert_eq!(last.offline_blocks, prev.offline_blocks);
        assert_eq!(last.deep_pd_fraction, prev.deep_pd_fraction);
        // The exact engine on the same stream agrees on the settled state
        // (the replay approximation only skips converged work).
        let (exact, _) = run_host(
            &HostSimConfig {
                engine: EngineMode::EventDriven,
                ..cfg
            },
            &events,
            false,
        )
        .unwrap();
        let e_last = exact.samples.last().unwrap();
        assert_eq!(last.offline_blocks, e_last.offline_blocks);
        assert!((last.deep_pd_fraction - e_last.deep_pd_fraction).abs() < 1e-12);
    }

    #[test]
    fn replay_is_exact_when_every_period_has_events() {
        // The Azure stream keeps every period busy, so the quiet gate never
        // opens and epoch replay degenerates to the exact engine.
        let events = short_events();
        let (replay, _) = run_host(
            &short_cfg(EngineMode::EpochReplay(Default::default())),
            &events,
            false,
        )
        .unwrap();
        let (exact, _) = run_host(&short_cfg(EngineMode::EventDriven), &events, false).unwrap();
        if replay.replayed_periods == 0 {
            assert_eq!(replay.samples, exact.samples);
        } else {
            // If some periods did go quiet, the means must still agree
            // closely (replay only skips settled periods).
            assert!((replay.mean_deep_pd_fraction() - exact.mean_deep_pd_fraction()).abs() < 0.02);
        }
    }
}
