//! The cluster placement/consolidation scheduler (phase 1 of a fleet run).
//!
//! Scheduling is cheap and inherently sequential (every placement decision
//! depends on the cluster state the previous one left behind), so it runs
//! serially over scheduler ticks and produces, for every host, the exact
//! VM lifecycle event stream that host's co-simulation (phase 2, sharded
//! across workers) will replay. All state lives in index-ordered vectors —
//! no hash maps — so the schedule is a pure function of the configuration.

use gd_types::fleet::{FleetConfig, FleetPlacement, FleetStats};
use gd_types::{GdError, Result};
use gd_verify::fleet::{FleetObs, HostObs};
use gd_workloads::cluster::{synthesize_cluster, ClusterConfig};
use gd_workloads::{VmEvent, VmEventKind, VmSpec};

/// Number of OS families in the Azure VM population (see
/// [`gd_workloads::azure`]: `os_type` is sampled from `0..4`).
const OS_TYPES: usize = 4;

/// Scheduler-side accounting for one host.
#[derive(Debug, Clone, Default)]
struct HostState {
    used_vcpus: u32,
    used_mem_gb: u64,
    /// Running VMs per OS family (drives KSM-aware co-location).
    os_count: [u32; OS_TYPES],
    /// Running VMs: `(stop_deadline_s, vm)`; swept every tick.
    running: Vec<(u64, VmSpec)>,
    /// Sum over ticks of `used_mem_gb` (for the per-host mean).
    used_gb_ticks: u64,
}

/// One queued VM: `(arrival_tick, vm)`.
type Queued = (u64, VmSpec);

/// The fleet schedule: per-host event streams plus cluster accounting.
#[derive(Debug, Clone)]
pub struct FleetSchedule {
    /// Per-host VM lifecycle events, time-ordered (stops before starts
    /// within a tick, matching the single-host synthesizer).
    pub host_events: Vec<Vec<VmEvent>>,
    /// VM accounting, conservation-checked.
    pub stats: FleetStats,
    /// `(time_s, cluster_used_fraction)` per scheduler tick: scheduled
    /// memory over total installed capacity (before KSM).
    pub utilization: Vec<(u64, f64)>,
    /// Per-host mean scheduled-memory fraction over the run (feeds the
    /// epoch-replay engine's analytic host surrogate).
    pub host_mean_used: Vec<f64>,
}

impl FleetSchedule {
    /// Mean of the cluster utilization series.
    pub fn mean_utilization(&self) -> f64 {
        if self.utilization.is_empty() {
            return 0.0;
        }
        self.utilization.iter().map(|(_, u)| u).sum::<f64>() / self.utilization.len() as f64
    }
}

/// Picks a host for `vm` under `cfg.placement`, or `None` when no host has
/// room. `mem_cap_gb` is the consolidation cap (max_util × capacity).
fn place(
    cfg: &FleetConfig,
    hosts: &[HostState],
    vm: &VmSpec,
    vcpu_cap: u32,
    mem_cap_gb: u64,
) -> Option<usize> {
    let fits = |h: &HostState| {
        h.used_vcpus + vm.vcpus <= vcpu_cap && h.used_mem_gb + vm.mem_gb as u64 <= mem_cap_gb
    };
    match cfg.placement {
        FleetPlacement::FirstFit => hosts.iter().position(fits),
        FleetPlacement::BestFit => hosts
            .iter()
            .enumerate()
            .filter(|(_, h)| fits(h))
            // Tightest fit: least memory headroom after placement. min_by_key
            // takes the first minimum, so ties break toward the lowest index.
            .min_by_key(|(_, h)| mem_cap_gb - h.used_mem_gb - vm.mem_gb as u64)
            .map(|(i, _)| i),
        FleetPlacement::KsmAware => hosts
            .iter()
            .enumerate()
            .filter(|(_, h)| fits(h))
            // Densest same-OS co-location first (more OS-image pages for
            // KSM to merge), then tightest fit, then lowest index.
            .min_by_key(|(_, h)| {
                let same_os = h.os_count[vm.os_type as usize % OS_TYPES];
                (
                    u32::MAX - same_os,
                    mem_cap_gb - h.used_mem_gb - vm.mem_gb as u64,
                )
            })
            .map(|(i, _)| i),
    }
}

/// Runs the scheduler over the synthesized cluster arrival stream.
///
/// # Errors
///
/// Returns [`GdError::InvalidConfig`] for a degenerate configuration, and
/// propagates invariant violations when `verify` is
/// [`gd_verify::Mode::Strict`] (the conservation and capacity invariants
/// are checked after every scheduler tick).
pub fn schedule_fleet(cfg: &FleetConfig, verify: Option<gd_verify::Mode>) -> Result<FleetSchedule> {
    if cfg.hosts == 0 || cfg.schedule_period_s == 0 || cfg.replay_stride == 0 {
        return Err(GdError::InvalidConfig(
            "fleet needs hosts >= 1, schedule_period_s >= 1, replay_stride >= 1".into(),
        ));
    }
    if !(0.0..=1.0).contains(&cfg.max_util) {
        return Err(GdError::InvalidConfig(format!(
            "max_util must be in [0, 1], got {}",
            cfg.max_util
        )));
    }
    let arrivals = synthesize_cluster(&ClusterConfig {
        duration_s: cfg.duration_s,
        schedule_period_s: cfg.schedule_period_s,
        arrivals_per_tick: cfg.arrivals_per_tick_per_host * cfg.hosts as f64,
        seed: cfg.seed,
    });
    let vcpu_cap = cfg.host_cores * 2;
    let mem_cap_gb = (cfg.host_capacity_gb as f64 * cfg.max_util).floor() as u64;
    let mut checker = verify.map(gd_verify::fleet::fleet_checker);

    let mut hosts: Vec<HostState> = vec![HostState::default(); cfg.hosts];
    let mut host_events: Vec<Vec<VmEvent>> = vec![Vec::new(); cfg.hosts];
    let mut queue: Vec<Queued> = Vec::new();
    let mut stats = FleetStats::default();
    let mut utilization = Vec::new();
    let mut arrival_idx = 0usize;
    let ticks = cfg.ticks();
    for tick in 0..=ticks {
        let t = tick * cfg.schedule_period_s;
        // 1. Departures: lifetime expired at or before this tick.
        for (hi, host) in hosts.iter_mut().enumerate() {
            let mut still = Vec::with_capacity(host.running.len());
            for (deadline, vm) in host.running.drain(..) {
                if t >= deadline {
                    host.used_vcpus -= vm.vcpus;
                    host.used_mem_gb -= vm.mem_gb as u64;
                    host.os_count[vm.os_type as usize % OS_TYPES] -= 1;
                    stats.retired += 1;
                    host_events[hi].push(VmEvent {
                        time_s: t,
                        kind: VmEventKind::Stop,
                        vm,
                    });
                } else {
                    still.push((deadline, vm));
                }
            }
            host.running = still;
        }
        // 2. New arrivals join the queue.
        while arrival_idx < arrivals.len() && arrivals[arrival_idx].time_s <= t {
            queue.push((tick, arrivals[arrival_idx].vm.clone()));
            stats.arrivals += 1;
            arrival_idx += 1;
        }
        // 3. FIFO placement under the consolidation cap.
        let mut waiting = Vec::with_capacity(queue.len());
        for (arrived, vm) in queue.drain(..) {
            match place(cfg, &hosts, &vm, vcpu_cap, mem_cap_gb) {
                Some(hi) => {
                    let host = &mut hosts[hi];
                    host.used_vcpus += vm.vcpus;
                    host.used_mem_gb += vm.mem_gb as u64;
                    host.os_count[vm.os_type as usize % OS_TYPES] += 1;
                    host.running.push((t + vm.lifetime_s, vm.clone()));
                    stats.placed += 1;
                    host_events[hi].push(VmEvent {
                        time_s: t,
                        kind: VmEventKind::Start,
                        vm,
                    });
                }
                None => waiting.push((arrived, vm)),
            }
        }
        // 4. Patience: stale queue entries give up (their request went to
        // another cluster).
        stats.abandoned += waiting
            .extract_if(.., |(arrived, _)| {
                tick - *arrived >= cfg.queue_patience_ticks as u64
            })
            .count() as u64;
        queue = waiting;
        // 5. Accounting + invariants.
        let running: u64 = hosts.iter().map(|h| h.running.len() as u64).sum();
        let hosts_used = hosts.iter().filter(|h| !h.running.is_empty()).count();
        stats.peak_running = stats.peak_running.max(running);
        stats.peak_hosts_used = stats.peak_hosts_used.max(hosts_used);
        let used_gb: u64 = hosts.iter().map(|h| h.used_mem_gb).sum();
        utilization.push((
            t,
            used_gb as f64 / (cfg.host_capacity_gb * cfg.hosts as u64) as f64,
        ));
        for h in &mut hosts {
            h.used_gb_ticks += h.used_mem_gb;
        }
        if let Some(checker) = &mut checker {
            let obs = FleetObs {
                arrivals: stats.arrivals,
                placed: stats.placed,
                retired: stats.retired,
                abandoned: stats.abandoned,
                running,
                queued: queue.len() as u64,
                hosts: hosts
                    .iter()
                    .enumerate()
                    .map(|(i, h)| HostObs {
                        host: i,
                        used_gb: h.used_mem_gb,
                        capacity_gb: cfg.host_capacity_gb,
                        used_vcpus: h.used_vcpus,
                        vcpu_cap,
                    })
                    .collect(),
            };
            checker.run(&obs)?;
        }
    }
    stats.running_at_end = hosts.iter().map(|h| h.running.len() as u64).sum();
    stats.queued_at_end = queue.len() as u64;
    debug_assert!(stats.conserved(), "scheduler broke VM conservation");
    let samples = (ticks + 1) as f64;
    let host_mean_used = hosts
        .iter()
        .map(|h| h.used_gb_ticks as f64 / samples / cfg.host_capacity_gb as f64)
        .collect();
    Ok(FleetSchedule {
        host_events,
        stats,
        utilization,
        host_mean_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_types::fleet::FleetConfig;

    #[test]
    fn conservation_holds_under_strict_verification() {
        for placement in [
            FleetPlacement::FirstFit,
            FleetPlacement::BestFit,
            FleetPlacement::KsmAware,
        ] {
            let cfg = FleetConfig {
                placement,
                ..FleetConfig::small_test()
            };
            let s = schedule_fleet(&cfg, Some(gd_verify::Mode::Strict)).expect("schedule");
            assert!(s.stats.conserved(), "{placement:?}: {:?}", s.stats);
            assert!(s.stats.placed > 0, "{placement:?} placed nothing");
        }
    }

    #[test]
    fn deterministic_and_independent_of_verification() {
        let cfg = FleetConfig::small_test();
        let a = schedule_fleet(&cfg, None).unwrap();
        let b = schedule_fleet(&cfg, Some(gd_verify::Mode::Strict)).unwrap();
        assert_eq!(a.host_events, b.host_events);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.utilization, b.utilization);
    }

    #[test]
    fn events_per_host_are_time_ordered_and_balanced() {
        let s = schedule_fleet(&FleetConfig::small_test(), None).unwrap();
        for (hi, events) in s.host_events.iter().enumerate() {
            assert!(
                events.windows(2).all(|w| w[0].time_s <= w[1].time_s),
                "host {hi} events out of order"
            );
            let starts = events
                .iter()
                .filter(|e| e.kind == VmEventKind::Start)
                .count();
            let stops = events
                .iter()
                .filter(|e| e.kind == VmEventKind::Stop)
                .count();
            assert!(
                stops <= starts,
                "host {hi}: {stops} stops vs {starts} starts"
            );
        }
    }

    #[test]
    fn lower_max_util_spreads_load_wider() {
        let tight = schedule_fleet(
            &FleetConfig {
                max_util: 0.95,
                hosts: 16,
                ..FleetConfig::small_test()
            },
            None,
        )
        .unwrap();
        let loose = schedule_fleet(
            &FleetConfig {
                max_util: 0.40,
                hosts: 16,
                ..FleetConfig::small_test()
            },
            None,
        )
        .unwrap();
        // A lower cap forces the same arrivals across more hosts.
        assert!(
            loose.stats.peak_hosts_used >= tight.stats.peak_hosts_used,
            "loose {} vs tight {}",
            loose.stats.peak_hosts_used,
            tight.stats.peak_hosts_used
        );
    }

    #[test]
    fn ksm_aware_co_locates_same_os() {
        // Count same-OS adjacency: for each host, sum over OS families of
        // C(n, 2) pairs. KSM-aware placement must produce at least as many
        // same-OS pairs as plain best-fit on the same stream.
        let pairs = |placement: FleetPlacement| -> u64 {
            let cfg = FleetConfig {
                placement,
                hosts: 12,
                ..FleetConfig::small_test()
            };
            let s = schedule_fleet(&cfg, None).unwrap();
            // Reconstruct peak same-OS pair count from the event streams.
            let mut total = 0u64;
            for events in &s.host_events {
                let mut live = [0u64; OS_TYPES];
                let mut best = 0u64;
                for e in events {
                    let os = e.vm.os_type as usize % OS_TYPES;
                    match e.kind {
                        VmEventKind::Start => live[os] += 1,
                        VmEventKind::Stop => live[os] -= 1,
                    }
                    let now: u64 = live.iter().map(|n| n * n.saturating_sub(1) / 2).sum();
                    best = best.max(now);
                }
                total += best;
            }
            total
        };
        let ksm_aware = pairs(FleetPlacement::KsmAware);
        let best_fit = pairs(FleetPlacement::BestFit);
        assert!(
            ksm_aware >= best_fit,
            "ksm-aware {ksm_aware} vs best-fit {best_fit}"
        );
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(schedule_fleet(
            &FleetConfig {
                hosts: 0,
                ..FleetConfig::small_test()
            },
            None
        )
        .is_err());
        assert!(schedule_fleet(
            &FleetConfig {
                max_util: 1.5,
                ..FleetConfig::small_test()
            },
            None
        )
        .is_err());
    }
}
