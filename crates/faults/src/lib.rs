//! Deterministic fault injection (`gd-faults`).
//!
//! The co-sim's recovery paths — retry with backoff in the daemon,
//! transactional rollback in `mmsim`, degraded (shallow-PD) mode for
//! groups that keep NACKing deep power-down — only earn their keep when
//! something actually goes wrong. This crate supplies the "going wrong"
//! half as a *pure function of configuration and seed*:
//!
//! - A [`FaultPlan`] names the injection sites ([`FaultSite`]) and gives
//!   each a [`FaultTrigger`] (never / probability / every-Nth / one-shot).
//! - [`FaultPlan::build`] turns the plan into a [`FaultInjector`] whose
//!   per-site decision streams are derived from the experiment seed via
//!   [`gd_types::rng::derive_seed`], so two sites never share a stream
//!   and adding a site cannot perturb another site's decisions.
//!
//! Determinism contract: every decision is drawn by the component that
//! owns the injector, in the order its own simulation advances. Nothing
//! here reads wall-clock time or entropy, so a faulted run is
//! byte-identical across `--jobs` values and engine modes, and a plan
//! with all triggers at [`FaultTrigger::Never`] (or probability 0) draws
//! no random numbers at all — the injection layer is zero-cost-off.

use gd_types::rng::{derive_seed, StdRng};
use gd_types::time::SimTime;

/// Extra MRS handshake latency charged when [`FaultSite::MrsAckDelay`]
/// fires (the DIMM acknowledges the deep-PD register write late).
pub const MRS_ACK_DELAY: SimTime = SimTime::from_micros(1);

/// Multiplier on per-page migration latency when
/// [`FaultSite::MigrationSlow`] fires (compaction contention).
pub const MIGRATION_SLOWDOWN: u64 = 8;

/// Multiplier on tXP/tXS when [`FaultSite::WakeStretch`] fires
/// (worst-case wake from deep power-down).
pub const WAKE_STRETCH: u64 = 4;

/// A place in the stack where a fault can be injected.
///
/// Sites are stable identifiers: the per-site RNG stream is derived from
/// [`FaultSite::label`], so renaming a site changes its stream (and is a
/// snapshot-visible event), while adding a new site leaves every
/// existing stream untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultSite {
    /// `mmsim`: a block that looks movable turns out to hold a pinned
    /// page at offline time → EBUSY.
    OfflinePinned,
    /// `mmsim`: migration aborts partway through a block; already-placed
    /// destination frames must be rolled back → EAGAIN.
    MigrationAbort,
    /// `mmsim`: migration succeeds but each page costs
    /// [`MIGRATION_SLOWDOWN`]× the nominal copy latency.
    MigrationSlow,
    /// daemon: the DIMM NACKs a deep-PD entry for a group (MRS write
    /// rejected); the group stays in shallow power-down.
    DeepPdEntryNack,
    /// daemon: deep-PD entry succeeds but the MRS ack arrives
    /// [`MRS_ACK_DELAY`] late.
    MrsAckDelay,
    /// daemon: waking a group (or its sense-amp buddy) for an online
    /// fails transiently and must be retried.
    BuddyWakeFail,
    /// dram: a wake from deep power-down takes [`WAKE_STRETCH`]× the
    /// nominal tXP/tXS.
    WakeStretch,
}

impl FaultSite {
    /// Every site, in stream-derivation order.
    pub const ALL: [FaultSite; 7] = [
        FaultSite::OfflinePinned,
        FaultSite::MigrationAbort,
        FaultSite::MigrationSlow,
        FaultSite::DeepPdEntryNack,
        FaultSite::MrsAckDelay,
        FaultSite::BuddyWakeFail,
        FaultSite::WakeStretch,
    ];

    /// Stable label: seed-derivation key and telemetry name segment.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::OfflinePinned => "offline-pinned",
            FaultSite::MigrationAbort => "migration-abort",
            FaultSite::MigrationSlow => "migration-slow",
            FaultSite::DeepPdEntryNack => "deep-pd-entry-nack",
            FaultSite::MrsAckDelay => "mrs-ack-delay",
            FaultSite::BuddyWakeFail => "buddy-wake-fail",
            FaultSite::WakeStretch => "wake-stretch",
        }
    }

    fn index(self) -> usize {
        FaultSite::ALL
            .iter()
            .position(|s| *s == self)
            .expect("invariant: FaultSite::ALL covers every variant")
    }
}

/// When a site fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultTrigger {
    /// Site is disarmed; checks draw nothing from the stream.
    Never,
    /// Each check fires independently with this probability. A value
    /// `<= 0.0` behaves exactly like [`FaultTrigger::Never`] (no draw).
    Prob(f64),
    /// Fires on every Nth check (1-based: `EveryNth(3)` fires on checks
    /// 3, 6, 9, …). `EveryNth(0)` never fires.
    EveryNth(u64),
    /// Fires on exactly the Nth check (1-based), then never again.
    /// `OneShot(0)` never fires.
    OneShot(u64),
}

impl FaultTrigger {
    /// True when the trigger can ever fire.
    fn armed(self) -> bool {
        match self {
            FaultTrigger::Never => false,
            FaultTrigger::Prob(p) => p > 0.0,
            FaultTrigger::EveryNth(n) | FaultTrigger::OneShot(n) => n > 0,
        }
    }
}

/// A declarative fault plan: one trigger per site.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    triggers: [FaultTrigger; FaultSite::ALL.len()],
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// A plan with every site disarmed.
    pub fn none() -> Self {
        FaultPlan {
            triggers: [FaultTrigger::Never; FaultSite::ALL.len()],
        }
    }

    /// A plan arming every site with the same per-check probability.
    /// `rate <= 0.0` yields an inactive plan (zero-cost-off).
    pub fn uniform(rate: f64) -> Self {
        let mut plan = FaultPlan::none();
        for site in FaultSite::ALL {
            plan = plan.with(site, FaultTrigger::Prob(rate));
        }
        plan
    }

    /// Sets one site's trigger (builder style).
    #[must_use]
    pub fn with(mut self, site: FaultSite, trigger: FaultTrigger) -> Self {
        self.triggers[site.index()] = trigger;
        self
    }

    /// True when any site can ever fire.
    pub fn is_active(&self) -> bool {
        self.triggers.iter().any(|t| t.armed())
    }

    /// Instantiates the plan with per-site streams derived from `seed`.
    pub fn build(&self, seed: u64) -> FaultInjector {
        let streams =
            FaultSite::ALL.map(|site| StdRng::seed_from_u64(derive_seed(seed, site.label())));
        FaultInjector {
            plan: self.clone(),
            streams,
            checks: [0; FaultSite::ALL.len()],
            fired: [0; FaultSite::ALL.len()],
        }
    }
}

/// A built fault plan: per-site seeded decision streams plus counters.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    plan: FaultPlan,
    streams: [StdRng; FaultSite::ALL.len()],
    checks: [u64; FaultSite::ALL.len()],
    fired: [u64; FaultSite::ALL.len()],
}

impl FaultInjector {
    /// Asks whether `site` fires at this check point. Disarmed sites
    /// return `false` without advancing any stream.
    pub fn should_fire(&mut self, site: FaultSite) -> bool {
        let i = site.index();
        let trigger = self.plan.triggers[i];
        if !trigger.armed() {
            return false;
        }
        self.checks[i] += 1;
        let fire = match trigger {
            FaultTrigger::Never => false,
            FaultTrigger::Prob(p) => self.streams[i].gen_bool(p),
            FaultTrigger::EveryNth(n) => self.checks[i].is_multiple_of(n),
            FaultTrigger::OneShot(n) => self.checks[i] == n,
        };
        if fire {
            self.fired[i] += 1;
        }
        fire
    }

    /// True when any site can ever fire (mirrors [`FaultPlan::is_active`]).
    pub fn is_active(&self) -> bool {
        self.plan.is_active()
    }

    /// How many times `site` has been checked.
    pub fn checks(&self, site: FaultSite) -> u64 {
        self.checks[site.index()]
    }

    /// How many times `site` has fired.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.fired[site.index()]
    }

    /// Total faults injected across all sites.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().sum()
    }

    /// Exports per-site check/fire counters as
    /// `{scope}.faults.<site>.checks` / `.fired` for every site that has
    /// been checked at least once. An inactive injector exports nothing,
    /// so a rate-0 run's telemetry is byte-identical to a no-faults run.
    pub fn export_telemetry(&self, tele: &mut gd_obs::Telemetry, scope: &str) {
        if !self.is_active() {
            return;
        }
        for site in FaultSite::ALL {
            let i = site.index();
            if self.checks[i] == 0 {
                continue;
            }
            let label = site.label();
            tele.registry
                .counter_add(&format!("{scope}.faults.{label}.checks"), self.checks[i]);
            tele.registry
                .counter_add(&format!("{scope}.faults.{label}.fired"), self.fired[i]);
        }
    }
}

/// Bounded exponential backoff in sim-time, shared by the daemon's
/// recovery paths: a group whose deep-PD entry is NACKed is quarantined
/// (not retried) for [`RetryPolicy::backoff_after`] the failure, and
/// after [`RetryPolicy::degrade_after`] consecutive failures it is
/// permanently degraded to shallow power-down instead of oscillating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum transient retries for a single operation (buddy wake).
    pub max_retries: u32,
    /// Quarantine after the first failure; doubles per consecutive
    /// failure.
    pub base_backoff: SimTime,
    /// Quarantine cap.
    pub max_backoff: SimTime,
    /// Consecutive deep-PD failures before a group is degraded to
    /// shallow power-down for the rest of the run.
    pub degrade_after: u32,
}

impl RetryPolicy {
    /// Defaults sized for the co-sim's 1 s monitoring epochs: first
    /// backoff spans two epochs, the cap stays well under the shortest
    /// benchmark runtime, and degradation needs a persistent failure.
    pub fn paper_default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: SimTime::from_secs(2),
            max_backoff: SimTime::from_secs(60),
            degrade_after: 5,
        }
    }

    /// Quarantine length after `consecutive_failures` (>= 1) failures:
    /// `base * 2^(n-1)`, capped at [`RetryPolicy::max_backoff`].
    pub fn backoff_after(&self, consecutive_failures: u32) -> SimTime {
        if consecutive_failures == 0 {
            return SimTime::from_nanos(0);
        }
        let exp = consecutive_failures.saturating_sub(1).min(32);
        let mut backoff = self.base_backoff;
        for _ in 0..exp {
            backoff = backoff * 2;
            if backoff >= self.max_backoff {
                return self.max_backoff;
            }
        }
        backoff.min(self.max_backoff)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_is_inactive_and_never_draws() {
        let mut inj = FaultPlan::none().build(7);
        assert!(!inj.is_active());
        for site in FaultSite::ALL {
            for _ in 0..100 {
                assert!(!inj.should_fire(site));
            }
            assert_eq!(inj.checks(site), 0, "disarmed site must not count checks");
        }
        assert_eq!(inj.total_fired(), 0);

        // Probability zero behaves identically to Never.
        let mut zero = FaultPlan::uniform(0.0).build(7);
        assert!(!zero.is_active());
        assert!(!zero.should_fire(FaultSite::MigrationAbort));
        assert_eq!(zero.checks(FaultSite::MigrationAbort), 0);
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan::uniform(0.3);
        let mut a = plan.build(42);
        let mut b = plan.build(42);
        for _ in 0..500 {
            for site in FaultSite::ALL {
                assert_eq!(a.should_fire(site), b.should_fire(site));
            }
        }
        assert!(a.total_fired() > 0, "rate 0.3 over 3500 checks must fire");
        assert_eq!(a.total_fired(), b.total_fired());
    }

    #[test]
    fn site_streams_are_independent() {
        let plan = FaultPlan::uniform(0.5);
        // Checking extra sites in one injector must not perturb another
        // site's stream.
        let mut interleaved = plan.build(9);
        let mut solo = plan.build(9);
        let mut a_decisions = Vec::new();
        for _ in 0..200 {
            interleaved.should_fire(FaultSite::WakeStretch);
            a_decisions.push(interleaved.should_fire(FaultSite::OfflinePinned));
        }
        for decision in a_decisions {
            assert_eq!(decision, solo.should_fire(FaultSite::OfflinePinned));
        }
    }

    #[test]
    fn every_nth_and_one_shot_schedules() {
        let mut inj = FaultPlan::none()
            .with(FaultSite::MigrationAbort, FaultTrigger::EveryNth(3))
            .with(FaultSite::DeepPdEntryNack, FaultTrigger::OneShot(2))
            .build(1);
        assert!(inj.is_active());
        let fires: Vec<bool> = (0..9)
            .map(|_| inj.should_fire(FaultSite::MigrationAbort))
            .collect();
        assert_eq!(
            fires,
            [false, false, true, false, false, true, false, false, true]
        );
        let shots: Vec<bool> = (0..5)
            .map(|_| inj.should_fire(FaultSite::DeepPdEntryNack))
            .collect();
        assert_eq!(shots, [false, true, false, false, false]);
        assert_eq!(inj.fired(FaultSite::MigrationAbort), 3);
        assert_eq!(inj.fired(FaultSite::DeepPdEntryNack), 1);
        assert_eq!(inj.total_fired(), 4);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy::paper_default();
        assert_eq!(policy.backoff_after(0), SimTime::from_nanos(0));
        assert_eq!(policy.backoff_after(1), SimTime::from_secs(2));
        assert_eq!(policy.backoff_after(2), SimTime::from_secs(4));
        assert_eq!(policy.backoff_after(3), SimTime::from_secs(8));
        assert_eq!(policy.backoff_after(5), SimTime::from_secs(32));
        assert_eq!(policy.backoff_after(6), SimTime::from_secs(60));
        assert_eq!(policy.backoff_after(60), SimTime::from_secs(60));
    }

    #[test]
    fn inactive_injector_exports_nothing() {
        let mut tele = gd_obs::Telemetry::new();
        let mut inj = FaultPlan::uniform(0.0).build(3);
        inj.should_fire(FaultSite::OfflinePinned);
        inj.export_telemetry(&mut tele, "mm");
        let rendered = tele.render_jsonl("p");
        assert!(
            !rendered.contains("faults"),
            "inactive injector must not leave telemetry keys: {rendered}"
        );

        let mut active = FaultPlan::uniform(1.0).build(3);
        assert!(active.should_fire(FaultSite::OfflinePinned));
        active.export_telemetry(&mut tele, "mm");
        assert_eq!(tele.registry.counter("mm.faults.offline-pinned.fired"), 1);
        assert_eq!(tele.registry.counter("mm.faults.offline-pinned.checks"), 1);
    }
}
