//! Workload synthesis for the GreenDIMM reproduction.
//!
//! The paper evaluates with SPEC CPU2006/2017, HiBench, CloudSuite, and the
//! Microsoft Azure VM trace — none of which can be run or redistributed
//! here. This crate substitutes statistical models that pin the published
//! characteristics the evaluation actually depends on:
//!
//! * [`profile`] — per-benchmark memory profiles (footprint, MPKI, locality,
//!   footprint dynamics);
//! * [`trace`] — request-trace generation for the cycle-level DRAM
//!   simulator;
//! * [`cpu`] — the MLP-aware runtime model converting memory latency into
//!   execution time;
//! * [`azure`] — the VM-trace synthesizer (arrivals, lifetimes,
//!   consolidation constraints, KSM content model);
//! * [`cluster`] — the cluster-scale arrival stream behind the fleet
//!   experiments (same VM population and diurnal shape, placement left to
//!   the `gd-fleet` scheduler).
//!
//! # Example
//!
//! ```
//! use gd_workloads::{by_name, TraceGenerator};
//!
//! let mcf = by_name("mcf").expect("built-in profile");
//! let mut gen = TraceGenerator::new(mcf, 42);
//! let trace = gen.take(1000);
//! assert_eq!(trace.len(), 1000);
//! ```

pub mod azure;
pub mod cluster;
pub mod cpu;
pub mod profile;
pub mod trace;

pub use azure::{AzureConfig, AzureTrace, VmEvent, VmEventKind, VmSpec};
pub use cluster::{synthesize_cluster, ClusterConfig, VmArrival};
pub use cpu::{estimate_runtime, slowdown, RuntimeEstimate};
pub use profile::{
    by_name, energy_figure_set, spec2006_offlining_set, AppProfile, FootprintDynamics, Suite,
};
pub use trace::{TraceGenerator, CPU_FREQ_MHZ, MEM_FREQ_MHZ};
