//! Benchmark profiles: the published memory characteristics of the paper's
//! workloads, used to synthesize both request traces (for the cycle-level
//! DRAM simulator) and footprint-over-time series (for the epoch-level
//! co-simulation).
//!
//! The evaluation distinguishes workloads along exactly two axes — memory
//! intensity (MPKI) and footprint dynamics (stable vs. churning) — so the
//! profiles pin those published characteristics per benchmark.

/// Benchmark suite, for grouping in figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2006.
    Spec2006,
    /// SPEC CPU2017.
    Spec2017,
    /// HiBench (MapReduce-style data analytics).
    HiBench,
    /// CloudSuite (latency-critical scale-out services).
    CloudSuite,
}

/// How an application's resident footprint evolves over its run (drives
/// how often GreenDIMM must on/off-line blocks: Figs. 6–8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FootprintDynamics {
    /// Allocates its working set at start and keeps it (mcf, lbm,
    /// libquantum, the CloudSuite services).
    Stable,
    /// Repeatedly grows toward the peak and shrinks back to `min_fraction`
    /// of it with the given period (gcc and soplex: per-function/per-LP
    /// allocation churn).
    Churn {
        /// Fraction of the peak footprint retained at the trough.
        min_fraction: f64,
        /// Grow/shrink cycle period in seconds.
        period_s: f64,
    },
    /// Grows linearly from near zero to the peak over the run (HiBench-style
    /// data loading).
    Ramp,
}

/// One benchmark's memory behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Canonical name (e.g. "mcf", "403.gcc", "data-caching").
    pub name: &'static str,
    /// Suite the benchmark belongs to.
    pub suite: Suite,
    /// Peak resident footprint in MiB.
    pub footprint_mib: u64,
    /// Last-level-cache misses per kilo-instruction (memory intensity).
    pub mpki: f64,
    /// Fraction of memory traffic that is reads.
    pub read_fraction: f64,
    /// Probability that an access falls in an open row (spatial locality).
    pub row_locality: f64,
    /// Memory-level parallelism: average outstanding misses.
    pub mlp: f64,
    /// Base (non-memory) cycles per instruction.
    pub cpi_base: f64,
    /// Instruction count for one run, in billions (sets nominal runtime).
    pub giga_instructions: f64,
    /// Footprint dynamics.
    pub dynamics: FootprintDynamics,
    /// Whether the workload is latency-critical (tail-latency checks).
    pub latency_critical: bool,
}

impl AppProfile {
    /// Peak footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_mib << 20
    }

    /// Peak footprint in 4 KB pages.
    pub fn footprint_pages(&self) -> u64 {
        self.footprint_bytes() / 4096
    }

    /// True for high-MPKI (memory-intensive) benchmarks, the ones whose
    /// runtime interleaving improves most (Fig. 3a).
    pub fn is_memory_intensive(&self) -> bool {
        self.mpki >= 10.0
    }

    /// DRAM traffic amplification from hardware stream prefetchers, which
    /// demand-miss MPKI does not include. Streaming memory-intensive
    /// workloads (high locality, high MPKI) see substantial prefetch
    /// traffic — the reason a single un-interleaved channel saturates so
    /// badly on real hardware (Fig. 3a's 3.8× for lbm).
    pub fn prefetch_factor(&self) -> f64 {
        if self.mpki >= 20.0 && self.row_locality >= 0.7 {
            2.5
        } else if self.mpki >= 20.0 {
            1.5
        } else {
            1.0
        }
    }

    /// The resident footprint fraction (of peak) at time `t` seconds into
    /// the run.
    pub fn footprint_fraction_at(&self, t_s: f64) -> f64 {
        match self.dynamics {
            FootprintDynamics::Stable => 1.0,
            FootprintDynamics::Churn {
                min_fraction,
                period_s,
            } => {
                // Triangle wave between min_fraction and 1.0.
                let phase = (t_s / period_s).fract();
                let tri = if phase < 0.5 {
                    phase * 2.0
                } else {
                    2.0 - phase * 2.0
                };
                min_fraction + (1.0 - min_fraction) * tri
            }
            FootprintDynamics::Ramp => (t_s / 60.0).clamp(0.05, 1.0),
        }
    }
}

/// The six SPEC CPU2006 benchmarks used in Figs. 6–8 (block-size and
/// off-lining-failure studies).
pub fn spec2006_offlining_set() -> Vec<AppProfile> {
    ["mcf", "gcc", "soplex", "lbm", "libquantum", "povray"]
        .iter()
        .map(|n| by_name(n).expect("built-in profile"))
        .collect()
}

/// The full workload set of Figs. 9–11 (SPEC CPU2006/2017 + data-center).
pub fn energy_figure_set() -> Vec<AppProfile> {
    [
        "mcf",
        "403.gcc",
        "soplex",
        "462.libquantum",
        "470.lbm",
        "povray",
        "500.perlbench",
        "502.gcc",
        "519.lbm",
        "ml_linear",
        "data-caching",
        "data-serving",
        "web-serving",
    ]
    .iter()
    .map(|n| by_name(n).expect("built-in profile"))
    .collect()
}

/// Looks up a built-in profile by name. `"gcc"` and `"403.gcc"` (etc.) are
/// synonyms for the 2006 editions.
pub fn by_name(name: &str) -> Option<AppProfile> {
    let p = |name,
             suite,
             footprint_mib,
             mpki,
             read_fraction,
             row_locality,
             mlp,
             cpi_base,
             giga_instructions,
             dynamics,
             latency_critical| AppProfile {
        name,
        suite,
        footprint_mib,
        mpki,
        read_fraction,
        row_locality,
        mlp,
        cpi_base,
        giga_instructions,
        dynamics,
        latency_critical,
    };
    use FootprintDynamics::{Churn, Ramp, Stable};
    use Suite::{CloudSuite, HiBench, Spec2006, Spec2017};
    let prof = match name {
        "mcf" | "429.mcf" => p(
            "mcf", Spec2006, 1700, 68.0, 0.75, 0.45, 6.0, 0.9, 350.0, Stable, false,
        ),
        "gcc" | "403.gcc" => p(
            "403.gcc",
            Spec2006,
            900,
            14.0,
            0.70,
            0.60,
            3.0,
            0.8,
            120.0,
            Churn {
                min_fraction: 0.25,
                period_s: 12.0,
            },
            false,
        ),
        "soplex" | "450.soplex" => p(
            "soplex",
            Spec2006,
            600,
            28.0,
            0.80,
            0.55,
            4.0,
            0.8,
            180.0,
            Churn {
                min_fraction: 0.35,
                period_s: 20.0,
            },
            false,
        ),
        "lbm" | "470.lbm" => p(
            "470.lbm", Spec2006, 410, 45.0, 0.60, 0.75, 8.0, 0.7, 280.0, Stable, false,
        ),
        "libquantum" | "462.libquantum" => p(
            // The paper highlights its 64 MB footprint defeating
            // rank-granularity power management under interleaving.
            "462.libquantum",
            Spec2006,
            64,
            26.0,
            0.85,
            0.90,
            10.0,
            0.6,
            420.0,
            Stable,
            false,
        ),
        "povray" | "453.povray" => p(
            "povray", Spec2006, 30, 0.1, 0.80, 0.70, 2.0, 1.1, 300.0, Stable, false,
        ),
        "500.perlbench" | "perlbench" => p(
            "500.perlbench",
            Spec2017,
            210,
            1.2,
            0.75,
            0.65,
            2.5,
            1.0,
            330.0,
            Churn {
                min_fraction: 0.5,
                period_s: 15.0,
            },
            false,
        ),
        "502.gcc" => p(
            "502.gcc",
            Spec2017,
            1350,
            9.0,
            0.70,
            0.60,
            3.0,
            0.85,
            200.0,
            Churn {
                min_fraction: 0.2,
                period_s: 10.0,
            },
            false,
        ),
        "519.lbm" => p(
            "519.lbm", Spec2017, 3200, 42.0, 0.60, 0.75, 8.0, 0.7, 320.0, Stable, false,
        ),
        "ml_linear" | "ml-linear" => p(
            "ml_linear",
            HiBench,
            4800,
            38.0,
            0.72,
            0.65,
            6.0,
            0.8,
            400.0,
            Ramp,
            false,
        ),
        "data-caching" => p(
            "data-caching",
            CloudSuite,
            2600,
            6.0,
            0.85,
            0.50,
            3.0,
            1.2,
            250.0,
            Stable,
            true,
        ),
        "data-serving" => p(
            "data-serving",
            CloudSuite,
            3100,
            8.0,
            0.70,
            0.45,
            3.0,
            1.2,
            250.0,
            Stable,
            true,
        ),
        "web-serving" => p(
            "web-serving",
            CloudSuite,
            1900,
            3.5,
            0.80,
            0.55,
            2.5,
            1.3,
            250.0,
            Stable,
            true,
        ),
        // Additional SPEC CPU2006 profiles for wider sweeps.
        "milc" | "433.milc" => p(
            "433.milc", Spec2006, 680, 30.0, 0.75, 0.70, 6.0, 0.8, 260.0, Stable, false,
        ),
        "omnetpp" | "471.omnetpp" => p(
            "471.omnetpp",
            Spec2006,
            170,
            21.0,
            0.80,
            0.40,
            3.0,
            1.0,
            250.0,
            Stable,
            false,
        ),
        "xalancbmk" | "483.xalancbmk" => p(
            "483.xalancbmk",
            Spec2006,
            430,
            24.0,
            0.85,
            0.45,
            3.5,
            0.9,
            280.0,
            Churn {
                min_fraction: 0.5,
                period_s: 8.0,
            },
            false,
        ),
        "bwaves" | "410.bwaves" => p(
            "410.bwaves",
            Spec2006,
            870,
            19.0,
            0.65,
            0.85,
            7.0,
            0.7,
            300.0,
            Stable,
            false,
        ),
        "gems" | "459.GemsFDTD" => p(
            "459.GemsFDTD",
            Spec2006,
            840,
            25.0,
            0.70,
            0.80,
            7.0,
            0.7,
            290.0,
            Stable,
            false,
        ),
        "sphinx3" | "482.sphinx3" => p(
            "482.sphinx3",
            Spec2006,
            45,
            12.0,
            0.90,
            0.60,
            3.0,
            0.9,
            310.0,
            Stable,
            false,
        ),
        "astar" | "473.astar" => p(
            "473.astar",
            Spec2006,
            330,
            10.0,
            0.85,
            0.40,
            2.5,
            1.0,
            240.0,
            Churn {
                min_fraction: 0.6,
                period_s: 25.0,
            },
            false,
        ),
        "zeusmp" | "434.zeusmp" => p(
            "434.zeusmp",
            Spec2006,
            510,
            8.0,
            0.70,
            0.75,
            5.0,
            0.8,
            270.0,
            Stable,
            false,
        ),
        // Additional SPEC CPU2017 profiles.
        "505.mcf_r" => p(
            "505.mcf_r",
            Spec2017,
            3900,
            55.0,
            0.75,
            0.45,
            6.0,
            0.9,
            380.0,
            Stable,
            false,
        ),
        "520.omnetpp" | "520.omnetpp_r" => p(
            "520.omnetpp",
            Spec2017,
            250,
            18.0,
            0.80,
            0.40,
            3.0,
            1.0,
            260.0,
            Stable,
            false,
        ),
        "523.xalancbmk" | "523.xalancbmk_r" => p(
            "523.xalancbmk",
            Spec2017,
            480,
            20.0,
            0.85,
            0.45,
            3.5,
            0.9,
            290.0,
            Churn {
                min_fraction: 0.5,
                period_s: 8.0,
            },
            false,
        ),
        "549.fotonik3d" | "549.fotonik3d_r" => p(
            "549.fotonik3d",
            Spec2017,
            850,
            35.0,
            0.65,
            0.85,
            8.0,
            0.7,
            310.0,
            Stable,
            false,
        ),
        "554.roms" | "554.roms_r" => p(
            "554.roms", Spec2017, 1050, 28.0, 0.70, 0.80, 7.0, 0.7, 300.0, Stable, false,
        ),
        // Additional HiBench workloads.
        "wordcount" | "hibench-wordcount" => p(
            "wordcount",
            HiBench,
            3200,
            22.0,
            0.80,
            0.70,
            5.0,
            0.9,
            350.0,
            Ramp,
            false,
        ),
        "terasort" | "hibench-terasort" => p(
            "terasort", HiBench, 5600, 33.0, 0.60, 0.65, 6.0, 0.8, 420.0, Ramp, false,
        ),
        "kmeans" | "hibench-kmeans" => p(
            "kmeans",
            HiBench,
            2800,
            26.0,
            0.85,
            0.75,
            6.0,
            0.8,
            380.0,
            Churn {
                min_fraction: 0.7,
                period_s: 30.0,
            },
            false,
        ),
        // Additional CloudSuite services.
        "graph-analytics" => p(
            "graph-analytics",
            CloudSuite,
            4200,
            31.0,
            0.85,
            0.35,
            4.0,
            1.0,
            330.0,
            Ramp,
            false,
        ),
        "media-streaming" => p(
            "media-streaming",
            CloudSuite,
            1400,
            4.0,
            0.90,
            0.80,
            2.5,
            1.2,
            260.0,
            Stable,
            true,
        ),
        _ => return None,
    };
    Some(prof)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_synonyms() {
        assert_eq!(by_name("gcc").unwrap().name, "403.gcc");
        assert_eq!(by_name("403.gcc").unwrap().name, "403.gcc");
        assert!(by_name("no-such-bench").is_none());
    }

    #[test]
    fn extended_catalog_is_complete_and_consistent() {
        let names = [
            "milc",
            "omnetpp",
            "xalancbmk",
            "bwaves",
            "gems",
            "sphinx3",
            "astar",
            "zeusmp",
            "505.mcf_r",
            "520.omnetpp",
            "523.xalancbmk",
            "549.fotonik3d",
            "554.roms",
            "wordcount",
            "terasort",
            "kmeans",
            "graph-analytics",
            "media-streaming",
        ];
        for n in names {
            let p = by_name(n).unwrap_or_else(|| panic!("{n} missing"));
            assert!(p.footprint_mib > 0);
            assert!(p.mpki > 0.0);
            assert!((0.0..=1.0).contains(&p.read_fraction));
            assert!((0.0..=1.0).contains(&p.row_locality));
            assert!(p.mlp >= 1.0);
            assert!(p.cpi_base > 0.0);
        }
    }

    #[test]
    fn prefetch_factor_tiers() {
        // Streaming + intensive: full amplification.
        assert_eq!(by_name("lbm").unwrap().prefetch_factor(), 2.5);
        // Pointer-chasing intensive: partial.
        assert_eq!(by_name("mcf").unwrap().prefetch_factor(), 1.5);
        // CPU-bound: none.
        assert_eq!(by_name("povray").unwrap().prefetch_factor(), 1.0);
    }

    #[test]
    fn latency_critical_extended_services() {
        assert!(by_name("media-streaming").unwrap().latency_critical);
        assert!(!by_name("graph-analytics").unwrap().latency_critical);
    }

    #[test]
    fn libquantum_matches_paper_footprint() {
        let lq = by_name("libquantum").unwrap();
        assert_eq!(lq.footprint_mib, 64);
        assert!(lq.is_memory_intensive());
    }

    #[test]
    fn offlining_set_is_the_papers_six() {
        let set = spec2006_offlining_set();
        assert_eq!(set.len(), 6);
        assert!(set.iter().any(|p| p.name == "povray"));
    }

    #[test]
    fn energy_set_covers_all_suites() {
        let set = energy_figure_set();
        assert_eq!(set.len(), 13);
        for suite in [
            Suite::Spec2006,
            Suite::Spec2017,
            Suite::HiBench,
            Suite::CloudSuite,
        ] {
            assert!(set.iter().any(|p| p.suite == suite), "{suite:?} missing");
        }
    }

    #[test]
    fn churn_footprint_oscillates() {
        let gcc = by_name("gcc").unwrap();
        let samples: Vec<f64> = (0..100)
            .map(|i| gcc.footprint_fraction_at(i as f64 * 0.5))
            .collect();
        let max = samples.iter().cloned().fold(0.0, f64::max);
        let min = samples.iter().cloned().fold(1.0, f64::min);
        assert!(max > 0.9, "max {max}");
        assert!(min < 0.35, "min {min}");
    }

    #[test]
    fn stable_footprint_is_constant() {
        let mcf = by_name("mcf").unwrap();
        assert_eq!(mcf.footprint_fraction_at(0.0), 1.0);
        assert_eq!(mcf.footprint_fraction_at(1234.5), 1.0);
    }

    #[test]
    fn ramp_grows_then_saturates() {
        let ml = by_name("ml_linear").unwrap();
        assert!(ml.footprint_fraction_at(5.0) < ml.footprint_fraction_at(30.0));
        assert_eq!(ml.footprint_fraction_at(61.0), 1.0);
    }

    #[test]
    fn cloudsuite_is_latency_critical() {
        for n in ["data-caching", "data-serving", "web-serving"] {
            assert!(by_name(n).unwrap().latency_critical);
        }
        assert!(!by_name("mcf").unwrap().latency_critical);
    }
}
