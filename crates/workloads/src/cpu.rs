//! A simple MLP-aware CPU runtime model.
//!
//! Converts the memory latency observed by the DRAM simulator into benchmark
//! execution time:
//!
//! `CPI = CPI_base + (MPKI / 1000) × (memory latency in CPU cycles) / MLP`
//!
//! This is the standard first-order model for out-of-order cores: misses
//! overlap up to the measured memory-level parallelism. It is what converts
//! "interleaving reduced average latency 4×" into "lbm ran 3.8× faster"
//! (Fig. 3a) and execution time into energy (Figs. 9–10).

use crate::profile::AppProfile;
use crate::trace::{CPU_FREQ_MHZ, MEM_FREQ_MHZ};

/// Runtime prediction for one benchmark under one memory configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeEstimate {
    /// Effective cycles per instruction.
    pub cpi: f64,
    /// Execution time in seconds.
    pub seconds: f64,
    /// Fraction of peak DRAM bus bandwidth the run sustains.
    pub bandwidth_util: f64,
}

/// Estimates runtime from the average memory read latency (in memory-clock
/// cycles) measured by the DRAM simulator, plus the peak transfer rate for
/// the utilization estimate.
pub fn estimate_runtime(
    profile: &AppProfile,
    avg_mem_latency_memcycles: f64,
    peak_transfers_per_s: f64,
) -> RuntimeEstimate {
    let lat_cpu_cycles = avg_mem_latency_memcycles * (CPU_FREQ_MHZ / MEM_FREQ_MHZ);
    let cpi = profile.cpi_base + profile.mpki / 1000.0 * lat_cpu_cycles / profile.mlp.max(1.0);
    let instructions = profile.giga_instructions * 1e9;
    let seconds = instructions * cpi / (CPU_FREQ_MHZ * 1e6);
    // Transfers generated per second at this CPI.
    let transfers_per_s = instructions / seconds * profile.mpki / 1000.0;
    RuntimeEstimate {
        cpi,
        seconds,
        bandwidth_util: (transfers_per_s / peak_transfers_per_s).clamp(0.0, 1.0),
    }
}

/// Relative slowdown of `slow` vs. `fast` runtime estimates.
pub fn slowdown(slow: &RuntimeEstimate, fast: &RuntimeEstimate) -> f64 {
    slow.seconds / fast.seconds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::by_name;

    #[test]
    fn memory_intensive_apps_speed_up_with_lower_latency() {
        let lbm = by_name("lbm").unwrap();
        let peak = 1e9;
        let slow = estimate_runtime(&lbm, 800.0, peak); // congested, no interleave
        let fast = estimate_runtime(&lbm, 60.0, peak); // interleaved
        let s = slowdown(&slow, &fast);
        assert!(s > 2.0, "lbm-class slowdown {s:.2} should be large");
    }

    #[test]
    fn cpu_bound_apps_are_latency_insensitive() {
        let povray = by_name("povray").unwrap();
        let peak = 1e9;
        let slow = estimate_runtime(&povray, 800.0, peak);
        let fast = estimate_runtime(&povray, 60.0, peak);
        let s = slowdown(&slow, &fast);
        assert!(s < 1.3, "povray slowdown {s:.2} should be near 1");
    }

    #[test]
    fn bandwidth_util_bounded() {
        let mcf = by_name("mcf").unwrap();
        let est = estimate_runtime(&mcf, 100.0, 1e8);
        assert!(est.bandwidth_util > 0.0 && est.bandwidth_util <= 1.0);
    }

    #[test]
    fn runtime_scales_with_instruction_count() {
        let mut a = by_name("mcf").unwrap();
        let base = estimate_runtime(&a, 100.0, 1e9).seconds;
        a.giga_instructions *= 2.0;
        let double = estimate_runtime(&a, 100.0, 1e9).seconds;
        assert!((double / base - 2.0).abs() < 1e-9);
    }
}
