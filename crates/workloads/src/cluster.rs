//! Cluster-scale fan-out of the Azure VM-trace synthesizer.
//!
//! [`crate::azure::synthesize`] models one host: arrivals are admitted (or
//! dropped) against a single machine's consolidation constraints. The
//! fleet experiments need the step *before* admission — the raw arrival
//! stream offered to a whole cluster — so the placement scheduler in
//! `gd-fleet` can decide which host each VM lands on. This module
//! synthesizes that stream with the same VM population and the same
//! diurnal intensity shape, scaled to N hosts.

use crate::azure::{poisson, sample_vm, VmSpec};
use gd_types::rng::{component_rng, StdRng};

/// Configuration of a synthesized cluster arrival stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Trace duration in seconds.
    pub duration_s: u64,
    /// Scheduler period in seconds (arrivals are batched per tick).
    pub schedule_period_s: u64,
    /// Mean VM arrivals per scheduler tick across the whole cluster at the
    /// diurnal baseline.
    pub arrivals_per_tick: f64,
    /// RNG seed.
    pub seed: u64,
}

/// One VM offered to the cluster (placement not yet decided).
#[derive(Debug, Clone, PartialEq)]
pub struct VmArrival {
    /// Arrival time in seconds from trace start (a scheduler tick).
    pub time_s: u64,
    /// The VM.
    pub vm: VmSpec,
}

/// The diurnal arrival intensity at time `t` seconds for a given baseline:
/// trough at t = 0, peak mid-trace — the same shape
/// [`crate::azure::synthesize`] uses, factored out so the single-host and
/// cluster streams stay in lockstep by construction.
pub fn diurnal_intensity(baseline: f64, t_s: u64) -> f64 {
    let phase = t_s as f64 / 86_400.0 * std::f64::consts::TAU;
    (baseline * (1.0 + 0.9 * (phase - std::f64::consts::FRAC_PI_2).sin())).max(0.0)
}

/// Poisson sampler that stays exact for the large rates a cluster stream
/// produces. Knuth's product method underflows past λ ≈ 700, so large λ is
/// drawn as a sum of independent small-λ draws (Poisson is closed under
/// addition); the split is fixed, so the draw is a pure function of the
/// RNG stream.
pub(crate) fn poisson_large(mut lambda: f64, rng: &mut StdRng) -> u64 {
    const CHUNK: f64 = 32.0;
    let mut k = 0u64;
    while lambda > CHUNK {
        k += u64::from(poisson(CHUNK, rng));
        lambda -= CHUNK;
    }
    k + u64::from(poisson(lambda, rng))
}

/// Synthesizes the cluster arrival stream: diurnally-modulated Poisson
/// arrivals per scheduler tick, each VM drawn from the Azure population
/// model. Arrivals are in time order; ids are unique and increase in
/// arrival order. Deterministic per seed.
pub fn synthesize_cluster(cfg: &ClusterConfig) -> Vec<VmArrival> {
    let mut rng = component_rng(cfg.seed, "azure-cluster");
    let mut arrivals = Vec::new();
    let mut next_id = 0u32;
    let ticks = cfg.duration_s / cfg.schedule_period_s;
    for tick in 0..=ticks {
        let t = tick * cfg.schedule_period_s;
        let n = poisson_large(diurnal_intensity(cfg.arrivals_per_tick, t), &mut rng);
        for _ in 0..n {
            arrivals.push(VmArrival {
                time_s: t,
                vm: sample_vm(next_id, &mut rng),
            });
            next_id += 1;
        }
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClusterConfig {
        ClusterConfig {
            duration_s: 86_400,
            schedule_period_s: 300,
            arrivals_per_tick: 0.8 * 100.0, // a 100-host cluster
            seed: 42,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = synthesize_cluster(&cfg());
        let b = synthesize_cluster(&cfg());
        assert_eq!(a, b);
        let c = synthesize_cluster(&ClusterConfig { seed: 43, ..cfg() });
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_time_ordered_with_unique_increasing_ids() {
        let arrivals = synthesize_cluster(&cfg());
        assert!(arrivals.windows(2).all(|w| w[0].time_s <= w[1].time_s));
        assert!(arrivals
            .iter()
            .enumerate()
            .all(|(i, a)| a.vm.id == i as u32));
    }

    #[test]
    fn volume_scales_with_intensity() {
        let small = synthesize_cluster(&ClusterConfig {
            arrivals_per_tick: 0.8,
            ..cfg()
        });
        let large = synthesize_cluster(&cfg());
        // 100x the baseline intensity must produce far more arrivals; the
        // expected count is ~0.8 * 289 ticks * diurnal mean (~1.0).
        assert!(
            large.len() > small.len() * 50,
            "{} vs {}",
            large.len(),
            small.len()
        );
        let expected = 0.8 * 100.0 * 289.0;
        let ratio = large.len() as f64 / expected;
        assert!((0.8..1.2).contains(&ratio), "{} arrivals", large.len());
    }

    #[test]
    fn diurnal_shape_troughs_at_start_and_peaks_midday() {
        let trough = diurnal_intensity(1.0, 0);
        let peak = diurnal_intensity(1.0, 43_200);
        assert!(trough < 0.2, "{trough}");
        assert!(peak > 1.8, "{peak}");
    }

    #[test]
    fn poisson_large_matches_small_lambda_mean() {
        let mut rng = component_rng(7, "t");
        let n = 2_000;
        let mean: f64 = (0..n)
            .map(|_| poisson_large(100.0, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((90.0..110.0).contains(&mean), "{mean}");
    }
}
