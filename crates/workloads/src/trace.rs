//! Memory-request trace synthesis from benchmark profiles.
//!
//! Generates the open-loop request stream a benchmark presents to the
//! memory controller: arrival rate from MPKI and IPC, addresses from the
//! benchmark's footprint with its row locality, reads/writes in its
//! published ratio.

use crate::profile::AppProfile;
use gd_dram::{MemRequest, CACHE_LINE_BYTES};
use gd_types::rng::{component_rng, StdRng};

/// CPU core frequency assumed by the arrival-rate conversion (the paper's
/// Xeon runs near 3.2 GHz).
pub const CPU_FREQ_MHZ: f64 = 3200.0;

/// Memory clock of DDR4-2133.
pub const MEM_FREQ_MHZ: f64 = 1_066.666_666_666_666_7;

/// A deterministic generator of [`MemRequest`]s for one benchmark.
#[derive(Debug)]
pub struct TraceGenerator {
    profile: AppProfile,
    footprint_lines: u64,
    /// Mean memory-cycles between requests.
    gap_cycles: f64,
    rng: StdRng,
    cursor_line: u64,
    next_arrival: f64,
}

impl TraceGenerator {
    /// Creates a generator for `profile`, with the footprint starting at
    /// physical address zero (the OS packs pages low).
    pub fn new(profile: AppProfile, seed: u64) -> Self {
        let footprint_lines = (profile.footprint_bytes() / CACHE_LINE_BYTES).max(1);
        // Requests per CPU cycle = (MPKI/1000) * IPC * prefetch traffic;
        // convert to memory cycles via the clock ratio.
        let ipc = 1.0 / profile.cpi_base;
        let req_per_cpu_cycle = profile.mpki / 1000.0 * ipc * profile.prefetch_factor();
        let req_per_mem_cycle = req_per_cpu_cycle * (CPU_FREQ_MHZ / MEM_FREQ_MHZ);
        let gap_cycles = 1.0 / req_per_mem_cycle.max(1e-9);
        TraceGenerator {
            rng: component_rng(seed, profile.name),
            profile,
            footprint_lines,
            gap_cycles,
            cursor_line: 0,
            next_arrival: 0.0,
        }
    }

    /// Mean request inter-arrival time in memory cycles.
    pub fn mean_gap_cycles(&self) -> f64 {
        self.gap_cycles
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// Generates the next request.
    pub fn next_request(&mut self) -> MemRequest {
        // Row locality: continue sequentially with probability
        // `row_locality`, otherwise jump to a random line of the footprint.
        if self.rng.gen_bool(self.profile.row_locality.clamp(0.0, 1.0)) {
            self.cursor_line = (self.cursor_line + 1) % self.footprint_lines;
        } else {
            self.cursor_line = self.rng.gen_range(0..self.footprint_lines);
        }
        let addr = self.cursor_line * CACHE_LINE_BYTES;
        // Exponential inter-arrival around the mean gap.
        let u: f64 = self.rng.gen_range(1e-9..1.0f64);
        self.next_arrival += -self.gap_cycles * u.ln();
        let arrival = self.next_arrival as u64;
        if self
            .rng
            .gen_bool(self.profile.read_fraction.clamp(0.0, 1.0))
        {
            MemRequest::read(addr, arrival)
        } else {
            MemRequest::write(addr, arrival)
        }
    }

    /// Generates a trace of `n` requests.
    pub fn take(&mut self, n: usize) -> Vec<MemRequest> {
        (0..n).map(|_| self.next_request()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::by_name;
    use gd_dram::AccessKind;

    #[test]
    fn trace_is_deterministic_per_seed() {
        let mut a = TraceGenerator::new(by_name("mcf").unwrap(), 7);
        let mut b = TraceGenerator::new(by_name("mcf").unwrap(), 7);
        assert_eq!(a.take(100), b.take(100));
        let mut c = TraceGenerator::new(by_name("mcf").unwrap(), 8);
        assert_ne!(a.take(100), c.take(100));
    }

    #[test]
    fn addresses_stay_within_footprint() {
        let p = by_name("libquantum").unwrap();
        let bytes = p.footprint_bytes();
        let mut g = TraceGenerator::new(p, 1);
        for r in g.take(5000) {
            assert!(r.addr < bytes, "addr {:#x} outside footprint", r.addr);
        }
    }

    #[test]
    fn arrival_times_monotone_and_rate_scales_with_mpki() {
        let mut intense = TraceGenerator::new(by_name("mcf").unwrap(), 1);
        let mut light = TraceGenerator::new(by_name("povray").unwrap(), 1);
        let ti = intense.take(2000);
        let tl = light.take(2000);
        assert!(ti.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // povray (MPKI 0.1) arrivals are ~2 orders of magnitude sparser.
        assert!(tl.last().unwrap().arrival > ti.last().unwrap().arrival * 50);
    }

    #[test]
    fn read_write_mix_near_profile() {
        let p = by_name("mcf").unwrap();
        let mut g = TraceGenerator::new(p.clone(), 3);
        let trace = g.take(10_000);
        let reads = trace.iter().filter(|r| r.kind == AccessKind::Read).count() as f64;
        let frac = reads / trace.len() as f64;
        assert!((frac - p.read_fraction).abs() < 0.03, "read frac {frac}");
    }

    #[test]
    fn high_locality_produces_sequential_runs() {
        let p = by_name("libquantum").unwrap(); // 0.9 locality
        let mut g = TraceGenerator::new(p, 5);
        let trace = g.take(1000);
        let sequential = trace
            .windows(2)
            .filter(|w| w[1].addr == w[0].addr + CACHE_LINE_BYTES)
            .count() as f64;
        assert!(sequential / 999.0 > 0.75);
    }
}
