//! A statistical synthesizer of the Microsoft Azure VM trace experiment
//! (paper §3.1, §6.3, Figs. 1, 12, 13).
//!
//! The real trace is proprietary; this module reproduces the experiment's
//! published structure instead: 100 VM types of varying vCPU count, memory
//! size, and lifetime; VMs scheduled/consolidated on one host every five
//! minutes under a vCPU consolidation ratio ≤ 2 and a hard memory-capacity
//! cap; and a diurnal load pattern producing the reported utilization
//! series (7–92 % range, ~48 % average over 24 h).
//!
//! Each VM also carries a KSM content model (zero pages + an OS-image
//! region shared with same-OS VMs) calibrated so that enabling KSM reduces
//! used capacity by ~24 % on average, matching Fig. 1's `w/ ksm` series.

use crate::profile::Suite;
use gd_types::rng::{component_rng, StdRng};

/// Pages per GiB with 4 KB pages.
const PAGES_PER_GB: u64 = (1 << 30) / 4096;

/// One virtual machine instance.
#[derive(Debug, Clone, PartialEq)]
pub struct VmSpec {
    /// Instance id (unique per start event).
    pub id: u32,
    /// Virtual CPUs.
    pub vcpus: u32,
    /// Memory size in GiB.
    pub mem_gb: u32,
    /// Lifetime in seconds.
    pub lifetime_s: u64,
    /// OS image family (VMs of the same type share image pages).
    pub os_type: u8,
    /// Fraction of memory that is zero pages (KSM-collapsible).
    pub zero_fraction: f64,
    /// Fraction of memory that is OS-image pages (shared across same-OS
    /// VMs).
    pub os_fraction: f64,
}

impl VmSpec {
    /// Total memory in 4 KB pages.
    pub fn mem_pages(&self) -> u64 {
        self.mem_gb as u64 * PAGES_PER_GB
    }

    /// KSM content description: `(shareable (content, pages) pairs,
    /// unique pages)`. Content keys: key 0 is the global zero page; OS
    /// image pages use 1024 buckets per OS type.
    pub fn ksm_contents(&self) -> (Vec<(u64, u64)>, u64) {
        let pages = self.mem_pages();
        let zero = (pages as f64 * self.zero_fraction) as u64;
        let os = (pages as f64 * self.os_fraction) as u64;
        let mut shareable = Vec::with_capacity(1025);
        if zero > 0 {
            shareable.push((0, zero));
        }
        const BUCKETS: u64 = 1024;
        let per_bucket = (os / BUCKETS).max(1);
        let mut placed = 0;
        for b in 0..BUCKETS {
            if placed >= os {
                break;
            }
            let n = per_bucket.min(os - placed);
            // Key: top byte = os_type + 1 (0 reserved for the zero page).
            let key = ((self.os_type as u64 + 1) << 56) | b;
            shareable.push((key, n));
            placed += n;
        }
        let unique = pages - zero - placed;
        (shareable, unique)
    }
}

/// A VM lifecycle event.
#[derive(Debug, Clone, PartialEq)]
pub struct VmEvent {
    /// Event time in seconds from trace start.
    pub time_s: u64,
    /// Start or stop.
    pub kind: VmEventKind,
    /// The VM.
    pub vm: VmSpec,
}

/// Start/stop discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmEventKind {
    /// The VM was scheduled onto the host.
    Start,
    /// The VM terminated (or was descheduled).
    Stop,
}

/// Configuration of the synthesized trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AzureConfig {
    /// Host physical cores (paper: 16; consolidation cap is 2× this).
    pub host_cores: u32,
    /// Host memory capacity in GiB (paper: 256).
    pub capacity_gb: u64,
    /// Trace duration in seconds (paper: 24 h).
    pub duration_s: u64,
    /// Scheduler period in seconds (paper: 5 min).
    pub schedule_period_s: u64,
    /// Mean VM arrivals per scheduler tick at the diurnal baseline.
    pub arrivals_per_tick: f64,
    /// RNG seed.
    pub seed: u64,
}

impl AzureConfig {
    /// The paper's setup: 16 cores, 256 GB, 24 hours, 5-minute scheduling.
    pub fn paper_24h() -> Self {
        AzureConfig {
            host_cores: 16,
            capacity_gb: 256,
            duration_s: 86_400,
            schedule_period_s: 300,
            arrivals_per_tick: 0.8,
            seed: 42,
        }
    }

    /// A shortened trace for tests (2 hours).
    pub fn short_test() -> Self {
        AzureConfig {
            duration_s: 7_200,
            ..Self::paper_24h()
        }
    }
}

/// The synthesized trace: lifecycle events plus a sampled utilization
/// series.
#[derive(Debug, Clone, PartialEq)]
pub struct AzureTrace {
    /// Start/stop events in time order.
    pub events: Vec<VmEvent>,
    /// `(time_s, used_fraction_of_capacity)` sampled at every scheduler
    /// tick (Fig. 1's series, before KSM).
    pub utilization: Vec<(u64, f64)>,
}

impl AzureTrace {
    /// Mean of the utilization series.
    pub fn mean_utilization(&self) -> f64 {
        if self.utilization.is_empty() {
            return 0.0;
        }
        self.utilization.iter().map(|(_, u)| u).sum::<f64>() / self.utilization.len() as f64
    }

    /// Minimum and maximum utilization.
    pub fn utilization_range(&self) -> (f64, f64) {
        self.utilization
            .iter()
            .fold((1.0, 0.0), |(lo, hi), (_, u)| (lo.min(*u), hi.max(*u)))
    }

    /// The workload suite marker for this trace (for figure grouping).
    pub fn suite() -> Suite {
        Suite::CloudSuite
    }
}

pub(crate) fn sample_vm(id: u32, rng: &mut StdRng) -> VmSpec {
    // vCPU/memory joint distribution loosely following the Azure trace's
    // bias toward small VMs.
    let (vcpus, mem_choices): (u32, &[u32]) = match rng.gen_range(0..100) {
        0..=39 => (1, &[2, 4, 8]),
        40..=69 => (2, &[4, 8, 16]),
        70..=89 => (4, &[16, 32]),
        _ => (8, &[32, 64]),
    };
    let mem_gb = mem_choices[rng.gen_range(0..mem_choices.len())];
    // Lifetime mixture: most VMs are short-lived; a fat tail runs for hours.
    let lifetime_s = match rng.gen_range(0..100) {
        0..=39 => rng.gen_range(600u64..3_600),
        40..=79 => rng.gen_range(3_600u64..6 * 3_600),
        _ => rng.gen_range(6u64 * 3_600..24 * 3_600),
    };
    VmSpec {
        id,
        vcpus,
        mem_gb,
        lifetime_s,
        os_type: rng.gen_range(0u32..4) as u8,
        zero_fraction: rng.gen_range(0.08..0.22),
        os_fraction: rng.gen_range(0.10..0.30),
    }
}

/// Synthesizes a trace: diurnally-modulated arrivals admitted under the
/// consolidation constraints, departures on lifetime expiry.
pub fn synthesize(cfg: &AzureConfig) -> AzureTrace {
    let mut rng = component_rng(cfg.seed, "azure");
    let vcpu_cap = cfg.host_cores * 2;
    let mut events = Vec::new();
    let mut utilization = Vec::new();
    // Active VMs: (stop_time, vcpus, mem_gb, spec id).
    let mut active: Vec<VmEvent> = Vec::new();
    let mut next_id = 0u32;
    let mut backlog: Vec<VmSpec> = Vec::new();
    let ticks = cfg.duration_s / cfg.schedule_period_s;
    for tick in 0..=ticks {
        let t = tick * cfg.schedule_period_s;
        // Departures.
        let mut still = Vec::with_capacity(active.len());
        for ev in active.drain(..) {
            if t >= ev.time_s + ev.vm.lifetime_s {
                events.push(VmEvent {
                    time_s: t,
                    kind: VmEventKind::Stop,
                    vm: ev.vm.clone(),
                });
            } else {
                still.push(ev);
            }
        }
        active = still;
        // Diurnal arrival intensity: trough at t=0, peak mid-trace (shared
        // with the cluster fan-out so both streams keep the same shape).
        let intensity = crate::cluster::diurnal_intensity(cfg.arrivals_per_tick, t);
        let arrivals = poisson(intensity, &mut rng);
        for _ in 0..arrivals {
            backlog.push(sample_vm(next_id, &mut rng));
            next_id += 1;
        }
        // Admission under consolidation constraints, FIFO.
        let mut used_vcpus: u32 = active.iter().map(|e| e.vm.vcpus).sum();
        let mut used_mem: u64 = active.iter().map(|e| e.vm.mem_gb as u64).sum();
        let mut remaining_backlog = Vec::new();
        for vm in backlog.drain(..) {
            if used_vcpus + vm.vcpus <= vcpu_cap && used_mem + vm.mem_gb as u64 <= cfg.capacity_gb {
                used_vcpus += vm.vcpus;
                used_mem += vm.mem_gb as u64;
                let ev = VmEvent {
                    time_s: t,
                    kind: VmEventKind::Start,
                    vm,
                };
                events.push(ev.clone());
                active.push(ev);
            } else {
                remaining_backlog.push(vm);
            }
        }
        backlog = remaining_backlog;
        // Stale backlog entries give up (their request went elsewhere).
        if backlog.len() > 20 {
            backlog.drain(0..backlog.len() - 20);
        }
        utilization.push((t, used_mem as f64 / cfg.capacity_gb as f64));
    }
    AzureTrace {
        events,
        utilization,
    }
}

pub(crate) fn poisson(lambda: f64, rng: &mut StdRng) -> u32 {
    // Knuth's algorithm; lambda is small (< 5).
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.next_f64();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k; // numeric guard
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_reproduces_fig1_utilization_shape() {
        let trace = synthesize(&AzureConfig::paper_24h());
        let mean = trace.mean_utilization();
        let (lo, hi) = trace.utilization_range();
        // Paper: 48% average, 7%..92% range. Accept a band around it.
        assert!((0.30..0.65).contains(&mean), "mean utilization {mean:.2}");
        assert!(lo < 0.25, "min utilization {lo:.2}");
        assert!(hi > 0.70, "max utilization {hi:.2}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = synthesize(&AzureConfig::paper_24h());
        let b = synthesize(&AzureConfig::paper_24h());
        assert_eq!(a, b);
        let c = synthesize(&AzureConfig {
            seed: 43,
            ..AzureConfig::paper_24h()
        });
        assert_ne!(a.utilization, c.utilization);
    }

    #[test]
    fn constraints_never_violated() {
        let cfg = AzureConfig::paper_24h();
        let trace = synthesize(&cfg);
        // Replay events and check invariants at every point.
        let mut vcpus = 0i64;
        let mut mem = 0i64;
        for ev in &trace.events {
            match ev.kind {
                VmEventKind::Start => {
                    vcpus += ev.vm.vcpus as i64;
                    mem += ev.vm.mem_gb as i64;
                }
                VmEventKind::Stop => {
                    vcpus -= ev.vm.vcpus as i64;
                    mem -= ev.vm.mem_gb as i64;
                }
            }
            assert!(vcpus >= 0 && mem >= 0);
            assert!(vcpus <= (cfg.host_cores * 2) as i64, "vcpu cap violated");
            assert!(mem <= cfg.capacity_gb as i64, "memory cap violated");
        }
    }

    #[test]
    fn events_are_time_ordered_and_balanced_types() {
        let trace = synthesize(&AzureConfig::short_test());
        assert!(trace.events.windows(2).all(|w| w[0].time_s <= w[1].time_s));
        let starts = trace
            .events
            .iter()
            .filter(|e| e.kind == VmEventKind::Start)
            .count();
        assert!(starts >= 1, "some VMs must start in 2 h, got {starts}");
    }

    #[test]
    fn ksm_contents_partition_memory() {
        let mut rng = component_rng(1, "t");
        let vm = sample_vm(0, &mut rng);
        let (shareable, unique) = vm.ksm_contents();
        let shared_pages: u64 = shareable.iter().map(|(_, n)| n).sum();
        assert_eq!(shared_pages + unique, vm.mem_pages());
        // Zero page key present.
        assert!(shareable.iter().any(|(k, _)| *k == 0));
    }

    #[test]
    fn same_os_vms_share_content_keys() {
        let a = VmSpec {
            id: 1,
            vcpus: 2,
            mem_gb: 4,
            lifetime_s: 100,
            os_type: 2,
            zero_fraction: 0.1,
            os_fraction: 0.2,
        };
        let b = VmSpec {
            id: 2,
            mem_gb: 8,
            ..a.clone()
        };
        let keys_a: std::collections::HashSet<u64> =
            a.ksm_contents().0.iter().map(|(k, _)| *k).collect();
        let keys_b: std::collections::HashSet<u64> =
            b.ksm_contents().0.iter().map(|(k, _)| *k).collect();
        assert!(keys_a.intersection(&keys_b).count() > 1000);
        let c = VmSpec {
            os_type: 3,
            ..a.clone()
        };
        let keys_c: std::collections::HashSet<u64> =
            c.ksm_contents().0.iter().map(|(k, _)| *k).collect();
        // Different OS: only the zero page overlaps.
        assert_eq!(keys_a.intersection(&keys_c).count(), 1);
    }
}
