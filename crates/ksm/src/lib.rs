//! A Kernel Samepage Merging (KSM) simulator.
//!
//! Reproduces the `ksmd` behaviour GreenDIMM interacts with (paper §2.4,
//! §5.3): applications/VMs `madvise()` regions as mergeable; the daemon
//! scans `pages_to_scan` pages every `scan_period`, looking up each page's
//! content first in the **stable tree** (already-shared pages) and then in
//! the **unstable tree** (candidates seen earlier in the same pass). A hit
//! merges the page — releasing its physical frame back to the
//! [`MemoryManager`] — and a write to a merged page breaks sharing via
//! copy-on-write, reclaiming a frame.
//!
//! Page contents are modelled as content-class fingerprints with
//! multiplicities rather than per-page byte arrays: what matters for
//! GreenDIMM is *how many frames* merging releases and *when* (the scan
//! rate bounds merge throughput), both of which this model preserves.
//!
//! # Example
//!
//! ```
//! use gd_ksm::{Ksm, KsmConfig};
//! use gd_mmsim::{MemoryManager, MmConfig, PageKind};
//! use gd_types::SimTime;
//!
//! # fn main() -> gd_types::Result<()> {
//! let mut mm = MemoryManager::new(MmConfig::small_test())?;
//! let mut ksm = Ksm::new(KsmConfig::default());
//!
//! // Two VMs booted from the same image share 1000 pages of content.
//! const OS_IMAGE: u64 = 0xAB;
//! let vm1 = mm.allocate(2000, PageKind::UserMovable)?;
//! let vm2 = mm.allocate(2000, PageKind::UserMovable)?;
//! ksm.register_region(vm1, vec![(OS_IMAGE, 1000)], 1000);
//! ksm.register_region(vm2, vec![(OS_IMAGE, 1000)], 1000);
//!
//! // Let the daemon run for ten seconds of simulated time.
//! ksm.advance(SimTime::from_secs(10), &mut mm)?;
//! assert!(ksm.stats().pages_sharing >= 1999); // 2000 duplicates collapse to 1
//! # Ok(())
//! # }
//! ```

use gd_mmsim::{AllocationId, MemoryManager};
use gd_types::{GdError, Result, SimTime};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A content-class fingerprint (stands in for a page-content hash).
pub type ContentKey = u64;

/// Handle for a registered mergeable region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u64);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region{}", self.0)
    }
}

/// `ksmd` tuning parameters (sysfs `pages_to_scan` / `sleep_millisecs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsmConfig {
    /// Pages scanned per wake-up. Paper uses 1000.
    pub pages_to_scan: u64,
    /// Sleep between scan batches. Paper uses 50 ms.
    pub scan_period: SimTime,
    /// Fraction of one core the daemon consumes while scanning (paper: the
    /// chosen configuration costs ~10 % of a core).
    pub cpu_utilization: f64,
}

impl Default for KsmConfig {
    fn default() -> Self {
        KsmConfig {
            pages_to_scan: 1000,
            scan_period: SimTime::from_millis(50),
            cpu_utilization: 0.10,
        }
    }
}

/// Aggregate merge statistics (sysfs `pages_shared` / `pages_sharing`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KsmStats {
    /// Distinct shared (stable-tree) pages.
    pub pages_shared: u64,
    /// Pages merged into those shared pages (frames released).
    pub pages_sharing: u64,
    /// Pages scanned so far.
    pub pages_scanned: u64,
    /// Completed full scan passes.
    pub full_passes: u64,
    /// Copy-on-write breaks.
    pub cow_breaks: u64,
}

#[derive(Debug, Clone)]
struct Region {
    owner: AllocationId,
    /// Pages registered at `madvise` time. Merging changes which frames
    /// back them, never this count: at all times
    /// `pending + merged + originals + unique_pages == logical_pages`.
    logical_pages: u64,
    /// Shareable content: key -> unmerged page count.
    pending: BTreeMap<ContentKey, u64>,
    /// Already merged content: key -> merged (duplicate, frame-released)
    /// page count.
    merged: BTreeMap<ContentKey, u64>,
    /// Stable-tree originals this region contributed: pages that back a
    /// shared frame and remain resident.
    originals: BTreeMap<ContentKey, u64>,
    /// Pages whose contents churn too fast to merge.
    unique_pages: u64,
    /// Scan cursor in pages within this region's pending+unique pool.
    cursor: u64,
}

impl Region {
    fn scannable_pages(&self) -> u64 {
        self.pending.values().sum::<u64>() + self.unique_pages
    }
}

/// A read-only view of one region's page accounting, exposed for the
/// cross-crate invariant checker in `gd-verify`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionAccounting {
    /// The region.
    pub region: RegionId,
    /// Pages registered at `madvise` time.
    pub logical_pages: u64,
    /// Shareable pages not yet scanned/merged.
    pub pending: u64,
    /// Merged duplicates (frames released).
    pub merged: u64,
    /// Stable-tree originals this region keeps resident.
    pub originals: u64,
    /// Volatile pages that never merge.
    pub unique_pages: u64,
}

/// The KSM daemon state: stable and unstable trees plus registered regions.
#[derive(Debug)]
pub struct Ksm {
    cfg: KsmConfig,
    /// Stable tree: content -> total pages sharing it (>= 1 means a shared
    /// frame exists).
    stable: HashMap<ContentKey, u64>,
    /// Unstable tree: contents seen once in the current pass, with the
    /// region that holds the candidate page.
    unstable: HashMap<ContentKey, RegionId>,
    regions: BTreeMap<RegionId, Region>,
    next_region: u64,
    /// Round-robin cursor over regions.
    region_cursor: u64,
    /// Unspent scan budget carried between `advance` calls.
    carry_pages: f64,
    stats: KsmStats,
}

impl Ksm {
    /// Creates a daemon with the given configuration.
    pub fn new(cfg: KsmConfig) -> Self {
        Ksm {
            cfg,
            stable: HashMap::new(),
            unstable: HashMap::new(),
            regions: BTreeMap::new(),
            next_region: 1,
            region_cursor: 0,
            carry_pages: 0.0,
            stats: KsmStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &KsmConfig {
        &self.cfg
    }

    /// Current statistics.
    pub fn stats(&self) -> KsmStats {
        self.stats
    }

    /// Registers a mergeable region (the `madvise(MADV_MERGEABLE)` call):
    /// `shareable` lists `(content, pages)` pairs that may merge with equal
    /// content elsewhere; `unique_pages` counts pages whose checksums keep
    /// changing and therefore never merge.
    pub fn register_region(
        &mut self,
        owner: AllocationId,
        shareable: Vec<(ContentKey, u64)>,
        unique_pages: u64,
    ) -> RegionId {
        let id = RegionId(self.next_region);
        self.next_region += 1;
        let mut pending = BTreeMap::new();
        for (k, n) in shareable {
            if n > 0 {
                *pending.entry(k).or_insert(0) += n;
            }
        }
        let logical_pages = pending.values().sum::<u64>() + unique_pages;
        self.regions.insert(
            id,
            Region {
                owner,
                logical_pages,
                pending,
                merged: BTreeMap::new(),
                originals: BTreeMap::new(),
                unique_pages,
                cursor: 0,
            },
        );
        id
    }

    /// Unregisters a region (e.g. the VM terminated). Its merged pages
    /// disappear with it; sharing counts are released. The owner's frames
    /// are expected to be freed by the caller through the memory manager.
    ///
    /// # Errors
    ///
    /// Returns [`GdError::NotFound`] for an unknown region.
    pub fn unregister_region(&mut self, id: RegionId) -> Result<()> {
        let region = self
            .regions
            .remove(&id)
            .ok_or_else(|| GdError::NotFound(id.to_string()))?;
        for (k, n) in region.merged {
            if let Some(sharing) = self.stable.get_mut(&k) {
                *sharing = sharing.saturating_sub(n);
                self.stats.pages_sharing = self.stats.pages_sharing.saturating_sub(n);
                if *sharing == 0 {
                    // Last sharer: the stable page dissolves.
                    self.stable.remove(&k);
                    self.stats.pages_shared = self.stats.pages_shared.saturating_sub(1);
                }
            }
        }
        // Approximation: when a region that contributed a stable original
        // disappears, the kernel would keep the KSM-owned frame alive for
        // the remaining sharers; we dissolve the entry instead, which only
        // means later scans re-establish it from a surviving duplicate.
        for (k, _) in region.originals {
            if self.stable.remove(&k).is_some() {
                self.stats.pages_shared = self.stats.pages_shared.saturating_sub(1);
            }
        }
        self.unstable.retain(|_, holder| *holder != id);
        Ok(())
    }

    /// Total number of registered regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Per-region page accounting (for cross-crate invariant checks).
    pub fn region_accounting(&self) -> Vec<RegionAccounting> {
        self.regions
            .iter()
            .map(|(id, r)| RegionAccounting {
                region: *id,
                logical_pages: r.logical_pages,
                pending: r.pending.values().sum(),
                merged: r.merged.values().sum(),
                originals: r.originals.values().sum(),
                unique_pages: r.unique_pages,
            })
            .collect()
    }

    /// Number of distinct contents in the stable tree (each backed by one
    /// resident shared frame).
    pub fn stable_contents(&self) -> usize {
        self.stable.len()
    }

    /// Total sharing count over the stable tree (originals plus merged
    /// duplicates).
    pub fn stable_sharing_total(&self) -> u64 {
        self.stable.values().sum()
    }

    /// Pages released so far (frames saved by merging).
    pub fn frames_released(&self) -> u64 {
        self.stats.pages_sharing
    }

    /// Exports cumulative KSM telemetry into `tele` under `scope`:
    /// scan/merge counters plus per-second rate gauges over `elapsed`
    /// simulated time (rates are omitted when `elapsed` is zero).
    pub fn export_telemetry(&self, tele: &mut gd_obs::Telemetry, scope: &str, elapsed: SimTime) {
        let reg = &mut tele.registry;
        let s = &self.stats;
        reg.counter_add(&format!("{scope}.ksm.pages_scanned"), s.pages_scanned);
        reg.counter_add(&format!("{scope}.ksm.pages_shared"), s.pages_shared);
        reg.counter_add(&format!("{scope}.ksm.pages_sharing"), s.pages_sharing);
        reg.counter_add(&format!("{scope}.ksm.full_passes"), s.full_passes);
        reg.counter_add(&format!("{scope}.ksm.cow_breaks"), s.cow_breaks);
        let secs = elapsed.as_secs_f64();
        if secs > 0.0 {
            reg.gauge_set(
                &format!("{scope}.ksm.scan_rate_pps"),
                s.pages_scanned as f64 / secs,
            );
            reg.gauge_set(
                &format!("{scope}.ksm.merge_rate_pps"),
                s.pages_sharing as f64 / secs,
            );
        }
    }

    /// Advances the daemon by `elapsed` simulated time, merging what the
    /// scan-rate budget allows. Freed frames are returned to `mm` via
    /// [`MemoryManager::shrink`] on the owning allocation.
    ///
    /// Returns the number of frames released during this call.
    ///
    /// # Errors
    ///
    /// Propagates memory-manager errors (unknown owner allocations).
    pub fn advance(&mut self, elapsed: SimTime, mm: &mut MemoryManager) -> Result<u64> {
        let batches = elapsed.as_secs_f64() / self.cfg.scan_period.as_secs_f64();
        let mut budget =
            (batches * self.cfg.pages_to_scan as f64 + self.carry_pages).floor() as u64;
        self.carry_pages =
            (batches * self.cfg.pages_to_scan as f64 + self.carry_pages) - budget as f64;
        let mut released_total = 0u64;
        let mut idle_guard = 0u32;
        while budget > 0 {
            let Some(&rid) = self
                .regions
                .keys()
                .cycle()
                .nth(self.region_cursor as usize % self.regions.len().max(1))
            else {
                break;
            };
            if self.regions.is_empty() {
                break;
            }
            let (scanned, released) = self.scan_region(rid, budget, mm)?;
            released_total += released;
            budget = budget.saturating_sub(scanned.max(1));
            self.region_cursor += 1;
            if (self.region_cursor as usize).is_multiple_of(self.regions.len().max(1)) {
                // Completed a full pass over all regions: reset the
                // unstable tree, as ksmd does.
                self.unstable.clear();
                self.stats.full_passes += 1;
                for r in self.regions.values_mut() {
                    r.cursor = 0;
                }
            }
            if scanned == 0 {
                idle_guard += 1;
                if idle_guard > self.regions.len() as u32 + 1 {
                    break; // nothing left to scan anywhere
                }
            } else {
                idle_guard = 0;
            }
        }
        Ok(released_total)
    }

    /// Scans up to `budget` pages of one region. Returns (scanned, released).
    fn scan_region(
        &mut self,
        rid: RegionId,
        budget: u64,
        mm: &mut MemoryManager,
    ) -> Result<(u64, u64)> {
        let region = match self.regions.get_mut(&rid) {
            Some(r) => r,
            None => return Ok((0, 0)),
        };
        let scannable = region.scannable_pages().saturating_sub(region.cursor);
        let to_scan = budget.min(scannable);
        if to_scan == 0 {
            return Ok((0, 0));
        }
        region.cursor += to_scan;
        self.stats.pages_scanned += to_scan;

        // Unique (volatile) pages are scanned but never merge; shareable
        // pages are processed content-class by content-class. We approximate
        // the within-region scan order by consuming pending entries in key
        // order, `to_scan` pages at a time.
        let mut remaining = to_scan;
        // Skip over the unique prefix proportionally: unique pages soak up
        // scan budget without producing merges.
        let total = region.pending.values().sum::<u64>() + region.unique_pages;
        if total > 0 && region.unique_pages > 0 {
            let unique_share =
                (remaining as f64 * region.unique_pages as f64 / total as f64).round() as u64;
            remaining = remaining.saturating_sub(unique_share);
        }
        let mut released = 0u64;
        let owner = region.owner;
        let mut merges: Vec<(ContentKey, u64)> = Vec::new();
        let mut candidates: Vec<ContentKey> = Vec::new();
        // Unstable-tree hits: the holder's candidate page becomes the
        // resident stable original.
        let mut conversions: Vec<(ContentKey, RegionId)> = Vec::new();
        // Contents for which THIS region contributes the stable original
        // (first of a same-region duplicate run).
        let mut self_originals: Vec<ContentKey> = Vec::new();
        {
            let keys: Vec<ContentKey> = region.pending.keys().copied().collect();
            for k in keys {
                if remaining == 0 {
                    break;
                }
                let Entry::Occupied(mut e) = region.pending.entry(k) else {
                    continue;
                };
                let here = (*e.get()).min(remaining);
                let in_stable = self.stable.contains_key(&k);
                let holder = self.unstable.get(&k).copied();
                let mergeable = if in_stable {
                    here // all scanned duplicates merge against the stable page
                } else if let Some(holder) = holder {
                    // The earlier candidate becomes the stable original; all
                    // of our scanned pages merge against it.
                    conversions.push((k, holder));
                    here
                } else if here > 1 {
                    // First page becomes the stable original; the rest merge.
                    self_originals.push(k);
                    here - 1
                } else {
                    // Single candidate: goes to the unstable tree.
                    candidates.push(k);
                    0
                };
                if mergeable > 0 {
                    // Consume the scanned pages (including a self-original,
                    // which moves to `originals` below).
                    let left = *e.get() - here;
                    if left == 0 {
                        e.remove();
                    } else {
                        *e.get_mut() = left;
                    }
                    merges.push((k, mergeable));
                }
                remaining = remaining.saturating_sub(here);
            }
        }
        for k in candidates {
            self.unstable.insert(k, rid);
        }
        for k in self_originals {
            *self
                .regions
                .get_mut(&rid)
                .expect("invariant: scanned region stays registered during scan")
                .originals
                .entry(k)
                .or_insert(0) += 1;
        }
        for (k, holder) in conversions {
            self.unstable.remove(&k);
            if let Some(h) = self.regions.get_mut(&holder) {
                // Move the candidate page out of the holder's scannable pool:
                // it now backs the shared frame.
                if let Some(p) = h.pending.get_mut(&k) {
                    *p = p.saturating_sub(1);
                    if *p == 0 {
                        h.pending.remove(&k);
                    }
                }
                *h.originals.entry(k).or_insert(0) += 1;
            }
        }
        for (k, n) in merges {
            let was_shared = self.stable.contains_key(&k);
            let sharing = self.stable.entry(k).or_insert(0);
            if !was_shared {
                self.stats.pages_shared += 1;
                // The stable original itself stays resident: one frame keeps
                // backing the content.
                *sharing += 1;
            }
            *sharing += n;
            self.stats.pages_sharing += n;
            *self
                .regions
                .get_mut(&rid)
                .expect("invariant: scanned region stays registered during scan")
                .merged
                .entry(k)
                .or_insert(0) += n;
            // Release the duplicate frames.
            let freed = mm.shrink(owner, n)?;
            released += freed;
        }
        Ok((to_scan, released))
    }

    /// A write to `n` merged pages of content `k` in `region`: copy-on-write
    /// breaks sharing and re-allocates private frames.
    ///
    /// Returns the number of pages actually unshared.
    ///
    /// # Errors
    ///
    /// [`GdError::NotFound`] for an unknown region; propagates
    /// [`GdError::OutOfMemory`] if the CoW copies cannot be allocated.
    pub fn cow_break(
        &mut self,
        region: RegionId,
        k: ContentKey,
        n: u64,
        mm: &mut MemoryManager,
    ) -> Result<u64> {
        let r = self
            .regions
            .get_mut(&region)
            .ok_or_else(|| GdError::NotFound(region.to_string()))?;
        let merged = r.merged.get(&k).copied().unwrap_or(0);
        let to_break = merged.min(n);
        if to_break == 0 {
            return Ok(0);
        }
        mm.grow(r.owner, to_break)?;
        if to_break == merged {
            r.merged.remove(&k);
        } else {
            *r.merged
                .get_mut(&k)
                .expect("invariant: partial CoW break leaves the merged entry") -= to_break;
        }
        // The pages now hold private (volatile) content.
        r.unique_pages += to_break;
        if let Some(sharing) = self.stable.get_mut(&k) {
            *sharing = sharing.saturating_sub(to_break);
            if *sharing <= 1 {
                self.stable.remove(&k);
                self.stats.pages_shared = self.stats.pages_shared.saturating_sub(1);
            }
        }
        self.stats.pages_sharing = self.stats.pages_sharing.saturating_sub(to_break);
        self.stats.cow_breaks += to_break;
        Ok(to_break)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_mmsim::{MmConfig, PageKind};

    const OS_IMAGE: ContentKey = 0xABCD;
    const APP_DATA: ContentKey = 0x1234;

    fn setup() -> (MemoryManager, Ksm) {
        (
            MemoryManager::new(MmConfig::small_test()).unwrap(),
            Ksm::new(KsmConfig::default()),
        )
    }

    #[test]
    fn duplicates_within_one_region_merge() {
        let (mut mm, mut ksm) = setup();
        let a = mm.allocate(1000, PageKind::UserMovable).unwrap();
        ksm.register_region(a, vec![(OS_IMAGE, 1000)], 0);
        let released = ksm.advance(SimTime::from_secs(5), &mut mm).unwrap();
        // 1000 identical pages collapse to 1 resident frame.
        assert_eq!(released, 999);
        assert_eq!(ksm.stats().pages_sharing, 999);
        assert_eq!(ksm.stats().pages_shared, 1);
        assert_eq!(mm.pages_of(a), 1);
    }

    #[test]
    fn duplicates_across_regions_merge() {
        let (mut mm, mut ksm) = setup();
        let a = mm.allocate(500, PageKind::UserMovable).unwrap();
        let b = mm.allocate(500, PageKind::UserMovable).unwrap();
        ksm.register_region(a, vec![(OS_IMAGE, 500)], 0);
        ksm.register_region(b, vec![(OS_IMAGE, 500)], 0);
        ksm.advance(SimTime::from_secs(5), &mut mm).unwrap();
        let used = mm.meminfo().used_pages;
        assert_eq!(used, 1, "999 of 1000 duplicate frames released");
    }

    #[test]
    fn unique_pages_never_merge() {
        let (mut mm, mut ksm) = setup();
        let a = mm.allocate(1000, PageKind::UserMovable).unwrap();
        ksm.register_region(a, vec![], 1000);
        let released = ksm.advance(SimTime::from_secs(10), &mut mm).unwrap();
        assert_eq!(released, 0);
        assert_eq!(mm.pages_of(a), 1000);
        assert!(ksm.stats().pages_scanned > 0);
    }

    #[test]
    fn scan_rate_bounds_merge_throughput() {
        let (mut mm, mut ksm) = setup();
        let a = mm.allocate(20_000, PageKind::UserMovable).unwrap();
        ksm.register_region(a, vec![(OS_IMAGE, 20_000)], 0);
        // 100 ms at 1000 pages / 50 ms = 2000 pages of scan budget.
        let released = ksm.advance(SimTime::from_millis(100), &mut mm).unwrap();
        assert!(released <= 2000, "released {released} > scan budget");
        assert!(
            released >= 1000,
            "released {released}, budget mostly usable"
        );
        // The rest merges given more time.
        ksm.advance(SimTime::from_secs(10), &mut mm).unwrap();
        assert_eq!(mm.pages_of(a), 1);
    }

    #[test]
    fn single_candidate_sits_in_unstable_tree() {
        let (mut mm, mut ksm) = setup();
        let a = mm.allocate(1, PageKind::UserMovable).unwrap();
        ksm.register_region(a, vec![(APP_DATA, 1)], 0);
        ksm.advance(SimTime::from_secs(1), &mut mm).unwrap();
        assert_eq!(ksm.stats().pages_sharing, 0);
        // A second region with the same content appears: now they merge.
        let b = mm.allocate(1, PageKind::UserMovable).unwrap();
        ksm.register_region(b, vec![(APP_DATA, 1)], 0);
        ksm.advance(SimTime::from_secs(1), &mut mm).unwrap();
        assert_eq!(ksm.stats().pages_sharing, 1);
        assert_eq!(mm.meminfo().used_pages, 1);
    }

    #[test]
    fn cow_break_restores_frames() {
        let (mut mm, mut ksm) = setup();
        let a = mm.allocate(100, PageKind::UserMovable).unwrap();
        let r = ksm.register_region(a, vec![(OS_IMAGE, 100)], 0);
        ksm.advance(SimTime::from_secs(2), &mut mm).unwrap();
        assert_eq!(mm.pages_of(a), 1);
        let broken = ksm.cow_break(r, OS_IMAGE, 10, &mut mm).unwrap();
        assert_eq!(broken, 10);
        assert_eq!(mm.pages_of(a), 11);
        assert_eq!(ksm.stats().cow_breaks, 10);
        assert_eq!(ksm.stats().pages_sharing, 89);
    }

    #[test]
    fn unregister_releases_sharing_counts() {
        let (mut mm, mut ksm) = setup();
        let a = mm.allocate(50, PageKind::UserMovable).unwrap();
        let b = mm.allocate(50, PageKind::UserMovable).unwrap();
        let ra = ksm.register_region(a, vec![(OS_IMAGE, 50)], 0);
        ksm.register_region(b, vec![(OS_IMAGE, 50)], 0);
        ksm.advance(SimTime::from_secs(2), &mut mm).unwrap();
        assert_eq!(ksm.stats().pages_sharing, 99);
        ksm.unregister_region(ra).unwrap();
        assert!(ksm.stats().pages_sharing < 99);
        assert!(ksm.unregister_region(ra).is_err());
    }

    #[test]
    fn advance_with_no_regions_is_noop() {
        let (mut mm, mut ksm) = setup();
        let released = ksm.advance(SimTime::from_secs(1), &mut mm).unwrap();
        assert_eq!(released, 0);
        assert_eq!(ksm.region_count(), 0);
    }

    #[test]
    fn budget_carries_across_small_advances() {
        let (mut mm, mut ksm) = setup();
        let a = mm.allocate(100, PageKind::UserMovable).unwrap();
        ksm.register_region(a, vec![(OS_IMAGE, 100)], 0);
        // 10 ms = 0.2 batches = 200 pages budget; enough to merge all 100.
        for _ in 0..5 {
            ksm.advance(SimTime::from_millis(10), &mut mm).unwrap();
        }
        assert_eq!(mm.pages_of(a), 1);
    }
}
