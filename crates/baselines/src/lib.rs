//! Baseline DRAM power-management policies the paper compares against
//! (§6.2, Figs. 9–10): self-refresh-only, RAMZzz (SC'12), and PASR.
//!
//! Each baseline is modelled as a [`PowerGovernor`]: given what the
//! cycle-level simulation measured (rank self-refresh residency under the
//! chosen interleaving mode) and the workload's footprint, it decides the
//! power-state residency, array gating, and runtime overhead to charge.
//! The paper models the baselines the same way ("we model power reduction
//! by them based on the number of idle ranks/banks").

use gd_power::PowerGating;

pub mod sanity;

pub use sanity::{checked_evaluate, sanity_checker, GovernorSanity};

/// Off-lining failures the co-simulation observed, split by cause (the
/// structured [`gd_mmsim::OfflineError`] counts). Governors that actively
/// off-line memory charge the retry time these imply; the default (all
/// zeros) charges nothing, so fault-free figures are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OfflineFailureBreakdown {
    /// EBUSY rejections from pinned user pages.
    pub pinned: u64,
    /// EBUSY rejections from unmovable kernel allocations.
    pub kernel_block: u64,
    /// EAGAIN failures from aborted (rolled-back) migrations.
    pub migration_aborted: u64,
}

impl OfflineFailureBreakdown {
    /// Total failed offline attempts.
    pub fn total(&self) -> u64 {
        self.pinned + self.kernel_block + self.migration_aborted
    }

    /// Lower bound on the wall-clock time the failures cost, using the
    /// paper's Table 3 latencies: an EBUSY rejection is detected in ~6 µs,
    /// while an aborted migration burns the full ~4.37 ms EAGAIN path.
    pub fn time_lower_bound_s(&self) -> f64 {
        (self.pinned + self.kernel_block) as f64 * 6e-6 + self.migration_aborted as f64 * 4.37e-3
    }
}

/// Inputs a governor evaluates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorContext {
    /// Whether channel/rank/bank interleaving is enabled.
    pub interleaved: bool,
    /// Application resident footprint in bytes.
    pub footprint_bytes: u64,
    /// Total DRAM capacity in bytes.
    pub capacity_bytes: u64,
    /// Total ranks.
    pub ranks: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
    /// Mean rank self-refresh residency the cycle simulation measured for
    /// this workload and interleaving mode.
    pub measured_sr_fraction: f64,
    /// Baseline execution time in seconds.
    pub runtime_s: f64,
    /// Fraction of capacity GreenDIMM off-lined (0 for other governors).
    pub offline_fraction: f64,
    /// Off-lining failures observed during the run (zero for governors
    /// that never off-line memory, and for fault-free runs).
    pub offline_failures: OfflineFailureBreakdown,
}

impl GovernorContext {
    /// Fraction of ranks the footprint touches when data is packed
    /// contiguously (no interleaving).
    pub fn ranks_touched_fraction(&self) -> f64 {
        let rank_bytes = self.capacity_bytes as f64 / self.ranks as f64;
        let touched = (self.footprint_bytes as f64 / rank_bytes).ceil();
        (touched / self.ranks as f64).min(1.0)
    }
}

/// What a governor achieves for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorOutcome {
    /// Array gating (refresh / background power turned off).
    pub gating: PowerGating,
    /// Mean fraction of time ranks spend in self-refresh.
    pub sr_fraction: f64,
    /// Mean fraction of time ranks spend in power-down.
    pub pd_fraction: f64,
    /// Runtime overhead the policy itself causes, seconds.
    pub overhead_s: f64,
}

/// A DRAM power-management policy under evaluation.
pub trait PowerGovernor {
    /// Display name used in figure legends.
    fn name(&self) -> &'static str;

    /// Evaluates the policy for one workload run.
    fn evaluate(&self, ctx: &GovernorContext) -> GovernorOutcome;
}

/// `srf_only`: the commodity controller's idle-timeout self-refresh. Its
/// outcome is exactly what the cycle simulation measured — with
/// interleaving no rank ever idles long enough (Fig. 3b).
#[derive(Debug, Clone, Copy, Default)]
pub struct SrfOnly;

impl PowerGovernor for SrfOnly {
    fn name(&self) -> &'static str {
        "srf_only"
    }

    fn evaluate(&self, ctx: &GovernorContext) -> GovernorOutcome {
        GovernorOutcome {
            gating: PowerGating::none(),
            sr_fraction: ctx.measured_sr_fraction,
            pd_fraction: 0.0,
            overhead_s: 0.0,
        }
    }
}

/// RAMZzz (Wu et al., SC'12): rank-aware page grouping — migrate pages so
/// cold ranks stay idle and can be demoted to self-refresh. Effective
/// without interleaving; defeated by it (every rank stays hot). Charges the
/// page-access monitoring and periodic migration overhead the paper calls
/// "considerable".
#[derive(Debug, Clone, Copy)]
pub struct RamZzz {
    /// Fraction of runtime spent monitoring page accesses and migrating.
    pub overhead_fraction: f64,
    /// How close to the ideal (footprint-packed) idle-rank count the
    /// migration gets.
    pub consolidation_efficiency: f64,
}

impl Default for RamZzz {
    fn default() -> Self {
        RamZzz {
            overhead_fraction: 0.03,
            consolidation_efficiency: 0.9,
        }
    }
}

impl PowerGovernor for RamZzz {
    fn name(&self) -> &'static str {
        "RAMZzz"
    }

    fn evaluate(&self, ctx: &GovernorContext) -> GovernorOutcome {
        let sr = if ctx.interleaved {
            // Interleaving spreads every page across all ranks: migrating
            // pages cannot create an idle rank.
            ctx.measured_sr_fraction
        } else {
            // Hot/cold grouping parks cold ranks in self-refresh.
            let idle_ranks = 1.0 - ctx.ranks_touched_fraction();
            (idle_ranks * self.consolidation_efficiency).max(ctx.measured_sr_fraction)
        };
        GovernorOutcome {
            gating: PowerGating::none(),
            sr_fraction: sr,
            pd_fraction: 0.0,
            overhead_s: ctx.runtime_s * self.overhead_fraction,
        }
    }
}

/// PASR: bank-granularity partial-array self-refresh (mobile DRAM). Banks
/// holding no data stop refreshing, but their peripheral/IO static power
/// remains. With interleaving every bank holds data, so nothing is gated.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pasr;

impl PowerGovernor for Pasr {
    fn name(&self) -> &'static str {
        "PASR"
    }

    fn evaluate(&self, ctx: &GovernorContext) -> GovernorOutcome {
        let refresh_off = if ctx.interleaved {
            0.0
        } else {
            // Contiguous packing leaves trailing banks empty; refresh stops
            // at bank granularity.
            let total_banks = (ctx.ranks * ctx.banks_per_rank) as f64;
            let bank_bytes = ctx.capacity_bytes as f64 / total_banks;
            let used_banks = (ctx.footprint_bytes as f64 / bank_bytes).ceil();
            (1.0 - used_banks / total_banks).max(0.0)
        };
        GovernorOutcome {
            gating: PowerGating::pasr(refresh_off),
            sr_fraction: ctx.measured_sr_fraction,
            pd_fraction: 0.0,
            overhead_s: 0.0,
        }
    }
}

/// GreenDIMM expressed in the same governor interface: deep power-down of
/// the off-lined fraction, independent of interleaving.
#[derive(Debug, Clone, Copy)]
pub struct GreenDimmGovernor {
    /// Runtime overhead fraction measured by the co-simulation.
    pub overhead_fraction: f64,
}

impl Default for GreenDimmGovernor {
    fn default() -> Self {
        GreenDimmGovernor {
            overhead_fraction: 0.01,
        }
    }
}

impl PowerGovernor for GreenDimmGovernor {
    fn name(&self) -> &'static str {
        "GreenDIMM"
    }

    fn evaluate(&self, ctx: &GovernorContext) -> GovernorOutcome {
        GovernorOutcome {
            gating: PowerGating::deep_pd(ctx.offline_fraction),
            sr_fraction: ctx.measured_sr_fraction,
            pd_fraction: 0.0,
            // Failed offline attempts (pinned pages, aborted migrations)
            // cost daemon time on top of the steady-state overhead.
            overhead_s: ctx.runtime_s * self.overhead_fraction
                + ctx.offline_failures.time_lower_bound_s(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(interleaved: bool) -> GovernorContext {
        GovernorContext {
            interleaved,
            footprint_bytes: 1200 << 20, // 1.2 GB, the paper's observation
            capacity_bytes: 64 << 30,
            ranks: 16,
            banks_per_rank: 16,
            measured_sr_fraction: if interleaved { 0.0 } else { 0.54 },
            runtime_s: 100.0,
            offline_fraction: 0.8,
            offline_failures: OfflineFailureBreakdown::default(),
        }
    }

    #[test]
    fn srf_only_reflects_measurement() {
        let g = SrfOnly;
        assert_eq!(g.evaluate(&ctx(true)).sr_fraction, 0.0);
        assert_eq!(g.evaluate(&ctx(false)).sr_fraction, 0.54);
        assert_eq!(g.evaluate(&ctx(true)).overhead_s, 0.0);
    }

    #[test]
    fn ramzzz_helps_only_without_interleaving() {
        let g = RamZzz::default();
        let with = g.evaluate(&ctx(true));
        let without = g.evaluate(&ctx(false));
        assert_eq!(with.sr_fraction, 0.0, "interleaving defeats RAMZzz");
        // 1.2 GB fits in 1 of 16 ranks: ~15/16 ranks idle, 90% efficiency.
        assert!(without.sr_fraction > 0.8);
        assert!(with.overhead_s > 0.0, "monitoring overhead always paid");
    }

    #[test]
    fn pasr_gates_refresh_only_without_interleaving() {
        let g = Pasr;
        let with = g.evaluate(&ctx(true));
        assert_eq!(with.gating.refresh_multiplier(), 1.0);
        let without = g.evaluate(&ctx(false));
        assert!(without.gating.refresh_multiplier() < 0.1);
        // Static power untouched either way.
        assert_eq!(without.gating.background_multiplier(), 1.0);
    }

    #[test]
    fn greendimm_gates_regardless_of_interleaving() {
        let g = GreenDimmGovernor::default();
        for interleaved in [true, false] {
            let out = g.evaluate(&ctx(interleaved));
            assert!(out.gating.background_multiplier() < 0.3);
            assert!(out.gating.refresh_multiplier() < 0.3);
        }
    }

    #[test]
    fn ranks_touched_fraction_quantizes_up() {
        let c = ctx(false);
        // 1.2 GB in 4 GB ranks: 1 rank touched.
        assert!((c.ranks_touched_fraction() - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn offline_failures_charge_extra_overhead() {
        let g = GreenDimmGovernor::default();
        let clean = g.evaluate(&ctx(true));
        let mut faulted = ctx(true);
        faulted.offline_failures = OfflineFailureBreakdown {
            pinned: 100,
            kernel_block: 50,
            migration_aborted: 10,
        };
        assert_eq!(faulted.offline_failures.total(), 160);
        let out = g.evaluate(&faulted);
        // 150 EBUSY × 6 µs + 10 EAGAIN × 4.37 ms on top of the clean run.
        let expected = 150.0 * 6e-6 + 10.0 * 4.37e-3;
        assert!((out.overhead_s - clean.overhead_s - expected).abs() < 1e-12);
    }

    #[test]
    fn governor_names() {
        assert_eq!(SrfOnly.name(), "srf_only");
        assert_eq!(RamZzz::default().name(), "RAMZzz");
        assert_eq!(Pasr.name(), "PASR");
        assert_eq!(GreenDimmGovernor::default().name(), "GreenDIMM");
    }
}
