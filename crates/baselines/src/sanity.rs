//! Sanity invariants on governor outcomes.
//!
//! Every [`PowerGovernor`] produces residency fractions and gating
//! multipliers that feed straight into the energy integration; a value
//! outside `[0, 1]` silently corrupts every downstream figure. The
//! [`GovernorSanity`] invariant checks each `(context, outcome)` pair, and
//! [`checked_evaluate`] wraps [`PowerGovernor::evaluate`] with a checker so
//! the figure harness can run baselines under [`gd_verify::Mode::Strict`].

use crate::{GovernorContext, GovernorOutcome, PowerGovernor};
use gd_types::Result;
use gd_verify::{Checker, Invariant, Mode, Violation};

/// One governor evaluation: the inputs and what the policy decided.
pub type Evaluation = (GovernorContext, GovernorOutcome);

/// Physical sanity of a governor outcome: residency fractions and gating
/// multipliers are probabilities, overhead is non-negative and finite.
#[derive(Debug, Clone, Copy, Default)]
pub struct GovernorSanity;

impl Invariant<Evaluation> for GovernorSanity {
    fn name(&self) -> &'static str {
        "governor.sanity"
    }

    fn check(&self, subject: &Evaluation, out: &mut Vec<Violation>) {
        let (ctx, o) = subject;
        let mut bad = |detail: String| {
            out.push(Violation {
                invariant: self.name(),
                detail,
            });
        };
        for (label, v) in [
            ("sr_fraction", o.sr_fraction),
            ("pd_fraction", o.pd_fraction),
            ("refresh_multiplier", o.gating.refresh_multiplier()),
            ("background_multiplier", o.gating.background_multiplier()),
        ] {
            if !(0.0..=1.0).contains(&v) {
                bad(format!("{label} = {v} outside [0, 1]"));
            }
        }
        if o.sr_fraction + o.pd_fraction > 1.0 + 1e-9 {
            bad(format!(
                "sr + pd residency = {} exceeds 1",
                o.sr_fraction + o.pd_fraction
            ));
        }
        if !o.overhead_s.is_finite() || o.overhead_s < 0.0 {
            bad(format!(
                "overhead_s = {} not a non-negative time",
                o.overhead_s
            ));
        }
        if ctx.runtime_s > 0.0 && o.overhead_s > 10.0 * ctx.runtime_s {
            bad(format!(
                "overhead_s = {} implausible against runtime_s = {}",
                o.overhead_s, ctx.runtime_s
            ));
        }
        if !(0.0..=1.0).contains(&ctx.offline_fraction) {
            bad(format!(
                "offline_fraction = {} outside [0, 1]",
                ctx.offline_fraction
            ));
        }
        // An off-lining governor must charge at least the detection time
        // the observed failures imply (Table 3 lower bound).
        if ctx.offline_fraction > 0.0
            && o.overhead_s + 1e-12 < ctx.offline_failures.time_lower_bound_s()
        {
            bad(format!(
                "overhead_s = {} below failure time lower bound {} ({} failed offlines)",
                o.overhead_s,
                ctx.offline_failures.time_lower_bound_s(),
                ctx.offline_failures.total()
            ));
        }
    }
}

/// A checker pre-loaded with [`GovernorSanity`].
pub fn sanity_checker(mode: Mode) -> Checker<Evaluation> {
    Checker::new(mode).with(Box::new(GovernorSanity))
}

/// Evaluates `governor` and runs the outcome through `checker`.
///
/// # Errors
///
/// In [`Mode::Strict`], an insane outcome as
/// [`gd_types::GdError::InvalidState`].
pub fn checked_evaluate<G: PowerGovernor + ?Sized>(
    governor: &G,
    ctx: &GovernorContext,
    checker: &mut Checker<Evaluation>,
) -> Result<GovernorOutcome> {
    let outcome = governor.evaluate(ctx);
    checker.run(&(*ctx, outcome))?;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GreenDimmGovernor, OfflineFailureBreakdown, Pasr, RamZzz, SrfOnly};
    use gd_power::PowerGating;

    fn ctx(interleaved: bool) -> GovernorContext {
        GovernorContext {
            interleaved,
            footprint_bytes: 1200 << 20,
            capacity_bytes: 64 << 30,
            ranks: 16,
            banks_per_rank: 16,
            measured_sr_fraction: if interleaved { 0.0 } else { 0.54 },
            runtime_s: 100.0,
            offline_fraction: 0.8,
            offline_failures: OfflineFailureBreakdown::default(),
        }
    }

    #[test]
    fn all_stock_governors_pass_strict() {
        let mut checker = sanity_checker(Mode::Strict);
        let governors: [&dyn PowerGovernor; 4] = [
            &SrfOnly,
            &RamZzz::default(),
            &Pasr,
            &GreenDimmGovernor::default(),
        ];
        for g in governors {
            for interleaved in [true, false] {
                checked_evaluate(g, &ctx(interleaved), &mut checker).unwrap();
            }
        }
        assert_eq!(checker.stats.checks_run, 8);
        assert_eq!(checker.stats.violations, 0);
    }

    /// A governor that claims more than 100% residency is rejected.
    #[test]
    fn insane_outcome_is_caught() {
        struct Broken;
        impl PowerGovernor for Broken {
            fn name(&self) -> &'static str {
                "broken"
            }
            fn evaluate(&self, _ctx: &GovernorContext) -> GovernorOutcome {
                GovernorOutcome {
                    gating: PowerGating::none(),
                    sr_fraction: 0.8,
                    pd_fraction: 0.7, // sums to 1.5
                    overhead_s: -1.0,
                }
            }
        }
        let mut record = sanity_checker(Mode::Record);
        checked_evaluate(&Broken, &ctx(true), &mut record).unwrap();
        assert!(record.stats.violations >= 2, "{:?}", record.stats.recorded);
        let mut strict = sanity_checker(Mode::Strict);
        assert!(checked_evaluate(&Broken, &ctx(true), &mut strict).is_err());
    }

    /// An off-lining governor that ignores the failure time it observed is
    /// flagged: the charged overhead must cover the Table 3 lower bound.
    #[test]
    fn undercharged_failure_time_is_caught() {
        struct FreeLunch;
        impl PowerGovernor for FreeLunch {
            fn name(&self) -> &'static str {
                "free-lunch"
            }
            fn evaluate(&self, ctx: &GovernorContext) -> GovernorOutcome {
                GovernorOutcome {
                    gating: PowerGating::deep_pd(ctx.offline_fraction),
                    sr_fraction: 0.0,
                    pd_fraction: 0.0,
                    overhead_s: 0.0, // ignores ctx.offline_failures
                }
            }
        }
        let mut c = ctx(true);
        c.offline_failures = OfflineFailureBreakdown {
            pinned: 0,
            kernel_block: 0,
            migration_aborted: 100,
        };
        let mut strict = sanity_checker(Mode::Strict);
        let err = checked_evaluate(&FreeLunch, &c, &mut strict).unwrap_err();
        assert!(err.to_string().contains("lower bound"), "{err}");
        // With no observed failures the same governor is fine.
        let mut clean = sanity_checker(Mode::Strict);
        checked_evaluate(&FreeLunch, &ctx(true), &mut clean).unwrap();
    }
}
