//! Simulation statistics consumed by the power model and the bench harness.

use crate::rank::RankResidency;
use gd_types::stats::Summary;
use gd_types::Cycles;

/// Command and event counts plus residency, for one full run of the memory
/// system. Everything the IDD power model needs to integrate energy.
///
/// `PartialEq` compares every counter and residency bucket exactly — the
/// engine-equivalence suite relies on it to prove the event-driven fast
/// path bit-identical to per-cycle stepping.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Total simulated memory-clock cycles.
    pub cycles: u64,
    /// Completed read requests.
    pub reads: u64,
    /// Completed write requests.
    pub writes: u64,
    /// ACT commands issued.
    pub activates: u64,
    /// PRE commands issued (including per-bank closes for refresh).
    pub precharges: u64,
    /// REF commands issued (per rank).
    pub refreshes: u64,
    /// Row-buffer hits (column command without a new ACT).
    pub row_hits: u64,
    /// Row-buffer misses (ACT required).
    pub row_misses: u64,
    /// Row-buffer conflicts (PRE + ACT required).
    pub row_conflicts: u64,
    /// Power-down entries across all ranks.
    pub pd_entries: u64,
    /// Self-refresh entries across all ranks.
    pub sr_entries: u64,
    /// Read latency in cycles, from request arrival to data return.
    pub read_latency: Summary,
    /// Per-rank state residency, indexed `[channel * ranks_per_channel + rank]`.
    pub rank_residency: Vec<RankResidency>,
    /// Per-sub-array-group cycles spent in GreenDIMM deep power-down.
    pub group_deep_pd_cycles: Vec<u64>,
    /// Cycles covered by epoch-replay fast-forward rather than exact
    /// simulation. 0 in the exact engine modes; non-zero marks the run as
    /// *sampled* and provenance headers flag it accordingly.
    pub replayed_cycles: u64,
    /// Whole epochs fast-forwarded by epoch replay.
    pub replayed_epochs: u64,
}

impl RunStats {
    /// Sum of residency across all ranks.
    pub fn total_residency(&self) -> RankResidency {
        let mut acc = RankResidency::default();
        for r in &self.rank_residency {
            acc.merge(r);
        }
        acc
    }

    /// Mean fraction of cycles ranks spent in self-refresh (Fig. 3b).
    pub fn mean_self_refresh_fraction(&self) -> f64 {
        if self.rank_residency.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .rank_residency
            .iter()
            .map(|r| r.self_refresh_fraction())
            .sum();
        sum / self.rank_residency.len() as f64
    }

    /// Row-buffer hit rate over all column commands.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Mean fraction of deep-power-down residency across sub-array groups,
    /// relative to total run length.
    pub fn mean_deep_pd_fraction(&self) -> f64 {
        if self.group_deep_pd_cycles.is_empty() || self.cycles == 0 {
            return 0.0;
        }
        let sum: u64 = self.group_deep_pd_cycles.iter().sum();
        let denom = Cycles::new(self.cycles).as_f64() * self.group_deep_pd_cycles.len() as f64;
        sum as f64 / denom
    }

    /// Requests served per kilocycle (a throughput measure).
    pub fn requests_per_kilocycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.reads + self.writes) as f64 * 1000.0 / Cycles::new(self.cycles).as_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_on_empty_are_zero() {
        let s = RunStats::default();
        assert_eq!(s.mean_self_refresh_fraction(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.mean_deep_pd_fraction(), 0.0);
        assert_eq!(s.requests_per_kilocycle(), 0.0);
    }

    #[test]
    fn hit_rate_and_throughput() {
        let s = RunStats {
            cycles: 1000,
            reads: 10,
            writes: 10,
            row_hits: 15,
            row_misses: 4,
            row_conflicts: 1,
            ..Default::default()
        };
        assert_eq!(s.row_hit_rate(), 0.75);
        assert_eq!(s.requests_per_kilocycle(), 20.0);
    }

    #[test]
    fn residency_totals() {
        let s = RunStats {
            cycles: 100,
            rank_residency: vec![
                RankResidency {
                    self_refresh: 50,
                    precharge_standby: 50,
                    ..Default::default()
                },
                RankResidency {
                    self_refresh: 0,
                    precharge_standby: 100,
                    ..Default::default()
                },
            ],
            group_deep_pd_cycles: vec![100, 0, 0, 0],
            ..Default::default()
        };
        assert_eq!(s.total_residency().self_refresh, 50);
        assert_eq!(s.mean_self_refresh_fraction(), 0.25);
        assert_eq!(s.mean_deep_pd_fraction(), 0.25);
    }
}
