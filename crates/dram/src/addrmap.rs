//! Physical-address ↔ DRAM-coordinate mapping.
//!
//! The mapper implements the three layouts evaluated in the paper:
//!
//! * [`InterleaveMode::Interleaved`] — commodity channel/rank/bank
//!   interleaving. From LSB to MSB the physical address is laid out as
//!   `[cache-line offset][channel][bank group][bank][column][rank][row]`,
//!   where the row bits are themselves `[local row][sub-array]` with the
//!   sub-array index on top. Because the sub-array bits are the **most
//!   significant bits of the whole address**, each sub-array group owns one
//!   contiguous `1/subarray_groups` slice of the physical address space even
//!   though consecutive cache lines are spread over every channel, rank, and
//!   bank — the key property GreenDIMM exploits (paper §4.1, Fig. 5).
//! * [`InterleaveMode::InterleavedXor`] — same layout with the bank and bank
//!   group bits additionally XOR-hashed with low row bits
//!   (permutation-based interleaving), showing the grouping survives hashing
//!   of *bank* bits.
//! * [`InterleaveMode::Linear`] — no interleaving: the address fills an
//!   entire rank (column, then row, then bank) before moving to the next
//!   rank, then the next channel. Small footprints touch a single rank,
//!   which is what lets rank-granularity power management work *without*
//!   interleaving (paper §3.3).

use gd_types::config::{DramConfig, DramOrg, InterleaveMode};
use gd_types::ids::{Bank, BankGroup, Channel, DramCoord, Rank, Row, SubArray, SubArrayGroup};
use gd_types::{GdError, Result};

/// Bytes per cache line (the interleaving granularity).
pub const CACHE_LINE_BYTES: u64 = 64;

/// Number of low address bits covered by the cache-line offset.
pub const CACHE_LINE_BITS: u32 = 6;

/// A physical-address ↔ [`DramCoord`] mapper for a fixed configuration.
#[derive(Debug, Clone)]
pub struct AddressMapper {
    org: DramOrg,
    mode: InterleaveMode,
    capacity: u64,
    ch_bits: u32,
    rank_bits: u32,
    bg_bits: u32,
    bank_bits: u32,
    col_bits: u32,
    sa_bits: u32,
    local_row_bits: u32,
}

fn log2_exact(v: u32, name: &str) -> Result<u32> {
    if v.is_power_of_two() {
        Ok(v.trailing_zeros())
    } else {
        Err(GdError::InvalidConfig(format!(
            "{name} = {v} is not a power of two"
        )))
    }
}

impl AddressMapper {
    /// Builds a mapper from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`GdError::InvalidConfig`] if the organization is invalid or
    /// a rank row is smaller than a cache line.
    pub fn new(cfg: &DramConfig) -> Result<Self> {
        cfg.org.validate()?;
        let org = cfg.org;
        // Column bits at cache-line granularity: a 64-byte line spans
        // (64 * 8 / device_width) device columns across the rank.
        let lines_per_row = org.rank_row_bytes() / CACHE_LINE_BYTES;
        if lines_per_row == 0 {
            return Err(GdError::InvalidConfig(
                "rank row smaller than a cache line".into(),
            ));
        }
        Ok(AddressMapper {
            org,
            mode: cfg.interleave,
            capacity: org.total_bytes(),
            ch_bits: log2_exact(org.channels, "channels")?,
            rank_bits: log2_exact(org.ranks_per_channel, "ranks_per_channel")?,
            bg_bits: log2_exact(org.bank_groups, "bank_groups")?,
            bank_bits: log2_exact(org.banks_per_group, "banks_per_group")?,
            col_bits: log2_exact(lines_per_row as u32, "cache lines per row")?,
            sa_bits: log2_exact(org.subarrays_per_bank, "subarrays_per_bank")?,
            local_row_bits: log2_exact(org.rows_per_subarray, "rows_per_subarray")?,
        })
    }

    /// The configured interleave mode.
    pub fn mode(&self) -> InterleaveMode {
        self.mode
    }

    /// Total mappable capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// Decodes a physical address into DRAM coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`GdError::AddressOutOfRange`] if `addr` exceeds capacity.
    pub fn decode(&self, addr: u64) -> Result<DramCoord> {
        if addr >= self.capacity {
            return Err(GdError::AddressOutOfRange {
                addr,
                capacity: self.capacity,
            });
        }
        let mut a = addr >> CACHE_LINE_BITS;
        let mut take = |bits: u32| -> u32 {
            let v = (a & ((1u64 << bits) - 1)) as u32;
            a >>= bits;
            v
        };
        let coord = match self.mode {
            InterleaveMode::Interleaved | InterleaveMode::InterleavedXor => {
                let channel = take(self.ch_bits);
                let bank_group = take(self.bg_bits);
                let bank = take(self.bank_bits);
                let column = take(self.col_bits);
                let rank = take(self.rank_bits);
                let local_row = take(self.local_row_bits);
                let subarray = take(self.sa_bits);
                let (bank_group, bank) = if self.mode == InterleaveMode::InterleavedXor {
                    self.xor_hash(bank_group, bank, local_row)
                } else {
                    (bank_group, bank)
                };
                DramCoord {
                    channel: Channel::new(channel),
                    rank: Rank::new(rank),
                    bank_group: BankGroup::new(bank_group),
                    bank: Bank::new(bank),
                    subarray: SubArray::new(subarray),
                    row: Row::new(local_row),
                    column,
                }
            }
            InterleaveMode::Linear => {
                let column = take(self.col_bits);
                let local_row = take(self.local_row_bits);
                let subarray = take(self.sa_bits);
                let bank = take(self.bank_bits);
                let bank_group = take(self.bg_bits);
                let rank = take(self.rank_bits);
                let channel = take(self.ch_bits);
                DramCoord {
                    channel: Channel::new(channel),
                    rank: Rank::new(rank),
                    bank_group: BankGroup::new(bank_group),
                    bank: Bank::new(bank),
                    subarray: SubArray::new(subarray),
                    row: Row::new(local_row),
                    column,
                }
            }
        };
        debug_assert_eq!(a, 0, "all address bits must be consumed");
        Ok(coord)
    }

    /// Encodes DRAM coordinates back into a physical address (the inverse of
    /// [`decode`](Self::decode)).
    ///
    /// # Errors
    ///
    /// Returns [`GdError::InvalidConfig`] if any coordinate exceeds its
    /// configured dimension.
    pub fn encode(&self, coord: &DramCoord) -> Result<u64> {
        let checks = [
            ("channel", coord.channel.0, self.org.channels),
            ("rank", coord.rank.0, self.org.ranks_per_channel),
            ("bank_group", coord.bank_group.0, self.org.bank_groups),
            ("bank", coord.bank.0, self.org.banks_per_group),
            ("subarray", coord.subarray.0, self.org.subarrays_per_bank),
            ("row", coord.row.0, self.org.rows_per_subarray),
            ("column", coord.column, 1 << self.col_bits),
        ];
        for (name, v, dim) in checks {
            if v >= dim {
                return Err(GdError::InvalidConfig(format!(
                    "{name} index {v} exceeds dimension {dim}"
                )));
            }
        }
        let mut a: u64 = 0;
        let mut shift: u32 = 0;
        let put = |v: u32, bits: u32, a: &mut u64, shift: &mut u32| {
            *a |= (v as u64) << *shift;
            *shift += bits;
        };
        match self.mode {
            InterleaveMode::Interleaved | InterleaveMode::InterleavedXor => {
                let (bg, b) = if self.mode == InterleaveMode::InterleavedXor {
                    // XOR hash is an involution given the same row bits.
                    self.xor_hash(coord.bank_group.0, coord.bank.0, coord.row.0)
                } else {
                    (coord.bank_group.0, coord.bank.0)
                };
                put(coord.channel.0, self.ch_bits, &mut a, &mut shift);
                put(bg, self.bg_bits, &mut a, &mut shift);
                put(b, self.bank_bits, &mut a, &mut shift);
                put(coord.column, self.col_bits, &mut a, &mut shift);
                put(coord.rank.0, self.rank_bits, &mut a, &mut shift);
                put(coord.row.0, self.local_row_bits, &mut a, &mut shift);
                put(coord.subarray.0, self.sa_bits, &mut a, &mut shift);
            }
            InterleaveMode::Linear => {
                put(coord.column, self.col_bits, &mut a, &mut shift);
                put(coord.row.0, self.local_row_bits, &mut a, &mut shift);
                put(coord.subarray.0, self.sa_bits, &mut a, &mut shift);
                put(coord.bank.0, self.bank_bits, &mut a, &mut shift);
                put(coord.bank_group.0, self.bg_bits, &mut a, &mut shift);
                put(coord.rank.0, self.rank_bits, &mut a, &mut shift);
                put(coord.channel.0, self.ch_bits, &mut a, &mut shift);
            }
        }
        Ok(a << CACHE_LINE_BITS)
    }

    /// XORs bank-group/bank bits with the low bits of the local row.
    /// Involutive: applying it twice with the same row restores the input.
    fn xor_hash(&self, bank_group: u32, bank: u32, local_row: u32) -> (u32, u32) {
        let bg_mask = (1u32 << self.bg_bits) - 1;
        let bank_mask = (1u32 << self.bank_bits) - 1;
        let hashed_bg = (bank_group ^ (local_row & bg_mask)) & bg_mask;
        let hashed_bank = (bank ^ ((local_row >> self.bg_bits) & bank_mask)) & bank_mask;
        (hashed_bg, hashed_bank)
    }

    /// The sub-array group an address belongs to.
    ///
    /// # Errors
    ///
    /// Returns [`GdError::AddressOutOfRange`] for addresses past capacity.
    pub fn subarray_group_of(&self, addr: u64) -> Result<SubArrayGroup> {
        Ok(self.decode(addr)?.subarray_group())
    }

    /// The contiguous physical-address range owned by a sub-array group
    /// under interleaved mapping, as `[start, end)`.
    ///
    /// # Errors
    ///
    /// Returns [`GdError::InvalidState`] when the mode is
    /// [`InterleaveMode::Linear`] — without interleaving a sub-array group is
    /// *not* contiguous in the physical address space, which is exactly why
    /// the paper's rank-granularity techniques need interleaving disabled.
    pub fn subarray_group_range(&self, group: SubArrayGroup) -> Result<(u64, u64)> {
        if self.mode == InterleaveMode::Linear {
            return Err(GdError::InvalidState(
                "sub-array groups are not contiguous without interleaving".into(),
            ));
        }
        let group_bytes = self.org.subarray_group_bytes();
        let start = group.0 as u64 * group_bytes;
        Ok((start, start + group_bytes))
    }

    /// Number of sub-array groups.
    pub fn subarray_groups(&self) -> u32 {
        self.org.subarray_groups()
    }

    /// Bits of the physical address used for each field, for diagnostics and
    /// the Fig. 5 address-map printout: `(channel, bankgroup, bank, column,
    /// rank, local row, sub-array)`.
    pub fn bit_layout(&self) -> AddressBitLayout {
        AddressBitLayout {
            offset: CACHE_LINE_BITS,
            channel: self.ch_bits,
            bank_group: self.bg_bits,
            bank: self.bank_bits,
            column: self.col_bits,
            rank: self.rank_bits,
            local_row: self.local_row_bits,
            subarray: self.sa_bits,
        }
    }
}

/// Field widths of the decoded physical address, LSB-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressBitLayout {
    /// Cache-line offset bits.
    pub offset: u32,
    /// Channel-select bits.
    pub channel: u32,
    /// Bank-group-select bits.
    pub bank_group: u32,
    /// Bank-select bits.
    pub bank: u32,
    /// Column (cache-line) bits.
    pub column: u32,
    /// Rank-select bits.
    pub rank: u32,
    /// Local-row bits (within a sub-array).
    pub local_row: u32,
    /// Sub-array-select bits (the global row-decoder input, MSBs).
    pub subarray: u32,
}

impl AddressBitLayout {
    /// Total address bits.
    pub fn total(&self) -> u32 {
        self.offset
            + self.channel
            + self.bank_group
            + self.bank
            + self.column
            + self.rank
            + self.local_row
            + self.subarray
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_types::config::DramConfig;

    fn mappers() -> Vec<AddressMapper> {
        [
            InterleaveMode::Interleaved,
            InterleaveMode::InterleavedXor,
            InterleaveMode::Linear,
        ]
        .into_iter()
        .flat_map(|m| {
            [
                DramConfig::small_test().with_interleave(m),
                DramConfig::ddr4_2133_64gb().with_interleave(m),
            ]
        })
        .map(|cfg| AddressMapper::new(&cfg).unwrap())
        .collect()
    }

    #[test]
    fn decode_encode_roundtrip_sampled() {
        for m in mappers() {
            let cap = m.capacity_bytes();
            for i in 0..4096u64 {
                // Sample across the full range with a large odd stride.
                let addr = ((i * 0x9e37_79b9 * CACHE_LINE_BYTES) % cap) & !(CACHE_LINE_BYTES - 1);
                let coord = m.decode(addr).unwrap();
                let back = m.encode(&coord).unwrap();
                assert_eq!(addr, back, "mode {:?} addr {addr:#x}", m.mode());
            }
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let m = AddressMapper::new(&DramConfig::small_test()).unwrap();
        assert!(m.decode(m.capacity_bytes()).is_err());
        assert!(m.decode(u64::MAX).is_err());
    }

    #[test]
    fn interleaved_spreads_consecutive_lines_across_channels() {
        let m = AddressMapper::new(&DramConfig::ddr4_2133_64gb()).unwrap();
        let c0 = m.decode(0).unwrap();
        let c1 = m.decode(64).unwrap();
        assert_ne!(c0.channel, c1.channel, "adjacent lines hit other channels");
    }

    #[test]
    fn linear_keeps_small_footprint_in_one_rank() {
        let cfg = DramConfig::ddr4_2133_64gb().with_interleave(InterleaveMode::Linear);
        let m = AddressMapper::new(&cfg).unwrap();
        // First 64 MB must all live in channel 0, rank 0.
        for i in 0..1024u64 {
            let addr = i * (64 << 20) / 1024;
            let c = m.decode(addr).unwrap();
            assert_eq!(c.channel, Channel::new(0));
            assert_eq!(c.rank, Rank::new(0));
        }
    }

    #[test]
    fn subarray_group_is_contiguous_when_interleaved() {
        // The paper's headline mapping property: group g owns exactly
        // [g*group_bytes, (g+1)*group_bytes).
        let m = AddressMapper::new(&DramConfig::ddr4_2133_64gb()).unwrap();
        let group_bytes = 1024u64 << 20;
        for g in [0u32, 1, 31, 63] {
            let (start, end) = m.subarray_group_range(SubArrayGroup::new(g)).unwrap();
            assert_eq!(start, g as u64 * group_bytes);
            assert_eq!(end - start, group_bytes);
            // Sample addresses within the range all decode to group g.
            for k in 0..64u64 {
                let addr = start + k * (group_bytes / 64);
                assert_eq!(m.subarray_group_of(addr).unwrap(), SubArrayGroup::new(g));
            }
            // And the addresses cover every channel, rank, and bank.
        }
    }

    #[test]
    fn subarray_group_spans_every_channel_rank_bank() {
        let m = AddressMapper::new(&DramConfig::small_test()).unwrap();
        let (start, end) = m.subarray_group_range(SubArrayGroup::new(3)).unwrap();
        let mut channels = std::collections::HashSet::new();
        let mut ranks = std::collections::HashSet::new();
        let mut banks = std::collections::HashSet::new();
        let mut addr = start;
        while addr < end {
            let c = m.decode(addr).unwrap();
            assert_eq!(c.subarray, SubArray::new(3));
            channels.insert(c.channel);
            ranks.insert((c.channel, c.rank));
            banks.insert((c.channel, c.rank, c.bank_group, c.bank));
            addr += CACHE_LINE_BYTES;
        }
        let org = DramConfig::small_test().org;
        assert_eq!(channels.len() as u32, org.channels);
        assert_eq!(ranks.len() as u32, org.total_ranks());
        assert_eq!(banks.len() as u32, org.total_banks());
    }

    #[test]
    fn linear_mode_group_range_errors() {
        let cfg = DramConfig::small_test().with_interleave(InterleaveMode::Linear);
        let m = AddressMapper::new(&cfg).unwrap();
        assert!(m.subarray_group_range(SubArrayGroup::new(0)).is_err());
    }

    #[test]
    fn xor_hash_preserves_group_contiguity() {
        let cfg = DramConfig::small_test().with_interleave(InterleaveMode::InterleavedXor);
        let m = AddressMapper::new(&cfg).unwrap();
        let group_bytes = m.capacity_bytes() / m.subarray_groups() as u64;
        for addr in (0..m.capacity_bytes()).step_by(4096) {
            let expected = (addr / group_bytes) as u32;
            assert_eq!(m.subarray_group_of(addr).unwrap().0, expected);
        }
    }

    #[test]
    fn bit_layout_sums_to_capacity_bits() {
        for m in mappers() {
            let layout = m.bit_layout();
            assert_eq!(1u64 << layout.total(), m.capacity_bytes());
        }
    }

    #[test]
    fn encode_rejects_out_of_dim_coords() {
        let m = AddressMapper::new(&DramConfig::small_test()).unwrap();
        let mut c = m.decode(0).unwrap();
        c.row = Row::new(1 << 20);
        assert!(m.encode(&c).is_err());
    }
}
