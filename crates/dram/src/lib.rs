//! A cycle-level DDR4 memory-system simulator built for the GreenDIMM
//! reproduction.
//!
//! The simulator models the full hierarchy — channels, ranks, bank groups,
//! banks, sub-arrays, rows — with DDR4 timing constraints, FR-FCFS
//! scheduling, auto-refresh, rank low-power states (power-down and
//! self-refresh with their wake-up penalties), and GreenDIMM's sub-array
//! granularity deep power-down register.
//!
//! The paper ran its analysis on a commercial server; this crate is the
//! from-scratch substitute that reproduces the *state-residency dynamics*
//! that drive every power result: which ranks can idle long enough to enter
//! low-power states under channel/rank/bank interleaving, and what wake-ups
//! cost.
//!
//! # Example: the paper's §3.3 observation
//!
//! Memory interleaving prevents ranks from ever entering self-refresh, even
//! for tiny footprints:
//!
//! ```
//! use gd_dram::{LowPowerPolicy, MemRequest, MemorySystem};
//! use gd_types::config::{DramConfig, InterleaveMode};
//!
//! # fn main() -> gd_types::Result<()> {
//! let cfg = DramConfig::small_test();
//! let trace: Vec<_> = (0..512).map(|i| MemRequest::read(i * 64, i * 100)).collect();
//!
//! let mut interleaved = MemorySystem::new(cfg, LowPowerPolicy::srf_default())?;
//! let with = interleaved.run_trace(trace.clone())?;
//!
//! let mut linear = MemorySystem::new(
//!     cfg.with_interleave(InterleaveMode::Linear),
//!     LowPowerPolicy::srf_default(),
//! )?;
//! let without = linear.run_trace(trace)?;
//!
//! assert!(without.mean_self_refresh_fraction() > with.mean_self_refresh_fraction());
//! # Ok(())
//! # }
//! ```

pub mod addrmap;
mod bank;
pub mod channel;
pub mod command;
pub mod policy;
pub mod rank;
pub mod stats;
pub mod system;
pub mod validate;

pub use addrmap::{AddressBitLayout, AddressMapper, CACHE_LINE_BYTES};
pub use command::{AccessKind, DramCommand, MemRequest};
pub use policy::LowPowerPolicy;
pub use rank::{RankPowerState, RankResidency};
pub use stats::RunStats;
pub use system::{EngineMode, EpochReplayCfg, MemorySystem};
pub use validate::{CommandRecord, TimingChecker, TimingViolation};
