//! Command-log recording and independent protocol validation.
//!
//! The controller can record every command it issues; the [`TimingChecker`]
//! then replays the log against the JEDEC constraints *independently* of
//! the scheduler's own bookkeeping. Any scheduler bug that issues a command
//! early surfaces as a [`TimingViolation`] instead of silently producing
//! optimistic latencies.
//!
//! Beyond the classic bank/rank timing constraints, the checker runs a
//! per-rank power-state machine over the PDE/PDX/SRE/SRX records the
//! controller's low-power governor emits:
//!
//! * commands issued while the rank is in power-down or self-refresh,
//! * missing tXP / tXS recovery gaps after a PDX / SRX,
//! * tCKE minimum residency between a power-down entry and its exit,
//! * REF issued while the rank is refreshing itself,
//! * entries with open banks, exits without a matching entry.
//!
//! It also validates GreenDIMM's safety properties against the MRS records
//! that program the sub-array-group deep power-down bit vector: traffic
//! (ACT/RD/WR) must never touch a group whose deep-PD bit is set, and —
//! when the neighbor constraint is enabled — must not touch the sense-amp
//! buddy of a powered-down group either (§6.1 of the paper: a group in
//! deep power-down loses the sense amplifiers it shares with its
//! neighbor).

use crate::command::DramCommand;
use gd_types::config::{DramConfig, DramTiming, MemSpecKind, RefreshScheme};
use std::collections::VecDeque;
use std::fmt;

/// One logged command issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandRecord {
    /// Issue cycle.
    pub cycle: u64,
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Flat bank index within the rank (bank group × banks + bank), or 0
    /// for rank-level commands. For [`DramCommand::ModeRegisterSet`]
    /// records this carries the deep power-down bit being written (1 =
    /// enter deep-PD, 0 = exit).
    pub bank: u32,
    /// Bank group index (for tRRD_L/tCCD_L checks).
    pub bank_group: u32,
    /// Full row index within the bank (sub-array × rows-per-sub-array +
    /// row) for ACT/RD/WR; 0 for other bank/rank commands. For
    /// [`DramCommand::ModeRegisterSet`] records this carries the sub-array
    /// group index being programmed.
    pub row: u32,
    /// The command.
    pub command: DramCommand,
}

/// A detected protocol violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingViolation {
    /// The offending record.
    pub record: CommandRecord,
    /// Which constraint was violated.
    pub constraint: &'static str,
    /// Earliest legal cycle (equals the record's own cycle for state
    /// violations that no amount of waiting would fix).
    pub earliest_legal: u64,
}

impl fmt::Display for TimingViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at cycle {} on ch{}/r{}/b{} violates {} (earliest legal {})",
            self.record.command,
            self.record.cycle,
            self.record.channel,
            self.record.rank,
            self.record.bank,
            self.constraint,
            self.earliest_legal
        )
    }
}

#[derive(Debug, Clone, Default)]
struct BankTrack {
    last_act: Option<u64>,
    last_read: Option<u64>,
    last_write: Option<u64>,
    last_pre: Option<u64>,
    open: bool,
}

/// Power state of a rank as reconstructed from the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum PowerState {
    /// CKE high: active or precharge standby.
    #[default]
    Awake,
    /// Precharge power-down (CKE low).
    PowerDown,
    /// Self-refresh.
    SelfRefresh,
}

#[derive(Debug, Clone, Default)]
struct RankTrack {
    acts: VecDeque<u64>,
    last_act_any: Option<u64>,
    last_act_bg: Vec<Option<u64>>,
    last_ref: Option<u64>,
    /// Cycle and target set of the most recent same-bank refresh (DDR5).
    last_refsb: Option<u64>,
    last_refsb_set: u32,
    power: PowerState,
    /// Cycle of the entry command for the current low-power state.
    pde_cycle: Option<u64>,
    sre_cycle: Option<u64>,
    /// Cycle of the most recent exits (tXP / tXS recovery gates).
    last_pdx: Option<u64>,
    last_srx: Option<u64>,
}

/// Replays a command log and reports every timing or state violation.
#[derive(Debug)]
pub struct TimingChecker {
    timing: DramTiming,
    banks_per_rank: u32,
    banks_per_group: u32,
    /// Rows per sub-array; 0 disables the GreenDIMM sub-array-group checks
    /// (the group of an ACT/RD/WR is `row / rows_per_subarray`).
    rows_per_subarray: u32,
    /// The configuration's refresh scheme: REFsb records are only legal
    /// under [`RefreshScheme::SameBank`].
    scheme: RefreshScheme,
    /// The memory-generation backend; PASR mask records are only legal on
    /// [`MemSpecKind::Lpddr4Pasr`].
    kind: MemSpecKind,
    /// Rows per PASR segment; 0 disables the masked-segment traffic checks.
    rows_per_pasr_segment: u32,
    /// When set, traffic to the sense-amp buddy (`group ^ 1`) of a
    /// deep-powered-down group is also a violation.
    neighbor_pairs: bool,
}

impl TimingChecker {
    /// Creates a checker with the GreenDIMM group checks disabled (pure
    /// JEDEC timing plus the rank power-state machine), assuming the DDR4
    /// all-bank-refresh legality table.
    pub fn new(timing: DramTiming, bank_groups: u32, banks_per_group: u32) -> Self {
        TimingChecker {
            timing,
            banks_per_rank: bank_groups * banks_per_group,
            banks_per_group,
            rows_per_subarray: 0,
            scheme: RefreshScheme::AllBank,
            kind: MemSpecKind::Ddr4,
            rows_per_pasr_segment: 0,
            neighbor_pairs: false,
        }
    }

    /// Creates a checker for a full configuration, enabling the GreenDIMM
    /// sub-array-group safety checks and the generation-specific legality
    /// table (DDR5 same-bank refresh, LPDDR4 PASR masking).
    pub fn for_config(cfg: &DramConfig) -> Self {
        TimingChecker {
            timing: cfg.timing,
            banks_per_rank: cfg.org.bank_groups * cfg.org.banks_per_group,
            banks_per_group: cfg.org.banks_per_group,
            rows_per_subarray: cfg.org.rows_per_subarray,
            scheme: cfg.refresh_scheme(),
            kind: cfg.kind,
            rows_per_pasr_segment: if cfg.kind == MemSpecKind::Lpddr4Pasr {
                cfg.rows_per_pasr_segment()
            } else {
                0
            },
            neighbor_pairs: false,
        }
    }

    /// Also flags traffic to the sense-amp buddy of a deep-powered-down
    /// group (the paper's §6.1 neighbor constraint).
    pub fn with_neighbor_pairs(mut self, enabled: bool) -> Self {
        self.neighbor_pairs = enabled;
        self
    }

    /// Checks a log (commands of one channel must appear in cycle order).
    /// Returns all violations found.
    pub fn check(&self, log: &[CommandRecord]) -> Vec<TimingViolation> {
        let t = &self.timing;
        let mut violations = Vec::new();
        let mut banks: std::collections::HashMap<(u32, u32, u32), BankTrack> =
            std::collections::HashMap::new();
        let mut ranks: std::collections::HashMap<(u32, u32), RankTrack> =
            std::collections::HashMap::new();
        let mut last_cycle: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        // Deep power-down bit per sub-array group, reconstructed from the
        // MRS records (group index is global: sub-array `g` of every bank).
        let mut deep_pd: Vec<bool> = Vec::new();
        // PASR segment mask, reconstructed from the MR17 records.
        let mut pasr_mask: Vec<bool> = Vec::new();

        for rec in log {
            if let Some(prev) = last_cycle.get(&rec.channel) {
                if rec.cycle < *prev {
                    violations.push(TimingViolation {
                        record: *rec,
                        constraint: "log order (per channel)",
                        earliest_legal: *prev,
                    });
                }
            }
            last_cycle.insert(rec.channel, rec.cycle);
            let bank_key = (rec.channel, rec.rank, rec.bank);
            let rank_key = (rec.channel, rec.rank);
            let rank = ranks.entry(rank_key).or_insert_with(|| RankTrack {
                last_act_bg: vec![None; 16],
                ..Default::default()
            });
            fn gap_violation(
                rec: &CommandRecord,
                cond: Option<u64>,
                constraint: &'static str,
                min_gap: u64,
            ) -> Option<TimingViolation> {
                let prev = cond?;
                (rec.cycle < prev + min_gap).then(|| TimingViolation {
                    record: *rec,
                    constraint,
                    earliest_legal: prev + min_gap,
                })
            }
            fn state_violation(rec: &CommandRecord, constraint: &'static str) -> TimingViolation {
                TimingViolation {
                    record: *rec,
                    constraint,
                    earliest_legal: rec.cycle,
                }
            }
            let check = |cond: Option<u64>, constraint: &'static str, min_gap: u64| {
                gap_violation(rec, cond, constraint, min_gap)
            };
            let mut pending: Vec<TimingViolation> = Vec::new();

            // --- Rank power-state machine (MRS and the PASR MR17 write are
            // sideband register writes through the SPD bus and exempt,
            // §4.3). ---
            match rec.command {
                DramCommand::ModeRegisterSet | DramCommand::PasrMask => {}
                DramCommand::PowerDownExit => {
                    if rank.power == PowerState::PowerDown {
                        pending.extend(check(rank.pde_cycle, "tCKE", t.t_cke));
                    } else {
                        pending.push(state_violation(rec, "PDX without PDE"));
                    }
                    rank.power = PowerState::Awake;
                    rank.last_pdx = Some(rec.cycle);
                    rank.pde_cycle = None;
                }
                DramCommand::SelfRefreshExit => {
                    if rank.power == PowerState::SelfRefresh {
                        pending.extend(check(rank.sre_cycle, "tCKE", t.t_cke));
                    } else {
                        pending.push(state_violation(rec, "SRX without SRE"));
                    }
                    rank.power = PowerState::Awake;
                    rank.last_srx = Some(rec.cycle);
                    rank.sre_cycle = None;
                }
                DramCommand::PowerDownEnter => {
                    match rank.power {
                        PowerState::Awake => {
                            pending.extend(check(rank.last_pdx, "tXP", t.t_xp));
                            pending.extend(check(rank.last_srx, "tXS", t.t_xs));
                            if self.any_bank_open(&banks, rec.channel, rec.rank) {
                                pending.push(state_violation(rec, "PDE with open bank"));
                            }
                        }
                        PowerState::PowerDown => {
                            pending.push(state_violation(rec, "redundant PDE"));
                        }
                        PowerState::SelfRefresh => {
                            pending.push(state_violation(rec, "PDE in self-refresh"));
                        }
                    }
                    rank.power = PowerState::PowerDown;
                    rank.pde_cycle = Some(rec.cycle);
                }
                DramCommand::SelfRefreshEnter => {
                    match rank.power {
                        PowerState::Awake => {
                            pending.extend(check(rank.last_pdx, "tXP", t.t_xp));
                            pending.extend(check(rank.last_srx, "tXS", t.t_xs));
                            if self.any_bank_open(&banks, rec.channel, rec.rank) {
                                pending.push(state_violation(rec, "SRE with open bank"));
                            }
                        }
                        // Power-down → self-refresh promotion is legal: the
                        // governor deepens an already-gated rank without an
                        // intervening PDX.
                        PowerState::PowerDown => {}
                        PowerState::SelfRefresh => {
                            pending.push(state_violation(rec, "redundant SRE"));
                        }
                    }
                    rank.power = PowerState::SelfRefresh;
                    rank.sre_cycle = Some(rec.cycle);
                    rank.pde_cycle = None;
                }
                _ => match rank.power {
                    PowerState::PowerDown => {
                        pending.push(state_violation(rec, "command in power-down"));
                    }
                    PowerState::SelfRefresh => {
                        pending.push(state_violation(
                            rec,
                            if rec.command == DramCommand::Refresh {
                                "REF during self-refresh"
                            } else {
                                "command in self-refresh"
                            },
                        ));
                    }
                    PowerState::Awake => {
                        pending.extend(check(rank.last_pdx, "tXP", t.t_xp));
                        pending.extend(check(rank.last_srx, "tXS", t.t_xs));
                    }
                },
            }

            // --- GreenDIMM sub-array-group safety (deep-PD bit vector). ---
            // `rows_per_subarray == 0` (geometry unknown) disables these
            // checks: `checked_div` folds that gate into the division.
            match rec.command {
                DramCommand::ModeRegisterSet if self.rows_per_subarray > 0 => {
                    let g = rec.row as usize;
                    if deep_pd.len() <= g {
                        deep_pd.resize(g + 1, false);
                    }
                    deep_pd[g] = rec.bank != 0;
                }
                DramCommand::PasrMask => {
                    if self.kind == MemSpecKind::Lpddr4Pasr {
                        let s = rec.row as usize;
                        if pasr_mask.len() <= s {
                            pasr_mask.resize(s + 1, false);
                        }
                        pasr_mask[s] = rec.bank != 0;
                    } else {
                        pending.push(state_violation(rec, "PASR mask on non-LPDDR device"));
                    }
                }
                DramCommand::Activate | DramCommand::Read | DramCommand::Write => {
                    if let Some(g) = rec.row.checked_div(self.rows_per_subarray) {
                        let g = g as usize;
                        if deep_pd.get(g).copied().unwrap_or(false) {
                            pending.push(state_violation(rec, "deep power-down group traffic"));
                        }
                        if self.neighbor_pairs && deep_pd.get(g ^ 1).copied().unwrap_or(false) {
                            pending.push(state_violation(rec, "neighbor sense-amp pair"));
                        }
                    }
                    // A masked PASR segment is not refreshed — its data is
                    // gone, so any traffic to it is a contract violation.
                    if let Some(seg) = rec.row.checked_div(self.rows_per_pasr_segment) {
                        if pasr_mask.get(seg as usize).copied().unwrap_or(false) {
                            pending.push(state_violation(rec, "masked segment traffic"));
                        }
                    }
                }
                _ => {}
            }

            // --- Bank/rank timing constraints. ---
            match rec.command {
                DramCommand::Activate => {
                    let bank = banks.entry(bank_key).or_default();
                    pending.extend(check(bank.last_act, "tRC", t.t_rc));
                    pending.extend(check(bank.last_pre, "tRP", t.t_rp));
                    pending.extend(check(rank.last_act_any, "tRRD_S", t.t_rrd_s));
                    pending.extend(check(
                        rank.last_act_bg
                            .get(rec.bank_group as usize)
                            .copied()
                            .flatten(),
                        "tRRD_L",
                        t.t_rrd_l,
                    ));
                    pending.extend(check(rank.last_ref, "tRFC", t.t_rfc));
                    // A same-bank refresh only stalls its target set: ACTs
                    // to banks of that set must wait tRFCsb; other banks
                    // are free.
                    if rank.last_refsb.is_some()
                        && self.banks_per_group > 0
                        && rec.bank % self.banks_per_group == rank.last_refsb_set
                    {
                        pending.extend(check(rank.last_refsb, "tRFCsb", t.t_rfc_sb));
                    }
                    if let Some(fourth_back) = rank.acts.iter().rev().nth(3).copied() {
                        if rec.cycle < fourth_back + t.t_faw {
                            pending.push(TimingViolation {
                                record: *rec,
                                constraint: "tFAW",
                                earliest_legal: fourth_back + t.t_faw,
                            });
                        }
                    }
                    let bank = banks.entry(bank_key).or_default();
                    bank.last_act = Some(rec.cycle);
                    bank.open = true;
                    rank.last_act_any = Some(rec.cycle);
                    if (rec.bank_group as usize) < rank.last_act_bg.len() {
                        rank.last_act_bg[rec.bank_group as usize] = Some(rec.cycle);
                    }
                    rank.acts.push_back(rec.cycle);
                    if rank.acts.len() > 8 {
                        rank.acts.pop_front();
                    }
                }
                DramCommand::Read | DramCommand::Write => {
                    let bank = banks.entry(bank_key).or_default();
                    if !bank.open {
                        pending.push(TimingViolation {
                            record: *rec,
                            constraint: "column to closed bank",
                            earliest_legal: rec.cycle,
                        });
                    }
                    pending.extend(check(bank.last_act, "tRCD", t.t_rcd));
                    let bank = banks.entry(bank_key).or_default();
                    if rec.command == DramCommand::Read {
                        bank.last_read = Some(rec.cycle);
                    } else {
                        bank.last_write = Some(rec.cycle);
                    }
                }
                DramCommand::Precharge => {
                    let bank = banks.entry(bank_key).or_default();
                    pending.extend(check(bank.last_act, "tRAS", t.t_ras));
                    pending.extend(check(bank.last_read, "tRTP", t.t_rtp));
                    if let Some(w) = bank.last_write {
                        let min = t.cwl + t.burst_cycles() + t.t_wr;
                        if rec.cycle < w + min {
                            pending.push(TimingViolation {
                                record: *rec,
                                constraint: "tWR",
                                earliest_legal: w + min,
                            });
                        }
                    }
                    let bank = banks.entry(bank_key).or_default();
                    bank.last_pre = Some(rec.cycle);
                    bank.open = false;
                }
                DramCommand::PrechargeAll => {
                    for b in 0..self.banks_per_rank {
                        let bank = banks.entry((rec.channel, rec.rank, b)).or_default();
                        if bank.open {
                            bank.last_pre = Some(rec.cycle);
                            bank.open = false;
                        }
                    }
                }
                DramCommand::Refresh => {
                    // All banks of the rank must be precharged.
                    for b in 0..self.banks_per_rank {
                        if banks
                            .get(&(rec.channel, rec.rank, b))
                            .map(|bk| bk.open)
                            .unwrap_or(false)
                        {
                            pending.push(TimingViolation {
                                record: *rec,
                                constraint: "REF with open bank",
                                earliest_legal: rec.cycle,
                            });
                        }
                    }
                    pending.extend(check(rank.last_ref, "tRFC (back-to-back REF)", t.t_rfc));
                    rank.last_ref = Some(rec.cycle);
                }
                DramCommand::RefreshSameBank => {
                    if !matches!(self.scheme, RefreshScheme::SameBank { .. }) {
                        pending.push(state_violation(rec, "REFsb on all-bank refresh device"));
                    }
                    // Only the target set — one bank per group, flat index
                    // `bg * banks_per_group + set` — must be precharged.
                    let set = rec.bank;
                    let groups = self
                        .banks_per_rank
                        .checked_div(self.banks_per_group)
                        .unwrap_or(0);
                    for bg in 0..groups {
                        let b = bg * self.banks_per_group + set;
                        if banks
                            .get(&(rec.channel, rec.rank, b))
                            .map(|bk| bk.open)
                            .unwrap_or(false)
                        {
                            pending.push(state_violation(rec, "REFsb with open bank in set"));
                        }
                    }
                    pending.extend(check(
                        rank.last_refsb,
                        "tRFCsb (back-to-back REFsb)",
                        t.t_rfc_sb,
                    ));
                    rank.last_refsb = Some(rec.cycle);
                    rank.last_refsb_set = set;
                }
                _ => {}
            }
            violations.append(&mut pending);
        }
        violations
    }

    fn any_bank_open(
        &self,
        banks: &std::collections::HashMap<(u32, u32, u32), BankTrack>,
        channel: u32,
        rank: u32,
    ) -> bool {
        (0..self.banks_per_rank).any(|b| {
            banks
                .get(&(channel, rank, b))
                .map(|bk| bk.open)
                .unwrap_or(false)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker() -> TimingChecker {
        TimingChecker::new(DramTiming::ddr4_2133_4gb(), 4, 4)
    }

    fn rec(cycle: u64, bank: u32, bg: u32, command: DramCommand) -> CommandRecord {
        CommandRecord {
            cycle,
            channel: 0,
            rank: 0,
            bank,
            bank_group: bg,
            row: 0,
            command,
        }
    }

    /// A rank-level power record.
    fn prec(cycle: u64, command: DramCommand) -> CommandRecord {
        rec(cycle, 0, 0, command)
    }

    /// An MRS record programming group `g`'s deep-PD bit.
    fn mrs(cycle: u64, group: u32, down: bool) -> CommandRecord {
        CommandRecord {
            cycle,
            channel: 0,
            rank: 0,
            bank: u32::from(down),
            bank_group: 0,
            row: group,
            command: DramCommand::ModeRegisterSet,
        }
    }

    /// An ACT targeting a specific full row.
    fn act_row(cycle: u64, row: u32) -> CommandRecord {
        CommandRecord {
            cycle,
            channel: 0,
            rank: 0,
            bank: 0,
            bank_group: 0,
            row,
            command: DramCommand::Activate,
        }
    }

    #[test]
    fn legal_sequence_passes() {
        let t = DramTiming::ddr4_2133_4gb();
        let log = vec![
            rec(0, 0, 0, DramCommand::Activate),
            rec(t.t_rcd, 0, 0, DramCommand::Read),
            rec(t.t_ras, 0, 0, DramCommand::Precharge),
            rec(t.t_ras + t.t_rp, 0, 0, DramCommand::Activate),
        ];
        assert!(checker().check(&log).is_empty());
    }

    #[test]
    fn early_read_violates_trcd() {
        let log = vec![
            rec(0, 0, 0, DramCommand::Activate),
            rec(5, 0, 0, DramCommand::Read),
        ];
        let v = checker().check(&log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].constraint, "tRCD");
        assert!(v[0].to_string().contains("tRCD"));
    }

    #[test]
    fn early_precharge_violates_tras() {
        let log = vec![
            rec(0, 0, 0, DramCommand::Activate),
            rec(10, 0, 0, DramCommand::Precharge),
        ];
        let v = checker().check(&log);
        assert!(v.iter().any(|x| x.constraint == "tRAS"));
    }

    #[test]
    fn five_acts_in_window_violate_tfaw() {
        let t = DramTiming::ddr4_2133_4gb();
        let mut log = Vec::new();
        // Five ACTs spaced by exactly tRRD_L in distinct bank groups of two
        // alternating groups — the 5th lands inside the tFAW window.
        for i in 0..5u64 {
            log.push(rec(
                i * t.t_rrd_l,
                i as u32 % 4,
                (i % 4) as u32,
                DramCommand::Activate,
            ));
        }
        let v = checker().check(&log);
        assert!(
            v.iter().any(|x| x.constraint == "tFAW"),
            "violations: {v:?}"
        );
    }

    #[test]
    fn column_to_closed_bank_detected() {
        let log = vec![rec(100, 2, 0, DramCommand::Read)];
        let v = checker().check(&log);
        assert!(v.iter().any(|x| x.constraint == "column to closed bank"));
    }

    #[test]
    fn refresh_with_open_bank_detected() {
        let t = DramTiming::ddr4_2133_4gb();
        let log = vec![
            rec(0, 1, 0, DramCommand::Activate),
            rec(t.t_ras, 0, 0, DramCommand::Refresh),
        ];
        let v = checker().check(&log);
        assert!(v.iter().any(|x| x.constraint == "REF with open bank"));
    }

    #[test]
    fn out_of_order_log_detected() {
        let log = vec![
            rec(100, 0, 0, DramCommand::Activate),
            rec(50, 1, 1, DramCommand::Activate),
        ];
        let v = checker().check(&log);
        assert!(v.iter().any(|x| x.constraint.starts_with("log order")));
    }

    // --- Power-state machine ---

    #[test]
    fn legal_power_down_cycle_passes() {
        let t = DramTiming::ddr4_2133_4gb();
        let log = vec![
            prec(0, DramCommand::PowerDownEnter),
            prec(t.t_cke, DramCommand::PowerDownExit),
            prec(t.t_cke + t.t_xp, DramCommand::Activate),
        ];
        let v = checker().check(&log);
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn command_in_power_down_detected() {
        let t = DramTiming::ddr4_2133_4gb();
        let log = vec![
            prec(0, DramCommand::PowerDownEnter),
            prec(t.t_cke, DramCommand::Activate),
        ];
        let v = checker().check(&log);
        assert!(
            v.iter().any(|x| x.constraint == "command in power-down"),
            "{v:?}"
        );
    }

    #[test]
    fn command_in_self_refresh_detected() {
        let log = vec![
            prec(0, DramCommand::SelfRefreshEnter),
            prec(100, DramCommand::Activate),
        ];
        let v = checker().check(&log);
        assert!(
            v.iter().any(|x| x.constraint == "command in self-refresh"),
            "{v:?}"
        );
    }

    #[test]
    fn missing_txp_after_pdx_detected() {
        let t = DramTiming::ddr4_2133_4gb();
        let log = vec![
            prec(0, DramCommand::PowerDownEnter),
            prec(t.t_cke, DramCommand::PowerDownExit),
            prec(t.t_cke + t.t_xp - 1, DramCommand::Activate),
        ];
        let v = checker().check(&log);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].constraint, "tXP");
        assert_eq!(v[0].earliest_legal, t.t_cke + t.t_xp);
    }

    #[test]
    fn missing_txs_after_srx_detected() {
        let t = DramTiming::ddr4_2133_4gb();
        let log = vec![
            prec(0, DramCommand::SelfRefreshEnter),
            prec(t.t_cke, DramCommand::SelfRefreshExit),
            prec(t.t_cke + t.t_xs - 1, DramCommand::Refresh),
        ];
        let v = checker().check(&log);
        assert!(v.iter().any(|x| x.constraint == "tXS"), "{v:?}");
        // The legal variant passes.
        let ok = vec![
            prec(0, DramCommand::SelfRefreshEnter),
            prec(t.t_cke, DramCommand::SelfRefreshExit),
            prec(t.t_cke + t.t_xs, DramCommand::Refresh),
        ];
        assert!(checker().check(&ok).is_empty());
    }

    #[test]
    fn early_pdx_violates_tcke() {
        let t = DramTiming::ddr4_2133_4gb();
        let log = vec![
            prec(0, DramCommand::PowerDownEnter),
            prec(t.t_cke - 1, DramCommand::PowerDownExit),
        ];
        let v = checker().check(&log);
        assert!(v.iter().any(|x| x.constraint == "tCKE"), "{v:?}");
    }

    #[test]
    fn refresh_during_self_refresh_detected() {
        let log = vec![
            prec(0, DramCommand::SelfRefreshEnter),
            prec(1000, DramCommand::Refresh),
        ];
        let v = checker().check(&log);
        assert!(
            v.iter().any(|x| x.constraint == "REF during self-refresh"),
            "{v:?}"
        );
    }

    #[test]
    fn pde_with_open_bank_detected() {
        let t = DramTiming::ddr4_2133_4gb();
        let log = vec![
            rec(0, 1, 0, DramCommand::Activate),
            prec(t.t_ras, DramCommand::PowerDownEnter),
        ];
        let v = checker().check(&log);
        assert!(
            v.iter().any(|x| x.constraint == "PDE with open bank"),
            "{v:?}"
        );
    }

    #[test]
    fn exits_without_entries_detected() {
        let v = checker().check(&[prec(5, DramCommand::PowerDownExit)]);
        assert!(v.iter().any(|x| x.constraint == "PDX without PDE"), "{v:?}");
        let v = checker().check(&[prec(5, DramCommand::SelfRefreshExit)]);
        assert!(v.iter().any(|x| x.constraint == "SRX without SRE"), "{v:?}");
    }

    #[test]
    fn power_down_to_self_refresh_promotion_is_legal() {
        let t = DramTiming::ddr4_2133_4gb();
        let log = vec![
            prec(0, DramCommand::PowerDownEnter),
            prec(500, DramCommand::SelfRefreshEnter),
            prec(500 + t.t_cke, DramCommand::SelfRefreshExit),
            prec(500 + t.t_cke + t.t_xs, DramCommand::Activate),
        ];
        let v = checker().check(&log);
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn redundant_entries_detected() {
        let v = checker().check(&[
            prec(0, DramCommand::PowerDownEnter),
            prec(100, DramCommand::PowerDownEnter),
        ]);
        assert!(v.iter().any(|x| x.constraint == "redundant PDE"), "{v:?}");
        let v = checker().check(&[
            prec(0, DramCommand::SelfRefreshEnter),
            prec(100, DramCommand::SelfRefreshEnter),
        ]);
        assert!(v.iter().any(|x| x.constraint == "redundant SRE"), "{v:?}");
    }

    // --- GreenDIMM sub-array-group safety ---

    fn gd_checker() -> TimingChecker {
        TimingChecker::for_config(&DramConfig::small_test())
    }

    #[test]
    fn traffic_to_deep_pd_group_detected() {
        let rps = DramConfig::small_test().org.rows_per_subarray;
        let log = vec![mrs(0, 1, true), act_row(100, rps + 3)];
        let v = gd_checker().check(&log);
        assert!(
            v.iter()
                .any(|x| x.constraint == "deep power-down group traffic"),
            "{v:?}"
        );
    }

    #[test]
    fn traffic_after_deep_pd_exit_is_legal() {
        let rps = DramConfig::small_test().org.rows_per_subarray;
        let log = vec![mrs(0, 1, true), mrs(50, 1, false), act_row(100, rps + 3)];
        assert!(gd_checker().check(&log).is_empty());
    }

    #[test]
    fn neighbor_pair_traffic_detected_only_when_enabled() {
        // Group 1 is down; traffic to its sense-amp buddy group 0.
        let log = vec![mrs(0, 1, true), act_row(100, 2)];
        let strictv = gd_checker().with_neighbor_pairs(true).check(&log);
        assert!(
            strictv
                .iter()
                .any(|x| x.constraint == "neighbor sense-amp pair"),
            "{strictv:?}"
        );
        // Without the constraint, buddy traffic is allowed.
        assert!(gd_checker().check(&log).is_empty());
    }

    #[test]
    fn group_checks_disabled_without_geometry() {
        // `new()` has no sub-array geometry: MRS records are inert.
        let rps = DramConfig::small_test().org.rows_per_subarray;
        let log = vec![mrs(0, 1, true), act_row(100, rps + 3)];
        assert!(checker().check(&log).is_empty());
    }

    // --- Per-backend legality: DDR5 same-bank refresh ---

    fn ddr5_checker() -> TimingChecker {
        TimingChecker::for_config(&DramConfig::small_test_ddr5())
    }

    /// A REFsb record targeting `set`.
    fn refsb(cycle: u64, set: u32) -> CommandRecord {
        rec(cycle, set, 0, DramCommand::RefreshSameBank)
    }

    #[test]
    fn refsb_on_all_bank_device_detected() {
        let v = gd_checker().check(&[refsb(0, 0)]);
        assert!(
            v.iter()
                .any(|x| x.constraint == "REFsb on all-bank refresh device"),
            "{v:?}"
        );
        // On a DDR5 configuration the same record is legal.
        assert!(ddr5_checker().check(&[refsb(0, 0)]).is_empty());
    }

    #[test]
    fn refsb_with_open_bank_in_set_detected() {
        let t = DramConfig::small_test_ddr5().timing;
        // Bank 0 of bank group 1 is open; a REFsb on set 0 targets it.
        let log = vec![
            rec(0, 2, 1, DramCommand::Activate), // flat bank 2 = bg1 bank0
            refsb(t.t_ras, 0),
        ];
        let v = ddr5_checker().check(&log);
        assert!(
            v.iter()
                .any(|x| x.constraint == "REFsb with open bank in set"),
            "{v:?}"
        );
        // A REFsb on the other set leaves the open bank alone.
        let log = vec![rec(0, 2, 1, DramCommand::Activate), refsb(t.t_ras, 1)];
        assert!(ddr5_checker().check(&log).is_empty());
    }

    #[test]
    fn back_to_back_refsb_violates_trfcsb() {
        let t = DramConfig::small_test_ddr5().timing;
        let v = ddr5_checker().check(&[refsb(0, 0), refsb(t.t_rfc_sb - 1, 1)]);
        assert!(
            v.iter()
                .any(|x| x.constraint == "tRFCsb (back-to-back REFsb)"),
            "{v:?}"
        );
        assert!(ddr5_checker()
            .check(&[refsb(0, 0), refsb(t.t_rfc_sb, 1)])
            .is_empty());
    }

    #[test]
    fn act_to_refreshed_set_waits_trfcsb_others_proceed() {
        let t = DramConfig::small_test_ddr5().timing;
        // ACT to a set-0 bank inside the tRFCsb window is a violation...
        let v = ddr5_checker().check(&[
            refsb(0, 0),
            rec(t.t_rfc_sb - 1, 0, 0, DramCommand::Activate),
        ]);
        assert!(v.iter().any(|x| x.constraint == "tRFCsb"), "{v:?}");
        // ...but an ACT to a set-1 bank during the same window is legal —
        // the whole point of same-bank refresh.
        let ok = ddr5_checker().check(&[refsb(0, 0), rec(10, 1, 0, DramCommand::Activate)]);
        assert!(ok.is_empty(), "{ok:?}");
    }

    // --- Per-backend legality: LPDDR4 PASR ---

    fn lpddr_checker() -> TimingChecker {
        TimingChecker::for_config(&DramConfig::small_test_lpddr4())
    }

    /// A PASR MR17 record masking segment `seg`.
    fn pasr(cycle: u64, seg: u32, masked: bool) -> CommandRecord {
        CommandRecord {
            cycle,
            channel: 0,
            rank: 0,
            bank: u32::from(masked),
            bank_group: 0,
            row: seg,
            command: DramCommand::PasrMask,
        }
    }

    #[test]
    fn pasr_mask_on_non_lpddr_device_detected() {
        for c in [gd_checker(), ddr5_checker()] {
            let v = c.check(&[pasr(0, 0, true)]);
            assert!(
                v.iter()
                    .any(|x| x.constraint == "PASR mask on non-LPDDR device"),
                "{v:?}"
            );
        }
        assert!(lpddr_checker().check(&[pasr(0, 0, true)]).is_empty());
    }

    #[test]
    fn masked_segment_traffic_detected() {
        let cfg = DramConfig::small_test_lpddr4();
        let seg_rows = cfg.rows_per_pasr_segment();
        // Mask segment 1, then touch a row inside it.
        let log = vec![pasr(0, 1, true), act_row(100, seg_rows + 2)];
        let v = lpddr_checker().check(&log);
        assert!(
            v.iter().any(|x| x.constraint == "masked segment traffic"),
            "{v:?}"
        );
        // Unmasking restores legality; segment-0 traffic was always fine.
        let ok = vec![
            pasr(0, 1, true),
            act_row(50, 0),
            pasr(90, 1, false),
            act_row(100 + cfg.timing.t_rc, seg_rows + 2),
        ];
        assert!(lpddr_checker().check(&ok).is_empty());
    }
}
