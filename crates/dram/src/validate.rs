//! Command-log recording and independent timing validation.
//!
//! The controller can record every command it issues; the [`TimingChecker`]
//! then replays the log against the JEDEC constraints *independently* of
//! the scheduler's own bookkeeping. Any scheduler bug that issues a command
//! early surfaces as a [`TimingViolation`] instead of silently producing
//! optimistic latencies.

use crate::command::DramCommand;
use gd_types::config::DramTiming;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// One logged command issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandRecord {
    /// Issue cycle.
    pub cycle: u64,
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Flat bank index within the rank (bank group × banks + bank), or 0
    /// for rank-level commands.
    pub bank: u32,
    /// Bank group index (for tRRD_L/tCCD_L checks).
    pub bank_group: u32,
    /// The command.
    pub command: DramCommand,
}

/// A detected timing violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingViolation {
    /// The offending record.
    pub record: CommandRecord,
    /// Which constraint was violated.
    pub constraint: &'static str,
    /// Earliest legal cycle.
    pub earliest_legal: u64,
}

impl fmt::Display for TimingViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at cycle {} on ch{}/r{}/b{} violates {} (earliest legal {})",
            self.record.command,
            self.record.cycle,
            self.record.channel,
            self.record.rank,
            self.record.bank,
            self.constraint,
            self.earliest_legal
        )
    }
}

#[derive(Debug, Clone, Default)]
struct BankTrack {
    last_act: Option<u64>,
    last_read: Option<u64>,
    last_write: Option<u64>,
    last_pre: Option<u64>,
    open: bool,
}

#[derive(Debug, Clone, Default)]
struct RankTrack {
    acts: VecDeque<u64>,
    last_act_any: Option<u64>,
    last_act_bg: Vec<Option<u64>>,
    last_ref: Option<u64>,
}

/// Replays a command log and reports every timing violation.
#[derive(Debug)]
pub struct TimingChecker {
    timing: DramTiming,
    banks_per_rank: u32,
}

impl TimingChecker {
    /// Creates a checker.
    pub fn new(timing: DramTiming, bank_groups: u32, banks_per_group: u32) -> Self {
        TimingChecker {
            timing,
            banks_per_rank: bank_groups * banks_per_group,
        }
    }

    /// Checks a log (commands of one channel must appear in cycle order).
    /// Returns all violations found.
    pub fn check(&self, log: &[CommandRecord]) -> Vec<TimingViolation> {
        let t = &self.timing;
        let mut violations = Vec::new();
        let mut banks: std::collections::HashMap<(u32, u32, u32), BankTrack> =
            std::collections::HashMap::new();
        let mut ranks: std::collections::HashMap<(u32, u32), RankTrack> =
            std::collections::HashMap::new();
        let mut last_cycle: std::collections::HashMap<u32, u64> =
            std::collections::HashMap::new();

        for rec in log {
            if let Some(prev) = last_cycle.get(&rec.channel) {
                if rec.cycle < *prev {
                    violations.push(TimingViolation {
                        record: *rec,
                        constraint: "log order (per channel)",
                        earliest_legal: *prev,
                    });
                }
            }
            last_cycle.insert(rec.channel, rec.cycle);
            let bank_key = (rec.channel, rec.rank, rec.bank);
            let rank_key = (rec.channel, rec.rank);
            let rank = ranks.entry(rank_key).or_insert_with(|| RankTrack {
                last_act_bg: vec![None; 16],
                ..Default::default()
            });
            fn gap_violation(
                rec: &CommandRecord,
                cond: Option<u64>,
                constraint: &'static str,
                min_gap: u64,
            ) -> Option<TimingViolation> {
                let prev = cond?;
                (rec.cycle < prev + min_gap).then(|| TimingViolation {
                    record: *rec,
                    constraint,
                    earliest_legal: prev + min_gap,
                })
            }
            let check = |cond: Option<u64>, constraint: &'static str, min_gap: u64| {
                gap_violation(rec, cond, constraint, min_gap)
            };
            let mut pending: Vec<TimingViolation> = Vec::new();
            match rec.command {
                DramCommand::Activate => {
                    let bank = banks.entry(bank_key).or_default();
                    pending.extend(check(bank.last_act, "tRC", t.t_rc));
                    pending.extend(check(bank.last_pre, "tRP", t.t_rp));
                    pending.extend(check(rank.last_act_any, "tRRD_S", t.t_rrd_s));
                    pending.extend(check(
                        rank.last_act_bg
                            .get(rec.bank_group as usize)
                            .copied()
                            .flatten(),
                        "tRRD_L",
                        t.t_rrd_l,
                    ));
                    pending.extend(check(rank.last_ref, "tRFC", t.t_rfc));
                    if rank.acts.len() >= 4 {
                        let fourth_back = rank.acts[rank.acts.len() - 4];
                        if rec.cycle < fourth_back + t.t_faw {
                            pending.push(TimingViolation {
                                record: *rec,
                                constraint: "tFAW",
                                earliest_legal: fourth_back + t.t_faw,
                            });
                        }
                    }
                    let bank = banks.entry(bank_key).or_default();
                    bank.last_act = Some(rec.cycle);
                    bank.open = true;
                    rank.last_act_any = Some(rec.cycle);
                    if (rec.bank_group as usize) < rank.last_act_bg.len() {
                        rank.last_act_bg[rec.bank_group as usize] = Some(rec.cycle);
                    }
                    rank.acts.push_back(rec.cycle);
                    if rank.acts.len() > 8 {
                        rank.acts.pop_front();
                    }
                }
                DramCommand::Read | DramCommand::Write => {
                    let bank = banks.entry(bank_key).or_default();
                    if !bank.open {
                        pending.push(TimingViolation {
                            record: *rec,
                            constraint: "column to closed bank",
                            earliest_legal: rec.cycle,
                        });
                    }
                    pending.extend(check(bank.last_act, "tRCD", t.t_rcd));
                    let bank = banks.entry(bank_key).or_default();
                    if rec.command == DramCommand::Read {
                        bank.last_read = Some(rec.cycle);
                    } else {
                        bank.last_write = Some(rec.cycle);
                    }
                }
                DramCommand::Precharge => {
                    let bank = banks.entry(bank_key).or_default();
                    pending.extend(check(bank.last_act, "tRAS", t.t_ras));
                    pending.extend(check(bank.last_read, "tRTP", t.t_rtp));
                    if let Some(w) = bank.last_write {
                        let min = t.cwl + t.burst_cycles() + t.t_wr;
                        if rec.cycle < w + min {
                            pending.push(TimingViolation {
                                record: *rec,
                                constraint: "tWR",
                                earliest_legal: w + min,
                            });
                        }
                    }
                    let bank = banks.entry(bank_key).or_default();
                    bank.last_pre = Some(rec.cycle);
                    bank.open = false;
                }
                DramCommand::Refresh => {
                    // All banks of the rank must be precharged.
                    for b in 0..self.banks_per_rank {
                        if banks
                            .get(&(rec.channel, rec.rank, b))
                            .map(|bk| bk.open)
                            .unwrap_or(false)
                        {
                            pending.push(TimingViolation {
                                record: *rec,
                                constraint: "REF with open bank",
                                earliest_legal: rec.cycle,
                            });
                        }
                    }
                    pending.extend(check(rank.last_ref, "tRFC (back-to-back REF)", t.t_rfc));
                    rank.last_ref = Some(rec.cycle);
                }
                _ => {}
            }
            violations.append(&mut pending);
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker() -> TimingChecker {
        TimingChecker::new(DramTiming::ddr4_2133_4gb(), 4, 4)
    }

    fn rec(cycle: u64, bank: u32, bg: u32, command: DramCommand) -> CommandRecord {
        CommandRecord {
            cycle,
            channel: 0,
            rank: 0,
            bank,
            bank_group: bg,
            command,
        }
    }

    #[test]
    fn legal_sequence_passes() {
        let t = DramTiming::ddr4_2133_4gb();
        let log = vec![
            rec(0, 0, 0, DramCommand::Activate),
            rec(t.t_rcd, 0, 0, DramCommand::Read),
            rec(t.t_ras, 0, 0, DramCommand::Precharge),
            rec(t.t_ras + t.t_rp, 0, 0, DramCommand::Activate),
        ];
        assert!(checker().check(&log).is_empty());
    }

    #[test]
    fn early_read_violates_trcd() {
        let log = vec![
            rec(0, 0, 0, DramCommand::Activate),
            rec(5, 0, 0, DramCommand::Read),
        ];
        let v = checker().check(&log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].constraint, "tRCD");
        assert!(v[0].to_string().contains("tRCD"));
    }

    #[test]
    fn early_precharge_violates_tras() {
        let log = vec![
            rec(0, 0, 0, DramCommand::Activate),
            rec(10, 0, 0, DramCommand::Precharge),
        ];
        let v = checker().check(&log);
        assert!(v.iter().any(|x| x.constraint == "tRAS"));
    }

    #[test]
    fn five_acts_in_window_violate_tfaw() {
        let t = DramTiming::ddr4_2133_4gb();
        let mut log = Vec::new();
        // Five ACTs spaced by exactly tRRD_L in distinct bank groups of two
        // alternating groups — the 5th lands inside the tFAW window.
        for i in 0..5u64 {
            log.push(rec(i * t.t_rrd_l, i as u32 % 4, (i % 4) as u32, DramCommand::Activate));
        }
        let v = checker().check(&log);
        assert!(
            v.iter().any(|x| x.constraint == "tFAW"),
            "violations: {v:?}"
        );
    }

    #[test]
    fn column_to_closed_bank_detected() {
        let log = vec![rec(100, 2, 0, DramCommand::Read)];
        let v = checker().check(&log);
        assert!(v.iter().any(|x| x.constraint == "column to closed bank"));
    }

    #[test]
    fn refresh_with_open_bank_detected() {
        let t = DramTiming::ddr4_2133_4gb();
        let log = vec![
            rec(0, 1, 0, DramCommand::Activate),
            rec(t.t_ras, 0, 0, DramCommand::Refresh),
        ];
        let v = checker().check(&log);
        assert!(v.iter().any(|x| x.constraint == "REF with open bank"));
    }

    #[test]
    fn out_of_order_log_detected() {
        let log = vec![
            rec(100, 0, 0, DramCommand::Activate),
            rec(50, 1, 1, DramCommand::Activate),
        ];
        let v = checker().check(&log);
        assert!(v.iter().any(|x| x.constraint.starts_with("log order")));
    }
}
