//! Per-bank row-buffer and timing state, stored struct-of-arrays.
//!
//! The controller's hot loops (arbitration candidate checks, next-ready
//! reductions) touch one or two timing fields of many banks, not every
//! field of one bank. Keeping each field in its own flat array indexed by
//! the global bank offset (`rank * banks_per_rank + flat_bank`) makes those
//! reductions branch-light linear scans over contiguous memory instead of
//! strided walks over an array-of-structs.

use gd_types::config::DramTiming;

/// Sentinel for "no open row" in [`BankArray::open_row`]. Real full-row
/// indices (sub-array × rows-per-sub-array + local row) are far below
/// `u32::MAX` for any valid organization.
pub(crate) const ROW_NONE: u32 = u32::MAX;

/// Timing and row-buffer state of every bank in a channel, one flat array
/// per field (struct-of-arrays).
#[derive(Debug, Clone)]
pub(crate) struct BankArray {
    /// Currently open full row per bank, or [`ROW_NONE`].
    pub open_row: Vec<u32>,
    /// Earliest cycle an ACT may be issued per bank.
    pub next_act: Vec<u64>,
    /// Earliest cycle a READ may be issued per bank.
    pub next_read: Vec<u64>,
    /// Earliest cycle a WRITE may be issued per bank.
    pub next_write: Vec<u64>,
    /// Earliest cycle a PRE may be issued per bank.
    pub next_pre: Vec<u64>,
}

impl BankArray {
    /// All banks closed, all timing gates open.
    pub fn new(banks: usize) -> Self {
        BankArray {
            open_row: vec![ROW_NONE; banks],
            next_act: vec![0; banks],
            next_read: vec![0; banks],
            next_write: vec![0; banks],
            next_pre: vec![0; banks],
        }
    }

    /// Whether bank `b` has an open row.
    pub fn is_open(&self, b: usize) -> bool {
        self.open_row[b] != ROW_NONE
    }

    /// Applies the timing consequences of an ACT issued at `now` to bank `b`.
    pub fn on_activate(&mut self, b: usize, now: u64, row: u32, t: &DramTiming) {
        debug_assert_ne!(row, ROW_NONE, "row index collides with the sentinel");
        self.open_row[b] = row;
        self.next_read[b] = self.next_read[b].max(now + t.t_rcd);
        self.next_write[b] = self.next_write[b].max(now + t.t_rcd);
        self.next_pre[b] = self.next_pre[b].max(now + t.t_ras);
        self.next_act[b] = self.next_act[b].max(now + t.t_rc);
    }

    /// Applies the timing consequences of a READ issued at `now` to bank `b`.
    pub fn on_read(&mut self, b: usize, now: u64, t: &DramTiming) {
        // Read-to-precharge.
        self.next_pre[b] = self.next_pre[b].max(now + t.t_rtp);
    }

    /// Applies the timing consequences of a WRITE issued at `now` to bank `b`.
    pub fn on_write(&mut self, b: usize, now: u64, t: &DramTiming) {
        // Write recovery: data end (CWL + BL/2) plus tWR before precharge.
        self.next_pre[b] = self.next_pre[b].max(now + t.cwl + t.burst_cycles() + t.t_wr);
    }

    /// Applies the timing consequences of a PRE issued at `now` to bank `b`.
    pub fn on_precharge(&mut self, b: usize, now: u64, t: &DramTiming) {
        self.open_row[b] = ROW_NONE;
        self.next_act[b] = self.next_act[b].max(now + t.t_rp);
    }

    /// Blocks bank `b` until `until` (used by refresh).
    pub fn block_until(&mut self, b: usize, until: u64) {
        self.next_act[b] = self.next_act[b].max(until);
        self.next_read[b] = self.next_read[b].max(until);
        self.next_write[b] = self.next_write[b].max(until);
        self.next_pre[b] = self.next_pre[b].max(until);
    }

    /// Translates every absolute-cycle gate forward by `delta` (epoch-replay
    /// fast-forward: the bank's *relative* timing state is preserved while
    /// the clock jumps over a replayed window).
    pub fn time_shift(&mut self, delta: u64) {
        for v in &mut self.next_act {
            *v += delta;
        }
        for v in &mut self.next_read {
            *v += delta;
        }
        for v in &mut self.next_write {
            *v += delta;
        }
        for v in &mut self.next_pre {
            *v += delta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> DramTiming {
        DramTiming::ddr4_2133_4gb()
    }

    #[test]
    fn activate_opens_row_and_sets_constraints() {
        let t = timing();
        let mut b = BankArray::new(2);
        b.on_activate(0, 100, 7, &t);
        assert_eq!(b.open_row[0], 7);
        assert!(b.is_open(0));
        assert!(!b.is_open(1));
        assert_eq!(b.next_read[0], 100 + t.t_rcd);
        assert_eq!(b.next_pre[0], 100 + t.t_ras);
        assert_eq!(b.next_act[0], 100 + t.t_rc);
        // The sibling bank's gates are untouched.
        assert_eq!(b.next_read[1], 0);
    }

    #[test]
    fn precharge_closes_row() {
        let t = timing();
        let mut b = BankArray::new(1);
        b.on_activate(0, 0, 3, &t);
        b.on_precharge(0, 50, &t);
        assert!(!b.is_open(0));
        assert!(b.next_act[0] >= 50 + t.t_rp);
    }

    #[test]
    fn write_recovery_delays_precharge_more_than_read() {
        let t = timing();
        let mut banks = BankArray::new(2);
        banks.on_activate(0, 0, 0, &t);
        banks.on_read(0, 20, &t);
        banks.on_activate(1, 0, 0, &t);
        banks.on_write(1, 20, &t);
        assert!(banks.next_pre[1] > banks.next_pre[0]);
    }

    #[test]
    fn block_until_is_monotone() {
        let mut b = BankArray::new(1);
        b.block_until(0, 500);
        b.block_until(0, 100);
        assert_eq!(b.next_act[0], 500);
        assert_eq!(b.next_read[0], 500);
    }

    #[test]
    fn time_shift_translates_all_gates() {
        let t = timing();
        let mut b = BankArray::new(2);
        b.on_activate(1, 10, 4, &t);
        let before = b.clone();
        b.time_shift(1000);
        assert_eq!(b.open_row, before.open_row, "rows unaffected by a shift");
        for i in 0..2 {
            assert_eq!(b.next_act[i], before.next_act[i] + 1000);
            assert_eq!(b.next_read[i], before.next_read[i] + 1000);
            assert_eq!(b.next_write[i], before.next_write[i] + 1000);
            assert_eq!(b.next_pre[i], before.next_pre[i] + 1000);
        }
    }
}
