//! Per-bank row-buffer and timing state.

use gd_types::config::DramTiming;

/// Timing and row-buffer state of one bank (one logical bank across the
/// rank's devices).
#[derive(Debug, Clone, Default)]
pub(crate) struct BankState {
    /// Currently open full row (sub-array and local row combined), if any.
    pub open_row: Option<u32>,
    /// Earliest cycle an ACT may be issued to this bank.
    pub next_act: u64,
    /// Earliest cycle a READ may be issued to this bank.
    pub next_read: u64,
    /// Earliest cycle a WRITE may be issued to this bank.
    pub next_write: u64,
    /// Earliest cycle a PRE may be issued to this bank.
    pub next_pre: u64,
}

impl BankState {
    /// Applies the timing consequences of an ACT issued at `now`.
    pub fn on_activate(&mut self, now: u64, row: u32, t: &DramTiming) {
        self.open_row = Some(row);
        self.next_read = self.next_read.max(now + t.t_rcd);
        self.next_write = self.next_write.max(now + t.t_rcd);
        self.next_pre = self.next_pre.max(now + t.t_ras);
        self.next_act = self.next_act.max(now + t.t_rc);
    }

    /// Applies the timing consequences of a READ issued at `now`.
    pub fn on_read(&mut self, now: u64, t: &DramTiming) {
        // Read-to-precharge.
        self.next_pre = self.next_pre.max(now + t.t_rtp);
    }

    /// Applies the timing consequences of a WRITE issued at `now`.
    pub fn on_write(&mut self, now: u64, t: &DramTiming) {
        // Write recovery: data end (CWL + BL/2) plus tWR before precharge.
        self.next_pre = self.next_pre.max(now + t.cwl + t.burst_cycles() + t.t_wr);
    }

    /// Applies the timing consequences of a PRE issued at `now`.
    pub fn on_precharge(&mut self, now: u64, t: &DramTiming) {
        self.open_row = None;
        self.next_act = self.next_act.max(now + t.t_rp);
    }

    /// Blocks the bank until `until` (used by refresh).
    pub fn block_until(&mut self, until: u64) {
        self.next_act = self.next_act.max(until);
        self.next_read = self.next_read.max(until);
        self.next_write = self.next_write.max(until);
        self.next_pre = self.next_pre.max(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> DramTiming {
        DramTiming::ddr4_2133_4gb()
    }

    #[test]
    fn activate_opens_row_and_sets_constraints() {
        let t = timing();
        let mut b = BankState::default();
        b.on_activate(100, 7, &t);
        assert_eq!(b.open_row, Some(7));
        assert_eq!(b.next_read, 100 + t.t_rcd);
        assert_eq!(b.next_pre, 100 + t.t_ras);
        assert_eq!(b.next_act, 100 + t.t_rc);
    }

    #[test]
    fn precharge_closes_row() {
        let t = timing();
        let mut b = BankState::default();
        b.on_activate(0, 3, &t);
        b.on_precharge(50, &t);
        assert_eq!(b.open_row, None);
        assert!(b.next_act >= 50 + t.t_rp);
    }

    #[test]
    fn write_recovery_delays_precharge_more_than_read() {
        let t = timing();
        let mut rd = BankState::default();
        rd.on_activate(0, 0, &t);
        rd.on_read(20, &t);
        let mut wr = BankState::default();
        wr.on_activate(0, 0, &t);
        wr.on_write(20, &t);
        assert!(wr.next_pre > rd.next_pre);
    }

    #[test]
    fn block_until_is_monotone() {
        let mut b = BankState::default();
        b.block_until(500);
        b.block_until(100);
        assert_eq!(b.next_act, 500);
        assert_eq!(b.next_read, 500);
    }
}
