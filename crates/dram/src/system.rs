//! The full memory system: address mapper + per-channel controllers +
//! GreenDIMM's sub-array-group deep power-down register.

use crate::addrmap::AddressMapper;
use crate::channel::ChannelCtrl;
use crate::command::{AccessKind, MemRequest, PendingRequest};
use crate::policy::LowPowerPolicy;
use crate::stats::RunStats;
use gd_types::config::{DramConfig, MemSpecKind, PASR_SEGMENTS};
use gd_types::ids::SubArrayGroup;
use gd_types::{GdError, Result};

/// How the run loops advance simulated time.
///
/// `Stepped` and `EventDriven` are *exact* modes: both produce bit-identical
/// [`RunStats`] and telemetry — every state transition (command issue,
/// wake-up completion, refresh, governor demotion) lands on the same cycle
/// either way. `Stepped` is the reference implementation the equivalence
/// suite checks the fast paths against. `EpochReplay` is a *sampled* mode
/// with a bounded, tolerance-controlled error; it is never the default and
/// results produced with it are flagged in provenance headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Reference semantics: poll every channel on every cycle.
    Stepped,
    /// Event-driven fast-forward (default): each channel carries an
    /// *attention time* — the earliest cycle it could possibly act, taken
    /// from [`ChannelCtrl::next_event`] (queued-request readiness, wake-up
    /// completion, tREFI deadline, idle-timeout governor deadline). Channels
    /// whose attention time lies in the future are skipped, and the clock
    /// jumps straight to the next horizon (minimum attention time or next
    /// request arrival) instead of stepping cycle by cycle. Because
    /// `next_event` is exact for issue gates too, the jump happens after
    /// *successful* polls as well — the batched-arbitration property that
    /// makes traffic-dense traces cheap. Per-state residency needs no
    /// special casing: it is integrated at transition boundaries, which
    /// both modes hit on identical cycles.
    #[default]
    EventDriven,
    /// Sampled steady-state fast-forward on top of the event-driven engine
    /// (see [`EpochReplayCfg`]): traces are segmented into fixed epochs;
    /// once `stable_epochs` consecutive epochs show the same command mix
    /// (within `tolerance_millis` per mille), subsequent epochs whose
    /// arrival mix still matches are skipped wholesale — counters,
    /// residency, and energy accounting are advanced by the representative
    /// epoch's deltas and all timing state is translated in time. Error is
    /// bounded by the tolerance times the number of skipped epochs;
    /// [`RunStats::replayed_cycles`] reports how much of the run was
    /// sampled rather than simulated (0 ⇒ the result is exact).
    EpochReplay(EpochReplayCfg),
}

/// Tuning for [`EngineMode::EpochReplay`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochReplayCfg {
    /// Epoch length in memory cycles; 0 selects
    /// [`DramTiming::steady_epoch_cycles`] (4 × tREFI).
    ///
    /// [`DramTiming::steady_epoch_cycles`]: gd_types::config::DramTiming::steady_epoch_cycles
    pub epoch_cycles: u64,
    /// Consecutive similar epochs required before replay engages (min 2).
    pub stable_epochs: u32,
    /// Per-mille tolerance when comparing epoch signatures (50 = 5 %).
    pub tolerance_millis: u32,
}

impl Default for EpochReplayCfg {
    fn default() -> Self {
        EpochReplayCfg {
            epoch_cycles: 0,
            stable_epochs: 3,
            tolerance_millis: 50,
        }
    }
}

/// Per-epoch command-mix fingerprint used for steady-state detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EpochSig {
    arr_reads: u64,
    arr_writes: u64,
    reads: u64,
    writes: u64,
    activates: u64,
    precharges: u64,
    refreshes: u64,
    row_hits: u64,
    row_conflicts: u64,
}

/// Integer closeness: |a − b| ≤ max(a, b) × tol‰ + 2 (the absolute slack
/// absorbs quantization on small counts such as per-epoch refreshes).
fn close(a: u64, b: u64, tol_millis: u32) -> bool {
    a.abs_diff(b).saturating_mul(1000) <= a.max(b).saturating_mul(u64::from(tol_millis)) + 2000
}

impl EpochSig {
    fn similar(&self, other: &EpochSig, tol: u32) -> bool {
        close(self.arr_reads, other.arr_reads, tol)
            && close(self.arr_writes, other.arr_writes, tol)
            && close(self.reads, other.reads, tol)
            && close(self.writes, other.writes, tol)
            && close(self.activates, other.activates, tol)
            && close(self.precharges, other.precharges, tol)
            && close(self.refreshes, other.refreshes, tol)
            && close(self.row_hits, other.row_hits, tol)
            && close(self.row_conflicts, other.row_conflicts, tol)
    }
}

/// The captured representative epoch replay scales from.
#[derive(Debug, Clone)]
struct RepEpoch {
    sig: EpochSig,
    start: Vec<crate::channel::ReplayMark>,
    end: Vec<crate::channel::ReplayMark>,
}

/// Tallies one fed request into an epoch's `(reads, writes)` arrival pair.
fn count_arrival(acc: &mut (u64, u64), req: MemRequest) {
    match req.kind {
        AccessKind::Read => acc.0 += 1,
        AccessKind::Write => acc.1 += 1,
    }
}

/// Builds the command-mix fingerprint of one epoch from the accounting
/// marks at its two boundaries, summed across channels.
fn epoch_signature(
    start: &[crate::channel::ReplayMark],
    end: &[crate::channel::ReplayMark],
    arrivals: (u64, u64),
) -> EpochSig {
    let mut sig = EpochSig {
        arr_reads: arrivals.0,
        arr_writes: arrivals.1,
        reads: 0,
        writes: 0,
        activates: 0,
        precharges: 0,
        refreshes: 0,
        row_hits: 0,
        row_conflicts: 0,
    };
    for (s, e) in start.iter().zip(end.iter()) {
        sig.reads += e.counters.reads - s.counters.reads;
        sig.writes += e.counters.writes - s.counters.writes;
        sig.activates += e.counters.activates - s.counters.activates;
        sig.precharges += e.counters.precharges - s.counters.precharges;
        sig.refreshes += e.counters.refreshes - s.counters.refreshes;
        sig.row_hits += e.counters.row_hits - s.counters.row_hits;
        sig.row_conflicts += e.counters.row_conflicts - s.counters.row_conflicts;
    }
    sig
}

/// A simulated multi-channel DDR4 memory system.
///
/// The system exposes GreenDIMM's hardware interface: a bit-vector register
/// with one bit per sub-array group ([`set_group_deep_pd`]). While a group's
/// bit is set, its sub-arrays are not refreshed and their peripheral/IO
/// circuits are power-gated; the simulator enforces the OS contract that no
/// request ever targets a deep-powered-down group.
///
/// [`set_group_deep_pd`]: MemorySystem::set_group_deep_pd
#[derive(Debug)]
pub struct MemorySystem {
    cfg: DramConfig,
    mapper: AddressMapper,
    channels: Vec<ChannelCtrl>,
    clock: u64,
    mode: EngineMode,
    /// Earliest cycle each channel could act (EventDriven mode only); a
    /// value `<= clock` means the channel must be polled.
    attention: Vec<u64>,
    group_pd: Vec<bool>,
    group_pd_since: Vec<u64>,
    group_pd_cycles: Vec<u64>,
    /// LPDDR4 PASR segment mask (MR17): masked segments are excluded from
    /// self-refresh and must receive no traffic. Empty on other backends.
    pasr_mask: Vec<bool>,
    pasr_mask_since: Vec<u64>,
    pasr_mask_cycles: Vec<u64>,
    /// Cycles fast-forwarded by epoch replay (0 in the exact modes).
    replayed_cycles: u64,
    /// Whole epochs fast-forwarded by epoch replay.
    replayed_epochs: u64,
}

impl MemorySystem {
    /// Builds a memory system.
    ///
    /// # Errors
    ///
    /// Returns [`GdError::InvalidConfig`] for inconsistent configurations.
    pub fn new(cfg: DramConfig, policy: LowPowerPolicy) -> Result<Self> {
        cfg.validate()?;
        let mapper = AddressMapper::new(&cfg)?;
        let channels = (0..cfg.org.channels)
            .map(|i| ChannelCtrl::with_index(&cfg, policy, i))
            .collect();
        let groups = cfg.org.subarray_groups() as usize;
        let n_channels = cfg.org.channels as usize;
        let segments = if cfg.kind == MemSpecKind::Lpddr4Pasr {
            PASR_SEGMENTS as usize
        } else {
            0
        };
        Ok(MemorySystem {
            cfg,
            mapper,
            channels,
            clock: 0,
            mode: EngineMode::default(),
            attention: vec![0; n_channels],
            group_pd: vec![false; groups],
            group_pd_since: vec![0; groups],
            group_pd_cycles: vec![0; groups],
            pasr_mask: vec![false; segments],
            pasr_mask_since: vec![0; segments],
            pasr_mask_cycles: vec![0; segments],
            replayed_cycles: 0,
            replayed_epochs: 0,
        })
    }

    /// Builds a memory system whose power-down/self-refresh wake latencies
    /// (tXP, tXS) are stretched `mult`× — the `gd-faults` WakeStretch
    /// site's worst-case wake model. The stretch is applied to the
    /// configuration before any channel is built, so both engine modes see
    /// identical timing and stay bit-equivalent.
    ///
    /// # Errors
    ///
    /// Returns [`GdError::InvalidConfig`] for inconsistent configurations.
    pub fn with_wake_stretch(
        mut cfg: DramConfig,
        policy: LowPowerPolicy,
        mult: u64,
    ) -> Result<Self> {
        cfg.timing.t_xp *= mult.max(1);
        cfg.timing.t_xs *= mult.max(1);
        MemorySystem::new(cfg, policy)
    }

    /// Selects the time-advance engine (see [`EngineMode`]).
    pub fn set_engine_mode(&mut self, mode: EngineMode) {
        self.mode = mode;
        // Force a poll of every channel on the next iteration.
        self.attention.fill(0);
    }

    /// Builder form of [`set_engine_mode`](Self::set_engine_mode).
    #[must_use]
    pub fn with_engine_mode(mut self, mode: EngineMode) -> Self {
        self.set_engine_mode(mode);
        self
    }

    /// The active time-advance engine.
    pub fn engine_mode(&self) -> EngineMode {
        self.mode
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// The address mapper (decode/encode, sub-array group ranges).
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// Current simulated clock, in memory cycles.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Enables command logging on every channel (see
    /// [`crate::validate::TimingChecker`]).
    pub fn enable_command_log(&mut self) {
        for ch in &mut self.channels {
            ch.enable_log();
        }
    }

    /// Drains the accumulated command logs of every channel, concatenated
    /// channel-by-channel (each channel's slice is cycle-ordered).
    pub fn take_command_log(&mut self) -> Vec<crate::validate::CommandRecord> {
        let mut out = Vec::new();
        for ch in &mut self.channels {
            out.extend(ch.take_log());
        }
        out
    }

    /// Drains the command logs and replays them through the full protocol
    /// validator (JEDEC timing, rank power-state machine, and the GreenDIMM
    /// sub-array-group safety checks). Returns every violation found.
    ///
    /// `neighbor_pairs` additionally forbids traffic to the sense-amp buddy
    /// of a deep-powered-down group; enable it when the OS daemon runs with
    /// the §6.1 neighbor constraint.
    pub fn validate_command_log(
        &mut self,
        neighbor_pairs: bool,
    ) -> Vec<crate::validate::TimingViolation> {
        let log = self.take_command_log();
        crate::validate::TimingChecker::for_config(&self.cfg)
            .with_neighbor_pairs(neighbor_pairs)
            .check(&log)
    }

    /// Programs one bit of the deep power-down register.
    ///
    /// Entering deep power-down is immediate (an MRS broadcast); exiting
    /// costs [`DramTiming::deep_power_down_exit_ns`] before the group can
    /// serve requests, which callers (the GreenDIMM daemon) model by polling
    /// a ready bit — simulated here by advancing the clock.
    ///
    /// # Errors
    ///
    /// Returns [`GdError::NotFound`] for an out-of-range group.
    ///
    /// [`DramTiming::deep_power_down_exit_ns`]: gd_types::config::DramTiming::deep_power_down_exit_ns
    pub fn set_group_deep_pd(&mut self, group: SubArrayGroup, on: bool) -> Result<()> {
        let g = group.index();
        if g >= self.group_pd.len() {
            return Err(GdError::NotFound(format!("sub-array group {group}")));
        }
        if self.group_pd[g] == on {
            return Ok(()); // idempotent
        }
        // Log the MRS write (channel 0 carries the broadcast register
        // traffic) so the protocol validator can replay the bit vector.
        self.channels[0].record_mrs(self.clock, g as u32, on);
        if on {
            self.group_pd_since[g] = self.clock;
        } else {
            self.group_pd_cycles[g] += self.clock - self.group_pd_since[g];
            // Model the 18 ns exit latency: the register write completes and
            // the ready bit flips after the exit interval.
            let exit_cycles =
                gd_types::SimTime::from_secs_f64(self.cfg.timing.deep_power_down_exit_ns * 1e-9)
                    .to_cycles(self.cfg.timing.clock_mhz)
                    .as_u64();
            self.clock += exit_cycles;
        }
        self.group_pd[g] = on;
        Ok(())
    }

    /// Programs one bit of the LPDDR4 PASR segment mask (MR17). While a
    /// segment's bit is set it is excluded from self-refresh — its contents
    /// are lost — so the simulator enforces the same OS contract as deep
    /// power-down: no request may target a masked segment.
    ///
    /// # Errors
    ///
    /// * [`GdError::InvalidState`] when the configuration's backend is not
    ///   [`MemSpecKind::Lpddr4Pasr`] — PASR is an LPDDR feature.
    /// * [`GdError::NotFound`] for a segment index beyond
    ///   [`PASR_SEGMENTS`].
    pub fn set_pasr_segment(&mut self, segment: u32, masked: bool) -> Result<()> {
        if self.cfg.kind != MemSpecKind::Lpddr4Pasr {
            return Err(GdError::InvalidState(format!(
                "PASR segment mask requires the lpddr4-pasr backend, \
                 configuration is {}",
                self.cfg.kind
            )));
        }
        let s = segment as usize;
        if s >= self.pasr_mask.len() {
            return Err(GdError::NotFound(format!("PASR segment {segment}")));
        }
        if self.pasr_mask[s] == masked {
            return Ok(()); // idempotent
        }
        // Log the MR17 write (channel 0 carries the broadcast register
        // traffic) so the protocol validator can replay the mask.
        self.channels[0].record_pasr(self.clock, segment, masked);
        if masked {
            self.pasr_mask_since[s] = self.clock;
        } else {
            self.pasr_mask_cycles[s] += self.clock - self.pasr_mask_since[s];
        }
        self.pasr_mask[s] = masked;
        Ok(())
    }

    /// Whether a PASR segment is currently masked out of self-refresh.
    pub fn pasr_segment_masked(&self, segment: u32) -> bool {
        self.pasr_mask
            .get(segment as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Fraction of PASR segments currently masked (0 on non-PASR backends).
    pub fn pasr_masked_fraction(&self) -> f64 {
        if self.pasr_mask.is_empty() {
            0.0
        } else {
            self.pasr_mask.iter().filter(|b| **b).count() as f64 / self.pasr_mask.len() as f64
        }
    }

    /// Whether a group is currently in deep power-down.
    pub fn group_deep_pd(&self, group: SubArrayGroup) -> bool {
        self.group_pd.get(group.index()).copied().unwrap_or(false)
    }

    /// Number of groups currently in deep power-down.
    pub fn groups_in_deep_pd(&self) -> usize {
        self.group_pd.iter().filter(|b| **b).count()
    }

    /// Runs a request trace (sorted by arrival cycle) to completion and
    /// returns cumulative statistics.
    ///
    /// # Errors
    ///
    /// * [`GdError::AddressOutOfRange`] for addresses beyond capacity.
    /// * [`GdError::InvalidState`] if a request targets a sub-array group in
    ///   deep power-down — the OS contract GreenDIMM relies on (off-lined
    ///   blocks receive no traffic) has been violated.
    pub fn run_trace<I>(&mut self, requests: I) -> Result<RunStats>
    where
        I: IntoIterator<Item = MemRequest>,
    {
        let mut iter = requests.into_iter().peekable();
        if let EngineMode::EpochReplay(rcfg) = self.mode {
            return self.run_trace_replay(&mut iter, rcfg);
        }
        loop {
            // Feed due arrivals.
            while let Some(r) = iter.peek() {
                if r.arrival <= self.clock {
                    let req = *r;
                    iter.next();
                    self.enqueue(req)?;
                } else {
                    break;
                }
            }
            self.poll_channels();
            let busy = self.channels.iter().any(|c| c.busy());
            if !busy && iter.peek().is_none() {
                break;
            }
            if self.mode == EngineMode::Stepped {
                self.clock += 1;
            } else {
                // Jump to the next attention time or arrival. The attention
                // times are refreshed after *every* poll (successful or
                // not), so issue-dense phases advance in issue-sized steps
                // rather than `now + 1` crawls.
                let mut next = self.next_horizon();
                if let Some(r) = iter.peek() {
                    next = next.min(r.arrival);
                }
                self.clock = next.max(self.clock + 1);
            }
        }
        Ok(self.snapshot_stats())
    }

    /// The sampled [`EngineMode::EpochReplay`] trace loop: event-driven
    /// simulation segmented into fixed epochs, with steady-state epochs
    /// fast-forwarded once detection locks on (see [`EpochReplayCfg`]).
    fn run_trace_replay<I>(
        &mut self,
        iter: &mut std::iter::Peekable<I>,
        rcfg: EpochReplayCfg,
    ) -> Result<RunStats>
    where
        I: Iterator<Item = MemRequest>,
    {
        let epoch = if rcfg.epoch_cycles == 0 {
            self.cfg.timing.steady_epoch_cycles()
        } else {
            rcfg.epoch_cycles
        };
        let stable_needed = rcfg.stable_epochs.max(2) as usize;
        // Arrivals pulled ahead of the clock while probing a skip window sit
        // here and are fed before the iterator, preserving order.
        let mut lookahead: std::collections::VecDeque<MemRequest> =
            std::collections::VecDeque::new();
        let mut boundary = self.clock + epoch;
        let mut marks = self.channel_marks();
        let mut arrivals = (0u64, 0u64); // (reads, writes) fed this epoch
        let mut history: std::collections::VecDeque<EpochSig> = std::collections::VecDeque::new();
        let mut rep: Option<RepEpoch> = None;
        loop {
            // Feed due arrivals: lookahead buffer first, then the iterator.
            while let Some(r) = lookahead.front() {
                if r.arrival <= self.clock {
                    let req = *r;
                    lookahead.pop_front();
                    count_arrival(&mut arrivals, req);
                    self.enqueue(req)?;
                } else {
                    break;
                }
            }
            if lookahead.is_empty() {
                while let Some(r) = iter.peek() {
                    if r.arrival <= self.clock {
                        let req = *r;
                        iter.next();
                        count_arrival(&mut arrivals, req);
                        self.enqueue(req)?;
                    } else {
                        break;
                    }
                }
            }
            self.poll_channels();
            let busy = self.channels.iter().any(|c| c.busy());
            if !busy && lookahead.is_empty() && iter.peek().is_none() {
                break;
            }
            let mut next = self.next_horizon();
            if let Some(r) = lookahead.front() {
                next = next.min(r.arrival);
            } else if let Some(r) = iter.peek() {
                next = next.min(r.arrival);
            }
            self.clock = next.max(self.clock + 1).min(boundary);
            if self.clock < boundary {
                continue;
            }
            // ---- Epoch boundary: close the simulated epoch. ----
            let end_marks = self.channel_marks();
            let sig = epoch_signature(&marks, &end_marks, arrivals);
            history.push_back(sig);
            if history.len() > stable_needed {
                history.pop_front();
            }
            if rep.is_none() && history.len() == stable_needed {
                let newest = *history.back().expect("non-empty history");
                // A zero-arrival epoch is a drain (or idle) phase, not a
                // steady state: replay only shifts counters, never empties
                // the physical queue, so skipping drain epochs would spin
                // forever on a backlog that stays `busy`. Require traffic.
                if newest.arr_reads + newest.arr_writes > 0
                    && history
                        .iter()
                        .all(|s| s.similar(&newest, rcfg.tolerance_millis))
                {
                    rep = Some(RepEpoch {
                        sig: newest,
                        start: marks.clone(),
                        end: end_marks.clone(),
                    });
                }
            }
            if let Some(r) = rep.clone() {
                // Greedily fast-forward whole epochs whose arrival mix still
                // matches the representative epoch.
                let mut still_matching = true;
                while still_matching {
                    let window_end = boundary + epoch;
                    while let Some(n) = iter.peek() {
                        if n.arrival < window_end {
                            let req = *n;
                            iter.next();
                            lookahead.push_back(req);
                        } else {
                            break;
                        }
                    }
                    // Past the last arrival the run is all drain; the
                    // event-driven loop covers it in a handful of jumps and
                    // the queue must empty for real, so stop skipping.
                    if lookahead.is_empty() && iter.peek().is_none() {
                        break;
                    }
                    let mut win = (0u64, 0u64);
                    for q in &lookahead {
                        count_arrival(&mut win, *q);
                    }
                    still_matching = close(win.0, r.sig.arr_reads, rcfg.tolerance_millis)
                        && close(win.1, r.sig.arr_writes, rcfg.tolerance_millis);
                    if !still_matching {
                        break;
                    }
                    for (ch, (s, e)) in self
                        .channels
                        .iter_mut()
                        .zip(r.start.iter().zip(r.end.iter()))
                    {
                        ch.apply_replay_delta(s, e, 1);
                        ch.time_shift(epoch);
                    }
                    self.clock += epoch;
                    self.replayed_cycles += epoch;
                    self.replayed_epochs += 1;
                    // The skipped arrivals are accounted by the replay
                    // delta; everything queued keeps draining afterwards.
                    lookahead.clear();
                    let c = self.clock;
                    self.attention.fill(c);
                    boundary += epoch;
                }
                if !still_matching {
                    // Phase change: fall back to exact simulation and
                    // restart detection from scratch.
                    rep = None;
                    history.clear();
                }
            }
            marks = self.channel_marks();
            arrivals = (0, 0);
            boundary += epoch;
        }
        Ok(self.snapshot_stats())
    }

    /// Per-channel replay accounting marks at the current clock.
    fn channel_marks(&self) -> Vec<crate::channel::ReplayMark> {
        let now = self.clock;
        self.channels.iter().map(|c| c.replay_mark(now)).collect()
    }

    /// Advances the system with no new traffic for `cycles` cycles
    /// (refresh and the low-power governor keep running), then returns
    /// cumulative statistics. Used for idle-power measurements (Fig. 2).
    ///
    /// In [`EngineMode::EventDriven`] a long idle stretch costs one loop
    /// iteration per *event* (refresh deadline, governor demotion, wake-up)
    /// rather than one per cycle; once every rank sits in self-refresh the
    /// remaining horizon is covered in a single jump.
    pub fn run_idle(&mut self, cycles: u64) -> RunStats {
        let target = self.clock + cycles;
        while self.clock < target {
            self.poll_channels();
            if self.mode == EngineMode::Stepped {
                self.clock += 1;
            } else {
                // Epoch replay has nothing to sample on an idle run; it
                // falls through to plain event-driven advance.
                self.clock = self.next_horizon().max(self.clock + 1).min(target);
            }
        }
        self.snapshot_stats()
    }

    /// Polls channels at the current cycle. In the event-driven modes only
    /// channels whose attention time has arrived are visited, and every
    /// visit — successful issue or not — refreshes that channel's attention
    /// time from [`ChannelCtrl::next_poll`]. A channel issues at most one
    /// action per cycle, so the post-issue attention time is simply "when
    /// could it act next", which is exactly what the batched-arbitration
    /// jump in the run loops consumes.
    fn poll_channels(&mut self) {
        let now = self.clock;
        match self.mode {
            EngineMode::Stepped => {
                for ch in &mut self.channels {
                    ch.try_issue(now);
                }
            }
            EngineMode::EventDriven | EngineMode::EpochReplay(_) => {
                for (ch, attn) in self.channels.iter_mut().zip(self.attention.iter_mut()) {
                    if *attn > now {
                        continue;
                    }
                    ch.try_issue(now);
                    *attn = ch.next_poll(now, u64::MAX);
                }
            }
        }
    }

    /// Earliest cycle any channel needs attention (event-driven mode).
    fn next_horizon(&self) -> u64 {
        self.attention.iter().copied().min().unwrap_or(u64::MAX)
    }

    fn enqueue(&mut self, req: MemRequest) -> Result<()> {
        let coord = self.mapper.decode(req.addr)?;
        let group = coord.subarray_group();
        if self.group_deep_pd(group) {
            return Err(GdError::InvalidState(format!(
                "request {:#x} targets sub-array group {} which is in deep power-down",
                req.addr,
                group.index()
            )));
        }
        if !self.pasr_mask.is_empty() {
            let seg =
                coord.full_row(self.cfg.org.rows_per_subarray) / self.cfg.rows_per_pasr_segment();
            if self.pasr_mask.get(seg as usize).copied().unwrap_or(false) {
                return Err(GdError::InvalidState(format!(
                    "request {:#x} targets PASR segment {seg} which is masked \
                     out of self-refresh",
                    req.addr
                )));
            }
        }
        let ch = coord.channel.index();
        // A new arrival can unblock the channel immediately.
        self.attention[ch] = self.clock;
        self.channels[ch].enqueue(PendingRequest { req, coord }, self.clock);
        Ok(())
    }

    /// Collects cumulative statistics without consuming the system.
    pub fn snapshot_stats(&mut self) -> RunStats {
        for ch in &mut self.channels {
            ch.finish(self.clock);
        }
        let mut stats = RunStats {
            cycles: self.clock,
            replayed_cycles: self.replayed_cycles,
            replayed_epochs: self.replayed_epochs,
            ..Default::default()
        };
        for ch in &self.channels {
            let c = &ch.counters;
            stats.reads += c.reads;
            stats.writes += c.writes;
            stats.activates += c.activates;
            stats.precharges += c.precharges;
            stats.refreshes += c.refreshes;
            stats.row_hits += c.row_hits;
            stats.row_misses += c.row_misses;
            stats.row_conflicts += c.row_conflicts;
            stats.read_latency.merge(&c.read_latency);
            let (pd, sr) = ch.lp_entries();
            stats.pd_entries += pd;
            stats.sr_entries += sr;
            stats.rank_residency.extend(ch.residencies());
        }
        stats.group_deep_pd_cycles = self
            .group_pd_cycles
            .iter()
            .zip(self.group_pd.iter().zip(self.group_pd_since.iter()))
            .map(|(acc, (on, since))| {
                if *on {
                    acc + (self.clock - since)
                } else {
                    *acc
                }
            })
            .collect();
        stats
    }

    /// Exports cumulative DRAM telemetry into `tele` under the dotted
    /// `scope` prefix: per-channel command counters and queue depths,
    /// per-rank power-state residency histograms (cycles), low-power entry
    /// counts, and per-group deep power-down dwell (non-zero groups only).
    ///
    /// Residency is integrated at transition boundaries, so both
    /// [`EngineMode`]s export bit-identical values — the property the
    /// telemetry-determinism tests pin down.
    pub fn export_telemetry(&mut self, tele: &mut gd_obs::Telemetry, scope: &str) {
        for ch in &mut self.channels {
            ch.finish(self.clock);
        }
        let reg = &mut tele.registry;
        reg.counter_add(&format!("{scope}.dram.cycles"), self.clock);
        // Emitted only when replay actually fired, so exact-mode telemetry
        // stays byte-identical to the pre-replay format.
        if self.replayed_epochs > 0 {
            reg.counter_add(&format!("{scope}.dram.replay.epochs"), self.replayed_epochs);
            reg.counter_add(&format!("{scope}.dram.replay.cycles"), self.replayed_cycles);
        }
        for (ci, ch) in self.channels.iter().enumerate() {
            let p = format!("{scope}.dram.ch{ci}");
            let c = &ch.counters;
            reg.counter_add(&format!("{p}.reads"), c.reads);
            reg.counter_add(&format!("{p}.writes"), c.writes);
            reg.counter_add(&format!("{p}.activates"), c.activates);
            reg.counter_add(&format!("{p}.precharges"), c.precharges);
            reg.counter_add(&format!("{p}.refreshes"), c.refreshes);
            reg.counter_add(&format!("{p}.row_hits"), c.row_hits);
            reg.counter_add(&format!("{p}.row_conflicts"), c.row_conflicts);
            let (pd, sr) = ch.lp_entries();
            reg.counter_add(&format!("{p}.pd_entries"), pd);
            reg.counter_add(&format!("{p}.sr_entries"), sr);
            reg.gauge_set(&format!("{p}.queue_depth"), ch.queue_len() as f64);
            for (ri, r) in ch.residencies().iter().enumerate() {
                let key = format!("{p}.rank{ri}");
                reg.residency_add(&key, "ActiveStandby", r.active_standby);
                reg.residency_add(&key, "PrechargeStandby", r.precharge_standby);
                reg.residency_add(&key, "PowerDown", r.power_down);
                reg.residency_add(&key, "SelfRefresh", r.self_refresh);
            }
        }
        for (g, acc) in self.group_pd_cycles.iter().enumerate() {
            let live = if self.group_pd[g] {
                self.clock - self.group_pd_since[g]
            } else {
                0
            };
            let dwell = acc + live;
            if dwell > 0 {
                reg.counter_add(&format!("{scope}.dram.group{g:02}.deep_pd_cycles"), dwell);
            }
        }
        // Emitted only when a segment was actually masked, so non-PASR
        // telemetry stays byte-identical to the pre-PASR format.
        for (s, acc) in self.pasr_mask_cycles.iter().enumerate() {
            let live = if self.pasr_mask[s] {
                self.clock - self.pasr_mask_since[s]
            } else {
                0
            };
            let dwell = acc + live;
            if dwell > 0 {
                reg.counter_add(&format!("{scope}.dram.pasr.seg{s}.masked_cycles"), dwell);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_types::config::InterleaveMode;

    fn sys(mode: InterleaveMode, policy: LowPowerPolicy) -> MemorySystem {
        MemorySystem::new(DramConfig::small_test().with_interleave(mode), policy).unwrap()
    }

    fn seq_reads(n: u64, stride: u64, gap: u64) -> Vec<MemRequest> {
        (0..n)
            .map(|i| MemRequest::read(i * stride, i * gap))
            .collect()
    }

    #[test]
    fn trace_of_reads_completes() {
        let mut s = sys(InterleaveMode::Interleaved, LowPowerPolicy::disabled());
        let stats = s.run_trace(seq_reads(256, 64, 4)).unwrap();
        assert_eq!(stats.reads, 256);
        assert!(stats.cycles > 0);
        assert_eq!(stats.read_latency.count(), 256);
    }

    #[test]
    fn interleaving_beats_linear_on_streaming_bandwidth() {
        // A dense streaming read pattern finishes much faster with channel
        // interleaving than when it serializes on one rank (Fig. 3a).
        let reqs = seq_reads(2048, 64, 1);
        let mut inter = sys(InterleaveMode::Interleaved, LowPowerPolicy::disabled());
        let si = inter.run_trace(reqs.clone()).unwrap();
        let mut lin = sys(InterleaveMode::Linear, LowPowerPolicy::disabled());
        let sl = lin.run_trace(reqs).unwrap();
        assert!(
            (si.cycles as f64) < sl.cycles as f64 * 0.6,
            "interleaved {} vs linear {}",
            si.cycles,
            sl.cycles
        );
    }

    #[test]
    fn linear_mode_lets_idle_ranks_self_refresh() {
        // Small footprint + linear mapping: only rank 0 of channel 0 sees
        // traffic; everyone else enters self-refresh (Fig. 3b). The trace
        // loops over a 64 KB footprint, as a real working set would.
        let reqs: Vec<MemRequest> = (0..2048u64)
            .map(|i| MemRequest::read((i * 64 * 13) % 65_536, i * 50))
            .collect();
        let mut lin = sys(InterleaveMode::Linear, LowPowerPolicy::srf_default());
        let sl = lin.run_trace(reqs.clone()).unwrap();
        assert!(
            sl.mean_self_refresh_fraction() > 0.3,
            "linear SR fraction {}",
            sl.mean_self_refresh_fraction()
        );
        // With interleaving the same trace touches every rank often enough
        // that self-refresh residency collapses.
        let mut inter = sys(InterleaveMode::Interleaved, LowPowerPolicy::srf_default());
        let si = inter.run_trace(reqs).unwrap();
        assert!(
            si.mean_self_refresh_fraction() < sl.mean_self_refresh_fraction() / 2.0,
            "interleaved {} vs linear {}",
            si.mean_self_refresh_fraction(),
            sl.mean_self_refresh_fraction()
        );
    }

    #[test]
    fn deep_pd_register_tracks_residency() {
        let mut s = sys(InterleaveMode::Interleaved, LowPowerPolicy::disabled());
        s.set_group_deep_pd(SubArrayGroup::new(7), true).unwrap();
        let stats = s.run_idle(10_000);
        assert!(stats.group_deep_pd_cycles[7] >= 10_000);
        assert_eq!(stats.group_deep_pd_cycles[0], 0);
        assert_eq!(s.groups_in_deep_pd(), 1);
    }

    #[test]
    fn request_to_deep_pd_group_is_rejected() {
        let mut s = sys(InterleaveMode::Interleaved, LowPowerPolicy::disabled());
        // Group of address at the top of the address space.
        let cap = s.mapper().capacity_bytes();
        let addr = cap - 64;
        let g = s.mapper().subarray_group_of(addr).unwrap();
        s.set_group_deep_pd(g, true).unwrap();
        let err = s.run_trace([MemRequest::read(addr, 0)]).unwrap_err();
        assert!(matches!(err, GdError::InvalidState(_)));
        // Address 0 lives in group 0 and still works.
        assert!(s.run_trace([MemRequest::read(0, 0)]).is_ok());
    }

    #[test]
    fn deep_pd_exit_is_idempotent_and_costs_time() {
        let mut s = sys(InterleaveMode::Interleaved, LowPowerPolicy::disabled());
        let g = SubArrayGroup::new(2);
        s.set_group_deep_pd(g, true).unwrap();
        s.set_group_deep_pd(g, true).unwrap(); // no-op
        let before = s.clock();
        s.set_group_deep_pd(g, false).unwrap();
        assert!(s.clock() > before, "exit latency must advance the clock");
        s.set_group_deep_pd(g, false).unwrap(); // no-op
        assert!(!s.group_deep_pd(g));
    }

    #[test]
    fn pasr_mask_requires_lpddr4_backend() {
        let mut s = sys(InterleaveMode::Interleaved, LowPowerPolicy::disabled());
        let err = s.set_pasr_segment(0, true).unwrap_err();
        assert!(matches!(err, GdError::InvalidState(_)), "{err}");
    }

    #[test]
    fn pasr_masked_segment_rejects_traffic() {
        let cfg = DramConfig::small_test_lpddr4();
        let mut s = MemorySystem::new(cfg, LowPowerPolicy::disabled()).unwrap();
        // The top of the address space lives in the last segment; address 0
        // in segment 0.
        let cap = s.mapper().capacity_bytes();
        let top = cap - 64;
        let seg = gd_types::config::PASR_SEGMENTS - 1;
        s.set_pasr_segment(seg, true).unwrap();
        s.set_pasr_segment(seg, true).unwrap(); // idempotent
        let err = s.run_trace([MemRequest::read(top, 0)]).unwrap_err();
        assert!(matches!(err, GdError::InvalidState(_)), "{err}");
        assert!(s.run_trace([MemRequest::read(0, 0)]).is_ok());
        assert_eq!(s.pasr_masked_fraction(), 1.0 / f64::from(seg + 1));
        // Unmasking restores service and stops the dwell clock.
        s.set_pasr_segment(seg, false).unwrap();
        assert!(s.run_trace([MemRequest::read(top, 1)]).is_ok());
        assert_eq!(s.pasr_masked_fraction(), 0.0);
        let mut tele = gd_obs::Telemetry::new();
        s.export_telemetry(&mut tele, "t");
        assert!(
            tele.registry
                .counter(&format!("t.dram.pasr.seg{seg}.masked_cycles"))
                > 0
        );
    }

    #[test]
    fn out_of_range_pasr_segment_is_not_found() {
        let cfg = DramConfig::small_test_lpddr4();
        let mut s = MemorySystem::new(cfg, LowPowerPolicy::disabled()).unwrap();
        let err = s
            .set_pasr_segment(gd_types::config::PASR_SEGMENTS, true)
            .unwrap_err();
        assert!(matches!(err, GdError::NotFound(_)), "{err}");
    }

    #[test]
    fn ddr5_same_bank_refresh_drains_and_completes() {
        let cfg = DramConfig::small_test_ddr5();
        let mut s = MemorySystem::new(cfg, LowPowerPolicy::disabled()).unwrap();
        s.enable_command_log();
        let reqs: Vec<MemRequest> = (0..512u64)
            .map(|i| MemRequest::read((i * 64 * 17) % (1 << 20), i * 40))
            .collect();
        let stats = s.run_trace(reqs).unwrap();
        // The controller's REFsb schedule must satisfy the independent
        // DDR5 legality table (set precharged, tRFCsb spacing).
        let violations = s.validate_command_log(false);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(stats.reads, 512);
        // Same-bank refresh fires `sets` times per tREFI per rank, so over
        // the run the REFsb count dwarfs what all-bank REF would issue.
        let intervals = stats.cycles / cfg.timing.t_refi;
        assert!(
            stats.refreshes >= intervals,
            "REFsb count {} should exceed the all-bank interval count {}",
            stats.refreshes,
            intervals
        );
    }

    #[test]
    fn idle_run_accumulates_low_power_residency() {
        let mut s = sys(InterleaveMode::Interleaved, LowPowerPolicy::srf_default());
        let stats = s.run_idle(200_000);
        let res = stats.total_residency();
        assert!(
            res.self_refresh + res.power_down > res.total() / 2,
            "idle DRAM should mostly sit in low-power states: {res:?}"
        );
        // Refreshes happened before the ranks entered self-refresh or the
        // first interval elapsed.
        assert_eq!(stats.reads + stats.writes, 0);
    }

    #[test]
    fn telemetry_residency_sums_to_clock() {
        let mut s = sys(InterleaveMode::Interleaved, LowPowerPolicy::srf_default());
        s.run_idle(100_000);
        let mut tele = gd_obs::Telemetry::new();
        s.export_telemetry(&mut tele, "t");
        let clock = s.clock();
        let mut ranks = 0;
        for (key, h) in tele.registry.residencies() {
            assert_eq!(h.total(), clock, "residency of {key} must sum to clock");
            ranks += 1;
        }
        let cfg = DramConfig::small_test();
        assert_eq!(
            ranks,
            (cfg.org.channels * cfg.org.ranks_per_channel) as usize
        );
        assert_eq!(tele.registry.counter("t.dram.cycles"), clock);
    }

    #[test]
    fn wake_stretch_slows_wakes_but_a_1x_stretch_is_identity() {
        let cfg = DramConfig::small_test();
        let plain = MemorySystem::new(cfg, LowPowerPolicy::srf_default()).unwrap();
        let one = MemorySystem::with_wake_stretch(cfg, LowPowerPolicy::srf_default(), 1).unwrap();
        assert_eq!(plain.config(), one.config(), "1x stretch changes nothing");
        let four = MemorySystem::with_wake_stretch(cfg, LowPowerPolicy::srf_default(), 4).unwrap();
        assert_eq!(four.config().timing.t_xp, cfg.timing.t_xp * 4);
        assert_eq!(four.config().timing.t_xs, cfg.timing.t_xs * 4);
        // A sparse trace that forces low-power entries between requests
        // pays the stretched wake latency on every re-entry.
        let reqs = seq_reads(64, 64, 20_000);
        let mut fast = MemorySystem::new(cfg, LowPowerPolicy::srf_default()).unwrap();
        let mut slow =
            MemorySystem::with_wake_stretch(cfg, LowPowerPolicy::srf_default(), 16).unwrap();
        let fast_lat = fast
            .run_trace(reqs.clone())
            .unwrap()
            .read_latency
            .mean()
            .unwrap_or(0.0);
        let slow_lat = slow
            .run_trace(reqs)
            .unwrap()
            .read_latency
            .mean()
            .unwrap_or(0.0);
        assert!(
            slow_lat > fast_lat,
            "stretched wakes must raise mean latency: {slow_lat} vs {fast_lat}"
        );
    }

    #[test]
    fn writes_complete_too() {
        let mut s = sys(InterleaveMode::Interleaved, LowPowerPolicy::disabled());
        let reqs: Vec<_> = (0..128).map(|i| MemRequest::write(i * 64, i)).collect();
        let stats = s.run_trace(reqs).unwrap();
        assert_eq!(stats.writes, 128);
    }
}
