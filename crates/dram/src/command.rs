//! DRAM command vocabulary and per-command energy event tags.

use gd_types::ids::DramCoord;
use std::fmt;

/// The DDR4 command set (the subset the simulator issues), plus the mode
/// register write GreenDIMM uses to program the sub-array power-down bit
/// vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramCommand {
    /// Activate a row (copy it into the bank's row buffer).
    Activate,
    /// Read a burst from the open row.
    Read,
    /// Write a burst to the open row.
    Write,
    /// Precharge one bank (close its row).
    Precharge,
    /// Precharge all banks in a rank.
    PrechargeAll,
    /// Rank-level auto-refresh.
    Refresh,
    /// DDR5 same-bank refresh: refreshes one bank per bank group (a
    /// "set"), stalling only those banks for tRFCsb.
    RefreshSameBank,
    /// Enter power-down (CKE low).
    PowerDownEnter,
    /// Exit power-down (CKE high).
    PowerDownExit,
    /// Enter self-refresh.
    SelfRefreshEnter,
    /// Exit self-refresh.
    SelfRefreshExit,
    /// Mode-register set — used to program GreenDIMM's sub-array-group
    /// deep power-down bit vector.
    ModeRegisterSet,
    /// Mode-register write of an LPDDR4 PASR segment mask bit (MR17):
    /// masked segments are excluded from self-refresh.
    PasrMask,
}

impl DramCommand {
    /// True for the column commands that move data on the bus.
    pub fn is_column(self) -> bool {
        matches!(self, DramCommand::Read | DramCommand::Write)
    }

    /// True for commands that require the target rank to be awake
    /// (CKE high and not in self-refresh).
    pub fn requires_awake(self) -> bool {
        !matches!(
            self,
            DramCommand::PowerDownExit | DramCommand::SelfRefreshExit
        )
    }
}

impl fmt::Display for DramCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DramCommand::Activate => "ACT",
            DramCommand::Read => "RD",
            DramCommand::Write => "WR",
            DramCommand::Precharge => "PRE",
            DramCommand::PrechargeAll => "PREA",
            DramCommand::Refresh => "REF",
            DramCommand::RefreshSameBank => "REFsb",
            DramCommand::PowerDownEnter => "PDE",
            DramCommand::PowerDownExit => "PDX",
            DramCommand::SelfRefreshEnter => "SRE",
            DramCommand::SelfRefreshExit => "SRX",
            DramCommand::ModeRegisterSet => "MRS",
            DramCommand::PasrMask => "PASR",
        };
        f.write_str(s)
    }
}

/// A memory request presented to the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRequest {
    /// Physical byte address (cache-line aligned by the controller).
    pub addr: u64,
    /// Read or write.
    pub kind: AccessKind,
    /// Arrival time in memory-clock cycles.
    pub arrival: u64,
}

/// Read/write discriminator for [`MemRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A demand read (latency-critical).
    Read,
    /// A writeback (posted; latency not tracked against the CPU model).
    Write,
}

impl MemRequest {
    /// Creates a read request.
    pub fn read(addr: u64, arrival: u64) -> Self {
        MemRequest {
            addr,
            kind: AccessKind::Read,
            arrival,
        }
    }

    /// Creates a write request.
    pub fn write(addr: u64, arrival: u64) -> Self {
        MemRequest {
            addr,
            kind: AccessKind::Write,
            arrival,
        }
    }
}

/// A request presented to a channel controller, with its decoded
/// coordinates. The controller re-derives everything else (FIFO position,
/// progress phase) internally.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingRequest {
    pub req: MemRequest,
    pub coord: DramCoord,
}

/// Progress of a queued request through the ACT → column-command sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RequestPhase {
    /// Needs its row activated (row miss, or bank closed).
    NeedsActivate,
    /// Row is open; needs its READ/WRITE issued.
    NeedsColumn,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mnemonics() {
        assert_eq!(DramCommand::Activate.to_string(), "ACT");
        assert_eq!(DramCommand::SelfRefreshExit.to_string(), "SRX");
    }

    #[test]
    fn column_classification() {
        assert!(DramCommand::Read.is_column());
        assert!(DramCommand::Write.is_column());
        assert!(!DramCommand::Activate.is_column());
    }

    #[test]
    fn awake_requirement() {
        assert!(DramCommand::Activate.requires_awake());
        assert!(!DramCommand::PowerDownExit.requires_awake());
        assert!(!DramCommand::SelfRefreshExit.requires_awake());
    }

    #[test]
    fn request_constructors() {
        let r = MemRequest::read(0x40, 10);
        assert_eq!(r.kind, AccessKind::Read);
        let w = MemRequest::write(0x80, 20);
        assert_eq!(w.kind, AccessKind::Write);
        assert_eq!(w.arrival, 20);
    }
}
