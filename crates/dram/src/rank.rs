//! Per-rank power-state machine, refresh bookkeeping, and ACT-window
//! constraints.

use gd_types::config::DramTiming;
use std::collections::VecDeque;

/// The low-power states a DDR4 rank can occupy, as tracked for both
/// scheduling (wake-up latencies) and the power model (per-state residency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankPowerState {
    /// At least one bank has an open row; CKE high.
    ActiveStandby,
    /// All banks precharged; CKE high.
    PrechargeStandby,
    /// Precharge power-down: CKE low, clock gated, I/O off
    /// (~40–70 % of active power; 18 ns exit).
    PowerDown,
    /// Self-refresh: DLL off, DRAM refreshes itself
    /// (down to ~10 % of active power; 768 ns exit).
    SelfRefresh,
}

impl RankPowerState {
    /// Number of states (for residency arrays).
    pub const COUNT: usize = 4;

    /// Dense index for residency arrays.
    pub fn index(self) -> usize {
        match self {
            RankPowerState::ActiveStandby => 0,
            RankPowerState::PrechargeStandby => 1,
            RankPowerState::PowerDown => 2,
            RankPowerState::SelfRefresh => 3,
        }
    }

    /// True if the rank must be woken before serving a command.
    pub fn is_low_power(self) -> bool {
        matches!(
            self,
            RankPowerState::PowerDown | RankPowerState::SelfRefresh
        )
    }
}

/// Cycles spent in each rank power state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankResidency {
    /// Cycles with a row open.
    pub active_standby: u64,
    /// Cycles idle with CKE high.
    pub precharge_standby: u64,
    /// Cycles in power-down.
    pub power_down: u64,
    /// Cycles in self-refresh.
    pub self_refresh: u64,
}

impl RankResidency {
    /// Total accounted cycles.
    pub fn total(&self) -> u64 {
        self.active_standby + self.precharge_standby + self.power_down + self.self_refresh
    }

    /// Fraction of cycles in self-refresh (the paper's Fig. 3b metric).
    pub fn self_refresh_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.self_refresh as f64 / self.total() as f64
        }
    }

    /// Fraction of cycles in any low-power state.
    pub fn low_power_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.power_down + self.self_refresh) as f64 / self.total() as f64
        }
    }

    pub(crate) fn add_state(&mut self, state: RankPowerState, cycles: u64) {
        match state {
            RankPowerState::ActiveStandby => self.active_standby += cycles,
            RankPowerState::PrechargeStandby => self.precharge_standby += cycles,
            RankPowerState::PowerDown => self.power_down += cycles,
            RankPowerState::SelfRefresh => self.self_refresh += cycles,
        }
    }

    /// Element-wise accumulate.
    pub fn merge(&mut self, other: &RankResidency) {
        self.active_standby += other.active_standby;
        self.precharge_standby += other.precharge_standby;
        self.power_down += other.power_down;
        self.self_refresh += other.self_refresh;
    }

    /// Adds `times` copies of the element-wise delta `end − start` between
    /// two cumulative snapshots — epoch replay's scaled residency
    /// accounting. When the two marks lie exactly one epoch apart, the
    /// delta sums to the epoch length, so the residency-sums-to-elapsed
    /// invariant survives the fast-forward exactly.
    pub fn merge_scaled_delta(&mut self, start: &RankResidency, end: &RankResidency, times: u64) {
        self.active_standby += (end.active_standby - start.active_standby) * times;
        self.precharge_standby += (end.precharge_standby - start.precharge_standby) * times;
        self.power_down += (end.power_down - start.power_down) * times;
        self.self_refresh += (end.self_refresh - start.self_refresh) * times;
    }
}

/// Scheduling and power state of one rank.
#[derive(Debug, Clone)]
pub(crate) struct RankCtl {
    /// Current power state.
    pub power: RankPowerState,
    /// Cycle the current power state was entered.
    pub state_since: u64,
    /// If a wake-up (PDX/SRX) is in flight, the cycle it completes.
    pub wake_at: Option<u64>,
    /// Next scheduled auto-refresh.
    pub next_refresh: u64,
    /// Refresh in progress until this cycle.
    pub refresh_until: u64,
    /// Rotating same-bank refresh set (DDR5 REFsb): the bank-in-group index
    /// the next REFsb targets. Always 0 under all-bank refresh. An index,
    /// not a timestamp — epoch-replay time shifts leave it alone.
    pub refresh_set: u32,
    /// Number of banks with an open row.
    pub open_banks: u32,
    /// Timestamps of the most recent ACTs (for tFAW), most recent first
    /// capped at 4.
    pub act_window: VecDeque<u64>,
    /// Earliest next ACT due to tRRD_S (any bank group).
    pub next_act_any: u64,
    /// Earliest next ACT per bank group due to tRRD_L.
    pub next_act_bg: Vec<u64>,
    /// Earliest next READ / WRITE issue due to bus-turnaround constraints.
    pub next_read: u64,
    /// Earliest next WRITE issue.
    pub next_write: u64,
    /// Last cycle this rank issued a command or had a queued request.
    pub idle_since: u64,
    /// Accumulated residency.
    pub residency: RankResidency,
    /// Number of power-down entries.
    pub pd_entries: u64,
    /// Number of self-refresh entries.
    pub sr_entries: u64,
}

impl RankCtl {
    pub fn new(bank_groups: u32, refresh_offset: u64) -> Self {
        RankCtl {
            power: RankPowerState::PrechargeStandby,
            state_since: 0,
            wake_at: None,
            next_refresh: refresh_offset,
            refresh_until: 0,
            refresh_set: 0,
            open_banks: 0,
            act_window: VecDeque::with_capacity(4),
            next_act_any: 0,
            next_act_bg: vec![0; bank_groups as usize],
            next_read: 0,
            next_write: 0,
            idle_since: 0,
            residency: RankResidency::default(),
            pd_entries: 0,
            sr_entries: 0,
        }
    }

    /// Moves to `state` at cycle `now`, accumulating residency for the state
    /// being left.
    pub fn set_power(&mut self, now: u64, state: RankPowerState) {
        debug_assert!(now >= self.state_since, "time went backwards");
        self.residency.add_state(self.power, now - self.state_since);
        self.power = state;
        self.state_since = now;
        match state {
            RankPowerState::PowerDown => self.pd_entries += 1,
            RankPowerState::SelfRefresh => self.sr_entries += 1,
            _ => {}
        }
    }

    /// Finalizes residency accounting at the end of a run.
    pub fn finish(&mut self, now: u64) {
        self.residency
            .add_state(self.power, now.saturating_sub(self.state_since));
        self.state_since = now;
    }

    /// Earliest cycle an ACT is allowed rank-wide (tRRD and tFAW).
    pub fn act_allowed_at(&self, bank_group: usize) -> u64 {
        let faw = if self.act_window.len() == 4 {
            // 4 ACTs in the window: the oldest + tFAW gates the next.
            self.act_window
                .back()
                .copied()
                .expect("invariant: a 4-entry ACT window has a back")
        } else {
            0
        };
        self.next_act_any.max(self.next_act_bg[bank_group]).max(faw)
    }

    /// Records an ACT at `now` and updates tRRD/tFAW bookkeeping.
    pub fn on_activate(&mut self, now: u64, bank_group: usize, t: &DramTiming) {
        self.next_act_any = self.next_act_any.max(now + t.t_rrd_s);
        self.next_act_bg[bank_group] = self.next_act_bg[bank_group].max(now + t.t_rrd_l);
        if self.act_window.len() == 4 {
            self.act_window.pop_back();
        }
        // Store the gate time directly: the cycle after which a 5th ACT is ok.
        self.act_window.push_front(now + t.t_faw);
        self.open_banks += 1;
    }

    /// Records a PRE (or one bank closing during PREA).
    pub fn on_precharge_bank(&mut self) {
        debug_assert!(self.open_banks > 0);
        self.open_banks = self.open_banks.saturating_sub(1);
    }

    /// True if the rank is fully precharged (required for REF, PDE, SRE).
    pub fn all_precharged(&self) -> bool {
        self.open_banks == 0
    }

    /// Translates every absolute-cycle stamp forward by `delta`
    /// (epoch-replay fast-forward). Shifting `state_since` leaves the
    /// currently-open residency interval pending — the skipped window's
    /// residency is added separately from the representative-epoch delta,
    /// so total residency plus the pending interval still equals the clock.
    pub fn time_shift(&mut self, delta: u64) {
        self.state_since += delta;
        if let Some(w) = &mut self.wake_at {
            *w += delta;
        }
        self.next_refresh += delta;
        self.refresh_until += delta;
        self.next_act_any += delta;
        for v in &mut self.next_act_bg {
            *v += delta;
        }
        for v in &mut self.act_window {
            *v += delta;
        }
        self.next_read += delta;
        self.next_write += delta;
        self.idle_since += delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTiming {
        DramTiming::ddr4_2133_4gb()
    }

    #[test]
    fn residency_accumulates_on_transition() {
        let mut r = RankCtl::new(4, 0);
        r.set_power(100, RankPowerState::PowerDown);
        r.set_power(300, RankPowerState::PrechargeStandby);
        r.finish(350);
        assert_eq!(r.residency.precharge_standby, 100 + 50);
        assert_eq!(r.residency.power_down, 200);
        assert_eq!(r.residency.total(), 350);
        assert_eq!(r.pd_entries, 1);
    }

    #[test]
    fn faw_gates_fifth_activate() {
        let timing = t();
        let mut r = RankCtl::new(4, 0);
        for (i, now) in [0u64, 10, 20, 30].iter().enumerate() {
            r.on_activate(*now, i % 4, &timing);
        }
        // The 5th ACT must wait until the 1st + tFAW.
        assert!(r.act_allowed_at(0) >= timing.t_faw);
    }

    #[test]
    fn rrd_long_exceeds_short() {
        let timing = t();
        let mut r = RankCtl::new(4, 0);
        r.on_activate(100, 2, &timing);
        assert_eq!(r.next_act_any, 100 + timing.t_rrd_s);
        assert_eq!(r.next_act_bg[2], 100 + timing.t_rrd_l);
        assert_eq!(r.next_act_bg[0], 0);
    }

    #[test]
    fn open_bank_counting() {
        let timing = t();
        let mut r = RankCtl::new(4, 0);
        assert!(r.all_precharged());
        r.on_activate(0, 0, &timing);
        r.on_activate(5, 1, &timing);
        assert!(!r.all_precharged());
        r.on_precharge_bank();
        r.on_precharge_bank();
        assert!(r.all_precharged());
    }

    #[test]
    fn low_power_classification() {
        assert!(RankPowerState::PowerDown.is_low_power());
        assert!(RankPowerState::SelfRefresh.is_low_power());
        assert!(!RankPowerState::ActiveStandby.is_low_power());
        assert!(!RankPowerState::PrechargeStandby.is_low_power());
    }

    #[test]
    fn residency_fractions() {
        let res = RankResidency {
            active_standby: 25,
            precharge_standby: 25,
            power_down: 0,
            self_refresh: 50,
        };
        assert_eq!(res.self_refresh_fraction(), 0.5);
        assert_eq!(res.low_power_fraction(), 0.5);
        assert_eq!(RankResidency::default().self_refresh_fraction(), 0.0);
    }
}
