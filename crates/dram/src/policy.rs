//! Controller low-power policy knobs.

/// Idle-timeout policy for rank low-power states, as implemented by
/// commodity memory controllers: after `pd_timeout` idle cycles a rank
/// enters power-down; after `sr_timeout` idle cycles it is promoted to
/// self-refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowPowerPolicy {
    /// Idle cycles before entering power-down. `None` disables power-down.
    pub pd_timeout: Option<u64>,
    /// Idle cycles before entering self-refresh. `None` disables it.
    pub sr_timeout: Option<u64>,
}

impl LowPowerPolicy {
    /// The paper's baseline controller: power-down after ~64 idle memory
    /// cycles, self-refresh after ~9.4 µs (10 000 cycles at DDR4-2133).
    pub fn srf_default() -> Self {
        LowPowerPolicy {
            pd_timeout: Some(64),
            sr_timeout: Some(10_000),
        }
    }

    /// Low-power states disabled entirely (for isolating GreenDIMM's own
    /// savings, and for the `w/ intlv` runs where no rank would enter them
    /// anyway).
    pub fn disabled() -> Self {
        LowPowerPolicy {
            pd_timeout: None,
            sr_timeout: None,
        }
    }

    /// An aggressive policy for stress tests.
    pub fn aggressive() -> Self {
        LowPowerPolicy {
            pd_timeout: Some(16),
            sr_timeout: Some(1_000),
        }
    }
}

impl Default for LowPowerPolicy {
    fn default() -> Self {
        Self::srf_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let d = LowPowerPolicy::default();
        assert_eq!(d, LowPowerPolicy::srf_default());
        assert!(d.pd_timeout.unwrap() < d.sr_timeout.unwrap());
        assert_eq!(LowPowerPolicy::disabled().pd_timeout, None);
    }
}
