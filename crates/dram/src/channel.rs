//! Per-channel memory controller: FR-FCFS scheduling, refresh, low-power
//! governor, and timing enforcement.
//!
//! # Scheduling structure (batched arbitration)
//!
//! Requests live in per-bank FIFOs ordered by a global arrival sequence
//! number. FR-FCFS only ever needs three *candidates* per bank — the oldest
//! row-matching read, the oldest row-matching write, and the oldest request
//! that needs an ACT (or a conflicting PRE) — because within each class all
//! members share the same issuability conditions, so the globally oldest
//! issuable request is always one of the per-bank class heads. The
//! candidates are cached and invalidated only when the bank's row state or
//! FIFO contents change, which turns the per-poll cost from O(queue depth)
//! into O(banks). `next_event` uses the same candidates to compute an exact
//! earliest-action cycle, so the driving loop can jump the clock in
//! issue-sized steps instead of `now + 1` polls (see DESIGN.md §6.2 for the
//! decision-stability argument).

use crate::bank::{BankArray, ROW_NONE};
use crate::command::{AccessKind, DramCommand, PendingRequest, RequestPhase};
use crate::policy::LowPowerPolicy;
use crate::rank::{RankCtl, RankPowerState, RankResidency};
use crate::validate::CommandRecord;
use gd_types::config::{DramConfig, DramTiming, RefreshScheme};
use gd_types::stats::Summary;
use std::collections::{BTreeMap, VecDeque};

/// Event/command counters local to one channel.
#[derive(Debug, Clone, Default)]
pub(crate) struct ChannelCounters {
    pub reads: u64,
    pub writes: u64,
    pub activates: u64,
    pub precharges: u64,
    pub refreshes: u64,
    pub row_hits: u64,
    pub row_misses: u64,
    pub row_conflicts: u64,
    pub read_latency: Summary,
}

impl ChannelCounters {
    /// Adds `times` copies of the delta `end − start` to the counters —
    /// epoch replay's scaled accounting for skipped steady-state windows.
    pub fn add_scaled_delta(&mut self, start: &ChannelCounters, end: &ChannelCounters, times: u64) {
        self.reads += (end.reads - start.reads) * times;
        self.writes += (end.writes - start.writes) * times;
        self.activates += (end.activates - start.activates) * times;
        self.precharges += (end.precharges - start.precharges) * times;
        self.refreshes += (end.refreshes - start.refreshes) * times;
        self.row_hits += (end.row_hits - start.row_hits) * times;
        self.row_misses += (end.row_misses - start.row_misses) * times;
        self.row_conflicts += (end.row_conflicts - start.row_conflicts) * times;
        self.read_latency
            .merge_scaled(&end.read_latency.delta_since(&start.read_latency), times);
    }
}

///// Point-in-time accounting snapshot used by epoch replay: cumulative
/// counters plus live residency (each rank's currently-open state interval
/// attributed up to the mark cycle).
#[derive(Debug, Clone)]
pub(crate) struct ReplayMark {
    pub counters: ChannelCounters,
    pub ranks: Vec<RankMark>,
}

/// Per-rank slice of a [`ReplayMark`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct RankMark {
    pub residency: RankResidency,
    pub pd_entries: u64,
    pub sr_entries: u64,
}

/// One request inside a per-bank FIFO.
#[derive(Debug, Clone, Copy)]
struct QueuedReq {
    /// Global arrival order — the FCFS priority across all banks.
    seq: u64,
    req: crate::command::MemRequest,
    /// Device-level full row (sub-array bits above local-row bits).
    row: u32,
    phase: RequestPhase,
}

///// Cached FR-FCFS candidates for one bank: FIFO positions of the oldest
/// row-matching read, the oldest row-matching write, and the oldest request
/// that needs bank progress (ACT, or PRE on a conflict). Invalidated when
/// the bank's row state or FIFO membership changes.
#[derive(Debug, Clone, Copy, Default)]
struct BankCands {
    valid: bool,
    col_read: Option<usize>,
    col_write: Option<usize>,
    act: Option<usize>,
}

/// The second-pass action selected for the globally oldest movable request.
enum OldestAction {
    Wake { rank: usize },
    Precharge { bank: usize },
    Activate { bank: usize, pos: usize },
}

/// One channel's controller state.
#[derive(Debug)]
pub(crate) struct ChannelCtrl {
    timing: DramTiming,
    /// Refresh scheme: all-bank REF (DDR4/LPDDR4) or DDR5 same-bank REFsb.
    scheme: RefreshScheme,
    bank_groups: usize,
    banks_per_group: usize,
    banks_per_rank: usize,
    rows_per_subarray: u32,
    ranks: Vec<RankCtl>,
    /// Struct-of-arrays timing state for every bank, indexed by
    /// `rank * banks_per_rank + flat_bank`.
    banks: BankArray,
    /// Per-bank request FIFOs (same indexing as `banks`).
    queues: Vec<VecDeque<QueuedReq>>,
    /// Cached per-bank scheduling candidates (same indexing as `banks`).
    cands: Vec<BankCands>,
    /// Per-bank `(reads, writes)` membership count per device row. Lets the
    /// candidate rescans stop as soon as every match that *exists* has been
    /// found — without it, a deep FIFO with no row-buffer locality pays a
    /// full O(depth) scan per ACT/PRE just to prove the absence of row hits
    /// (quadratic over a traffic-dense trace).
    row_members: Vec<BTreeMap<u32, (u32, u32)>>,
    /// Total queued requests across all banks.
    total_queued: usize,
    /// Next global arrival sequence number.
    next_seq: u64,
    /// Queued-request count per rank; keeps `queue_has_rank` O(1) (it is
    /// consulted per rank by the governor and `next_event` on every poll).
    queued_per_rank: Vec<u32>,
    /// Data bus busy until this cycle.
    bus_free_at: u64,
    /// Channel-wide earliest next column command (tCCD_S).
    next_col_any: u64,
    /// Per (rank, bank group) earliest next column command (tCCD_L).
    next_col_bg: Vec<u64>,
    policy: LowPowerPolicy,
    pub counters: ChannelCounters,
    /// This channel's index (for command logging).
    channel_index: u32,
    /// Optional command log for independent timing validation.
    log: Option<Vec<CommandRecord>>,
}

impl ChannelCtrl {
    #[cfg(test)]
    pub fn new(cfg: &DramConfig, policy: LowPowerPolicy) -> Self {
        Self::with_index(cfg, policy, 0)
    }

    pub fn with_index(cfg: &DramConfig, policy: LowPowerPolicy, channel_index: u32) -> Self {
        let org = cfg.org;
        let ranks_n = org.ranks_per_channel as usize;
        let banks_per_rank = org.banks_per_rank() as usize;
        let timing = cfg.timing;
        let scheme = cfg.refresh_scheme();
        // Cycles between consecutive refresh commands: tREFI for all-bank
        // REF; tREFI / sets for same-bank REFsb (each command covers one
        // bank per group, so `sets` commands refresh the whole rank).
        let interval = match scheme {
            RefreshScheme::AllBank => timing.t_refi,
            RefreshScheme::SameBank { sets } => timing.t_refi / u64::from(sets),
        };
        // Stagger refresh across ranks so they do not refresh in lock-step.
        let ranks = (0..ranks_n)
            .map(|r| {
                let offset = interval * (r as u64 + 1) / ranks_n as u64;
                RankCtl::new(org.bank_groups, offset)
            })
            .collect();
        let total_banks = ranks_n * banks_per_rank;
        ChannelCtrl {
            timing,
            scheme,
            bank_groups: org.bank_groups as usize,
            banks_per_group: org.banks_per_group as usize,
            banks_per_rank,
            rows_per_subarray: org.rows_per_subarray,
            ranks,
            banks: BankArray::new(total_banks),
            queues: vec![VecDeque::new(); total_banks],
            row_members: vec![BTreeMap::new(); total_banks],
            cands: vec![
                BankCands {
                    valid: true,
                    ..BankCands::default()
                };
                total_banks
            ],
            total_queued: 0,
            next_seq: 0,
            queued_per_rank: vec![0; ranks_n],
            bus_free_at: 0,
            next_col_any: 0,
            next_col_bg: vec![0; ranks_n * org.bank_groups as usize],
            policy,
            counters: ChannelCounters::default(),
            channel_index,
            log: None,
        }
    }

    /// Enables command logging (for [`crate::validate::TimingChecker`]).
    pub fn enable_log(&mut self) {
        self.log = Some(Vec::new());
    }

    /// Takes the accumulated command log.
    pub fn take_log(&mut self) -> Vec<CommandRecord> {
        self.log.take().unwrap_or_default()
    }

    fn record(
        &mut self,
        cycle: u64,
        rank: u32,
        bank: u32,
        bank_group: u32,
        row: u32,
        command: DramCommand,
    ) {
        if let Some(log) = &mut self.log {
            log.push(CommandRecord {
                cycle,
                channel: self.channel_index,
                rank,
                bank,
                bank_group,
                row,
                command,
            });
        }
    }

    /// Logs the MRS write that programs a sub-array group's deep power-down
    /// bit (row = group index, bank = the bit value).
    pub fn record_mrs(&mut self, cycle: u64, group: u32, down: bool) {
        if let Some(log) = &mut self.log {
            log.push(CommandRecord {
                cycle,
                channel: self.channel_index,
                rank: 0,
                bank: u32::from(down),
                bank_group: 0,
                row: group,
                command: DramCommand::ModeRegisterSet,
            });
        }
    }

    /// Logs the MR17 write that masks or unmasks an LPDDR4 PASR segment
    /// (row = segment index, bank = the mask-bit value).
    pub fn record_pasr(&mut self, cycle: u64, segment: u32, masked: bool) {
        if let Some(log) = &mut self.log {
            log.push(CommandRecord {
                cycle,
                channel: self.channel_index,
                rank: 0,
                bank: u32::from(masked),
                bank_group: 0,
                row: segment,
                command: DramCommand::PasrMask,
            });
        }
    }

    /// Cycles between consecutive refresh commands under the active scheme.
    fn refresh_interval(&self) -> u64 {
        match self.scheme {
            RefreshScheme::AllBank => self.timing.t_refi,
            RefreshScheme::SameBank { sets } => self.timing.t_refi / u64::from(sets),
        }
    }

    fn bank_idx(&self, rank: usize, bg: usize, bank: usize) -> usize {
        rank * self.banks_per_rank + bg * self.banks_per_group + bank
    }

    fn col_bg_idx(&self, rank: usize, bg: usize) -> usize {
        rank * self.bank_groups + bg
    }

    /// Bank group of a global bank index.
    fn bg_of(&self, b: usize) -> usize {
        (b % self.banks_per_rank) / self.banks_per_group
    }

    /// Adds a request to the scheduling queue.
    pub fn enqueue(&mut self, pending: PendingRequest, now: u64) {
        let ri = pending.coord.rank.index();
        self.ranks[ri].idle_since = now;
        self.queued_per_rank[ri] += 1;
        self.total_queued += 1;
        let b = self.bank_idx(
            ri,
            pending.coord.bank_group.index(),
            pending.coord.bank.index(),
        );
        let q = QueuedReq {
            seq: self.next_seq,
            req: pending.req,
            row: pending.coord.full_row(self.rows_per_subarray),
            phase: RequestPhase::NeedsActivate,
        };
        self.next_seq += 1;
        let pos = self.queues[b].len();
        self.queues[b].push_back(q);
        let counts = self.row_members[b].entry(q.row).or_insert((0, 0));
        match q.req.kind {
            AccessKind::Read => counts.0 += 1,
            AccessKind::Write => counts.1 += 1,
        }
        // Incremental candidate maintenance: a new tail entry can only fill
        // a candidate slot that is still empty.
        let open = self.banks.open_row[b];
        let c = &mut self.cands[b];
        if c.valid {
            if open != ROW_NONE && q.row == open {
                let slot = match q.req.kind {
                    AccessKind::Read => &mut c.col_read,
                    AccessKind::Write => &mut c.col_write,
                };
                if slot.is_none() {
                    *slot = Some(pos);
                }
            } else if c.act.is_none() {
                c.act = Some(pos);
            }
        }
    }

    /// True while requests remain queued.
    pub fn busy(&self) -> bool {
        self.total_queued > 0
    }

    /// Current queue depth (exported as a telemetry gauge).
    pub fn queue_len(&self) -> usize {
        self.total_queued
    }

    fn queue_has_rank(&self, rank: usize) -> bool {
        self.queued_per_rank[rank] > 0
    }

    fn refresh_due(&self, rank: usize, now: u64) -> bool {
        let r = &self.ranks[rank];
        r.power != RankPowerState::SelfRefresh && r.wake_at.is_none() && now >= r.next_refresh
    }

    /// Recomputes bank `b`'s candidate positions from its FIFO. All three
    /// candidates are "first in FIFO order matching the class", so one
    /// forward scan with early exit suffices.
    fn ensure_cands(&mut self, b: usize) {
        if self.cands[b].valid {
            return;
        }
        let open = self.banks.open_row[b];
        // The membership counts say which matches exist at all, so the scan
        // stops at the last one that does instead of running to the end of
        // the FIFO to prove a negative.
        let (need_read, need_write) = if open == ROW_NONE {
            (false, false)
        } else {
            self.row_members[b]
                .get(&open)
                .map_or((false, false), |&(r, w)| (r > 0, w > 0))
        };
        let mut c = BankCands {
            valid: true,
            ..BankCands::default()
        };
        for (i, q) in self.queues[b].iter().enumerate() {
            if open != ROW_NONE && q.row == open {
                let slot = match q.req.kind {
                    AccessKind::Read => &mut c.col_read,
                    AccessKind::Write => &mut c.col_write,
                };
                if slot.is_none() {
                    *slot = Some(i);
                }
            } else if q.phase == RequestPhase::NeedsActivate && c.act.is_none() {
                c.act = Some(i);
            }
            let done = c.act.is_some()
                && (!need_read || c.col_read.is_some())
                && (!need_write || c.col_write.is_some());
            if done {
                break;
            }
        }
        self.cands[b] = c;
    }

    /// Attempts to issue one command at cycle `now`. Returns `true` if a
    /// command (or power-state transition) was issued.
    pub fn try_issue(&mut self, now: u64) -> bool {
        self.complete_wakeups(now);
        self.advance_self_refresh_counters(now);
        if self.service_refresh(now) {
            return true;
        }
        if self.issue_row_hit(now) {
            return true;
        }
        if self.issue_oldest(now) {
            return true;
        }
        self.run_governor(now)
    }

    fn complete_wakeups(&mut self, now: u64) {
        let interval = self.refresh_interval();
        for rank in &mut self.ranks {
            if let Some(w) = rank.wake_at {
                if now >= w {
                    if rank.power == RankPowerState::SelfRefresh {
                        // Self-refresh exit performs a refresh internally.
                        rank.next_refresh = now + interval;
                    }
                    rank.set_power(now, RankPowerState::PrechargeStandby);
                    rank.wake_at = None;
                    // Note: waking does not reset idle_since — idleness
                    // means "no demand traffic", so refresh-driven wake-ups
                    // must not postpone self-refresh entry.
                }
            }
        }
    }

    fn advance_self_refresh_counters(&mut self, now: u64) {
        let interval = self.refresh_interval();
        for rank in &mut self.ranks {
            if rank.power == RankPowerState::SelfRefresh && rank.next_refresh <= now {
                let behind = now - rank.next_refresh;
                let steps = behind / interval + 1;
                rank.next_refresh += steps * interval;
            }
        }
    }

    /// Refresh has priority: wake power-down ranks whose tREFI expired,
    /// drain open banks, and issue REF.
    fn service_refresh(&mut self, now: u64) -> bool {
        for ri in 0..self.ranks.len() {
            if !self.refresh_due(ri, now) {
                continue;
            }
            if self.ranks[ri].power == RankPowerState::PowerDown {
                // Must wake the rank to refresh it — but CKE must have been
                // low for at least tCKE before the exit.
                if now < self.ranks[ri].state_since + self.timing.t_cke {
                    continue;
                }
                self.ranks[ri].wake_at = Some(now + self.timing.t_xp);
                self.record(now, ri as u32, 0, 0, 0, DramCommand::PowerDownExit);
                return true;
            }
            let issued = match self.scheme {
                RefreshScheme::AllBank => self.service_refresh_all_bank(ri, now),
                RefreshScheme::SameBank { sets } => self.service_refresh_same_bank(ri, now, sets),
            };
            if issued {
                return true;
            }
        }
        false
    }

    /// All-bank REF: the whole rank must be precharged, and every bank
    /// stalls for tRFC.
    fn service_refresh_all_bank(&mut self, ri: usize, now: u64) -> bool {
        if !self.ranks[ri].all_precharged() {
            // Close one open bank whose tRAS/tRTP/tWR window allows it.
            for bi in 0..self.banks_per_rank {
                let idx = ri * self.banks_per_rank + bi;
                if self.banks.is_open(idx) && now >= self.banks.next_pre[idx] {
                    self.banks.on_precharge(idx, now, &self.timing);
                    self.ranks[ri].on_precharge_bank();
                    self.counters.precharges += 1;
                    self.record(
                        now,
                        ri as u32,
                        bi as u32,
                        (bi / self.banks_per_group) as u32,
                        0,
                        DramCommand::Precharge,
                    );
                    // Any queued request that had this row open must
                    // re-activate.
                    for q in self.queues[idx].iter_mut() {
                        q.phase = RequestPhase::NeedsActivate;
                    }
                    self.cands[idx].valid = false;
                    return true;
                }
            }
            return false; // waiting on tRAS etc.
        }
        if now >= self.ranks[ri].refresh_until {
            let until = now + self.timing.t_rfc;
            let base = ri * self.banks_per_rank;
            for idx in base..base + self.banks_per_rank {
                self.banks.block_until(idx, until);
            }
            let rank = &mut self.ranks[ri];
            rank.refresh_until = until;
            rank.next_refresh += self.timing.t_refi;
            self.counters.refreshes += 1;
            self.record(now, ri as u32, 0, 0, 0, DramCommand::Refresh);
            return true;
        }
        false
    }

    /// DDR5 same-bank REFsb: the due set is one bank per bank group (flat
    /// index `bg * banks_per_group + set`). Only those banks must be
    /// precharged and only they stall — for tRFCsb — while the rest of the
    /// rank keeps serving requests. The set rotates so `sets` consecutive
    /// commands (tREFI/sets apart) refresh the whole rank once per tREFI.
    fn service_refresh_same_bank(&mut self, ri: usize, now: u64, sets: u32) -> bool {
        let set = self.ranks[ri].refresh_set as usize;
        let mut target_open = false;
        for bg in 0..self.bank_groups {
            let idx = self.bank_idx(ri, bg, set);
            if !self.banks.is_open(idx) {
                continue;
            }
            target_open = true;
            if now >= self.banks.next_pre[idx] {
                self.banks.on_precharge(idx, now, &self.timing);
                self.ranks[ri].on_precharge_bank();
                self.counters.precharges += 1;
                self.record(
                    now,
                    ri as u32,
                    (idx % self.banks_per_rank) as u32,
                    bg as u32,
                    0,
                    DramCommand::Precharge,
                );
                // Any queued request that had this row open must re-activate.
                for q in self.queues[idx].iter_mut() {
                    q.phase = RequestPhase::NeedsActivate;
                }
                self.cands[idx].valid = false;
                return true;
            }
        }
        if target_open {
            return false; // waiting on tRAS etc.
        }
        if now >= self.ranks[ri].refresh_until {
            let until = now + self.timing.t_rfc_sb;
            for bg in 0..self.bank_groups {
                let idx = self.bank_idx(ri, bg, set);
                self.banks.block_until(idx, until);
            }
            let rank = &mut self.ranks[ri];
            rank.refresh_until = until;
            rank.next_refresh += self.timing.t_refi / u64::from(sets);
            rank.refresh_set = (rank.refresh_set + 1) % sets;
            self.counters.refreshes += 1;
            // bank = the refreshed set index (one bank per group).
            self.record(
                now,
                ri as u32,
                set as u32,
                0,
                0,
                DramCommand::RefreshSameBank,
            );
            return true;
        }
        false
    }

    fn rank_ready(&self, rank: usize) -> bool {
        let r = &self.ranks[rank];
        !r.power.is_low_power() && r.wake_at.is_none()
    }

    /// Earliest cycle a column command of `kind` can issue to bank `b`
    /// (tCCD, bank tRCD, rank bus turnaround, data-bus occupancy).
    fn column_time(&self, ri: usize, bg: usize, b: usize, kind: AccessKind) -> u64 {
        let t = &self.timing;
        let rank = &self.ranks[ri];
        let col = self
            .next_col_any
            .max(self.next_col_bg[self.col_bg_idx(ri, bg)]);
        match kind {
            AccessKind::Read => col
                .max(self.banks.next_read[b])
                .max(rank.next_read)
                .max(self.bus_free_at.saturating_sub(t.cl)),
            AccessKind::Write => col
                .max(self.banks.next_write[b])
                .max(rank.next_write)
                .max(self.bus_free_at.saturating_sub(t.cwl)),
        }
    }

    fn issue_column_at(&mut self, b: usize, pos: usize, now: u64) {
        let q = self.queues[b]
            .remove(pos)
            .expect("candidate position is in range");
        let ri = b / self.banks_per_rank;
        let flat = b % self.banks_per_rank;
        let bg = flat / self.banks_per_group;
        self.queued_per_rank[ri] -= 1;
        self.total_queued -= 1;
        let remaining = {
            let counts = self
                .row_members
                .get_mut(b)
                .expect("bank index in range")
                .get_mut(&q.row)
                .expect("issued request is counted");
            match q.req.kind {
                AccessKind::Read => counts.0 -= 1,
                AccessKind::Write => counts.1 -= 1,
            }
            let rem = match q.req.kind {
                AccessKind::Read => counts.0,
                AccessKind::Write => counts.1,
            };
            if *counts == (0, 0) {
                self.row_members[b].remove(&q.row);
            }
            rem
        };
        // Maintain cached candidates across the removal: positions past the
        // removal point shift down by one; the removed request's own slot is
        // rescanned forward (FIFO order is preserved, so the next same-kind
        // match cannot sit before `pos`) — unless the membership count says
        // no same-kind match remains at all.
        if self.cands[b].valid {
            let mut c = self.cands[b];
            for p in [&mut c.col_read, &mut c.col_write, &mut c.act]
                .into_iter()
                .flatten()
            {
                if *p > pos {
                    *p -= 1;
                }
            }
            let open = self.banks.open_row[b];
            let slot = match q.req.kind {
                AccessKind::Read => &mut c.col_read,
                AccessKind::Write => &mut c.col_write,
            };
            *slot = None;
            if remaining > 0 {
                for i in pos..self.queues[b].len() {
                    let qq = self.queues[b][i];
                    if qq.row == open && qq.req.kind == q.req.kind {
                        *slot = Some(i);
                        break;
                    }
                }
            }
            self.cands[b] = c;
        }
        let t = self.timing;
        let cbg = self.col_bg_idx(ri, bg);
        self.next_col_any = now + t.t_ccd_s;
        self.next_col_bg[cbg] = now + t.t_ccd_l;
        let cmd = match q.req.kind {
            AccessKind::Read => DramCommand::Read,
            AccessKind::Write => DramCommand::Write,
        };
        self.record(now, ri as u32, flat as u32, bg as u32, q.row, cmd);
        match q.req.kind {
            AccessKind::Read => {
                self.banks.on_read(b, now, &t);
                let data_end = now + t.cl + t.burst_cycles();
                self.bus_free_at = data_end;
                // Read-to-write turnaround: tRTW = CL + BL/2 + 2 - CWL.
                let rtw = (t.cl + t.burst_cycles() + 2).saturating_sub(t.cwl);
                self.ranks[ri].next_write = self.ranks[ri].next_write.max(now + rtw);
                self.counters.reads += 1;
                self.counters
                    .read_latency
                    .record((data_end - q.req.arrival) as f64);
            }
            AccessKind::Write => {
                self.banks.on_write(b, now, &t);
                let data_end = now + t.cwl + t.burst_cycles();
                self.bus_free_at = data_end;
                // Write-to-read turnaround.
                self.ranks[ri].next_read = self.ranks[ri].next_read.max(data_end + t.t_wtr_l);
                self.counters.writes += 1;
            }
        }
        if matches!(q.phase, RequestPhase::NeedsActivate) {
            // Column issued without this request paying for an ACT: row hit.
            self.counters.row_hits += 1;
        }
        self.ranks[ri].idle_since = now;
    }

    /// FR-FCFS first pass: oldest ready row-hit column command.
    fn issue_row_hit(&mut self, now: u64) -> bool {
        let mut best: Option<(u64, usize, usize)> = None;
        for b in 0..self.queues.len() {
            if self.queues[b].is_empty() || !self.banks.is_open(b) {
                continue;
            }
            let ri = b / self.banks_per_rank;
            if !self.rank_ready(ri) {
                continue;
            }
            self.ensure_cands(b);
            let c = self.cands[b];
            let bg = self.bg_of(b);
            for (slot, kind) in [
                (c.col_read, AccessKind::Read),
                (c.col_write, AccessKind::Write),
            ] {
                let Some(pos) = slot else { continue };
                if now < self.column_time(ri, bg, b, kind) {
                    continue;
                }
                let seq = self.queues[b][pos].seq;
                if best.is_none_or(|(s, _, _)| seq < s) {
                    best = Some((seq, b, pos));
                }
            }
        }
        match best {
            Some((_, b, pos)) => {
                self.issue_column_at(b, pos, now);
                true
            }
            None => false,
        }
    }

    /// FR-FCFS second pass: make progress for the oldest request that can
    /// move (wake its rank, precharge a conflicting row, or activate).
    fn issue_oldest(&mut self, now: u64) -> bool {
        let mut best: Option<(u64, OldestAction)> = None;
        for ri in 0..self.ranks.len() {
            if self.queued_per_rank[ri] == 0 || self.ranks[ri].wake_at.is_some() {
                continue;
            }
            let base = ri * self.banks_per_rank;
            if self.ranks[ri].power.is_low_power() {
                // Issue PDX / SRX — CKE must have been low for tCKE first.
                // The wake is justified by the rank's oldest request, of any
                // phase.
                if now < self.ranks[ri].state_since + self.timing.t_cke {
                    continue;
                }
                let mut seq = u64::MAX;
                for b in base..base + self.banks_per_rank {
                    if let Some(front) = self.queues[b].front() {
                        seq = seq.min(front.seq);
                    }
                }
                if seq != u64::MAX && best.as_ref().is_none_or(|(s, _)| seq < *s) {
                    best = Some((seq, OldestAction::Wake { rank: ri }));
                }
                continue;
            }
            if self.refresh_due(ri, now) {
                continue; // refresh has priority on this rank
            }
            for b in base..base + self.banks_per_rank {
                if self.queues[b].is_empty() {
                    continue;
                }
                self.ensure_cands(b);
                let Some(pos) = self.cands[b].act else {
                    continue;
                };
                if self.banks.is_open(b) {
                    // Row conflict: precharge when allowed.
                    if now < self.banks.next_pre[b] {
                        continue;
                    }
                    let seq = self.queues[b][pos].seq;
                    if best.as_ref().is_none_or(|(s, _)| seq < *s) {
                        best = Some((seq, OldestAction::Precharge { bank: b }));
                    }
                } else {
                    let bg = self.bg_of(b);
                    if now < self.banks.next_act[b] || now < self.ranks[ri].act_allowed_at(bg) {
                        continue;
                    }
                    let seq = self.queues[b][pos].seq;
                    if best.as_ref().is_none_or(|(s, _)| seq < *s) {
                        best = Some((seq, OldestAction::Activate { bank: b, pos }));
                    }
                }
            }
        }
        let Some((_, action)) = best else {
            return false;
        };
        match action {
            OldestAction::Wake { rank } => {
                let (latency, exit_cmd) = match self.ranks[rank].power {
                    RankPowerState::PowerDown => (self.timing.t_xp, DramCommand::PowerDownExit),
                    RankPowerState::SelfRefresh => (self.timing.t_xs, DramCommand::SelfRefreshExit),
                    _ => unreachable!("wake candidate on an awake rank"),
                };
                self.ranks[rank].wake_at = Some(now + latency);
                self.record(now, rank as u32, 0, 0, 0, exit_cmd);
            }
            OldestAction::Precharge { bank } => {
                let ri = bank / self.banks_per_rank;
                self.banks.on_precharge(bank, now, &self.timing);
                self.ranks[ri].on_precharge_bank();
                self.counters.precharges += 1;
                self.counters.row_conflicts += 1;
                self.record(
                    now,
                    ri as u32,
                    (bank % self.banks_per_rank) as u32,
                    self.bg_of(bank) as u32,
                    0,
                    DramCommand::Precharge,
                );
                self.ranks[ri].idle_since = now;
                self.cands[bank].valid = false;
            }
            OldestAction::Activate { bank, pos } => {
                let ri = bank / self.banks_per_rank;
                let bg = self.bg_of(bank);
                let row = self.queues[bank][pos].row;
                self.banks.on_activate(bank, now, row, &self.timing);
                self.ranks[ri].on_activate(now, bg, &self.timing);
                if self.ranks[ri].open_banks == 1
                    && self.ranks[ri].power == RankPowerState::PrechargeStandby
                {
                    self.ranks[ri].set_power(now, RankPowerState::ActiveStandby);
                }
                self.counters.activates += 1;
                self.counters.row_misses += 1;
                self.record(
                    now,
                    ri as u32,
                    (bank % self.banks_per_rank) as u32,
                    bg as u32,
                    row,
                    DramCommand::Activate,
                );
                self.queues[bank][pos].phase = RequestPhase::NeedsColumn;
                self.ranks[ri].idle_since = now;
                self.cands[bank].valid = false;
            }
        }
        true
    }

    /// Idle-timeout governor: demote idle, fully-precharged ranks.
    fn run_governor(&mut self, now: u64) -> bool {
        for ri in 0..self.ranks.len() {
            if self.ranks[ri].wake_at.is_some()
                || !self.ranks[ri].all_precharged()
                || self.queue_has_rank(ri)
                || self.refresh_due(ri, now)
                || self.ranks[ri].refresh_until > now
            {
                continue;
            }
            // Track Active->Precharge standby transition when banks closed.
            if self.ranks[ri].power == RankPowerState::ActiveStandby {
                self.ranks[ri].set_power(now, RankPowerState::PrechargeStandby);
                continue;
            }
            let idle = now.saturating_sub(self.ranks[ri].idle_since);
            match self.ranks[ri].power {
                RankPowerState::PrechargeStandby => {
                    if let Some(srt) = self.policy.sr_timeout {
                        if idle >= srt {
                            self.ranks[ri].set_power(now, RankPowerState::SelfRefresh);
                            self.record(now, ri as u32, 0, 0, 0, DramCommand::SelfRefreshEnter);
                            return true;
                        }
                    }
                    if let Some(pdt) = self.policy.pd_timeout {
                        if idle >= pdt {
                            self.ranks[ri].set_power(now, RankPowerState::PowerDown);
                            self.record(now, ri as u32, 0, 0, 0, DramCommand::PowerDownEnter);
                            return true;
                        }
                    }
                }
                RankPowerState::PowerDown => {
                    if let Some(srt) = self.policy.sr_timeout {
                        if idle >= srt {
                            // Promote PD -> SR (PDX+SRE modelled as direct, so
                            // only the SRE is logged).
                            self.ranks[ri].set_power(now, RankPowerState::SelfRefresh);
                            self.record(now, ri as u32, 0, 0, 0, DramCommand::SelfRefreshEnter);
                            return true;
                        }
                    }
                }
                _ => {}
            }
        }
        false
    }

    /// Earliest future cycle at which this channel could do something.
    /// Returns `u64::MAX` when nothing is outstanding (other than
    /// self-refresh bookkeeping, which needs no controller action).
    ///
    /// The estimate may be conservative (an extra poll that issues nothing
    /// is harmless) but must never overshoot a cycle on which `try_issue`
    /// would act — that is the invariant the engine-equivalence suite pins
    /// down. It is exact for the common cases: the per-bank candidate gates
    /// reuse the same `column_time`/tRP/tRRD/tFAW arithmetic the issue
    /// passes check, so after a successful issue the driving loop can jump
    /// straight to the next legal issue cycle.
    pub fn next_event(&mut self, now: u64) -> u64 {
        let mut t = u64::MAX;
        for (ri, rank) in self.ranks.iter().enumerate() {
            if let Some(w) = rank.wake_at {
                t = t.min(w);
            }
            if rank.power != RankPowerState::SelfRefresh {
                // A power-down rank cannot begin its refresh wake-up before
                // CKE has been low for tCKE.
                let mut refr = rank.next_refresh;
                if rank.power == RankPowerState::PowerDown {
                    refr = refr.max(rank.state_since + self.timing.t_cke);
                }
                t = t.min(refr.max(now + 1));
                if rank.refresh_until > now {
                    t = t.min(rank.refresh_until);
                }
            }
            // Governor deadlines.
            if rank.wake_at.is_none() && rank.all_precharged() && self.queued_per_rank[ri] == 0 {
                let base = rank.idle_since;
                match rank.power {
                    RankPowerState::PrechargeStandby => {
                        if let Some(pdt) = self.policy.pd_timeout {
                            t = t.min((base + pdt).max(now + 1));
                        }
                        if let Some(srt) = self.policy.sr_timeout {
                            t = t.min((base + srt).max(now + 1));
                        }
                    }
                    RankPowerState::PowerDown => {
                        if let Some(srt) = self.policy.sr_timeout {
                            t = t.min((base + srt).max(now + 1));
                        }
                    }
                    RankPowerState::ActiveStandby => {
                        // The governor's ActiveStandby → PrechargeStandby
                        // bookkeeping transition is untimed: it fires on the
                        // next poll once the rank is fully precharged and
                        // has no queued work, so the next poll must come at
                        // now + 1 for residency to match the stepped engine.
                        t = t.min(now + 1);
                    }
                    RankPowerState::SelfRefresh => {}
                }
            }
        }
        for b in 0..self.queues.len() {
            if self.queues[b].is_empty() {
                continue;
            }
            let ri = b / self.banks_per_rank;
            if let Some(w) = self.ranks[ri].wake_at {
                t = t.min(w.max(now + 1));
                continue;
            }
            if self.ranks[ri].power.is_low_power() {
                // A demand wake-up can be issued once CKE has been low tCKE.
                t = t.min((self.ranks[ri].state_since + self.timing.t_cke).max(now + 1));
                continue;
            }
            if matches!(self.scheme, RefreshScheme::AllBank) && self.ranks[ri].refresh_until > now {
                // All-bank refresh stalls every bank in the rank, so the
                // refresh end is the bank's next actionable cycle. Under
                // same-bank REFsb only the target set is stalled (via its
                // bank gates), so fall through to the candidate gates —
                // skipping here would sleep past issue opportunities on the
                // non-target banks and diverge from the stepped engine.
                t = t.min(self.ranks[ri].refresh_until);
                continue;
            }
            self.ensure_cands(b);
            let c = self.cands[b];
            let bg = self.bg_of(b);
            if self.banks.is_open(b) {
                for (slot, kind) in [
                    (c.col_read, AccessKind::Read),
                    (c.col_write, AccessKind::Write),
                ] {
                    if slot.is_some() {
                        t = t.min(self.column_time(ri, bg, b, kind).max(now + 1));
                    }
                }
                if c.act.is_some() {
                    t = t.min(self.banks.next_pre[b].max(now + 1));
                }
            } else if c.act.is_some() {
                let gate = self.banks.next_act[b].max(self.ranks[ri].act_allowed_at(bg));
                t = t.min(gate.max(now + 1));
            }
        }
        t
    }

    /// The audited clock-advance step shared by every driving loop: the
    /// next cycle at which this channel should be polled — strictly after
    /// `now`, clamped to `cap` (a trace horizon or the next arrival).
    /// Centralizing the `.max(now + 1).min(cap)` dance keeps all callers on
    /// the invariant `next_event` guarantees: polling early is harmless,
    /// skipping an action cycle breaks engine equivalence.
    pub fn next_poll(&mut self, now: u64, cap: u64) -> u64 {
        self.next_event(now).max(now + 1).min(cap.max(now + 1))
    }

    /// Finalizes residency accounting.
    pub fn finish(&mut self, now: u64) {
        for rank in &mut self.ranks {
            rank.finish(now);
        }
    }

    /// Per-rank residency snapshots.
    pub fn residencies(&self) -> Vec<RankResidency> {
        self.ranks.iter().map(|r| r.residency).collect()
    }

    /// Total power-down and self-refresh entries across ranks.
    pub fn lp_entries(&self) -> (u64, u64) {
        let pd = self.ranks.iter().map(|r| r.pd_entries).sum();
        let sr = self.ranks.iter().map(|r| r.sr_entries).sum();
        (pd, sr)
    }

    /// Accounting snapshot at cycle `now` for epoch replay. Residency
    /// includes each rank's currently-open state interval so that the delta
    /// of two marks one epoch apart sums to exactly the epoch length.
    pub fn replay_mark(&self, now: u64) -> ReplayMark {
        ReplayMark {
            counters: self.counters.clone(),
            ranks: self
                .ranks
                .iter()
                .map(|r| {
                    let mut residency = r.residency;
                    residency.add_state(r.power, now.saturating_sub(r.state_since));
                    RankMark {
                        residency,
                        pd_entries: r.pd_entries,
                        sr_entries: r.sr_entries,
                    }
                })
                .collect(),
        }
    }

    /// Adds `times` copies of the accounting delta between two marks
    /// (epoch replay's scaled bookkeeping for skipped windows).
    pub fn apply_replay_delta(&mut self, start: &ReplayMark, end: &ReplayMark, times: u64) {
        self.counters
            .add_scaled_delta(&start.counters, &end.counters, times);
        for (r, (s, e)) in self
            .ranks
            .iter_mut()
            .zip(start.ranks.iter().zip(end.ranks.iter()))
        {
            r.residency
                .merge_scaled_delta(&s.residency, &e.residency, times);
            r.pd_entries += (e.pd_entries - s.pd_entries) * times;
            r.sr_entries += (e.sr_entries - s.sr_entries) * times;
        }
    }

    /// Translates every absolute-cycle gate and stamp forward by `delta`
    /// (epoch-replay fast-forward). Relative timing state — and therefore
    /// every future scheduling decision — is preserved exactly; queued
    /// requests' arrival stamps shift too so their eventual latency excludes
    /// the skipped window.
    pub fn time_shift(&mut self, delta: u64) {
        self.bus_free_at += delta;
        self.next_col_any += delta;
        for v in &mut self.next_col_bg {
            *v += delta;
        }
        self.banks.time_shift(delta);
        for r in &mut self.ranks {
            r.time_shift(delta);
        }
        for q in &mut self.queues {
            for req in q.iter_mut() {
                req.req.arrival += delta;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addrmap::AddressMapper;
    use crate::command::MemRequest;
    use gd_types::config::DramConfig;

    fn make(policy: LowPowerPolicy) -> (ChannelCtrl, AddressMapper) {
        let cfg = DramConfig::small_test();
        (
            ChannelCtrl::new(&cfg, policy),
            AddressMapper::new(&cfg).unwrap(),
        )
    }

    fn pend(mapper: &AddressMapper, req: MemRequest) -> PendingRequest {
        PendingRequest {
            coord: mapper.decode(req.addr).unwrap(),
            req,
        }
    }

    /// Drives the channel until its queue drains, returning the end cycle.
    fn drain(ch: &mut ChannelCtrl, start: u64) -> u64 {
        let mut now = start;
        let mut guard = 0;
        while ch.busy() {
            if !ch.try_issue(now) {
                now = ch.next_poll(now, u64::MAX);
            } else {
                now += 1;
            }
            guard += 1;
            assert!(guard < 1_000_000, "channel failed to drain");
        }
        now
    }

    #[test]
    fn single_read_completes_with_act_rcd_cl() {
        let (mut ch, mapper) = make(LowPowerPolicy::disabled());
        // Address 0 decodes to channel 0 in the small config.
        let req = MemRequest::read(0, 0);
        ch.enqueue(pend(&mapper, req), 0);
        drain(&mut ch, 0);
        assert_eq!(ch.counters.reads, 1);
        assert_eq!(ch.counters.activates, 1);
        let t = DramConfig::small_test().timing;
        let min_latency = (t.t_rcd + t.cl + t.burst_cycles()) as f64;
        assert!(ch.counters.read_latency.mean().unwrap() >= min_latency);
    }

    #[test]
    fn same_row_requests_hit_row_buffer() {
        let (mut ch, mapper) = make(LowPowerPolicy::disabled());
        // Two reads to the same row: flip only a column bit, which sits above
        // the channel/bank-group/bank bits in the interleaved layout.
        let layout = mapper.bit_layout();
        let stride = 1u64 << (layout.offset + layout.channel + layout.bank_group + layout.bank);
        ch.enqueue(pend(&mapper, MemRequest::read(0, 0)), 0);
        ch.enqueue(pend(&mapper, MemRequest::read(stride, 0)), 0);
        drain(&mut ch, 0);
        assert_eq!(ch.counters.reads, 2);
        assert_eq!(ch.counters.activates, 1, "second read must be a row hit");
        assert_eq!(ch.counters.row_hits, 1);
    }

    #[test]
    fn row_conflict_precharges_then_activates() {
        let (mut ch, mapper) = make(LowPowerPolicy::disabled());
        let cfg = DramConfig::small_test();
        // Same bank, different local row: flip a local-row bit. In the
        // interleaved small config the local row bits sit above
        // offset+ch+bg+bank+col bits.
        let layout = mapper.bit_layout();
        let row_shift = layout.offset
            + layout.channel
            + layout.bank_group
            + layout.bank
            + layout.column
            + layout.rank;
        let a1 = 0u64;
        let a2 = 1u64 << row_shift;
        let c1 = mapper.decode(a1).unwrap();
        let c2 = mapper.decode(a2).unwrap();
        assert_eq!(c1.channel, c2.channel);
        assert_eq!(
            (c1.bank_group, c1.bank, c1.rank),
            (c2.bank_group, c2.bank, c2.rank)
        );
        assert_ne!(
            c1.full_row(cfg.org.rows_per_subarray),
            c2.full_row(cfg.org.rows_per_subarray)
        );
        ch.enqueue(pend(&mapper, MemRequest::read(a1, 0)), 0);
        drain(&mut ch, 0);
        ch.enqueue(pend(&mapper, MemRequest::read(a2, 0)), 0);
        drain(&mut ch, 0);
        assert_eq!(ch.counters.activates, 2);
        assert_eq!(ch.counters.row_conflicts, 1);
    }

    #[test]
    fn idle_rank_enters_power_down_then_self_refresh() {
        let (mut ch, mapper) = make(LowPowerPolicy {
            pd_timeout: Some(64),
            sr_timeout: Some(1000),
        });
        ch.enqueue(pend(&mapper, MemRequest::read(0, 0)), 0);
        let end = drain(&mut ch, 0);
        // Run the governor well past both timeouts.
        let horizon = end + 20_000;
        let mut now = end;
        for _ in 0..200 {
            if !ch.try_issue(now) {
                now = ch.next_poll(now, horizon);
            } else {
                now += 1;
            }
            if now >= horizon {
                break;
            }
        }
        ch.finish(now);
        let res = ch.residencies();
        let (pd, sr) = ch.lp_entries();
        assert!(pd >= 1, "rank should have entered power-down");
        assert!(sr >= 1, "rank should have been promoted to self-refresh");
        assert!(res.iter().any(|r| r.self_refresh > 0));
    }

    #[test]
    fn refresh_issued_roughly_every_trefi() {
        let (mut ch, mapper) = make(LowPowerPolicy::disabled());
        let t = DramConfig::small_test().timing;
        // Keep traffic flowing so ranks stay awake for ~5 tREFI.
        let horizon = t.t_refi * 5;
        let mut now = 0;
        let mut next_req = 0u64;
        let mut injected = 0u64;
        while now < horizon {
            if now >= next_req && injected < 10_000 {
                let addr = (injected * 64 * 2) % (1 << 20);
                if let Ok(c) = mapper.decode(addr) {
                    if c.channel.index() == 0 {
                        ch.enqueue(pend(&mapper, MemRequest::read(addr, now)), now);
                        injected += 1;
                    } else {
                        injected += 1;
                    }
                }
                next_req = now + 50;
            }
            if !ch.try_issue(now) {
                now = ch.next_poll(now, next_req);
            } else {
                now += 1;
            }
        }
        // 2 ranks x 5 refresh intervals — allow slack for staggering.
        assert!(
            ch.counters.refreshes >= 6,
            "expected ~10 refreshes, got {}",
            ch.counters.refreshes
        );
    }

    #[test]
    fn wake_from_self_refresh_pays_txs() {
        let (mut ch, mapper) = make(LowPowerPolicy {
            pd_timeout: None,
            sr_timeout: Some(100),
        });
        // Let the rank enter SR (clamp jumps: with every rank asleep the
        // next controller event may be arbitrarily far away).
        let mut now = 0;
        for _ in 0..50 {
            if !ch.try_issue(now) {
                now = ch.next_poll(now, 5_000);
            } else {
                now += 1;
            }
            if now >= 5000 {
                break;
            }
        }
        let (_, sr) = ch.lp_entries();
        assert!(sr >= 1);
        // Now a read arrives; its latency must include tXS.
        let arrive = now;
        ch.enqueue(pend(&mapper, MemRequest::read(0, arrive)), arrive);
        drain(&mut ch, arrive);
        let t = DramConfig::small_test().timing;
        let lat = ch.counters.read_latency.mean().unwrap();
        assert!(
            lat >= (t.t_xs + t.t_rcd + t.cl) as f64,
            "latency {lat} must include tXS {}",
            t.t_xs
        );
    }

    #[test]
    fn next_poll_advances_and_clamps() {
        let (mut ch, mapper) = make(LowPowerPolicy::disabled());
        // Idle channel: next event is the first refresh, far in the future.
        let far = ch.next_poll(0, u64::MAX);
        assert!(far > 1, "idle channel should jump past now + 1");
        assert_eq!(ch.next_poll(0, 10), 10, "cap clamps the jump");
        // A queued request pulls attention close even with a tiny cap.
        ch.enqueue(pend(&mapper, MemRequest::read(0, 0)), 0);
        let soon = ch.next_poll(0, u64::MAX);
        assert!(soon <= far);
        // The cap never stalls the clock: result is strictly after `now`.
        assert_eq!(ch.next_poll(5, 0), 6);
    }

    #[test]
    fn time_shift_preserves_drain_schedule_shape() {
        // Two identical channels; one is shifted by a constant before the
        // (identical) work arrives. Command counts must match and the
        // shifted channel's latencies must equal the unshifted ones.
        let (mut a, mapper) = make(LowPowerPolicy::disabled());
        let (mut b, _) = make(LowPowerPolicy::disabled());
        const SHIFT: u64 = 100_000;
        b.time_shift(SHIFT);
        for i in 0..8u64 {
            let addr = i * 64;
            a.enqueue(pend(&mapper, MemRequest::read(addr, 0)), 0);
            b.enqueue(pend(&mapper, MemRequest::read(addr, SHIFT)), SHIFT);
        }
        drain(&mut a, 0);
        drain(&mut b, SHIFT);
        assert_eq!(a.counters.reads, b.counters.reads);
        assert_eq!(a.counters.activates, b.counters.activates);
        assert_eq!(a.counters.row_hits, b.counters.row_hits);
        assert_eq!(
            a.counters.read_latency.mean(),
            b.counters.read_latency.mean(),
            "latency must be shift-invariant"
        );
    }
}
